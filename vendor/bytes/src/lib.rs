//! Offline stand-in for the `bytes` crate.
//!
//! [`Bytes`] is a cheaply-cloneable view into a shared immutable
//! buffer; [`BytesMut`] is a growable buffer that freezes into
//! [`Bytes`]. The [`Buf`]/[`BufMut`] traits carry the little-endian
//! accessors the tensor wire format uses.

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::{Arc, OnceLock};

/// Hook invoked with the backing allocation when the last [`Bytes`]
/// view of a buffer drops. Lets the host application recycle frame
/// buffers into a pool instead of freeing them.
static RECYCLER: OnceLock<fn(Vec<u8>)> = OnceLock::new();

/// Registers a process-wide recycler for dropped buffer allocations.
/// Only the first registration wins; later calls are ignored.
pub fn set_buffer_recycler(f: fn(Vec<u8>)) {
    let _ = RECYCLER.set(f);
}

/// The shared backing buffer: hands its allocation to the registered
/// recycler (if any) when the final reference drops.
#[derive(Debug)]
struct Inner(Vec<u8>);

impl Drop for Inner {
    fn drop(&mut self) {
        if let Some(recycle) = RECYCLER.get() {
            recycle(std::mem::take(&mut self.0));
        }
    }
}

/// A cheaply-cloneable, sliceable view of an immutable byte buffer.
#[derive(Clone, Debug)]
pub struct Bytes {
    data: Arc<Inner>,
    start: usize,
    end: usize,
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

// Equality is over the visible bytes (like the real crate), not the
// backing buffer — a zero-copy sub-slice equals an owned copy.
impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    /// Wraps a static byte slice without copying semantics concerns.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    /// Number of visible bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A sub-view of this buffer (zero-copy).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: self.data.clone(),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Copies the visible bytes into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::new(Inner(v)),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data.0[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut { vec: Vec::new() }
    }

    /// An empty buffer with `cap` bytes reserved.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            vec: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.vec.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    /// Converts into an immutable [`Bytes`] without copying: the
    /// allocation moves into the shared buffer as-is.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.vec)
    }

    /// Appends raw bytes.
    pub fn extend_from_slice(&mut self, bytes: &[u8]) {
        self.vec.extend_from_slice(bytes);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.vec
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

/// Sequential little-endian reads from a byte source.
///
/// # Panics
///
/// The `get_*` methods panic if fewer than the required bytes remain,
/// matching the real crate; callers guard with [`Buf::remaining`].
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Skips `n` bytes.
    fn advance(&mut self, n: usize);
    /// Copies out the next `dst.len()` bytes.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    /// Reads a single byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of buffer");
        self.start += n;
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "read past end of buffer");
        dst.copy_from_slice(&self.data.0[self.start..self.start + dst.len()]);
        self.start += dst.len();
    }
}

/// Sequential little-endian writes into a byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, bytes: &[u8]);

    /// Writes a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_bits().to_le_bytes());
    }

    /// Writes a single byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, bytes: &[u8]) {
        self.vec.extend_from_slice(bytes);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, bytes: &[u8]) {
        self.extend_from_slice(bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_le() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(42);
        buf.put_f32_le(1.5);
        let mut b = buf.freeze();
        assert_eq!(b.remaining(), 16);
        assert_eq!(b.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(b.get_u64_le(), 42);
        assert_eq!(b.get_f32_le(), 1.5);
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn clone_is_independent_cursor() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(7);
        let original = buf.freeze();
        let mut cursor = original.clone();
        assert_eq!(cursor.get_u32_le(), 7);
        assert_eq!(cursor.remaining(), 0);
        assert_eq!(original.len(), 4, "clone consumed the original");
    }

    #[test]
    fn slice_views() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4]);
        assert_eq!(&*b.slice(..2), &[0, 1]);
        assert_eq!(&*b.slice(2..4), &[2, 3]);
        assert_eq!(b.slice(1..).slice(..2).to_vec(), vec![1, 2]);
        assert_eq!(b.len(), 5);
    }

    #[test]
    #[should_panic(expected = "read past end")]
    fn overread_panics() {
        let mut b = Bytes::from(vec![1, 2]);
        b.get_u32_le();
    }

    #[test]
    fn recycler_receives_dropped_allocations() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static RECYCLED_BYTES: AtomicUsize = AtomicUsize::new(0);
        fn count(v: Vec<u8>) {
            // Ignore the small buffers other (parallel) tests drop.
            if v.capacity() >= 1000 {
                RECYCLED_BYTES.fetch_add(v.capacity(), Ordering::Relaxed);
            }
        }
        set_buffer_recycler(count);
        let before = RECYCLED_BYTES.load(Ordering::Relaxed);
        let b = Bytes::from(vec![7u8; 1000]);
        let view = b.slice(10..20);
        drop(b); // view still holds the buffer
        assert_eq!(RECYCLED_BYTES.load(Ordering::Relaxed), before);
        drop(view);
        assert!(RECYCLED_BYTES.load(Ordering::Relaxed) >= before + 1000);
    }
}

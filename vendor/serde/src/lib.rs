//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on config types for
//! forward compatibility but never links a serialization format crate
//! (the TCP layer hand-rolls its binary config encoding). The traits
//! here are therefore deliberately empty markers, and the `derive`
//! feature provides no-op derive macros — enough for every current use,
//! and a loud compile error the moment something actually needs a real
//! data-format integration.

/// Marker for types that declare themselves serializable.
pub trait Serialize {}

/// Marker for types that declare themselves deserializable.
pub trait Deserialize {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this workspace has no access to crates.io,
//! so the external crates the workspace depends on are vendored as
//! minimal, API-compatible stand-ins under `vendor/`. This crate
//! implements exactly the surface the workspace uses: [`Rng`] with
//! `gen`/`gen_range`/`gen_bool`, [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`], and [`seq::SliceRandom::shuffle`].
//!
//! The generator is a SplitMix64 stream — deterministic, `Clone`,
//! statistically solid for simulation/testing purposes, but **not** the
//! ChaCha12 stream of the real `rand::rngs::StdRng`, so absolute random
//! sequences differ from upstream `rand`. Every consumer in this
//! workspace only relies on determinism-per-seed, which holds.

/// Low-level entropy source: the object-safe core of [`Rng`].
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Sampling helpers layered over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (uniform `[0, 1)` for floats, uniform over all values for
    /// integers and `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the standard distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits -> uniform in [0, 1) at full f32 precision.
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1) at full f64 precision.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + (self.end - self.start) * unit
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Deterministic construction from integer seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Vigna): passes BigCrush as a 64-bit stream.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // One scramble round so nearby seeds do not give nearby
            // initial states.
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            StdRng { state: z }
        }
    }
}

pub mod seq {
    //! Sequence helpers.

    use super::{Rng, RngCore};

    /// Random order/selection operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + RngCore>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` if empty.
        fn choose<R: Rng + RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f32 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f64 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f64..=2.0);
            assert!((-2.0..=2.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left 50 elements in order");
    }

    #[test]
    fn mean_of_unit_floats_is_half() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}

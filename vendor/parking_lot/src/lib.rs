//! Offline stand-in for `parking_lot`, backed by `std::sync` locks.
//!
//! Matches the `parking_lot` API the workspace uses: `RwLock` /
//! `Mutex` whose guards are obtained without a `Result` (poisoning is
//! converted to a panic, which is what the real crate's semantics
//! amount to for this codebase — a poisoned tensor buffer is
//! unrecoverable).

use std::ops::{Deref, DerefMut};

/// Reader-writer lock with infallible `read`/`write`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

/// Exclusive write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }

    /// Mutable access through a unique reference (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Mutex with infallible `lock`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(vec![1.0f32, 2.0]);
        assert_eq!(lock.read()[0], 1.0);
        lock.write()[0] = 7.0;
        assert_eq!(lock.read()[0], 7.0);
        assert_eq!(lock.into_inner(), vec![7.0, 2.0]);
    }

    #[test]
    fn mutex_locks() {
        let m = Mutex::new(3);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 4);
    }

    #[test]
    fn concurrent_readers() {
        let lock = std::sync::Arc::new(RwLock::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let l = lock.clone();
            handles.push(std::thread::spawn(move || *l.read()));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), 0);
        }
    }
}

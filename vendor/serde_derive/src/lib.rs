//! No-op `Serialize`/`Deserialize` derive macros for the vendored
//! `serde` stand-in: they emit an empty marker-trait impl for the
//! derived type.
//!
//! Written against `proc_macro` alone (no `syn`/`quote`, which are not
//! available offline). Supports plain (non-generic) structs and enums,
//! which covers every derive site in this workspace.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type name following the `struct`/`enum` keyword.
fn type_name(input: TokenStream) -> String {
    let mut iter = input.into_iter();
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(id) = &tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" {
                match iter.next() {
                    Some(TokenTree::Ident(name)) => return name.to_string(),
                    other => panic!("unsupported derive input after `{kw}`: {other:?}"),
                }
            }
        }
    }
    panic!("derive input contains no struct or enum");
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Deserialize for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}

//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`proptest!`] macro, [`Strategy`] with `prop_map`,
//! ranges / tuples / [`Just`] / string character-class patterns as
//! strategies, `prop::collection::vec`, `prop::sample::Index`,
//! [`prop_oneof!`], `any::<T>()`, and `prop_assert*` macros.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case panics with the generated inputs
//!   Debug-printed in the message instead of reporting a minimal
//!   counterexample.
//! * **Deterministic seeding.** Cases derive from a fixed per-test seed
//!   (FNV-1a of the test's module path and name), so failures reproduce
//!   exactly across runs and machines. `*.proptest-regressions` files
//!   are ignored.
//! * Default case count is 64 (real default: 256), keeping the suite
//!   fast in CI; override per-block with
//!   `#![proptest_config(ProptestConfig::with_cases(n))]`.

use std::fmt::Debug;

// ----------------------------------------------------------------------
// Deterministic RNG
// ----------------------------------------------------------------------

/// The generator driving case construction (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a raw seed.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x5851_F42D_4C95_7F2D,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` at f64 precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        self.next_u64() % n
    }
}

/// Error type property bodies may `return Err(..)` with (the stand-in
/// for `proptest::test_runner::TestCaseError`).
#[derive(Clone, Debug)]
pub struct TestCaseError(pub String);

/// FNV-1a hash used to derive stable per-test seeds.
pub fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

// ----------------------------------------------------------------------
// Config
// ----------------------------------------------------------------------

pub mod test_runner {
    //! Test-runner configuration.

    /// Controls how many random cases each property runs.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }
}

/// The name the real crate's prelude exports the runner config under.
pub type ProptestConfig = test_runner::Config;

// ----------------------------------------------------------------------
// Strategy
// ----------------------------------------------------------------------

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate_dyn(rng)
    }
}

/// Uniform choice between several boxed strategies — the engine behind
/// [`prop_oneof!`].
pub struct Union<V>(Vec<BoxedStrategy<V>>);

impl<V> Union<V> {
    /// Builds a union over `arms` (picked with equal probability).
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! of zero strategies");
        Union(arms)
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// Numeric ranges as strategies.

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy on empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "strategy on empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy on empty range");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

// Tuples of strategies.

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

// String patterns: the `"[class]{lo,hi}"` regex subset.

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (chars, lo, hi) = parse_class_pattern(self).unwrap_or_else(|| {
            panic!(
                "the proptest stand-in supports only \"[chars]{{lo,hi}}\" string \
                 patterns, got {self:?}"
            )
        });
        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
        (0..len)
            .map(|_| chars[rng.below(chars.len() as u64) as usize])
            .collect()
    }
}

/// Parses `[a-z 0-9_]{lo,hi}` into (alphabet, lo, hi).
fn parse_class_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let (class, rest) = rest.split_once(']')?;
    let rest = rest.strip_prefix('{')?;
    let counts = rest.strip_suffix('}')?;
    let (lo, hi) = counts.split_once(',')?;
    let lo: usize = lo.trim().parse().ok()?;
    let hi: usize = hi.trim().parse().ok()?;
    if hi < lo {
        return None;
    }
    let mut chars = Vec::new();
    let cs: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < cs.len() {
        if i + 2 < cs.len() && cs[i + 1] == '-' {
            let (a, b) = (cs[i], cs[i + 2]);
            if a > b {
                return None;
            }
            for c in a..=b {
                chars.push(c);
            }
            i += 3;
        } else {
            chars.push(cs[i]);
            i += 1;
        }
    }
    if chars.is_empty() {
        return None;
    }
    Some((chars, lo, hi))
}

// ----------------------------------------------------------------------
// any::<T>() / Arbitrary
// ----------------------------------------------------------------------

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The canonical strategy for this type.
    type Strategy: Strategy<Value = Self>;
    /// Builds the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T` (`any::<bool>()`, etc.).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Generator-backed strategy used for `Arbitrary` impls.
pub struct FnStrategy<V>(fn(&mut TestRng) -> V);

impl<V> Strategy for FnStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

macro_rules! arbitrary_via {
    ($t:ty, $f:expr) => {
        impl Arbitrary for $t {
            type Strategy = FnStrategy<$t>;
            fn arbitrary() -> Self::Strategy {
                FnStrategy($f)
            }
        }
    };
}

arbitrary_via!(bool, |rng| rng.next_u64() & 1 == 1);
arbitrary_via!(u8, |rng| rng.next_u64() as u8);
arbitrary_via!(u16, |rng| rng.next_u64() as u16);
arbitrary_via!(u32, |rng| rng.next_u64() as u32);
arbitrary_via!(u64, |rng| rng.next_u64());
arbitrary_via!(usize, |rng| rng.next_u64() as usize);
arbitrary_via!(i32, |rng| rng.next_u64() as i32);
arbitrary_via!(i64, |rng| rng.next_u64() as i64);
arbitrary_via!(f32, |rng| (rng.unit_f64() * 2.0 - 1.0) as f32 * 1e6);
arbitrary_via!(f64, |rng| (rng.unit_f64() * 2.0 - 1.0) * 1e6);

// ----------------------------------------------------------------------
// prop:: modules
// ----------------------------------------------------------------------

pub mod prop {
    //! The `prop::` namespace mirrored from the real crate.

    pub mod collection {
        //! Collection strategies.

        use crate::{Strategy, TestRng};

        /// Size specification for [`vec`]: a fixed size or a range.
        pub struct SizeRange {
            lo: usize,
            hi: usize, // exclusive
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { lo: n, hi: n + 1 }
            }
        }

        impl From<core::ops::Range<usize>> for SizeRange {
            fn from(r: core::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty vec size range");
                SizeRange {
                    lo: r.start,
                    hi: r.end,
                }
            }
        }

        impl From<core::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: core::ops::RangeInclusive<usize>) -> Self {
                SizeRange {
                    lo: *r.start(),
                    hi: *r.end() + 1,
                }
            }
        }

        /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        /// See [`vec`].
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.hi - self.size.lo) as u64;
                let len = self.size.lo + rng.below(span.max(1)) as usize;
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    pub mod sample {
        //! Sampling helpers.

        use crate::{Arbitrary, FnStrategy};

        /// An index into a collection whose size is unknown at
        /// generation time; resolve with [`Index::index`].
        #[derive(Clone, Copy, Debug)]
        pub struct Index(pub(crate) u64);

        impl Index {
            /// Maps this abstract index into `0..size`.
            ///
            /// # Panics
            ///
            /// Panics if `size == 0`.
            pub fn index(&self, size: usize) -> usize {
                assert!(size > 0, "Index::index(0)");
                (self.0 % size as u64) as usize
            }
        }

        impl Arbitrary for Index {
            type Strategy = FnStrategy<Index>;
            fn arbitrary() -> Self::Strategy {
                FnStrategy(|rng| Index(rng.next_u64()))
            }
        }
    }
}

// ----------------------------------------------------------------------
// Macros
// ----------------------------------------------------------------------

/// Defines property tests. See the crate docs for the supported shape.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let seed = $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let mut __rng = $crate::TestRng::new(
                    seed ^ (u64::from(case)).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                // One closure per case so bodies may `return Ok(())`
                // early, as under the real proptest runner.
                let run = || -> ::core::result::Result<(), $crate::TestCaseError> {
                    $body
                    Ok(())
                };
                if let Err(e) = run() {
                    panic!("property rejected the case: {e:?}");
                }
            }
        }
    )*};
}

/// Asserts a condition inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            panic!($($fmt)*);
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            a,
            b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a != b,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            a
        );
    }};
}

/// Uniform random choice between strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

pub mod prelude {
    //! Glob-import surface matching `proptest::prelude::*`.

    pub use crate::prop;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = crate::TestRng::new(1);
        for _ in 0..1000 {
            let v = Strategy::generate(&(3usize..10), &mut rng);
            assert!((3..10).contains(&v));
            let (a, b) = Strategy::generate(&(0u64..5, -1.0f32..1.0), &mut rng);
            assert!(a < 5 && (-1.0..1.0).contains(&b));
            let inc = Strategy::generate(&(1u64..=6), &mut rng);
            assert!((1..=6).contains(&inc));
        }
    }

    #[test]
    fn vec_and_string_strategies() {
        let mut rng = crate::TestRng::new(2);
        for _ in 0..500 {
            let v = Strategy::generate(&prop::collection::vec(-1.0f32..1.0, 1..8), &mut rng);
            assert!((1..8).contains(&v.len()));
            let s = Strategy::generate(&"[a-z ]{1,12}", &mut rng);
            assert!((1..=12).contains(&s.len()));
            assert!(s.chars().all(|c| c == ' ' || c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn oneof_and_map_cover_all_arms() {
        let mut rng = crate::TestRng::new(3);
        let strat = prop_oneof![(0u64..1).prop_map(|_| "lo"), (0u64..1).prop_map(|_| "hi"),];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(Strategy::generate(&strat, &mut rng));
        }
        assert_eq!(seen.len(), 2);
    }

    #[test]
    fn index_resolves_in_bounds() {
        let mut rng = crate::TestRng::new(4);
        for _ in 0..100 {
            let idx = Strategy::generate(&any::<prop::sample::Index>(), &mut rng);
            assert!(idx.index(7) < 7);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_and_runs(a in 0usize..10, b in -1.0f32..1.0) {
            prop_assert!(a < 10);
            prop_assert!((-1.0..1.0).contains(&b));
            prop_assert_eq!(a, a);
            prop_assert_ne!(b - 1.5, b);
        }
    }
}

//! Offline stand-in for `criterion`.
//!
//! Provides the authoring API the workspace's benches use
//! ([`Criterion::benchmark_group`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BenchmarkId`], [`Throughput`],
//! [`criterion_group!`], [`criterion_main!`]) over a deliberately
//! simple measurement loop: warm-up, then timed samples, reporting the
//! median, mean, and min per-iteration time plus derived throughput.
//!
//! Set `MENOS_BENCH_JSON=<path>` to append one JSON line per benchmark
//! (`{"group":…,"bench":…,"median_ns":…,"mean_ns":…,"min_ns":…,
//! "samples":…}`) — the repo's `BENCH_*.json` baselines are produced
//! this way.

use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Declared work per iteration, used to derive throughput.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How `iter_batched` inputs are grouped. The stand-in times each
/// routine call individually, so the hint is accepted and ignored.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
}

/// A benchmark's display name.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Just the parameter as the name.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Entry point handed to `criterion_group!` functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            throughput: None,
            sample_size: 20,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, mut f: F) {
        let mut group = self.benchmark_group("");
        group.bench_function(id.into().id, |b| f(b));
        group.finish();
    }
}

/// A group of benchmarks sharing a name prefix and throughput spec.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Declares per-iteration work for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(5);
        self
    }

    /// Runs a benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, mut f: F) {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        report(&self.name, &id.id, self.throughput, &bencher.samples);
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher, input);
        report(&self.name, &id.id, self.throughput, &bencher.samples);
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Collects timed samples of a routine.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

/// Cap on total time spent in one benchmark's measurement loop.
const TIME_BUDGET: Duration = Duration::from_millis(1500);

impl Bencher {
    /// Times `routine`, called repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: let caches/allocator settle and estimate cost.
        let warmup = Instant::now();
        let mut one = Duration::ZERO;
        for _ in 0..3 {
            let t = Instant::now();
            std::hint::black_box(routine());
            one = t.elapsed();
            if warmup.elapsed() > TIME_BUDGET / 4 {
                break;
            }
        }
        // Inner reps so that very fast routines are measurable above
        // timer resolution.
        let reps = if one < Duration::from_micros(25) {
            (Duration::from_micros(50).as_nanos() / one.as_nanos().max(1)).clamp(1, 10_000) as u32
        } else {
            1
        };
        let started = Instant::now();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..reps {
                std::hint::black_box(routine());
            }
            self.samples.push(t.elapsed() / reps);
            if started.elapsed() > TIME_BUDGET {
                break;
            }
        }
    }

    /// Times `routine` over fresh inputs from `setup` (setup excluded
    /// from measurement).
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        std::hint::black_box(routine(setup()));
        let started = Instant::now();
        for _ in 0..self.sample_size {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(t.elapsed());
            if started.elapsed() > TIME_BUDGET {
                break;
            }
        }
    }
}

fn report(group: &str, bench: &str, throughput: Option<Throughput>, samples: &[Duration]) {
    let full = if group.is_empty() {
        bench.to_string()
    } else {
        format!("{group}/{bench}")
    };
    if samples.is_empty() {
        println!("{full:<44} no samples collected");
        return;
    }
    let mut sorted: Vec<u128> = samples.iter().map(Duration::as_nanos).collect();
    sorted.sort_unstable();
    let median = sorted[sorted.len() / 2];
    let min = sorted[0];
    let mean = sorted.iter().sum::<u128>() / sorted.len() as u128;
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!(" {:>10}/s", si(n as f64 / (median as f64 * 1e-9))),
        Throughput::Bytes(n) => format!(" {:>9}B/s", si(n as f64 / (median as f64 * 1e-9))),
    });
    println!(
        "{full:<44} median {:>12} mean {:>12} min {:>12}{}",
        fmt_ns(median),
        fmt_ns(mean),
        fmt_ns(min),
        rate.unwrap_or_default(),
    );
    if let Ok(path) = std::env::var("MENOS_BENCH_JSON") {
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            let _ = writeln!(
                f,
                "{{\"group\":\"{group}\",\"bench\":\"{bench}\",\"median_ns\":{median},\
                 \"mean_ns\":{mean},\"min_ns\":{min},\"samples\":{}}}",
                sorted.len(),
            );
        }
    }
}

fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn si(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.2} G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2} M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.2} K", v / 1e3)
    } else {
        format!("{v:.1} ")
    }
}

/// Groups benchmark functions into one runnable entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($f:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($f(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_surfaces_run() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("stub");
        group.throughput(Throughput::Elements(100));
        group.sample_size(5);
        group.bench_function("iter", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("with_input", 3), &3, |b, &x| {
            b.iter_batched(
                || vec![x; 10],
                |v| v.iter().sum::<i32>(),
                BatchSize::SmallInput,
            )
        });
        group.finish();
        c.bench_function("top_level", |b| b.iter(|| 2 * 2));
    }
}

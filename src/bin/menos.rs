//! The `menos` command-line tool: run a split fine-tuning server or
//! client over TCP.
//!
//! ```bash
//! # Terminal 1 — the model owner's server (serves 2 connections):
//! cargo run --release --bin menos -- server --port 7700 --accept-limit 2
//!
//! # Terminals 2..n — data owners' clients:
//! cargo run --release --bin menos -- client --addr 127.0.0.1:7700 --steps 20 --seed 1
//! ```
//!
//! Both sides derive the same tiny Llama-style base model from
//! `--model-seed`, standing in for "the provider distributes the client
//! sections of the pretrained model" (the server never sees client
//! data; the client never runs the server blocks).

use std::sync::{Arc, Mutex};
use std::time::Duration;

use menos::adapters::FineTuneConfig;
use menos::core::{MenosServer, ServerMode, ServerSpec, ServerState};
use menos::data::{wiki_corpus, TokenDataset, Vocab};
use menos::fleet::{BackendSpec, FleetCoordinator, FleetOptions, PlacementPolicy};
use menos::models::{CausalLm, ModelConfig};
use menos::sim::seeded_rng;
use menos::split::{
    run_tcp_client, run_tcp_client_fleet, run_tcp_client_resumable, ClientId, EventLoopOptions,
    ForwardMode, RetryPolicy, SnapshotPolicy, SplitClient, SplitSpec, TcpEventServer, TcpOptions,
    TcpSplitServer,
};

const USAGE: &str = "\
usage:
  menos server [--port P] [--accept-limit N] [--capacity N] [--batch-window W]
               [--model-seed S] [--client-timeout MS] [--max-session-idle MS]
               [--max-write-buffer BYTES] [--pressure-watermark PCT]
               [--retry-after-ms MS] [--snapshot-dir DIR] [--snapshot-every N]
               [--micro-model] [--cached] [--blocking] [--threads T]
  menos client --addr HOST:PORT [--steps N] [--seed S] [--model-seed S]
               [--retries R] [--backoff-ms MS] [--codec C] [--micro-model]
               [--fleet] [--threads T]
  menos fleet  [--port P] [--servers N] [--policy round-robin|memory-aware]
               [--heartbeat-ms MS] [--max-missed N] [--capacity N]
               [--model-seed S] [--snapshot-root DIR] [--duration-secs T]
               [--micro-model] [--threads T]

options:
  --port P          listen port (default 7700)
  --accept-limit N  serve N connections then exit (default 1; deprecated
                    aliases --max-clients, --clients). A lifetime accept
                    budget, not a concurrency cap — that is --capacity
  --capacity N      live-session admission cap: a Connect/Resume past it is
                    shed with a Busy retry hint instead of queued (default:
                    unlimited; event-loop server only, PROTOCOL.md §8)
  --retry-after-ms MS
                    the reconnect hint carried by capacity sheds (default 100)
  --max-write-buffer BYTES
                    evict a consumer stalled with more than BYTES of queued
                    replies; its session is quarantined for resumption
                    (default: unbounded; event-loop server only)
  --pressure-watermark PCT
                    GPU-pool utilization percentage past which the server
                    degrades: stacked batches shrink and accepts are deferred
                    until the pool drains (default 100 = never)
  --batch-window W  max ready clients fused into one stacked server step
                    (default 32; event-loop server only)
  --model-seed S    base-model derivation seed shared by both sides (default 21)
  --client-timeout MS
                    evict a connection silent for MS milliseconds; its session
                    is quarantined for resumption (default: never; event-loop
                    server only)
  --max-session-idle MS
                    drop a quarantined (disconnected but resumable) session
                    after MS milliseconds (default: never; event-loop server
                    only)
  --snapshot-dir DIR
                    persist the server's durable state (sessions, adapters,
                    optimizer moments, cached replies) to DIR/server.snap with
                    atomic tmp-file+rename writes, and restore from it on
                    start if it exists; clients re-attach through the Resume
                    handshake with zero training divergence (event-loop
                    server only)
  --snapshot-every N
                    snapshot cadence in dispatches; 0 (the default) is durable
                    mode — a snapshot lands before every reply is released,
                    which is what makes kill -9 recovery bit-identical
  --micro-model     derive a deliberately tiny base model (2 layers, 32-dim)
                    — fast enough for debug-profile restart tests; both sides
                    must pass it
  --cached          serve with the vanilla cached-forward path instead of
                    Menos' no-grad + re-forward policy
  --blocking        thread-per-client blocking server instead of the
                    single-thread event loop (reference pump; same bytes,
                    bit-identical training)
  --addr A          server address to connect to
  --steps N         fine-tuning iterations to run (default 10)
  --seed S          client data/adapter seed (default 0)
  --retries R       reconnect-and-resume up to R times per fault (default 0:
                    fail on the first fault)
  --codec C         advertise a tensor codec for the cut tensors
                    (f32-raw | f16 | bf16 | topk8, PROTOCOL.md §7;
                    default f32-raw — the server picks from what is
                    advertised, so raw peers interoperate unchanged)
  --backoff-ms MS   base reconnect backoff, doubled per consecutive failure
                    with +/-50% jitter (default 50)
  --fleet           treat --addr as a fleet coordinator: dial it first and
                    chase the Redirect to a backend (PROTOCOL.md §9);
                    implies the resumable driver, so --retries applies
  --servers N       fleet: backend server processes to spawn (default 2)
  --policy P        fleet: session placement — round-robin | memory-aware
                    (default round-robin)
  --heartbeat-ms MS fleet: gap between health probes; a backend missing
                    --max-missed in a row is ruled dead and its sessions
                    are migrated from its snapshot (default 250)
  --max-missed N    fleet: consecutive missed probes before failover
                    (default 3)
  --snapshot-root DIR
                    fleet: parent directory for per-backend snapshot dirs
                    (default: a fresh directory under the system temp dir)
  --duration-secs T fleet: run for T seconds then shut down; without it the
                    fleet runs until stdin reaches end-of-file
  --threads T       tensor-kernel worker threads (default: MENOS_THREADS env
                    var, else all cores; results are identical at any T)";

fn parse_flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Applies `--threads` to the tensor compute backend (the
/// `MENOS_THREADS` environment variable covers the no-flag case).
fn configure_threads(args: &[String]) {
    if let Some(t) = parse_flag(args, "--threads") {
        menos::tensor::set_threads(t.parse().expect("--threads must be a positive number"));
    }
}

fn shared_model(model_seed: u64, micro: bool) -> (Vocab, ModelConfig) {
    let text = wiki_corpus(model_seed, if micro { 3_000 } else { 20_000 });
    let vocab = Vocab::from_text(&text);
    let config = if micro {
        // Mirrors the chaos-soak micro setup: the restart tests
        // exercise the session layer, not the math, and must fit a
        // debug-profile CI budget.
        let mut config = ModelConfig::tiny_opt(vocab.size());
        config.hidden = 32;
        config.layers = 2;
        config.heads = 2;
        config.intermediate = 64;
        config
    } else {
        ModelConfig::tiny_llama(vocab.size())
    };
    (vocab, config)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("server") => run_server(&args),
        Some("client") => run_client(&args),
        Some("fleet") => run_fleet(&args),
        _ => {
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    }
}

fn run_server(args: &[String]) {
    configure_threads(args);
    let port: u16 = parse_flag(args, "--port")
        .map(|v| v.parse().expect("--port must be a number"))
        .unwrap_or(7700);
    // `--max-clients` / `--clients` are deprecated aliases for
    // `--accept-limit` (the name stopped meaning a concurrency cap
    // when `--capacity` arrived); existing deployments keep working.
    let clients: usize = parse_flag(args, "--accept-limit")
        .or_else(|| parse_flag(args, "--max-clients"))
        .or_else(|| parse_flag(args, "--clients"))
        .map(|v| v.parse().expect("--accept-limit must be a number"))
        .unwrap_or(1);
    let capacity: usize = parse_flag(args, "--capacity")
        .map(|v| v.parse().expect("--capacity must be a number"))
        .unwrap_or(usize::MAX);
    let retry_after_ms: u64 = parse_flag(args, "--retry-after-ms")
        .map(|v| v.parse().expect("--retry-after-ms must be milliseconds"))
        .unwrap_or(100);
    let max_write_buffer: Option<u64> = parse_flag(args, "--max-write-buffer")
        .map(|v| v.parse().expect("--max-write-buffer must be bytes"));
    let pressure_watermark: u8 = parse_flag(args, "--pressure-watermark")
        .map(|v| {
            v.parse()
                .expect("--pressure-watermark must be a percentage")
        })
        .unwrap_or(100);
    let batch_window: usize = parse_flag(args, "--batch-window")
        .map(|v| v.parse().expect("--batch-window must be a number"))
        .unwrap_or(32);
    let model_seed: u64 = parse_flag(args, "--model-seed")
        .map(|v| v.parse().expect("--model-seed must be a number"))
        .unwrap_or(21);
    let mode = if args.iter().any(|a| a == "--cached") {
        ForwardMode::Cached
    } else {
        ForwardMode::NoGradReforward
    };
    let blocking = args.iter().any(|a| a == "--blocking");
    let micro = args.iter().any(|a| a == "--micro-model");
    let client_timeout = parse_flag(args, "--client-timeout")
        .map(|v| Duration::from_millis(v.parse().expect("--client-timeout must be milliseconds")));
    let max_session_idle = parse_flag(args, "--max-session-idle").map(|v| {
        Duration::from_millis(v.parse().expect("--max-session-idle must be milliseconds"))
    });
    let snapshot_dir = parse_flag(args, "--snapshot-dir");
    let snapshot_every: u64 = parse_flag(args, "--snapshot-every")
        .map(|v| v.parse().expect("--snapshot-every must be a number"))
        .unwrap_or(0);
    if snapshot_dir.is_some() && blocking {
        eprintln!("--snapshot-dir needs the event-loop server; drop --blocking");
        std::process::exit(2);
    }
    if blocking && (capacity != usize::MAX || max_write_buffer.is_some()) {
        eprintln!("--capacity / --max-write-buffer need the event-loop server; drop --blocking");
        std::process::exit(2);
    }

    let (_, config) = shared_model(model_seed, micro);
    println!(
        "loaded base model {} ({} params) — ONE shared copy for all clients",
        config.name,
        config.total_params()
    );
    // The full Menos façade (shared-base registry + admission control),
    // derived from the same model seed the clients use.
    let mut menos_server =
        MenosServer::new(config, ServerSpec::v100(ServerMode::menos()), model_seed);
    menos_server.set_forward_mode(mode);
    menos_server.set_pressure_watermark(pressure_watermark);
    // Restore-on-start: if a snapshot exists, rebuild every session
    // (adapters, optimizer moments, counters, cached replies) from it;
    // clients re-attach through the Resume handshake. The snapshot's
    // forward mode wins over the flag — resumed training must continue
    // under the policy it was captured under.
    if let Some(dir) = &snapshot_dir {
        if let Some(bytes) = SnapshotPolicy::read(dir) {
            let restored = ServerState::from_bytes(&bytes)
                .and_then(|state| menos_server.restore(state))
                .unwrap_or_else(|e| {
                    eprintln!("snapshot restore from {dir} failed: {e}");
                    std::process::exit(1);
                });
            println!("restored {restored} session(s) from snapshot in {dir}");
        }
    }
    let handler = Arc::new(Mutex::new(menos_server));
    let policy = match mode {
        ForwardMode::Cached => "cached forward (vanilla)",
        ForwardMode::NoGradReforward => "no-grad + re-forward (Menos)",
    };
    if blocking {
        let server =
            TcpSplitServer::spawn(("0.0.0.0", port), handler, clients).expect("bind server port");
        println!(
            "menos blocking server on {} serving {clients} client(s) with {} tensor thread(s), \
             policy: {policy}",
            server.addr(),
            menos::tensor::threads(),
        );
        server.join();
    } else {
        let options = EventLoopOptions {
            accept_limit: clients,
            capacity,
            busy_retry_after: Duration::from_millis(retry_after_ms),
            max_write_buffer,
            batch_window,
            io_timeout: client_timeout,
            max_session_idle,
            ..EventLoopOptions::default()
        };
        let server = match &snapshot_dir {
            Some(dir) => TcpEventServer::spawn_with_snapshots(
                ("0.0.0.0", port),
                handler,
                options,
                TcpOptions::default(),
                SnapshotPolicy::periodic(dir, snapshot_every),
            ),
            None => {
                TcpEventServer::spawn(("0.0.0.0", port), handler, options, TcpOptions::default())
            }
        }
        .expect("bind server port");
        println!(
            "menos event-loop server on {} serving up to {clients} client(s), batch window \
             {batch_window}, {} tensor thread(s), policy: {policy}",
            server.addr(),
            menos::tensor::threads(),
        );
        if let Some((_, stats)) = server.join() {
            println!(
                "served {} session(s): {} batched messages in {} server steps (largest fused \
                 batch: {})",
                stats.served, stats.batched_messages, stats.batches, stats.max_batch
            );
        }
    }
    println!("all clients served; bye");
}

fn run_client(args: &[String]) {
    configure_threads(args);
    let addr = parse_flag(args, "--addr").unwrap_or_else(|| {
        eprintln!("client needs --addr HOST:PORT\n{USAGE}");
        std::process::exit(2);
    });
    let steps: usize = parse_flag(args, "--steps")
        .map(|v| v.parse().expect("--steps must be a number"))
        .unwrap_or(10);
    let seed: u64 = parse_flag(args, "--seed")
        .map(|v| v.parse().expect("--seed must be a number"))
        .unwrap_or(0);
    let model_seed: u64 = parse_flag(args, "--model-seed")
        .map(|v| v.parse().expect("--model-seed must be a number"))
        .unwrap_or(21);
    let retries: u32 = parse_flag(args, "--retries")
        .map(|v| v.parse().expect("--retries must be a number"))
        .unwrap_or(0);
    let backoff_ms: u64 = parse_flag(args, "--backoff-ms")
        .map(|v| v.parse().expect("--backoff-ms must be milliseconds"))
        .unwrap_or(50);
    let micro = args.iter().any(|a| a == "--micro-model");
    let codec = parse_flag(args, "--codec")
        .map(|v| {
            menos::net::Codec::parse(&v).unwrap_or_else(|| {
                eprintln!("unknown --codec {v} (want f32-raw | f16 | bf16 | topk8)");
                std::process::exit(2);
            })
        })
        .unwrap_or(menos::net::Codec::F32Raw);

    let (vocab, config) = shared_model(model_seed, micro);
    // The client's PRIVATE corpus — never leaves this process; only
    // activations and gradients cross the socket.
    let private_text = wiki_corpus(1000 + seed, if micro { 3_000 } else { 20_000 });
    let mut ft = FineTuneConfig::paper(&config);
    if micro {
        ft.batch_size = 1;
        ft.seq_len = 8;
    } else {
        ft.batch_size = 4;
        ft.seq_len = 32;
    }
    let ds = TokenDataset::new(vocab.encode(&private_text), ft.seq_len, seed);
    let mut rng = seeded_rng(model_seed, "base-model");
    let base = menos::models::init_params(&config, &mut rng);
    let mut client = SplitClient::new(
        ClientId(seed),
        CausalLm::bind(&config, &base),
        SplitSpec::paper(),
        ft,
        ds,
        seed,
    );
    if codec != menos::net::Codec::F32Raw {
        client.set_advertised_codecs(codec.flag());
    }

    println!("connecting to {addr} for {steps} split fine-tuning steps ({codec} advertised)...");
    let fleet = args.iter().any(|a| a == "--fleet");
    let result = if fleet {
        // The coordinator answers Connect with a Redirect; the routed
        // driver chases it (free of retry budget) and walks back to the
        // coordinator for re-placement if the backend dies mid-run.
        let policy = RetryPolicy {
            retries: retries.max(1),
            backoff: Duration::from_millis(backoff_ms),
            seed,
            ..RetryPolicy::default()
        };
        run_tcp_client_fleet(addr.as_str(), &mut client, steps, &policy)
    } else if retries > 0 {
        let policy = RetryPolicy {
            retries,
            backoff: Duration::from_millis(backoff_ms),
            seed,
            ..RetryPolicy::default()
        };
        run_tcp_client_resumable(addr.as_str(), &mut client, steps, &policy)
    } else {
        run_tcp_client(addr.as_str(), &mut client, steps)
    };
    let curve = result.unwrap_or_else(|e| {
        eprintln!("training failed: {e}");
        std::process::exit(1);
    });
    for (step, loss) in curve.points().iter().step_by((steps / 5).max(1)) {
        println!("  step {step:>3}: loss {loss:.4}");
    }
    println!(
        "done: loss {:.4} -> {:.4}",
        curve.points()[0].1,
        curve.final_loss().unwrap()
    );
}

/// A supervised backend child: the `menos server` subprocess plus the
/// metadata the coordinator needs to probe and migrate it.
struct BackendProc {
    child: std::process::Child,
    spec: BackendSpec,
}

/// Spawns one `menos server` child on an ephemeral port with a durable
/// snapshot (the migration source of truth) and parses its banner for
/// the bound address.
fn spawn_backend(
    index: usize,
    model_seed: u64,
    micro: bool,
    snapshot_dir: &std::path::Path,
) -> BackendProc {
    use std::io::BufRead;
    use std::process::{Command, Stdio};

    let exe = std::env::current_exe().expect("locate the menos binary");
    let mut cmd = Command::new(exe);
    cmd.arg("server")
        .args(["--port", "0"])
        // Heartbeat probes and migration imports each cost one accept;
        // the budget must outlive any realistic fleet run.
        .args(["--accept-limit", "1000000"])
        .args(["--snapshot-every", "0"])
        .arg("--snapshot-dir")
        .arg(snapshot_dir)
        .args(["--model-seed", &model_seed.to_string()])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit());
    if micro {
        cmd.arg("--micro-model");
    }
    let mut child = cmd.spawn().expect("spawn backend server");
    let stdout = child.stdout.take().expect("backend stdout");
    let mut lines = std::io::BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("backend exited before its banner")
            .expect("read backend banner");
        println!("[backend {index}] {line}");
        if let Some(rest) = line.split("server on ").nth(1) {
            break rest
                .split_whitespace()
                .next()
                .expect("banner address")
                .replace("0.0.0.0", "127.0.0.1");
        }
    };
    // Keep draining so the child never blocks on a full stdout pipe.
    std::thread::spawn(move || {
        for line in lines.map_while(Result::ok) {
            println!("[backend {index}] {line}");
        }
    });
    BackendProc {
        child,
        spec: BackendSpec {
            addr,
            snapshot_dir: snapshot_dir.to_path_buf(),
        },
    }
}

fn run_fleet(args: &[String]) {
    let port: u16 = parse_flag(args, "--port")
        .map(|v| v.parse().expect("--port must be a number"))
        .unwrap_or(7800);
    let servers: usize = parse_flag(args, "--servers")
        .map(|v| v.parse().expect("--servers must be a number"))
        .unwrap_or(2);
    let policy = match parse_flag(args, "--policy").as_deref() {
        None | Some("round-robin") => PlacementPolicy::RoundRobin,
        Some("memory-aware") => PlacementPolicy::MemoryAware,
        Some(other) => {
            eprintln!("unknown --policy {other} (want round-robin | memory-aware)");
            std::process::exit(2);
        }
    };
    let heartbeat_ms: u64 = parse_flag(args, "--heartbeat-ms")
        .map(|v| v.parse().expect("--heartbeat-ms must be milliseconds"))
        .unwrap_or(250);
    let max_missed: u32 = parse_flag(args, "--max-missed")
        .map(|v| v.parse().expect("--max-missed must be a number"))
        .unwrap_or(3);
    let capacity: usize = parse_flag(args, "--capacity")
        .map(|v| v.parse().expect("--capacity must be a number"))
        .unwrap_or(64);
    let model_seed: u64 = parse_flag(args, "--model-seed")
        .map(|v| v.parse().expect("--model-seed must be a number"))
        .unwrap_or(21);
    let micro = args.iter().any(|a| a == "--micro-model");
    let duration = parse_flag(args, "--duration-secs")
        .map(|v| Duration::from_secs(v.parse().expect("--duration-secs must be seconds")));
    let snapshot_root = parse_flag(args, "--snapshot-root")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| {
            std::env::temp_dir().join(format!("menos-fleet-{}", std::process::id()))
        });

    if servers == 0 {
        eprintln!("a fleet needs at least one server");
        std::process::exit(2);
    }
    println!(
        "spawning {servers} backend server(s) under {}",
        snapshot_root.display()
    );
    let mut backends = Vec::with_capacity(servers);
    for i in 0..servers {
        let dir = snapshot_root.join(format!("server-{i}"));
        std::fs::create_dir_all(&dir).expect("create snapshot dir");
        backends.push(spawn_backend(i, model_seed, micro, &dir));
    }
    let specs: Vec<BackendSpec> = backends.iter().map(|b| b.spec.clone()).collect();
    let options = FleetOptions {
        policy,
        heartbeat_interval: Duration::from_millis(heartbeat_ms),
        max_missed,
        capacity_per_server: capacity,
        ..FleetOptions::default()
    };
    let coordinator =
        FleetCoordinator::spawn(("0.0.0.0", port), specs, options).expect("bind coordinator port");
    println!(
        "menos fleet coordinator on {} supervising {servers} backend(s) \
         ({policy:?}, heartbeat {heartbeat_ms}ms x{max_missed}, capacity {capacity}/server)",
        coordinator.addr(),
    );
    println!("clients connect with: menos client --fleet --addr HOST:{port} --retries 3 ...");

    match duration {
        Some(d) => std::thread::sleep(d),
        None => {
            println!("reading stdin; close it (ctrl-d) to shut the fleet down");
            let mut sink = String::new();
            let _ = std::io::Read::read_to_string(&mut std::io::stdin(), &mut sink);
        }
    }

    let stats = coordinator.shutdown();
    for b in &mut backends {
        let _ = b.child.kill();
        let _ = b.child.wait();
    }
    println!(
        "fleet done: {} redirect(s), {} busy turnaway(s), {} missed heartbeat(s), \
         {} failover(s), {} session(s) migrated ({} failed)",
        stats.redirects_sent,
        stats.busy_turnaways,
        stats.heartbeats_missed,
        stats.failovers,
        stats.sessions_migrated,
        stats.migrations_failed,
    );
}

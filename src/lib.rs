//! # menos — reproduction of *Menos: Split Fine-Tuning Large Language
//! Models with Efficient GPU Memory Sharing* (MIDDLEWARE '24)
//!
//! This façade crate re-exports the workspace members so examples and
//! integration tests can address the whole system through one
//! dependency. See `DESIGN.md` for the system inventory and
//! `EXPERIMENTS.md` for the paper-vs-measured results.

#![forbid(unsafe_code)]

pub use menos_adapters as adapters;
pub use menos_core as core;
pub use menos_data as data;
pub use menos_fleet as fleet;
pub use menos_gpu as gpu;
pub use menos_models as models;
pub use menos_net as net;
pub use menos_sim as sim;
pub use menos_split as split;
pub use menos_tensor as tensor;

//! Adapter checkpointing across the full stack: train a session, save
//! its adapters, restore them into a fresh session over the same shared
//! base, and verify behavioural equivalence.

use menos::adapters::FineTuneConfig;
use menos::core::SharedBaseRegistry;
use menos::data::{wiki_corpus, TokenDataset, Vocab};
use menos::models::{CausalLm, ModelConfig};
use menos::split::{run_split_steps, ClientId, ForwardMode, ServerSession, SplitClient, SplitSpec};
use menos::tensor::{load_checkpoint, restore_into, save_checkpoint, Tensor};

fn setup() -> (
    Vocab,
    ModelConfig,
    SharedBaseRegistry,
    FineTuneConfig,
    String,
) {
    let text = wiki_corpus(88, 12_000);
    let vocab = Vocab::from_text(&text);
    let config = ModelConfig::tiny_llama(vocab.size());
    let registry = SharedBaseRegistry::initialize(config.clone(), 88);
    let mut ft = FineTuneConfig::paper(&config);
    ft.batch_size = 2;
    ft.seq_len = 16;
    (vocab, config, registry, ft, text)
}

#[test]
fn trained_adapters_survive_checkpoint_round_trip() {
    let (vocab, config, mut registry, ft, text) = setup();
    let split = SplitSpec::paper();
    let ds = TokenDataset::new(vocab.encode(&text), ft.seq_len, 1);
    let mut client = SplitClient::new(
        ClientId(0),
        CausalLm::bind(&config, registry.base_store()),
        split,
        ft.clone(),
        ds,
        1,
    );
    let mut session = ServerSession::new(ClientId(0), registry.new_instance(), split, &ft, 1);
    run_split_steps(&mut client, &mut session, ForwardMode::NoGradReforward, 8);

    // Save, then restore into a brand-new session (same adapter seed so
    // the *structure* matches; values come from the checkpoint).
    let bytes = save_checkpoint(session.adapter_params());
    let mut restored_session =
        ServerSession::new(ClientId(1), registry.new_instance(), split, &ft, 999);
    assert!(
        !restored_session
            .adapter_params()
            .shares_storage_with(session.adapter_params()),
        "fresh session has private adapters"
    );
    restore_into(
        restored_session.adapter_params(),
        &load_checkpoint(&bytes).expect("decode"),
    )
    .expect("restore");

    // Behavioural equivalence: identical forward outputs on a probe.
    let probe = Tensor::full(0.2, [1, 8, config.hidden]);
    let a = session.forward_nograd(&probe);
    let b = restored_session.forward_nograd(&probe);
    assert!(
        a.max_abs_diff(&b) < 1e-6,
        "restored session must compute identically"
    );
}

#[test]
fn corrupted_checkpoints_are_rejected_cleanly() {
    let (_vocab, _config, mut registry, ft, _text) = setup();
    let split = SplitSpec::paper();
    let session = ServerSession::new(ClientId(0), registry.new_instance(), split, &ft, 1);
    let bytes = save_checkpoint(session.adapter_params());
    // Flip bytes across the buffer: decode either fails cleanly or
    // yields a store that restore validates; it must never panic.
    for i in [0usize, 4, 9, bytes.len() / 2, bytes.len() - 1] {
        let mut bad = bytes.clone();
        bad[i] ^= 0xA5;
        match load_checkpoint(&bad) {
            Err(_) => {}
            Ok(store) => {
                // Structurally valid mutation: restoring is fine or
                // fails shape validation — both acceptable, no panic.
                let _ = restore_into(session.adapter_params(), &store);
            }
        }
    }
}

#[test]
fn checkpoint_is_adapter_sized_not_model_sized() {
    let (_vocab, config, mut registry, ft, _text) = setup();
    let session = ServerSession::new(
        ClientId(0),
        registry.new_instance(),
        SplitSpec::paper(),
        &ft,
        1,
    );
    let bytes = save_checkpoint(session.adapter_params());
    let base_bytes = config.total_params() * 4;
    assert!(
        (bytes.len() as u64) * 4 < base_bytes,
        "checkpoint {} should be far below base {}",
        bytes.len(),
        base_bytes
    );
}

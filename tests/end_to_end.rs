//! End-to-end integration: registry → clients → sessions → training →
//! convergence, across the real and simulated engines.

use menos::adapters::FineTuneConfig;
use menos::core::{
    probe_with_random_input, profile_client, run_experiment, ServerMode, ServerSpec,
    SharedBaseRegistry, WorkloadSpec,
};
use menos::data::{wiki_corpus, TokenDataset, Vocab};
use menos::models::{CausalLm, ModelConfig, ModelProfile};
use menos::sim::seeded_rng;
use menos::split::{run_split_steps, ClientId, ForwardMode, ServerSession, SplitClient, SplitSpec};
use menos::tensor::Tensor;

fn setup_corpus() -> (Vocab, String) {
    let text = wiki_corpus(77, 30_000);
    (Vocab::from_text(&text), text)
}

#[test]
fn three_clients_share_one_base_and_all_learn() {
    let (vocab, text) = setup_corpus();
    let config = ModelConfig::tiny_llama(vocab.size());
    let mut registry = SharedBaseRegistry::initialize(config.clone(), 1);
    let mut ft = FineTuneConfig::paper(&config);
    ft.batch_size = 2;
    ft.seq_len = 24;
    let split = SplitSpec::paper();

    let mut pairs: Vec<(SplitClient, ServerSession)> = (0..3)
        .map(|k| {
            let ds = TokenDataset::new(vocab.encode(&text), ft.seq_len, k);
            let client = SplitClient::new(
                ClientId(k),
                CausalLm::bind(&config, registry.base_store()),
                split,
                ft.clone(),
                ds,
                k,
            );
            let session = ServerSession::new(ClientId(k), registry.new_instance(), split, &ft, k);
            (client, session)
        })
        .collect();

    // All sessions alias the registry's weights.
    for (_, s) in &pairs {
        assert!(registry.verify_aliasing(s.model()));
    }
    // Interleaved training: one step per client, round-robin, like the
    // real server serves concurrent clients.
    for _ in 0..10 {
        for (client, session) in pairs.iter_mut() {
            let x_c = client.start_step();
            let x_s = session.forward_nograd(&x_c);
            let (_, g_c) = client.receive_server_activations(&x_s);
            let g_s = session.backward(&g_c);
            client.receive_server_gradients(&g_s);
        }
    }
    for (client, session) in &pairs {
        let curve = client.curve();
        assert_eq!(curve.points().len(), 10);
        // Compare a trailing mean against a leading mean rather than
        // two individual points: single-step losses jitter with the
        // batch drawn, which made a point-vs-point check flaky.
        let head_mean: f32 = curve.points()[..3].iter().map(|(_, l)| l).sum::<f32>() / 3.0;
        let tail_mean = curve.tail_mean(3).unwrap();
        assert!(
            tail_mean < head_mean + 0.02,
            "client {:?} failed to learn: {:?}",
            client.id(),
            curve.points()
        );
        assert_eq!(session.reforward_count(), 10);
        // Base still shared after training — optimizers touched only
        // adapters.
        assert!(registry.verify_aliasing(session.model()));
    }
}

#[test]
fn training_one_client_does_not_perturb_anothers_output() {
    // Frozen base + private adapters = tenant isolation.
    let (vocab, text) = setup_corpus();
    let config = ModelConfig::tiny_opt(vocab.size());
    let mut registry = SharedBaseRegistry::initialize(config.clone(), 2);
    let mut ft = FineTuneConfig::paper(&config);
    ft.batch_size = 2;
    ft.seq_len = 16;
    let split = SplitSpec::paper();

    let ds0 = TokenDataset::new(vocab.encode(&text), ft.seq_len, 0);
    let mut c0 = SplitClient::new(
        ClientId(0),
        CausalLm::bind(&config, registry.base_store()),
        split,
        ft.clone(),
        ds0,
        0,
    );
    let mut s0 = ServerSession::new(ClientId(0), registry.new_instance(), split, &ft, 0);
    let s1 = ServerSession::new(ClientId(1), registry.new_instance(), split, &ft, 1);

    // Client 1's session output on a fixed probe, before and after
    // client 0 trains.
    let mut probe_session = s1;
    let probe = Tensor::full(0.25, [1, 8, config.hidden]);
    let before = probe_session.forward_nograd(&probe);

    run_split_steps(&mut c0, &mut s0, ForwardMode::NoGradReforward, 8);

    let after = probe_session.forward_nograd(&probe);
    assert!(
        before.max_abs_diff(&after) < 1e-6,
        "client 0's training leaked into client 1's computation"
    );
}

#[test]
fn random_probe_profiles_any_configuration() {
    // §3.3: profiling needs no knowledge of the model being tuned.
    let (vocab, _) = setup_corpus();
    for config in [
        ModelConfig::tiny_opt(vocab.size()),
        ModelConfig::tiny_llama(vocab.size()),
    ] {
        let mut registry = SharedBaseRegistry::initialize(config.clone(), 3);
        let mut ft = FineTuneConfig::paper(&config);
        ft.batch_size = 2;
        ft.seq_len = 12;
        let split = SplitSpec::paper();
        let mut session = ServerSession::new(ClientId(9), registry.new_instance(), split, &ft, 9);
        let mut rng = seeded_rng(9, "probe");
        let reforwards = probe_with_random_input(&mut session, &ft, split, &mut rng);
        assert_eq!(reforwards, 1);
    }
}

#[test]
fn analytic_and_real_adapter_bytes_agree() {
    // The analytic profiler (used by the simulated GPU) and the real
    // engine must account the same A for the same configuration.
    let config = ModelConfig::tiny_llama(32);
    let mut registry = SharedBaseRegistry::initialize(config.clone(), 4);
    let mut ft = FineTuneConfig::paper(&config);
    ft.batch_size = 2;
    ft.seq_len = 12;
    let split = SplitSpec::paper();
    let session = ServerSession::new(ClientId(0), registry.new_instance(), split, &ft, 0);

    let analytic = menos::adapters::adapter_bytes(&ft, &config, config.layers - 1);
    assert_eq!(session.adapter_params().size_bytes(), analytic);
}

#[test]
fn simulated_runtime_matches_profiler_memory() {
    // The DES's persistent accounting must equal M + contexts + N·(A+O)
    // computed from the profile.
    let model = ModelConfig::llama2_7b();
    let w = WorkloadSpec::paper(model.clone(), 3, 3);
    let server = ServerSpec::v100(ServerMode::menos());
    let r = run_experiment(&server, &w, 5);
    let profile = ModelProfile::new(model, 1);
    let d = profile_client(&profile, &w.ft);
    let expected = profile.server_param_bytes()
        + server.cost.cuda_context_bytes
        + 3 * (server.cost.cuda_context_bytes + d.persistent);
    assert_eq!(r.persistent_bytes, expected);
    assert!(r.peak_bytes >= r.persistent_bytes);
    assert!(r.peak_bytes <= server.total_gpu_bytes());
}

#[test]
fn full_simulation_grid_is_deterministic_and_feasible() {
    let server = ServerSpec::v100(ServerMode::menos());
    for model in [ModelConfig::opt_1_3b(), ModelConfig::llama2_7b()] {
        for n in [1usize, 2, 4] {
            let w = WorkloadSpec::paper(model.clone(), n, 4);
            let a = run_experiment(&server, &w, 11);
            let b = run_experiment(&server, &w, 11);
            assert!(a.error.is_none(), "{model:?} n={n}: {:?}", a.error);
            assert_eq!(a.avg_round_s.to_bits(), b.avg_round_s.to_bits());
            assert_eq!(a.iterations, 4);
        }
    }
}

//! Property-based tests over the timed runtime: for arbitrary (bounded)
//! workload configurations, the simulation must terminate, respect
//! capacity, account time consistently, and stay deterministic.

use proptest::prelude::*;

use menos::core::{run_experiment, MemoryPolicy, ServerMode, ServerSpec, WorkloadSpec};
use menos::models::ModelConfig;
use menos::sim::Nanos;

fn arb_mode() -> impl Strategy<Value = ServerMode> {
    prop_oneof![
        Just(ServerMode::VanillaSwapping),
        (0usize..4, any::<bool>()).prop_map(|(p, backfilling)| ServerMode::Menos {
            policy: MemoryPolicy::ladder()[p],
            backfilling,
        }),
    ]
}

fn arb_workload() -> impl Strategy<Value = WorkloadSpec> {
    (
        any::<bool>(),                           // model
        1usize..6,                               // clients
        2usize..5,                               // iterations
        prop::collection::vec(1usize..10, 0..6), // batch overrides
        0u64..3_000,                             // stagger ms
    )
        .prop_map(|(opt, clients, iterations, batches, stagger_ms)| {
            let model = if opt {
                ModelConfig::opt_1_3b()
            } else {
                ModelConfig::llama2_7b()
            };
            let mut w = WorkloadSpec::paper(model, clients, iterations);
            if !batches.is_empty() {
                w.client_batch_sizes = Some(batches);
            }
            w.stagger = Nanos::from_millis(stagger_ms);
            w
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn runtime_invariants_hold_for_arbitrary_configs(
        w in arb_workload(),
        mode in arb_mode(),
        gpus in 1usize..4,
        seed in 0u64..1000,
    ) {
        let mut server = ServerSpec::v100(mode);
        server.gpus = gpus;
        let r = run_experiment(&server, &w, seed);
        if let Some(e) = &r.error {
            // Failure must be a capacity statement, not a crash.
            prop_assert!(
                e.contains("exceeds") || e.contains("cannot"),
                "unexpected error: {e}"
            );
            return Ok(());
        }
        // Capacity respected.
        prop_assert!(r.peak_bytes <= server.total_gpu_bytes(),
            "peak {} over capacity", r.peak_bytes);
        if let ServerMode::Menos { .. } = mode {
            // Menos' persistent layout is physically resident, so the
            // peak is at least that. (Vanilla's persistent_bytes is the
            // LOGICAL duplicated demand and may exceed what ever fits.)
            prop_assert!(r.peak_bytes >= r.persistent_bytes);
        }
        // Time accounting: components are non-negative and the round
        // dominates the sum of the per-iteration server-side pieces a
        // client waits through sequentially.
        prop_assert!(r.avg_round_s.is_finite() && r.avg_round_s > 0.0);
        for part in [r.avg_comm_s, r.avg_compute_s, r.avg_schedule_s, r.avg_client_compute_s] {
            prop_assert!(part.is_finite() && part >= 0.0, "negative component {part}");
        }
        prop_assert!(
            r.avg_round_s + 1e-6 >= r.avg_comm_s,
            "round {} below comm {}", r.avg_round_s, r.avg_comm_s
        );
        // Determinism.
        let again = run_experiment(&server, &w, seed);
        prop_assert_eq!(r.avg_round_s.to_bits(), again.avg_round_s.to_bits());
        prop_assert_eq!(r.peak_bytes, again.peak_bytes);
    }

    #[test]
    fn policy_ladder_monotonicity(seed in 0u64..50, clients in 1usize..4) {
        // Walking the Fig. 3 ladder a -> d, peak memory never increases
        // (when the config is feasible at all).
        let w = WorkloadSpec::paper(ModelConfig::llama2_7b(), clients, 3);
        let mut last_peak = u64::MAX;
        for policy in MemoryPolicy::ladder() {
            let server = ServerSpec::v100(ServerMode::Menos { policy, backfilling: true });
            let r = run_experiment(&server, &w, seed);
            if r.error.is_some() {
                continue; // preserve-all may be infeasible — fine.
            }
            prop_assert!(
                r.peak_bytes <= last_peak,
                "{policy} peak {} above predecessor {}",
                r.peak_bytes,
                last_peak
            );
            last_peak = r.peak_bytes;
        }
    }

    #[test]
    fn backfilling_never_increases_schedule_time(seed in 0u64..30) {
        let w = WorkloadSpec::paper(ModelConfig::llama2_7b(), 4, 4);
        let with = run_experiment(
            &ServerSpec::v100(ServerMode::menos()), &w, seed);
        let without = run_experiment(
            &ServerSpec::v100(ServerMode::Menos {
                policy: MemoryPolicy::menos(),
                backfilling: false,
            }),
            &w,
            seed,
        );
        prop_assert!(
            with.avg_schedule_s <= without.avg_schedule_s + 0.05,
            "backfilling hurt: {} vs {}",
            with.avg_schedule_s,
            without.avg_schedule_s
        );
    }
}

mod event_queue_props {
    use menos::sim::{EventQueue, Nanos};
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn pops_are_time_ordered_and_complete(delays in prop::collection::vec(0u64..10_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, &d) in delays.iter().enumerate() {
                q.schedule_at(Nanos::from_micros(d), i);
            }
            let mut popped = Vec::new();
            let mut last = Nanos::ZERO;
            while let Some((t, i)) = q.pop() {
                prop_assert!(t >= last, "time went backwards");
                last = t;
                popped.push(i);
            }
            // Every event delivered exactly once.
            let mut sorted = popped.clone();
            sorted.sort_unstable();
            prop_assert_eq!(sorted, (0..delays.len()).collect::<Vec<_>>());
        }

        #[test]
        fn equal_times_preserve_insertion_order(n in 1usize..100) {
            let mut q = EventQueue::new();
            let t = Nanos::from_secs(1);
            for i in 0..n {
                q.schedule_at(t, i);
            }
            let order: Vec<usize> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
            prop_assert_eq!(order, (0..n).collect::<Vec<_>>());
        }

        #[test]
        fn cancellation_removes_exactly_the_cancelled(
            delays in prop::collection::vec(0u64..1000, 2..50),
            cancel_idx in prop::collection::vec(any::<prop::sample::Index>(), 1..10),
        ) {
            let mut q = EventQueue::new();
            let ids: Vec<_> = delays
                .iter()
                .enumerate()
                .map(|(i, &d)| (i, q.schedule_at(Nanos::from_micros(d), i)))
                .collect();
            let mut cancelled = std::collections::HashSet::new();
            for idx in cancel_idx {
                let (i, id) = ids[idx.index(ids.len())];
                if cancelled.insert(i) {
                    q.cancel(id);
                }
            }
            let mut seen = std::collections::HashSet::new();
            while let Some((_, i)) = q.pop() {
                prop_assert!(!cancelled.contains(&i), "cancelled event {i} delivered");
                seen.insert(i);
            }
            prop_assert_eq!(seen.len(), delays.len() - cancelled.len());
        }
    }
}

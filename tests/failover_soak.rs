//! The failover soak (PROTOCOL.md §9): a fleet coordinator supervises
//! four real `menos server` *processes*, places 64 clients across them
//! with v1.4 `Redirect`s, and one backend is SIGKILLed mid-run. The
//! coordinator must rule it dead by missed heartbeats, re-home its
//! sessions onto the survivors from its durable snapshot through the
//! `ImportSession` gate, and steer the orphaned clients back via their
//! `Resume` — and the acceptance bar is the house standard: every
//! client completes, with loss curves and final adapter weights
//! **bit-identical** to an undisturbed single-server run of the same
//! fleet, across three model seeds.
//!
//! A companion test pins the pre-v1.4 story: an old client dialing the
//! coordinator observes a prompt typed answer (`Busy`, which it
//! understands, or a `Redirect` frame its decoder rejects with
//! `UnknownKind` — a clean close), never a hang.

#![cfg(unix)]

use std::io::BufRead;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use menos::adapters::FineTuneConfig;
use menos::core::ServerState;
use menos::data::{wiki_corpus, LossCurve, TokenDataset, Vocab};
use menos::fleet::{BackendSpec, FleetCoordinator, FleetOptions, PlacementPolicy};
use menos::models::{CausalLm, ModelConfig};
use menos::sim::seeded_rng;
use menos::split::{
    drive_client_resumable, run_tcp_client_fleet, ClientId, ClientMessage, MessageKind,
    RetryPolicy, ServerMessage, SplitClient, SplitSpec, TcpTransport, Transport,
};

/// Soak scale, per the acceptance spec: 4 backends × 64 clients, with
/// the micro model keeping a debug-profile CI budget honest. Steps are
/// few, but the kill lands while every victim is mid-run (the test
/// waits for all of them to appear in the durable snapshot first).
const BACKENDS: usize = 4;
const CLIENTS: u64 = 64;
const STEPS: usize = 20;

type CurveBits = Vec<(usize, u32)>;
type AdapterBits = Vec<(String, Vec<u32>)>;

fn curve_bits(curve: &LossCurve) -> CurveBits {
    curve
        .points()
        .iter()
        .map(|&(s, l)| (s, l.to_bits()))
        .collect()
}

fn adapter_bits(client: &SplitClient) -> AdapterBits {
    let mut out: AdapterBits = client
        .adapter_params()
        .iter()
        .map(|(name, t)| {
            (
                name.clone(),
                t.to_vec().iter().map(|v| v.to_bits()).collect(),
            )
        })
        .collect();
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

/// The shared setup both sides derive from `--micro-model
/// --model-seed S`: same corpus, same config, and the same base
/// parameters (`seeded_rng(S, "base-model")` is the registry's
/// derivation).
fn fleet_setup(model_seed: u64) -> (String, ModelConfig, Arc<Mutex<menos::tensor::ParamStore>>) {
    let text = wiki_corpus(model_seed, 3_000);
    let vocab = Vocab::from_text(&text);
    let mut config = ModelConfig::tiny_opt(vocab.size());
    config.hidden = 32;
    config.layers = 2;
    config.heads = 2;
    config.intermediate = 64;
    let mut rng = seeded_rng(model_seed, "base-model");
    let base = Arc::new(Mutex::new(menos::models::init_params(&config, &mut rng)));
    (text, config, base)
}

fn make_client(
    k: u64,
    text: &str,
    config: &ModelConfig,
    base: &Arc<Mutex<menos::tensor::ParamStore>>,
) -> SplitClient {
    let vocab = Vocab::from_text(text);
    let mut ft = FineTuneConfig::paper(config);
    ft.batch_size = 1;
    ft.seq_len = 8;
    let ds = TokenDataset::new(vocab.encode(text), 8, k);
    let view = base.lock().unwrap().shared_view(false);
    SplitClient::new(
        ClientId(k),
        CausalLm::bind(config, &view),
        SplitSpec::paper(),
        ft,
        ds,
        k,
    )
}

/// A `menos server` subprocess with durable snapshots on — the same
/// spawn-and-banner-parse pattern as the restart soak
/// (`tests/chaos_soak.rs::kill_the_server`).
struct ServerProc {
    child: Child,
    addr: SocketAddr,
    snap_dir: PathBuf,
    _drain: std::thread::JoinHandle<()>,
}

impl ServerProc {
    fn spawn(model_seed: u64, snap_dir: &Path) -> ServerProc {
        let mut child = Command::new(env!("CARGO_BIN_EXE_menos"))
            .args([
                "server",
                "--port",
                "0",
                "--micro-model",
                // Heartbeat probes and migration imports each cost one
                // accept; the budget must outlive the whole soak.
                "--accept-limit",
                "100000",
                "--snapshot-every",
                "0",
                "--model-seed",
                &model_seed.to_string(),
            ])
            .arg("--snapshot-dir")
            .arg(snap_dir)
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn menos server");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut reader = std::io::BufReader::new(stdout);
        let mut line = String::new();
        let addr = loop {
            line.clear();
            if reader.read_line(&mut line).expect("server stdout") == 0 {
                panic!("server exited before announcing its address");
            }
            if let Some(rest) = line.split("server on ").nth(1) {
                let bound: SocketAddr = rest
                    .split_whitespace()
                    .next()
                    .and_then(|a| a.parse().ok())
                    .expect("bound address");
                break SocketAddr::from(([127, 0, 0, 1], bound.port()));
            }
        };
        let drain = std::thread::spawn(move || {
            let mut sink = String::new();
            while matches!(reader.read_line(&mut sink), Ok(n) if n > 0) {
                sink.clear();
            }
        });
        ServerProc {
            child,
            addr,
            snap_dir: snap_dir.to_path_buf(),
            _drain: drain,
        }
    }

    fn spec(&self) -> BackendSpec {
        BackendSpec {
            addr: self.addr.to_string(),
            snapshot_dir: self.snap_dir.clone(),
        }
    }

    /// SIGKILL — no shutdown hook runs; migration must come from the
    /// last durable snapshot alone.
    fn kill(mut self) {
        self.child.kill().expect("kill server");
        self.child.wait().expect("reap server");
    }
}

fn scratch_dir(model_seed: u64, label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "menos-failover-{model_seed}-{label}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn join_fleet(
    drivers: Vec<std::thread::JoinHandle<(u64, CurveBits, AdapterBits)>>,
) -> Vec<(u64, CurveBits, AdapterBits)> {
    let mut out: Vec<_> = drivers
        .into_iter()
        .map(|d| d.join().expect("driver thread"))
        .collect();
    out.sort_by_key(|(k, _, _)| *k);
    out
}

/// The undisturbed reference: the same 64 clients against ONE backend,
/// no coordinator, no kill. Placement and migration must be invisible
/// to training, so the fleet run has to reproduce these bits exactly.
fn single_server_reference(
    model_seed: u64,
    text: &str,
    config: &ModelConfig,
    base: &Arc<Mutex<menos::tensor::ParamStore>>,
) -> Vec<(u64, CurveBits, AdapterBits)> {
    let dir = scratch_dir(model_seed, "ref");
    let server = ServerProc::spawn(model_seed, &dir);
    let addr = server.addr;
    let drivers: Vec<_> = (0..CLIENTS)
        .map(|k| {
            let mut client = make_client(k, text, config, base);
            std::thread::spawn(move || {
                let policy = RetryPolicy {
                    retries: 10,
                    backoff: Duration::from_millis(10),
                    max_backoff: Duration::from_millis(100),
                    seed: k,
                };
                let curve = drive_client_resumable(
                    &mut client,
                    || TcpTransport::connect(addr),
                    STEPS,
                    &policy,
                )
                .expect("reference client finishes");
                (k, curve_bits(&curve), adapter_bits(&client))
            })
        })
        .collect();
    let results = join_fleet(drivers);
    server.kill();
    let _ = std::fs::remove_dir_all(&dir);
    results
}

/// Polls the victim's durable snapshot until every session the
/// coordinator placed there has dispatched at least once — the signal
/// that a SIGKILL now lands mid-run for all of them. Torn reads race
/// the atomic rename harmlessly: a partial file fails the CRC and the
/// poll retries.
fn wait_until_snapshotted(snap_dir: &Path, want: usize) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if let Ok(bytes) = std::fs::read(snap_dir.join("server.snap")) {
            if let Ok(state) = ServerState::from_bytes(&bytes) {
                if state.sessions.len() >= want {
                    return;
                }
            }
        }
        assert!(
            Instant::now() < deadline,
            "victim's sessions never all reached its snapshot"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn sigkilled_backend_fails_over_bit_identically_across_seeds() {
    for model_seed in [43u64, 44, 45] {
        let (text, config, base) = fleet_setup(model_seed);
        let reference = single_server_reference(model_seed, &text, &config, &base);

        // The fleet under test: 4 backends, round-robin placement.
        let dirs: Vec<PathBuf> = (0..BACKENDS)
            .map(|i| scratch_dir(model_seed, &format!("b{i}")))
            .collect();
        let mut servers: Vec<Option<ServerProc>> = dirs
            .iter()
            .map(|d| Some(ServerProc::spawn(model_seed, d)))
            .collect();
        let specs: Vec<BackendSpec> = servers.iter().map(|s| s.as_ref().unwrap().spec()).collect();
        let coordinator = FleetCoordinator::spawn(
            "127.0.0.1:0",
            specs,
            FleetOptions {
                policy: PlacementPolicy::RoundRobin,
                // Generous detection window: this test shares one
                // noisy core with 4 debug-build backends (and, in a
                // full-suite run, the rest of the workspace), where a
                // healthy-but-starved backend can easily stall past an
                // aggressive probe deadline. A SIGKILLed victim still
                // fails every probe instantly (connection refused), so
                // real death is ruled in ~max_missed x interval; the
                // slack only guards against false positives.
                heartbeat_interval: Duration::from_millis(150),
                max_missed: 6,
                probe_timeout: Duration::from_secs(2),
                capacity_per_server: CLIENTS as usize,
                ..FleetOptions::default()
            },
        )
        .expect("spawn coordinator");
        let coord_addr = coordinator.addr().to_string();

        let drivers: Vec<_> = (0..CLIENTS)
            .map(|k| {
                let mut client = make_client(k, &text, &config, &base);
                let coord_addr = coord_addr.clone();
                std::thread::spawn(move || {
                    // Generous budget: the detection window (6 missed
                    // 150ms heartbeats plus probe timeouts) is paid in
                    // dead redirects; the migration window itself is
                    // free (`Busy` costs nothing).
                    let policy = RetryPolicy {
                        retries: 200,
                        backoff: Duration::from_millis(10),
                        max_backoff: Duration::from_millis(100),
                        seed: k,
                    };
                    let curve = run_tcp_client_fleet(&coord_addr, &mut client, STEPS, &policy)
                        .expect("fleet client finishes across the failover");
                    (k, curve_bits(&curve), adapter_bits(&client))
                })
            })
            .collect();

        // Wait until the whole fleet is placed, then until every
        // session on the victim has reached its durable snapshot.
        let placed_deadline = Instant::now() + Duration::from_secs(60);
        while (0..CLIENTS).any(|k| coordinator.placement_of(ClientId(k)).is_none()) {
            assert!(
                Instant::now() < placed_deadline,
                "coordinator never placed the whole fleet"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        let victim = 0usize;
        let victims: Vec<u64> = (0..CLIENTS)
            .filter(|&k| coordinator.placement_of(ClientId(k)) == Some(victim))
            .collect();
        assert!(
            !victims.is_empty(),
            "round-robin left the victim backend empty"
        );
        wait_until_snapshotted(&dirs[victim], victims.len());
        std::thread::sleep(Duration::from_millis(100));
        servers[victim].take().unwrap().kill();

        let survivors = join_fleet(drivers);
        let stats = coordinator.stats();

        // The coordinator saw the death and moved the sessions.
        let alive = coordinator.alive();
        assert!(!alive[victim], "victim never ruled dead");
        assert!(
            alive.iter().skip(1).all(|&a| a),
            "a survivor was wrongly ruled dead: {alive:?}"
        );
        assert!(stats.heartbeats_missed > 0, "{stats:?}");
        assert_eq!(stats.failovers, 1, "{stats:?}");
        assert!(stats.sessions_migrated > 0, "{stats:?}");
        assert_eq!(stats.migrations_failed, 0, "{stats:?}");
        assert!(
            stats.redirects_sent >= CLIENTS,
            "every client was placed at least once: {stats:?}"
        );
        assert_eq!(stats.per_server[victim].failovers, 1);
        assert!(stats.per_server[victim].sessions_migrated > 0);
        // The orphans were re-placed on survivors, none back on the
        // corpse.
        for &k in &victims {
            let home = coordinator.placement_of(ClientId(k)).unwrap();
            assert_ne!(home, victim, "client {k} still homed on the corpse");
        }

        // The house standard: a whole-server death is invisible in the
        // training artifacts.
        assert_eq!(
            survivors, reference,
            "failover run diverged from the undisturbed single-server run (seed {model_seed})"
        );

        coordinator.shutdown();
        for server in servers.into_iter().flatten() {
            server.kill();
        }
        for dir in &dirs {
            let _ = std::fs::remove_dir_all(dir);
        }
    }
}

/// §9.6 back-compat: a pre-v1.4 client dialing a coordinator always
/// gets a *prompt* typed control frame. `Busy` (v1.3) it understands
/// outright; a `Redirect` frame is rejected by its decoder with
/// `UnknownKind(23)` — a clean, deterministic close (pinned at the
/// codec layer in `codec::tests::unknown_kind_rejected`). What it must
/// never observe is a hang, so every reply here is read under a short
/// transport deadline.
#[test]
fn a_pre_v1_4_client_observes_busy_or_a_clean_close_never_a_hang() {
    let (_, config, _) = fleet_setup(43);
    let ft = {
        let mut ft = FineTuneConfig::paper(&config);
        ft.batch_size = 1;
        ft.seq_len = 8;
        ft
    };
    let connect = |client: u64| ClientMessage::Connect {
        client: ClientId(client),
        ft: ft.clone(),
        split: SplitSpec::paper(),
        epoch: 1,
        codecs: 0,
    };

    // A full fleet (capacity 0) answers with v1.3 `Busy` — fully
    // intelligible to the old client. No live backend is needed: the
    // shed happens before placement.
    let dir = scratch_dir(43, "prev14-busy");
    let busy_coord = FleetCoordinator::spawn(
        "127.0.0.1:0",
        vec![BackendSpec {
            addr: "127.0.0.1:1".into(),
            snapshot_dir: dir.clone(),
        }],
        FleetOptions {
            capacity_per_server: 0,
            // Keep the health thread from ruling on the fake backend
            // while the assertion runs.
            heartbeat_interval: Duration::from_secs(5),
            ..FleetOptions::default()
        },
    )
    .expect("spawn coordinator");
    let started = Instant::now();
    let mut t = TcpTransport::connect(busy_coord.addr()).expect("dial coordinator");
    t.set_deadline(Some(Duration::from_secs(2))).unwrap();
    t.send(&connect(7)).expect("send Connect");
    let reply = t.recv().expect("a prompt reply, not a hang");
    assert!(
        matches!(reply, ServerMessage::Busy { .. }),
        "full fleet must shed with Busy: {reply:?}"
    );
    assert!(started.elapsed() < Duration::from_secs(2));
    busy_coord.shutdown();
    let _ = std::fs::remove_dir_all(&dir);

    // A fleet with room answers with `Redirect` — kind 23, outside
    // the pre-v1.4 decode range, so the old decoder's verdict is the
    // typed `UnknownKind` error, not silence.
    let dir = scratch_dir(43, "prev14-redirect");
    let backend = ServerProc::spawn(43, &dir);
    let coord = FleetCoordinator::spawn(
        "127.0.0.1:0",
        vec![backend.spec()],
        FleetOptions {
            heartbeat_interval: Duration::from_secs(5),
            ..FleetOptions::default()
        },
    )
    .expect("spawn coordinator");
    let started = Instant::now();
    let mut t = TcpTransport::connect(coord.addr()).expect("dial coordinator");
    t.set_deadline(Some(Duration::from_secs(2))).unwrap();
    t.send(&connect(8)).expect("send Connect");
    let reply = t.recv().expect("a prompt reply, not a hang");
    assert!(started.elapsed() < Duration::from_secs(2));
    assert!(
        matches!(reply, ServerMessage::Redirect { .. }),
        "a placement steers: {reply:?}"
    );
    assert!(
        MessageKind::Redirect as u8 > MessageKind::Busy as u8,
        "Redirect is a post-v1.3 kind: an old decoder rejects it as UnknownKind"
    );
    coord.shutdown();
    backend.kill();
    let _ = std::fs::remove_dir_all(&dir);
}

//! Property-based tests for the memory substrates: the simulated GPU
//! allocator, the scheduler, and the swap manager must uphold their
//! invariants under arbitrary operation sequences.

use proptest::prelude::*;

use menos::core::{OpKind, Request, Scheduler};
use menos::gpu::{AllocKind, CostModel, GpuCluster, GpuDevice, SwapManager};
use menos::split::ClientId;

// ----------------------------------------------------------------------
// GPU device/cluster allocator
// ----------------------------------------------------------------------

#[derive(Debug, Clone)]
enum AllocOp {
    Alloc(u64),
    FreeNth(usize),
}

fn alloc_ops() -> impl Strategy<Value = Vec<AllocOp>> {
    prop::collection::vec(
        prop_oneof![
            (1u64..=(4 << 20)).prop_map(AllocOp::Alloc),
            (0usize..32).prop_map(AllocOp::FreeNth),
        ],
        1..80,
    )
}

proptest! {
    #[test]
    fn device_never_overcommits_and_frees_restore_capacity(ops in alloc_ops()) {
        let capacity = 16u64 << 20;
        let mut gpu = GpuDevice::new(0, capacity);
        let mut live = Vec::new();
        for op in ops {
            match op {
                AllocOp::Alloc(bytes) => {
                    match gpu.alloc(bytes, AllocKind::Activation, "prop") {
                        Ok(id) => live.push((id, bytes)),
                        Err(e) => {
                            // OOM must be truthful: no contiguous hole
                            // fits (external fragmentation can reject a
                            // request below total free bytes).
                            prop_assert!(bytes > gpu.largest_free());
                            prop_assert_eq!(e.available, gpu.available());
                        }
                    }
                }
                AllocOp::FreeNth(n) => {
                    if !live.is_empty() {
                        let (id, bytes) = live.swap_remove(n % live.len());
                        prop_assert_eq!(gpu.free(id), bytes);
                    }
                }
            }
            // Accounting invariants hold after every step.
            let live_total: u64 = live.iter().map(|&(_, b)| b).sum();
            prop_assert_eq!(gpu.used(), live_total);
            prop_assert_eq!(gpu.available(), capacity - live_total);
            prop_assert!(gpu.peak() >= gpu.used());
            prop_assert_eq!(gpu.live_allocations(), live.len());
            prop_assert!(gpu.largest_free() <= gpu.available());
            prop_assert!((0.0..=1.0).contains(&gpu.fragmentation()));
        }
        // Draining everything restores full capacity as ONE region —
        // coalescing leaves no fragmentation behind.
        for (id, _) in live {
            gpu.free(id);
        }
        prop_assert_eq!(gpu.used(), 0);
        prop_assert_eq!(gpu.available(), capacity);
        prop_assert_eq!(gpu.largest_free(), capacity);
        prop_assert_eq!(gpu.fragmentation(), 0.0);
    }

    #[test]
    fn cluster_spanning_conserves_bytes(
        sizes in prop::collection::vec(1u64..=(12 << 20), 1..12)
    ) {
        let mut cluster = GpuCluster::new(4, 8 << 20);
        let mut allocs = Vec::new();
        for (i, &bytes) in sizes.iter().enumerate() {
            match cluster.alloc_spanning(bytes, AllocKind::Model, format!("t{i}")) {
                Ok(a) => {
                    prop_assert_eq!(a.bytes(), bytes);
                    allocs.push(a);
                }
                Err(_) => prop_assert!(bytes > cluster.available()),
            }
        }
        let total: u64 = allocs.iter().map(|a| a.bytes()).sum();
        prop_assert_eq!(cluster.used(), total);
        for a in allocs {
            cluster.free(a);
        }
        prop_assert_eq!(cluster.used(), 0);
    }
}

// ----------------------------------------------------------------------
// Scheduler (Algorithm 2)
// ----------------------------------------------------------------------

#[derive(Debug, Clone)]
enum SchedOp {
    Arrive {
        client: u64,
        backward: bool,
        demand: u64,
    },
    Complete {
        nth: usize,
    },
}

fn sched_ops() -> impl Strategy<Value = Vec<SchedOp>> {
    prop::collection::vec(
        prop_oneof![
            (0u64..12, any::<bool>(), 0u64..(12 << 20)).prop_map(|(client, backward, demand)| {
                SchedOp::Arrive {
                    client,
                    backward,
                    demand,
                }
            }),
            (0usize..12).prop_map(|nth| SchedOp::Complete { nth }),
        ],
        1..100,
    )
}

proptest! {
    #[test]
    fn scheduler_never_overgrants_and_conserves_work(ops in sched_ops(), backfilling in any::<bool>()) {
        let pool = 16u64 << 20;
        let mut s = Scheduler::new(pool, backfilling);
        let mut running: Vec<(ClientId, u64)> = Vec::new();
        let mut outstanding: std::collections::HashSet<u64> = std::collections::HashSet::new();
        let mut submitted = 0usize;
        let mut finished = 0usize;
        let mut granted_count = 0usize;
        for op in ops {
            match op {
                SchedOp::Arrive { client, backward, demand } => {
                    // One outstanding op per client (waiting OR running),
                    // as in the protocol.
                    if !outstanding.insert(client) {
                        continue;
                    }
                    submitted += 1;
                    let decisions = s.data_arrived(Request {
                        client: ClientId(client),
                        kind: if backward { OpKind::Backward } else { OpKind::Forward },
                        demand,
                    });
                    for d in decisions {
                        running.push((d.request.client, d.request.demand));
                        granted_count += 1;
                    }
                }
                SchedOp::Complete { nth } => {
                    if !running.is_empty() {
                        let (client, _) = running.swap_remove(nth % running.len());
                        outstanding.remove(&client.0);
                        finished += 1;
                        for d in s.task_completed(client) {
                            running.push((d.request.client, d.request.demand));
                            granted_count += 1;
                        }
                    }
                }
            }
            // Granted memory never exceeds the pool.
            let in_flight: u64 = running.iter().map(|&(_, d)| d).sum();
            prop_assert!(in_flight <= pool, "over-granted: {in_flight}");
            prop_assert_eq!(s.available(), pool - in_flight);
            // Work conservation: everything submitted is either waiting,
            // running, or finished.
            prop_assert_eq!(submitted, s.waiting_len() + running.len() + finished);
            prop_assert_eq!(granted_count, running.len() + finished);
        }
        // Drain: completing everything admits everything admissible.
        let mut guard = 0;
        while let Some((client, _)) = running.pop() {

            for d in s.task_completed(client) {
                running.push((d.request.client, d.request.demand));
            }
            guard += 1;
            prop_assert!(guard < 10_000, "drain did not terminate");
        }
        // Any still-waiting request must individually exceed the pool.
        // (The pool is fully free now.)
        prop_assert_eq!(s.available(), pool);
    }

    #[test]
    fn fcfs_head_is_never_starved(demands in prop::collection::vec(1u64..=100, 2..20)) {
        // Admit a blocking head, stream smaller requests, then complete
        // the runner: the head must be the next decision.
        let mut s = Scheduler::new(100, true);
        s.data_arrived(Request { client: ClientId(1000), kind: OpKind::Backward, demand: 100 });
        let head_demand = 60;
        s.data_arrived(Request { client: ClientId(1001), kind: OpKind::Backward, demand: head_demand });
        for (i, &d) in demands.iter().enumerate() {
            s.data_arrived(Request {
                client: ClientId(i as u64),
                kind: OpKind::Forward,
                demand: d.min(100),
            });
        }
        let decisions = s.task_completed(ClientId(1000));
        prop_assert!(!decisions.is_empty());
        prop_assert_eq!(decisions[0].request.client, ClientId(1001));
        prop_assert!(!decisions[0].backfilled);
    }
}

// ----------------------------------------------------------------------
// Swap manager
// ----------------------------------------------------------------------

proptest! {
    #[test]
    fn swap_manager_keeps_resident_set_within_gpu(
        accesses in prop::collection::vec(0usize..6, 1..60)
    ) {
        let gpu = 20u64 << 20;
        let mut swap = SwapManager::new(gpu, 1 << 30);
        let cost = CostModel::v100();
        let task_bytes = 7u64 << 20; // at most 2 resident
        for i in 0..6 {
            swap.register(format!("t{i}"), task_bytes, task_bytes).unwrap();
        }
        for &a in &accesses {
            let name = format!("t{a}");
            let outcome = swap.ensure_resident(&name, &cost).unwrap();
            prop_assert!(swap.is_resident(&name));
            prop_assert!(swap.gpu_used() <= gpu, "resident set overflows GPU");
            // Evictions only happen when needed.
            for e in &outcome.evicted {
                prop_assert!(!swap.is_resident(e));
            }
        }
    }
}

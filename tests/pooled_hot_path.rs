//! Bit-identity of the pooled (zero-copy) tensor hot path.
//!
//! The buffer pool recycles frame and tensor allocations between
//! steps, so the load-bearing property is that pooling is *invisible
//! on the wire*: pooled encode/decode produce exactly the bytes and
//! values a naive, allocation-per-call codec would, and a recycled
//! buffer never leaks a previous tensor's bytes into a later frame.

use proptest::prelude::*;

use bytes::Bytes;
use menos::net::{decode_tensor, encode_tensor};
use menos::split::{
    client_message_parts, decode_client_message_parts, decode_server_message_parts,
    server_message_parts, ClientId, ClientMessage, ServerMessage,
};
use menos::tensor::Tensor;

/// Reference encoder: the tensor wire format written one element at a
/// time into a plain `Vec`, bypassing the pool and the bulk-conversion
/// path entirely.
fn naive_encode(t: &Tensor) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(&0x4d4e_5331u32.to_le_bytes()); // "MNS1"
    let dims = t.dims();
    buf.extend_from_slice(&(dims.len() as u32).to_le_bytes());
    for &d in dims {
        buf.extend_from_slice(&(d as u64).to_le_bytes());
    }
    for v in t.to_vec() {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    buf
}

/// Builds a tensor of the given shape filled with a deterministic,
/// seed-dependent pattern (including negatives and non-finite-safe
/// magnitudes) so payload bytes vary across cases.
fn patterned(dims: &[usize], seed: u64) -> Tensor {
    let n: usize = dims.iter().product();
    let data: Vec<f32> = (0..n)
        .map(|i| {
            let x = seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(i as u64);
            ((x >> 33) as f32 / (1u64 << 20) as f32) - 4000.0
        })
        .collect();
    match dims.len() {
        1 => Tensor::from_vec(data, [dims[0]]),
        2 => Tensor::from_vec(data, [dims[0], dims[1]]),
        _ => Tensor::from_vec(data, [dims[0], dims[1], dims[2]]),
    }
}

proptest! {
    /// Pooled encode is byte-identical to the naive per-element
    /// encoder, and pooled decode → encode round-trips those bytes,
    /// for arbitrary small shapes. Runs exercise buffer reuse: cases
    /// within one proptest run recycle each other's allocations.
    #[test]
    fn pooled_codec_matches_naive_encoder(
        dims in prop::collection::vec(1usize..9, 1..4),
        seed in any::<u64>(),
    ) {
        let t = patterned(&dims, seed);
        let reference = naive_encode(&t);
        let pooled = encode_tensor(&t);
        prop_assert_eq!(&*pooled, &reference[..], "pooled encode differs from naive");

        let back = decode_tensor(&pooled).unwrap();
        prop_assert_eq!(back.dims(), t.dims());
        let bits_back: Vec<u32> = back.to_vec().iter().map(|v| v.to_bits()).collect();
        let bits_orig: Vec<u32> = t.to_vec().iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(bits_back, bits_orig, "decode not bitwise-identical");

        let re = encode_tensor(&back);
        prop_assert_eq!(&*re, &reference[..], "re-encode after pooled decode differs");
    }

    /// Frame parts (`header`, `body`) concatenate to exactly the
    /// contiguous encoding, and the parts decoder accepts them — for
    /// every tensor-bearing message shape the step loop sends.
    #[test]
    fn frame_parts_concatenate_to_contiguous_encoding(
        dims in prop::collection::vec(1usize..9, 1..4),
        seed in any::<u64>(),
        client in any::<u64>(),
    ) {
        use menos::split::WireMessage;
        let t = patterned(&dims, seed);
        let msgs = [
            ClientMessage::Activations { client: ClientId(client), frame: encode_tensor(&t) },
            ClientMessage::Gradients { client: ClientId(client), frame: encode_tensor(&t) },
        ];
        for msg in &msgs {
            let contiguous = msg.to_wire();
            let (header, body) = client_message_parts(msg);
            let mut glued = header.to_vec();
            glued.extend_from_slice(&body);
            prop_assert_eq!(&glued[..], &*contiguous, "parts differ from contiguous frame");
            let back = decode_client_message_parts(&header, &body, 64 << 20).unwrap();
            prop_assert_eq!(back.to_wire(), contiguous);
        }
        let reply = ServerMessage::ServerActivations {
            client: ClientId(client),
            frame: encode_tensor(&t),
        };
        let contiguous = reply.to_wire();
        let (header, body) = server_message_parts(&reply);
        let mut glued = header.to_vec();
        glued.extend_from_slice(&body);
        prop_assert_eq!(&glued[..], &*contiguous);
        let back = decode_server_message_parts(&header, &body, 64 << 20).unwrap();
        prop_assert_eq!(back.to_wire(), contiguous);
    }
}

/// A recycled buffer must never expose a previous tensor's bytes.
///
/// Scenario: a big tensor `A` full of sentinel bits is encoded and
/// decoded, then every view of it is dropped so its allocations
/// recycle into the pool. A truncated decode then fails cleanly, and a
/// subsequent full decode of a *smaller* tensor `B` — which draws the
/// recycled allocations — must yield exactly `B`'s bytes and values,
/// with no sentinel residue.
#[test]
fn recycled_buffers_never_leak_prior_tensor_bytes() {
    let sentinel = f32::from_bits(0x4141_4141);
    let a = Tensor::from_vec(vec![sentinel; 4096], [4096]);
    let a_wire = encode_tensor(&a);
    let a_back = decode_tensor(&a_wire).unwrap();
    assert!(a_back.to_vec().iter().all(|v| v.to_bits() == 0x4141_4141));
    // Recycle A's frame buffer and decoded storage into the pool.
    drop(a_wire);
    drop(a_back);
    drop(a);

    // A short decode must fail without handing out a partial tensor.
    let b = Tensor::from_vec((0..1024).map(|i| i as f32).collect(), [1024]);
    let b_wire = encode_tensor(&b);
    let truncated = b_wire.slice(..b_wire.len() - 7);
    assert!(
        decode_tensor(&truncated).is_err(),
        "truncated decode must fail"
    );

    // The full decode of B draws pooled buffers big enough to still
    // hold A's sentinels in their spare capacity. None may show.
    let b_back = decode_tensor(&b_wire).unwrap();
    let got = b_back.to_vec();
    assert_eq!(got.len(), 1024);
    for (i, v) in got.iter().enumerate() {
        assert_eq!(v.to_bits(), (i as f32).to_bits(), "stale byte at {i}");
        assert_ne!(v.to_bits(), 0x4141_4141, "sentinel leaked at {i}");
    }
    // And the re-encoded frame is exactly B's frame: same length, same
    // bytes — no stale tail from the larger recycled allocation.
    let re = encode_tensor(&b_back);
    assert_eq!(&*re, &*b_wire);
}

/// Frame-buffer poisoning at the bytes layer: encoding a small frame
/// right after a big frame's buffer recycles must produce exactly the
/// small frame, bit for bit.
#[test]
fn recycled_frame_buffer_is_exact_sized() {
    let big = Tensor::from_vec(vec![f32::from_bits(0xdead_beef); 8192], [8192]);
    let big_wire = encode_tensor(&big);
    let big_len = big_wire.len();
    drop(big_wire);

    let small = Tensor::from_vec(vec![1.0, 2.0, 3.0], [3]);
    let small_wire = encode_tensor(&small);
    assert!(small_wire.len() < big_len);
    assert_eq!(&*small_wire, &naive_encode(&small)[..]);

    // Bytes built from a recycled Vec must report only the visible
    // range even though the backing capacity is larger.
    let from_vec = Bytes::from(small_wire.to_vec());
    assert_eq!(from_vec.len(), small_wire.len());
    assert_eq!(&*from_vec, &*small_wire);
}

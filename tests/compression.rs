//! Acceptance tests for wire-level tensor compression (protocol v1.2,
//! PROTOCOL.md §7): per-codec round trips, the Connect/Ready
//! negotiation matrix (including the v1.1 raw fallback), bit-identity
//! of the lossless paths, and survival of the error-feedback residuals
//! across a server snapshot/restore.

use std::sync::{Arc, Mutex};

use proptest::prelude::*;

use menos::adapters::FineTuneConfig;
use menos::core::{MenosServer, ProtocolError, ServerMode, ServerSpec};
use menos::data::{wiki_corpus, LossCurve, TokenDataset, Vocab};
use menos::models::{CausalLm, ModelConfig};
use menos::net::{
    supported_codec_mask, Codec, TensorCodec, WireError, ROLE_ACTIVATIONS, ROLE_GRADIENTS,
};
use menos::split::{
    channel_pair, drive_client, run_split_steps, serve_loop, ClientId, ClientMessage, ForwardMode,
    ServerMessage, ServerSession, SplitClient, SplitSpec,
};
use menos::tensor::Tensor;

const SEED: u64 = 7200;

fn setup() -> (
    String,
    Vocab,
    ModelConfig,
    Arc<Mutex<menos::tensor::ParamStore>>,
) {
    let text = wiki_corpus(72, 12_000);
    let vocab = Vocab::from_text(&text);
    let config = ModelConfig::tiny_opt(vocab.size());
    let mut rng = menos::sim::seeded_rng(72, "compression");
    let base = Arc::new(Mutex::new(menos::models::init_params(&config, &mut rng)));
    (text, vocab, config, base)
}

fn make_server(
    config: &ModelConfig,
    base: &Arc<Mutex<menos::tensor::ParamStore>>,
) -> Arc<Mutex<MenosServer>> {
    let view = base.lock().unwrap().shared_view(false);
    Arc::new(Mutex::new(MenosServer::from_store(
        config.clone(),
        view,
        ServerSpec::v100(ServerMode::menos()),
        SEED,
    )))
}

fn make_client(
    k: u64,
    text: &str,
    config: &ModelConfig,
    base: &Arc<Mutex<menos::tensor::ParamStore>>,
) -> SplitClient {
    let vocab = Vocab::from_text(text);
    let mut ft = FineTuneConfig::paper(config);
    ft.batch_size = 2;
    ft.seq_len = 16;
    let ds = TokenDataset::new(vocab.encode(text), 16, k);
    let view = base.lock().unwrap().shared_view(false);
    SplitClient::new(
        ClientId(k),
        CausalLm::bind(config, &view),
        SplitSpec::paper(),
        ft,
        ds,
        k,
    )
}

fn train_over_channel(
    client: &mut SplitClient,
    handler: Arc<Mutex<MenosServer>>,
    steps: usize,
) -> LossCurve {
    let (mut client_t, mut server_t) = channel_pair();
    let server = std::thread::spawn(move || {
        let mut handler = handler;
        serve_loop(&mut server_t, &mut handler)
    });
    let curve = drive_client(client, &mut client_t, steps).expect("channel training");
    server.join().expect("server thread").expect("clean serve");
    curve
}

fn connect(client: ClientId, config: &ModelConfig, codecs: u64) -> ClientMessage {
    let mut ft = FineTuneConfig::paper(config);
    ft.batch_size = 2;
    ft.seq_len = 16;
    ClientMessage::Connect {
        client,
        ft,
        split: SplitSpec::paper(),
        epoch: 1,
        codecs,
    }
}

fn ready_codec(reply: Option<ServerMessage>) -> Codec {
    match reply {
        Some(ServerMessage::Ready { codec, .. }) => codec,
        other => panic!("expected Ready, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// Per-codec round trips (proptest).
// ---------------------------------------------------------------------

proptest! {
    /// Every codec's encode/decode round-trips arbitrary tensors within
    /// its specified tolerance: raw is bit-exact, f16/bf16 are bounded
    /// by their rounding step, and topk8 delivers exactly the selected
    /// coordinates unchanged (the rest stay banked in the residual).
    #[test]
    fn every_codec_round_trips_within_spec(
        vals in prop::collection::vec(-100.0f32..100.0, 1..96),
    ) {
        let n = vals.len();
        let t = Tensor::from_vec(vals.clone(), [n]);
        for codec in [Codec::F32Raw, Codec::F16, Codec::BF16, Codec::TopK8] {
            let mut party = TensorCodec::new(codec);
            let body = party.encode(ROLE_ACTIVATIONS, &t);
            let back = TensorCodec::new(codec).decode(&body).expect("decode");
            prop_assert_eq!(back.dims(), t.dims());
            let back = back.to_vec();
            match codec {
                Codec::F32Raw => {
                    for (x, y) in vals.iter().zip(&back) {
                        prop_assert_eq!(x.to_bits(), y.to_bits());
                    }
                }
                Codec::F16 | Codec::BF16 => {
                    let rel = if codec == Codec::F16 { 1.0 / 2048.0 } else { 1.0 / 256.0 };
                    for (x, y) in vals.iter().zip(&back) {
                        prop_assert!((x - y).abs() <= x.abs() * rel + 1e-24, "{} vs {}", x, y);
                    }
                }
                Codec::TopK8 => {
                    let k = n.div_ceil(8);
                    let sent = back.iter().filter(|v| **v != 0.0).count();
                    prop_assert!(sent <= k, "sent {} of k={}", sent, k);
                    // The first encode sees a zero residual, so every
                    // delivered coordinate is the original value.
                    for (x, y) in vals.iter().zip(&back) {
                        prop_assert!(*y == 0.0 || x.to_bits() == y.to_bits(), "{} vs {}", x, y);
                    }
                }
            }
        }
    }
}

/// Error feedback guarantees no coordinate is starved forever: feeding
/// the same tensor repeatedly, the banked residual of an unsent
/// coordinate grows until it wins top-k selection.
#[test]
fn error_feedback_eventually_delivers_every_coordinate() {
    let n = 16; // k = 2 per round
    let t = Tensor::from_vec((0..n).map(|i| 0.1 + i as f32).collect(), [n]);
    let mut enc = TensorCodec::new(Codec::TopK8);
    let dec = TensorCodec::new(Codec::TopK8);
    let mut delivered = vec![false; n];
    // The smallest coordinate (0.1) accumulates slowest: it needs about
    // sum(x)/2k ≈ 600 rounds to out-bank the re-accumulating big ones.
    for _ in 0..1500 {
        let back = dec.decode(&enc.encode(ROLE_GRADIENTS, &t)).expect("decode");
        for (d, v) in delivered.iter_mut().zip(back.to_vec()) {
            *d |= v != 0.0;
        }
    }
    assert!(
        delivered.iter().all(|d| *d),
        "residual accumulation must eventually deliver every coordinate: {delivered:?}"
    );
}

// ---------------------------------------------------------------------
// Negotiation matrix (PROTOCOL.md §7.3).
// ---------------------------------------------------------------------

/// The server picks the highest-tag non-raw codec in the intersection,
/// falls back to raw for v1.1 peers (empty mask) or disjoint masks,
/// and ignores unknown advertised bits.
#[test]
fn negotiation_matrix_matches_protocol_rules() {
    let (_text, _vocab, config, base) = setup();
    let cases: [(u64, u64, Codec); 6] = [
        // v1.2 ↔ v1.2: highest-tag non-raw codec wins.
        (supported_codec_mask(), supported_codec_mask(), Codec::TopK8),
        (
            Codec::F16.flag() | Codec::BF16.flag(),
            supported_codec_mask(),
            Codec::BF16,
        ),
        (Codec::F16.flag(), supported_codec_mask(), Codec::F16),
        // v1.1 client: no mask on the wire → raw framing.
        (0, supported_codec_mask(), Codec::F32Raw),
        // Disjoint masks: nothing shared beyond raw → raw fallback.
        (
            Codec::TopK8.flag(),
            Codec::F32Raw.flag() | Codec::F16.flag(),
            Codec::F32Raw,
        ),
        // Unknown advertised bits are ignored, not rejected.
        (
            (1 << 40) | Codec::F16.flag(),
            supported_codec_mask(),
            Codec::F16,
        ),
    ];
    for (i, &(advertised, supported, want)) in cases.iter().enumerate() {
        let server = make_server(&config, &base);
        let mut srv = server.lock().unwrap();
        srv.set_supported_codecs(supported);
        let reply = srv
            .handle(connect(ClientId(i as u64), &config, advertised))
            .expect("connect accepted");
        assert_eq!(
            ready_codec(reply),
            want,
            "case {i}: advertised {advertised:#x} vs supported {supported:#x}"
        );
    }
}

/// A compressed body on a session that negotiated raw is a typed
/// `Malformed` rejection — never silently accepted — and the session
/// stays serviceable afterwards.
#[test]
fn compressed_frame_under_raw_session_is_rejected() {
    let (_text, _vocab, config, base) = setup();
    let server = make_server(&config, &base);
    let mut srv = server.lock().unwrap();
    let c = ClientId(0);
    assert_eq!(
        ready_codec(srv.handle(connect(c, &config, 0)).expect("connect")),
        Codec::F32Raw
    );
    let x = Tensor::full(0.1, [2, 16, config.hidden]);
    let mut f16 = TensorCodec::new(Codec::F16);
    let err = srv
        .handle(ClientMessage::Activations {
            client: c,
            frame: f16.encode(ROLE_ACTIVATIONS, &x),
        })
        .unwrap_err();
    assert!(
        matches!(err, ProtocolError::Wire(WireError::Malformed(_))),
        "{err}"
    );
    // The rejection is stateless: a raw frame still trains.
    let mut raw = TensorCodec::new(Codec::F32Raw);
    assert!(srv
        .handle(ClientMessage::Activations {
            client: c,
            frame: raw.encode(ROLE_ACTIVATIONS, &x),
        })
        .is_ok());
}

// ---------------------------------------------------------------------
// End-to-end training per codec, and the lossless bit-identity claims.
// ---------------------------------------------------------------------

/// Every codec negotiates over a real transport and trains to a finite
/// curve; the Ready echo is what the client actually adopts.
#[test]
fn every_codec_negotiates_and_trains_over_the_wire() {
    let (text, _vocab, config, base) = setup();
    for codec in [Codec::F32Raw, Codec::F16, Codec::BF16, Codec::TopK8] {
        let mut client = make_client(0, &text, &config, &base);
        client.set_advertised_codecs(codec.flag());
        let curve = train_over_channel(&mut client, make_server(&config, &base), 3);
        assert_eq!(
            client.codec(),
            codec,
            "Ready echo must match the advertised codec"
        );
        assert_eq!(curve.points().len(), 3);
        assert!(
            curve.points().iter().all(|(_, l)| l.is_finite()),
            "{codec} produced a non-finite loss"
        );
    }
}

/// The two lossless paths — a v1.2 client advertising only raw, and a
/// v1.1 client advertising nothing — are bit-identical to each other
/// and to the in-process driver (the pre-v1.2 baseline semantics).
#[test]
fn raw_and_v11_fallback_are_bit_identical() {
    let (text, _vocab, config, base) = setup();
    const STEPS: usize = 4;
    let bits = |curve: &LossCurve| -> Vec<u32> {
        curve.points().iter().map(|&(_, l)| l.to_bits()).collect()
    };

    // v1.1 peer: advertises nothing, Connect is byte-identical to v1.1.
    let mut v11 = make_client(0, &text, &config, &base);
    assert_eq!(v11.advertised_codecs(), 0);
    let v11_curve = train_over_channel(&mut v11, make_server(&config, &base), STEPS);

    // v1.2 peer that only offers the raw baseline.
    let mut raw = make_client(0, &text, &config, &base);
    raw.set_advertised_codecs(Codec::F32Raw.flag());
    let raw_curve = train_over_channel(&mut raw, make_server(&config, &base), STEPS);
    assert_eq!(raw.codec(), Codec::F32Raw);

    assert_eq!(
        bits(&v11_curve),
        bits(&raw_curve),
        "raw negotiation must be lossless"
    );
}

// ---------------------------------------------------------------------
// Residuals ride server snapshots (DESIGN.md §4.12).
// ---------------------------------------------------------------------

fn topk_session(
    config: &ModelConfig,
    base: &Arc<Mutex<menos::tensor::ParamStore>>,
    ft: &FineTuneConfig,
) -> ServerSession {
    let view = base.lock().unwrap().shared_view(false);
    let mut session = ServerSession::new(
        ClientId(0),
        CausalLm::bind(config, &view),
        SplitSpec::paper(),
        ft,
        SEED,
    );
    session.set_codec(Codec::TopK8);
    session
}

/// A lossy session restored from a snapshot continues the exact
/// trajectory of an uninterrupted run: the error-feedback residuals are
/// part of the snapshot, so the kill/restore is invisible in the loss
/// bits. Zeroing the residuals instead (what a codec-unaware snapshot
/// would do) visibly changes the trajectory — the control that proves
/// the assertion has teeth.
#[test]
fn lossy_residuals_survive_snapshot_restore_bit_identically() {
    let (text, _vocab, config, base) = setup();
    const BEFORE: usize = 3;
    const AFTER: usize = 3;
    let ft = {
        let mut ft = FineTuneConfig::paper(&config);
        ft.batch_size = 2;
        ft.seq_len = 16;
        ft
    };
    let losses = |curve: &LossCurve| -> Vec<u32> {
        curve.points().iter().map(|&(_, l)| l.to_bits()).collect()
    };

    // Uninterrupted lossy baseline.
    let mut client = make_client(0, &text, &config, &base);
    client.adopt_codec(Codec::TopK8);
    let mut session = topk_session(&config, &base, &ft);
    let full_a = run_split_steps(
        &mut client,
        &mut session,
        ForwardMode::NoGradReforward,
        BEFORE,
    );
    let full_b = run_split_steps(
        &mut client,
        &mut session,
        ForwardMode::NoGradReforward,
        AFTER,
    );

    // Same run, but the server dies after BEFORE steps and is rebuilt
    // from its snapshot (the client survives, as in a real deployment
    // where only the server restarts).
    let mut client = make_client(0, &text, &config, &base);
    client.adopt_codec(Codec::TopK8);
    let mut session = topk_session(&config, &base, &ft);
    let cut_a = run_split_steps(
        &mut client,
        &mut session,
        ForwardMode::NoGradReforward,
        BEFORE,
    );
    let state = session.to_state();
    drop(session);
    let view = base.lock().unwrap().shared_view(false);
    let mut restored = ServerSession::from_state(CausalLm::bind(&config, &view), &state)
        .expect("snapshot restores");
    assert_eq!(
        restored.codec().codec(),
        Codec::TopK8,
        "codec must ride the snapshot"
    );
    let cut_b = run_split_steps(
        &mut client,
        &mut restored,
        ForwardMode::NoGradReforward,
        AFTER,
    );

    assert_eq!(
        losses(&full_a),
        losses(&cut_a),
        "pre-kill prefix must match"
    );
    assert_eq!(
        losses(&full_b),
        losses(&cut_b),
        "restored residuals must continue the exact lossy trajectory"
    );

    // Control: restoring with zeroed residuals silently changes the
    // trajectory — exactly the failure mode snapshotting prevents.
    let mut client = make_client(0, &text, &config, &base);
    client.adopt_codec(Codec::TopK8);
    let mut session = topk_session(&config, &base, &ft);
    let _ = run_split_steps(
        &mut client,
        &mut session,
        ForwardMode::NoGradReforward,
        BEFORE,
    );
    let state = session.to_state();
    let view = base.lock().unwrap().shared_view(false);
    let mut zeroed = ServerSession::from_state(CausalLm::bind(&config, &view), &state)
        .expect("snapshot restores");
    // set_codec resets the residual accumulators on a codec change.
    zeroed.set_codec(Codec::F32Raw);
    zeroed.set_codec(Codec::TopK8);
    let zeroed_b = run_split_steps(
        &mut client,
        &mut zeroed,
        ForwardMode::NoGradReforward,
        AFTER,
    );
    assert_ne!(
        losses(&full_b),
        losses(&zeroed_b),
        "zeroed residuals should visibly diverge — otherwise this test proves nothing"
    );
}

//! The chaos soak: a fleet of clients trains through an event loop
//! whose connections inject scripted kills and delays, every client
//! reconnects with the v1.1 `Resume` handshake, and the acceptance bar
//! is *bit-identity* — each survivor's loss curve and final adapter
//! weights must equal a fault-free run of the same fleet, float for
//! float.
//!
//! The chaos script is deterministic from one seed (CI pins it via
//! `MENOS_CHAOS_SEED`; see `ChaosOptions::from_env`), so a failure
//! reproduces locally by exporting the same seed.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use menos::adapters::FineTuneConfig;
use menos::core::{MenosServer, ProtocolError, ServerMode, ServerSpec};
use menos::data::{wiki_corpus, LossCurve, TokenDataset, Vocab};
use menos::models::{CausalLm, ModelConfig};
use menos::sim::seeded_rng;
use menos::split::{
    drive_client, drive_client_resumable, event_channel_listener, ChannelDialer, ChaosListener,
    ChaosOptions, ClientId, ClientMessage, EventLoopOptions, EventLoopStats, MessageHandler,
    RetryPolicy, ServerEventLoop, ServerMessage, SplitClient, SplitSpec,
};

/// Soak scale: 32 clients × 40 steps, the acceptance numbers.
const N: u64 = 32;
const STEPS: usize = 40;
const SEED: u64 = 4300;

/// A deliberately micro model: the soak's subject is the session
/// layer, not the math, and 32 clients × 40 steps × 2 runs must fit a
/// debug-profile CI budget. Determinism claims are size-independent.
fn micro_setup() -> (String, ModelConfig, Arc<Mutex<menos::tensor::ParamStore>>) {
    let text = wiki_corpus(43, 3_000);
    let vocab = Vocab::from_text(&text);
    let mut config = ModelConfig::tiny_opt(vocab.size());
    config.hidden = 32;
    config.layers = 2;
    config.heads = 2;
    config.intermediate = 64;
    let mut rng = seeded_rng(43, "chaos-soak");
    let base = Arc::new(Mutex::new(menos::models::init_params(&config, &mut rng)));
    (text, config, base)
}

fn make_server(
    config: &ModelConfig,
    base: &Arc<Mutex<menos::tensor::ParamStore>>,
) -> Arc<Mutex<MenosServer>> {
    let view = base.lock().unwrap().shared_view(false);
    Arc::new(Mutex::new(MenosServer::from_store(
        config.clone(),
        view,
        ServerSpec::v100(ServerMode::menos()),
        SEED,
    )))
}

fn make_client(
    k: u64,
    text: &str,
    config: &ModelConfig,
    base: &Arc<Mutex<menos::tensor::ParamStore>>,
) -> SplitClient {
    let vocab = Vocab::from_text(text);
    let mut ft = FineTuneConfig::paper(config);
    ft.batch_size = 1;
    ft.seq_len = 8;
    let ds = TokenDataset::new(vocab.encode(text), 8, k);
    let view = base.lock().unwrap().shared_view(false);
    SplitClient::new(
        ClientId(k),
        CausalLm::bind(config, &view),
        SplitSpec::paper(),
        ft,
        ds,
        k,
    )
}

type CurveBits = Vec<(usize, u32)>;
/// Adapter weights as exact bit patterns, keyed and ordered by name.
type AdapterBits = Vec<(String, Vec<u32>)>;

fn curve_bits(curve: &LossCurve) -> CurveBits {
    curve
        .points()
        .iter()
        .map(|&(s, l)| (s, l.to_bits()))
        .collect()
}

fn adapter_bits(client: &SplitClient) -> AdapterBits {
    let mut out: AdapterBits = client
        .adapter_params()
        .iter()
        .map(|(name, t)| {
            (
                name.clone(),
                t.to_vec().iter().map(|v| v.to_bits()).collect(),
            )
        })
        .collect();
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

/// The fault-free reference: the same fleet, same seeds, no chaos, no
/// retries needed.
fn reference_fleet(
    text: &str,
    config: &ModelConfig,
    base: &Arc<Mutex<menos::tensor::ParamStore>>,
) -> Vec<(CurveBits, AdapterBits)> {
    let handler = make_server(config, base);
    let (dialer, listener) = event_channel_listener();
    let event_loop = ServerEventLoop::new(
        listener,
        handler.clone(),
        EventLoopOptions {
            max_clients: N as usize,
            ..EventLoopOptions::default()
        },
    );
    let loop_thread = std::thread::spawn(move || event_loop.run());
    let results = run_drivers(dialer, text, config, base, |client, dialer| {
        let mut transport = dialer.dial().expect("dial");
        drive_client(client, &mut transport, STEPS).expect("fault-free fleet")
    });
    loop_thread.join().expect("loop thread");
    assert_eq!(handler.lock().unwrap().active_clients(), 0);
    results
}

/// Spawns one driver thread per client and collects (curve, adapters)
/// in client order.
fn run_drivers<F>(
    dialer: ChannelDialer,
    text: &str,
    config: &ModelConfig,
    base: &Arc<Mutex<menos::tensor::ParamStore>>,
    drive: F,
) -> Vec<(CurveBits, AdapterBits)>
where
    F: Fn(&mut SplitClient, &ChannelDialer) -> LossCurve + Send + Sync + 'static,
{
    let drive = Arc::new(drive);
    let mut drivers = Vec::new();
    for k in 0..N {
        let mut client = make_client(k, text, config, base);
        let dialer = dialer.clone();
        let drive = drive.clone();
        drivers.push(std::thread::spawn(move || {
            let curve = drive(&mut client, &dialer);
            (curve_bits(&curve), adapter_bits(&client))
        }));
    }
    drivers
        .into_iter()
        .map(|d| d.join().expect("driver thread"))
        .collect()
}

/// The tentpole assertion: N clients × K steps through scripted kills,
/// queue hangups, and reply delays; every client reconnects and
/// resumes; curves and final adapter weights are bit-identical to the
/// fault-free reference; nothing leaks.
#[test]
fn chaos_soak_is_bit_identical_to_a_fault_free_run() {
    let (text, config, base) = micro_setup();
    let reference = reference_fleet(&text, &config, &base);
    for (curve, _) in &reference {
        assert_eq!(curve.len(), STEPS);
    }

    let handler = make_server(&config, &base);
    let (dialer, listener) = event_channel_listener();
    let chaos = ChaosListener::new(listener, ChaosOptions::from_env());
    let event_loop = ServerEventLoop::new(
        chaos,
        handler.clone(),
        // Reconnects make the total connection count seed-dependent;
        // the shutdown flag, raised after every driver finishes, ends
        // the loop instead of an accept quota.
        EventLoopOptions::default(),
    );
    let shutdown = event_loop.shutdown_handle();
    let loop_thread = std::thread::spawn(move || event_loop.run());

    let survivors = run_drivers(dialer, &text, &config, &base, |client, dialer| {
        let policy = RetryPolicy {
            retries: 8,
            backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(20),
            seed: client.id().0,
        };
        drive_client_resumable(client, || dialer.dial(), STEPS, &policy)
            .expect("every client overcomes its fault budget")
    });
    shutdown.store(true, std::sync::atomic::Ordering::Relaxed);
    let (_h, stats): (_, EventLoopStats) = loop_thread.join().expect("loop thread");

    assert_eq!(survivors, reference, "chaos run diverged from fault-free");

    // The soak must actually have exercised the fault machinery: every
    // client's first incarnations draw a fault, and kills dominate the
    // plan space, so resumes are guaranteed at this fleet size.
    assert!(stats.resumed > 0, "no client ever resumed: {stats:?}");
    assert!(
        stats.conn_errors > 0,
        "no connection ever failed: {stats:?}"
    );

    // Nothing leaks: live sessions drained at disconnect, quarantined
    // ones (if any final-message race parked one) reaped by the TTL.
    let mut handler = handler.lock().unwrap();
    assert_eq!(handler.active_clients(), 0);
    handler.expire_idle(Duration::from_millis(0));
    assert_eq!(handler.quarantined_clients(), 0);
    assert_eq!(handler.reserved_bytes(), 0);
}

/// A stale epoch — a zombie client resuming with credentials from
/// before its last reconnect — is rejected with the typed error and
/// does *not* consume the quarantined state: the rightful owner can
/// still resume afterwards.
#[test]
fn stale_epoch_resume_is_rejected_with_a_typed_error() {
    let (text, config, base) = micro_setup();
    let server = make_server(&config, &base);
    let client = make_client(0, &text, &config, &base);
    let mut server = server.lock().unwrap();
    server
        .handle(ClientMessage::Connect {
            client: client.id(),
            ft: client.ft_config().clone(),
            split: client.split(),
            epoch: 1,
        })
        .expect("connect");

    // The connection dies; the session is quarantined, not dropped.
    server.connection_lost(client.id());
    assert_eq!(server.active_clients(), 0);
    assert_eq!(server.quarantined_clients(), 1);

    let err = server
        .handle(ClientMessage::Resume {
            client: client.id(),
            epoch: 7,
            last_step: 0,
        })
        .expect_err("wrong epoch must be rejected");
    assert!(
        matches!(
            err,
            ProtocolError::StaleEpoch {
                expected: 1,
                got: 7,
                ..
            }
        ),
        "{err}"
    );
    // Rejection keeps the state: the real owner still resumes, and the
    // server proves it by bumping the epoch past the stale one.
    assert_eq!(server.quarantined_clients(), 1);
    let reply = server
        .handle(ClientMessage::Resume {
            client: client.id(),
            epoch: 1,
            last_step: 0,
        })
        .expect("rightful resume")
        .expect("resume replies");
    match reply {
        ServerMessage::Resumed {
            epoch, server_step, ..
        } => {
            assert_eq!(epoch, 2, "resume bumps the epoch");
            assert_eq!(server_step, 0);
        }
        other => panic!("expected Resumed, got {other:?}"),
    }
    assert_eq!(server.active_clients(), 1);
    assert_eq!(server.quarantined_clients(), 0);
}

/// Server-side deadlines end to end: a client that goes silent is
/// evicted on `io_timeout` (session quarantined, reservation freed),
/// the quarantine is reaped on `max_session_idle`, and a too-late
/// `Resume` is answered with an `Evicted(IdleExpired)` notice that the
/// retry driver surfaces as a terminal typed error.
#[test]
fn silent_clients_are_evicted_and_expired_resumes_get_a_terminal_notice() {
    let (text, config, base) = micro_setup();
    let handler = make_server(&config, &base);
    let (dialer, listener) = event_channel_listener();
    let event_loop = ServerEventLoop::new(
        listener,
        handler.clone(),
        EventLoopOptions {
            io_timeout: Some(Duration::from_millis(150)),
            max_session_idle: Some(Duration::from_millis(200)),
            ..EventLoopOptions::default()
        },
    );
    let shutdown = event_loop.shutdown_handle();
    let loop_thread = std::thread::spawn(move || event_loop.run());

    // Connect, then fall silent while holding the connection open.
    let mut client = make_client(0, &text, &config, &base);
    let mut transport = dialer.dial().expect("dial");
    use menos::split::Transport;
    transport
        .send(&ClientMessage::Connect {
            client: client.id(),
            ft: client.ft_config().clone(),
            split: client.split(),
            epoch: client.epoch(),
        })
        .expect("send connect");
    match transport.recv().expect("ready") {
        ServerMessage::Ready { .. } => {}
        other => panic!("expected Ready, got {other:?}"),
    }
    let reserved = handler.lock().unwrap().reserved_bytes();
    assert!(reserved > 0);

    // Silence past the deadline: the server evicts (best-effort notice
    // on the still-open pipe) and quarantines.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        match transport.recv() {
            Ok(ServerMessage::Evicted { code, .. }) => {
                assert_eq!(format!("{code:?}"), "Timeout");
                break;
            }
            Ok(other) => panic!("expected Evicted, got {other:?}"),
            Err(ProtocolError::Disconnected) => break, // notice raced the drop
            Err(ProtocolError::Timeout) => {
                assert!(
                    std::time::Instant::now() < deadline,
                    "server never evicted the silent client"
                );
            }
            Err(e) => panic!("unexpected transport error: {e}"),
        }
    }
    // Wait out the quarantine TTL, then try to resume: too late.
    std::thread::sleep(Duration::from_millis(600));
    let policy = RetryPolicy {
        retries: 2,
        backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(5),
        seed: 0,
    };
    // First a fresh-connect driver path would succeed, so resume
    // manually to prove the expiry: the parked state is gone.
    let mut late = dialer.dial().expect("redial");
    late.send(&ClientMessage::Resume {
        client: client.id(),
        epoch: client.epoch(),
        last_step: 0,
    })
    .expect("send resume");
    match late.recv() {
        Ok(ServerMessage::Evicted { code, .. }) => {
            assert_eq!(format!("{code:?}"), "IdleExpired");
        }
        Ok(other) => panic!("expected Evicted notice, got {other:?}"),
        // The loop drops the conn right after the notice; losing the
        // race to the drop is acceptable.
        Err(ProtocolError::Disconnected) => {}
        Err(e) => panic!("unexpected transport error: {e}"),
    }

    // A fresh Connect (epoch reset by a new client instance) still
    // works — expiry never wedges an id — and the retry driver
    // finishes a short run despite the hostile timeouts.
    let curve = drive_client_resumable(&mut client, || dialer.dial(), 2, &policy)
        .expect("fresh run after expiry");
    assert_eq!(curve.points().len(), 2);

    shutdown.store(true, std::sync::atomic::Ordering::Relaxed);
    let (_h, stats) = loop_thread.join().expect("loop thread");
    assert!(stats.evicted >= 1, "{stats:?}");
    assert!(stats.expired >= 1, "{stats:?}");

    let mut handler = handler.lock().unwrap();
    assert_eq!(handler.active_clients(), 0);
    handler.expire_idle(Duration::from_millis(0));
    assert_eq!(handler.quarantined_clients(), 0);
    assert_eq!(handler.reserved_bytes(), 0);
}

//! The chaos soak: a fleet of clients trains through an event loop
//! whose connections inject scripted kills and delays, every client
//! reconnects with the v1.1 `Resume` handshake, and the acceptance bar
//! is *bit-identity* — each survivor's loss curve and final adapter
//! weights must equal a fault-free run of the same fleet, float for
//! float.
//!
//! The chaos script is deterministic from one seed (CI pins it via
//! `MENOS_CHAOS_SEED`; see `ChaosOptions::from_env`), so a failure
//! reproduces locally by exporting the same seed.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use menos::adapters::FineTuneConfig;
use menos::core::{MenosServer, ProtocolError, ServerMode, ServerSpec};
use menos::data::{wiki_corpus, LossCurve, TokenDataset, Vocab};
use menos::models::{CausalLm, ModelConfig};
use menos::sim::seeded_rng;
use menos::split::{
    drive_client, drive_client_resumable, event_channel_listener, ChannelDialer, ChaosListener,
    ChaosOptions, ClientId, ClientMessage, EventLoopOptions, EventLoopStats, MessageHandler,
    RetryPolicy, ServerEventLoop, ServerMessage, SplitClient, SplitSpec, Transport,
};

/// Soak scale: 32 clients × 40 steps, the acceptance numbers.
const N: u64 = 32;
const STEPS: usize = 40;
const SEED: u64 = 4300;

/// A deliberately micro model: the soak's subject is the session
/// layer, not the math, and 32 clients × 40 steps × 2 runs must fit a
/// debug-profile CI budget. Determinism claims are size-independent.
fn micro_setup() -> (String, ModelConfig, Arc<Mutex<menos::tensor::ParamStore>>) {
    let text = wiki_corpus(43, 3_000);
    let vocab = Vocab::from_text(&text);
    let mut config = ModelConfig::tiny_opt(vocab.size());
    config.hidden = 32;
    config.layers = 2;
    config.heads = 2;
    config.intermediate = 64;
    let mut rng = seeded_rng(43, "chaos-soak");
    let base = Arc::new(Mutex::new(menos::models::init_params(&config, &mut rng)));
    (text, config, base)
}

fn make_server(
    config: &ModelConfig,
    base: &Arc<Mutex<menos::tensor::ParamStore>>,
) -> Arc<Mutex<MenosServer>> {
    let view = base.lock().unwrap().shared_view(false);
    Arc::new(Mutex::new(MenosServer::from_store(
        config.clone(),
        view,
        ServerSpec::v100(ServerMode::menos()),
        SEED,
    )))
}

fn make_client(
    k: u64,
    text: &str,
    config: &ModelConfig,
    base: &Arc<Mutex<menos::tensor::ParamStore>>,
) -> SplitClient {
    let vocab = Vocab::from_text(text);
    let mut ft = FineTuneConfig::paper(config);
    ft.batch_size = 1;
    ft.seq_len = 8;
    let ds = TokenDataset::new(vocab.encode(text), 8, k);
    let view = base.lock().unwrap().shared_view(false);
    SplitClient::new(
        ClientId(k),
        CausalLm::bind(config, &view),
        SplitSpec::paper(),
        ft,
        ds,
        k,
    )
}

type CurveBits = Vec<(usize, u32)>;
/// Adapter weights as exact bit patterns, keyed and ordered by name.
type AdapterBits = Vec<(String, Vec<u32>)>;

fn curve_bits(curve: &LossCurve) -> CurveBits {
    curve
        .points()
        .iter()
        .map(|&(s, l)| (s, l.to_bits()))
        .collect()
}

fn adapter_bits(client: &SplitClient) -> AdapterBits {
    let mut out: AdapterBits = client
        .adapter_params()
        .iter()
        .map(|(name, t)| {
            (
                name.clone(),
                t.to_vec().iter().map(|v| v.to_bits()).collect(),
            )
        })
        .collect();
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

/// The fault-free reference: the same fleet, same seeds, no chaos, no
/// retries needed.
fn reference_fleet(
    text: &str,
    config: &ModelConfig,
    base: &Arc<Mutex<menos::tensor::ParamStore>>,
) -> Vec<(CurveBits, AdapterBits)> {
    let handler = make_server(config, base);
    let (dialer, listener) = event_channel_listener();
    let event_loop = ServerEventLoop::new(
        listener,
        handler.clone(),
        EventLoopOptions {
            accept_limit: N as usize,
            ..EventLoopOptions::default()
        },
    );
    let loop_thread = std::thread::spawn(move || event_loop.run());
    let results = run_drivers(dialer, text, config, base, |client, dialer| {
        let mut transport = dialer.dial().expect("dial");
        drive_client(client, &mut transport, STEPS).expect("fault-free fleet")
    });
    loop_thread.join().expect("loop thread");
    assert_eq!(handler.lock().unwrap().active_clients(), 0);
    results
}

/// Spawns one driver thread per client and collects (curve, adapters)
/// in client order.
fn run_drivers<F>(
    dialer: ChannelDialer,
    text: &str,
    config: &ModelConfig,
    base: &Arc<Mutex<menos::tensor::ParamStore>>,
    drive: F,
) -> Vec<(CurveBits, AdapterBits)>
where
    F: Fn(&mut SplitClient, &ChannelDialer) -> LossCurve + Send + Sync + 'static,
{
    let drive = Arc::new(drive);
    let mut drivers = Vec::new();
    for k in 0..N {
        let mut client = make_client(k, text, config, base);
        let dialer = dialer.clone();
        let drive = drive.clone();
        drivers.push(std::thread::spawn(move || {
            let curve = drive(&mut client, &dialer);
            (curve_bits(&curve), adapter_bits(&client))
        }));
    }
    drivers
        .into_iter()
        .map(|d| d.join().expect("driver thread"))
        .collect()
}

/// The tentpole assertion: N clients × K steps through scripted kills,
/// queue hangups, and reply delays; every client reconnects and
/// resumes; curves and final adapter weights are bit-identical to the
/// fault-free reference; nothing leaks.
#[test]
fn chaos_soak_is_bit_identical_to_a_fault_free_run() {
    let (text, config, base) = micro_setup();
    let reference = reference_fleet(&text, &config, &base);
    for (curve, _) in &reference {
        assert_eq!(curve.len(), STEPS);
    }

    let handler = make_server(&config, &base);
    let (dialer, listener) = event_channel_listener();
    let chaos = ChaosListener::new(listener, ChaosOptions::from_env());
    let event_loop = ServerEventLoop::new(
        chaos,
        handler.clone(),
        // Reconnects make the total connection count seed-dependent;
        // the shutdown flag, raised after every driver finishes, ends
        // the loop instead of an accept quota. The io_timeout arms the
        // only detector a `Partition` draw leaves working: the link
        // goes silent with no FIN, so the loop must evict on deadline
        // and the client must time out and resume.
        EventLoopOptions {
            io_timeout: Some(Duration::from_millis(400)),
            ..EventLoopOptions::default()
        },
    );
    let shutdown = event_loop.shutdown_handle();
    let loop_thread = std::thread::spawn(move || event_loop.run());

    let survivors = run_drivers(dialer, &text, &config, &base, |client, dialer| {
        let policy = RetryPolicy {
            retries: 8,
            backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(20),
            seed: client.id().0,
        };
        drive_client_resumable(
            client,
            || {
                // The transport deadline is the client half of
                // partition detection: a blackholed reply must surface
                // as a retryable Timeout, never block forever.
                let mut t = dialer.dial()?;
                t.set_deadline(Some(Duration::from_secs(2)))?;
                Ok(t)
            },
            STEPS,
            &policy,
        )
        .expect("every client overcomes its fault budget")
    });
    shutdown.store(true, std::sync::atomic::Ordering::Relaxed);
    let (_h, stats): (_, EventLoopStats) = loop_thread.join().expect("loop thread");

    assert_eq!(survivors, reference, "chaos run diverged from fault-free");

    // The soak must actually have exercised the fault machinery: every
    // client's first incarnations draw a fault, and kills dominate the
    // plan space, so resumes are guaranteed at this fleet size.
    assert!(stats.resumed > 0, "no client ever resumed: {stats:?}");
    assert!(
        stats.conn_errors > 0,
        "no connection ever failed: {stats:?}"
    );

    // Nothing leaks: live sessions drained at disconnect, quarantined
    // ones (if any final-message race parked one) reaped by the TTL.
    let mut handler = handler.lock().unwrap();
    assert_eq!(handler.active_clients(), 0);
    handler.expire_idle(Duration::from_millis(0));
    assert_eq!(handler.quarantined_clients(), 0);
    assert_eq!(handler.reserved_bytes(), 0);
}

/// Kill-the-server chaos: a real `menos` server *process* is
/// SIGKILLed mid-run with durable snapshots on, restarted from the
/// latest snapshot, and every client re-attaches through the `Resume`
/// handshake — loss curves and final adapter weights bit-identical to
/// a fault-free run of the same fleet, across three model seeds.
#[cfg(unix)]
mod kill_the_server {
    use super::*;
    use std::io::BufRead;
    use std::net::SocketAddr;
    use std::path::{Path, PathBuf};
    use std::process::{Child, Command, Stdio};
    use std::sync::RwLock;
    use std::time::Instant;

    use menos::core::ServerState;
    use menos::split::TcpTransport;

    /// Restart-soak scale: small enough for a debug CI budget, large
    /// enough that the kill always lands mid-training.
    const KILL_N: u64 = 4;
    const KILL_STEPS: usize = 60;

    /// A `menos server` subprocess with durable snapshots, plus what
    /// its startup banner reported.
    struct ServerProc {
        child: Child,
        addr: SocketAddr,
        restored: usize,
        /// Keeps the stdout pipe drained for the process's lifetime so
        /// late prints can never block (or break) the server.
        _drain: std::thread::JoinHandle<()>,
    }

    impl ServerProc {
        fn spawn(model_seed: u64, snap_dir: &Path) -> ServerProc {
            let mut child = Command::new(env!("CARGO_BIN_EXE_menos"))
                .args([
                    "server",
                    "--port",
                    "0",
                    "--micro-model",
                    "--max-clients",
                    "1024",
                    "--snapshot-every",
                    "0",
                    "--model-seed",
                    &model_seed.to_string(),
                ])
                .arg("--snapshot-dir")
                .arg(snap_dir)
                .stdout(Stdio::piped())
                .stderr(Stdio::inherit())
                .spawn()
                .expect("spawn menos server");
            let stdout = child.stdout.take().expect("piped stdout");
            let mut reader = std::io::BufReader::new(stdout);
            let mut restored = 0usize;
            let mut line = String::new();
            let addr = loop {
                line.clear();
                if reader.read_line(&mut line).expect("server stdout") == 0 {
                    panic!("server exited before announcing its address");
                }
                if let Some(rest) = line.strip_prefix("restored ") {
                    restored = rest
                        .split_whitespace()
                        .next()
                        .and_then(|n| n.parse().ok())
                        .expect("restored count");
                }
                if let Some(rest) = line.split("server on ").nth(1) {
                    let bound: SocketAddr = rest
                        .split_whitespace()
                        .next()
                        .and_then(|a| a.parse().ok())
                        .expect("bound address");
                    // The server binds 0.0.0.0; dial loopback.
                    break SocketAddr::from(([127, 0, 0, 1], bound.port()));
                }
            };
            let drain = std::thread::spawn(move || {
                let mut sink = String::new();
                while matches!(reader.read_line(&mut sink), Ok(n) if n > 0) {
                    sink.clear();
                }
            });
            ServerProc {
                child,
                addr,
                restored,
                _drain: drain,
            }
        }

        /// SIGKILL — no shutdown hook runs; recovery must come from
        /// the last durable snapshot alone.
        fn kill(mut self) {
            self.child.kill().expect("kill server");
            self.child.wait().expect("reap server");
        }
    }

    fn scratch_dir(model_seed: u64, label: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "menos-kill-{model_seed}-{label}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// The fleet's shared setup, matching what the subprocess derives
    /// from `--micro-model --model-seed S`: same corpus, same config,
    /// and the same base parameters (`seeded_rng(S, "base-model")` is
    /// the registry's derivation).
    fn kill_setup(model_seed: u64) -> (String, ModelConfig, Arc<Mutex<menos::tensor::ParamStore>>) {
        let text = wiki_corpus(model_seed, 3_000);
        let vocab = Vocab::from_text(&text);
        let mut config = ModelConfig::tiny_opt(vocab.size());
        config.hidden = 32;
        config.layers = 2;
        config.heads = 2;
        config.intermediate = 64;
        let mut rng = seeded_rng(model_seed, "base-model");
        let base = Arc::new(Mutex::new(menos::models::init_params(&config, &mut rng)));
        (text, config, base)
    }

    /// Starts one resumable driver thread per client, each dialing
    /// whatever address the shared slot currently holds — after the
    /// restart the slot points at the new server and the retry loop's
    /// redial lands there.
    fn start_fleet(
        addr: &Arc<RwLock<SocketAddr>>,
        text: &str,
        config: &ModelConfig,
        base: &Arc<Mutex<menos::tensor::ParamStore>>,
    ) -> Vec<std::thread::JoinHandle<(CurveBits, AdapterBits)>> {
        (0..KILL_N)
            .map(|k| {
                let mut client = make_client(k, text, config, base);
                let addr = addr.clone();
                std::thread::spawn(move || {
                    let policy = RetryPolicy {
                        retries: 60,
                        backoff: Duration::from_millis(25),
                        max_backoff: Duration::from_millis(200),
                        seed: client.id().0,
                    };
                    let curve = drive_client_resumable(
                        &mut client,
                        || TcpTransport::connect(*addr.read().unwrap()),
                        KILL_STEPS,
                        &policy,
                    )
                    .expect("client finishes across the restart");
                    (curve_bits(&curve), adapter_bits(&client))
                })
            })
            .collect()
    }

    fn join_fleet(
        fleet: Vec<std::thread::JoinHandle<(CurveBits, AdapterBits)>>,
    ) -> Vec<(CurveBits, AdapterBits)> {
        fleet
            .into_iter()
            .map(|d| d.join().expect("driver thread"))
            .collect()
    }

    /// Polls the durable snapshot until every client's session is in
    /// it — the signal that the whole fleet is connected and training,
    /// so a kill now lands mid-run for everyone. Reads race the
    /// atomic rename harmlessly: either complete file parses, and a
    /// torn read fails the CRC and is retried.
    fn wait_until_fleet_snapshotted(snap_dir: &Path) {
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            if let Ok(bytes) = std::fs::read(snap_dir.join("server.snap")) {
                if let Ok(state) = ServerState::from_bytes(&bytes) {
                    if state.sessions.len() >= KILL_N as usize {
                        return;
                    }
                }
            }
            assert!(
                Instant::now() < deadline,
                "fleet never appeared in the snapshot"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    #[test]
    fn sigkill_restart_is_bit_identical_to_a_fault_free_run() {
        for model_seed in [43u64, 44, 45] {
            let (text, config, base) = kill_setup(model_seed);

            // The fault-free reference: same fleet, same durable
            // snapshotting (persistence must not perturb training),
            // no kill.
            let ref_dir = scratch_dir(model_seed, "ref");
            let server = ServerProc::spawn(model_seed, &ref_dir);
            assert_eq!(server.restored, 0, "fresh dir restores nothing");
            let addr = Arc::new(RwLock::new(server.addr));
            let reference = join_fleet(start_fleet(&addr, &text, &config, &base));
            server.kill();
            for (curve, _) in &reference {
                assert_eq!(curve.len(), KILL_STEPS);
            }

            // The chaos run: SIGKILL once the whole fleet is mid-run,
            // restart from the snapshot, clients resume and finish.
            let dir = scratch_dir(model_seed, "kill");
            let first = ServerProc::spawn(model_seed, &dir);
            assert_eq!(first.restored, 0);
            let addr = Arc::new(RwLock::new(first.addr));
            let fleet = start_fleet(&addr, &text, &config, &base);
            wait_until_fleet_snapshotted(&dir);
            std::thread::sleep(Duration::from_millis(200));
            first.kill();
            let second = ServerProc::spawn(model_seed, &dir);
            assert_eq!(
                second.restored, KILL_N as usize,
                "every mid-run session restores from the snapshot (seed {model_seed})"
            );
            *addr.write().unwrap() = second.addr;
            let survivors = join_fleet(fleet);
            second.kill();

            assert_eq!(
                survivors, reference,
                "restart run diverged from fault-free (seed {model_seed})"
            );

            let _ = std::fs::remove_dir_all(&ref_dir);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// The fault matrix, one kind at a time: every budgeted incarnation of
/// every client is dealt the *same* fault
/// (`ChaosListener::with_forced_fault`), so each kind's recovery path
/// is exercised in isolation instead of hoping the seeded plan covers
/// it. Latency faults must be absorbed with zero reconnects; lossy
/// faults must be rejected server-side (typed errors, sessions
/// quarantined) and healed through `Resume` — and either way the
/// curves and final adapter weights stay bit-identical to fault-free.
mod fault_matrix {
    use super::*;
    use menos::split::Fault;
    use std::sync::atomic::{AtomicBool, Ordering};

    /// Matrix scale: six kinds × (1 reference + 6 chaos runs) must fit
    /// a debug CI budget; the recovery machinery is scale-independent.
    const M: u64 = 4;
    const MSTEPS: usize = 10;

    fn matrix_run(
        text: &str,
        config: &ModelConfig,
        base: &Arc<Mutex<menos::tensor::ParamStore>>,
        fault: Option<Fault>,
        options: EventLoopOptions,
        deadline: Option<Duration>,
    ) -> (Vec<(CurveBits, AdapterBits)>, EventLoopStats) {
        let handler = make_server(config, base);
        let (dialer, listener) = event_channel_listener();
        let shutdown: Arc<AtomicBool>;
        let loop_thread = if let Some(fault) = fault {
            let chaos = ChaosListener::with_forced_fault(listener, ChaosOptions::default(), fault);
            let event_loop = ServerEventLoop::new(chaos, handler.clone(), options);
            shutdown = event_loop.shutdown_handle();
            std::thread::spawn(move || event_loop.run().1)
        } else {
            let event_loop = ServerEventLoop::new(listener, handler.clone(), options);
            shutdown = event_loop.shutdown_handle();
            std::thread::spawn(move || event_loop.run().1)
        };
        let mut drivers = Vec::new();
        for k in 0..M {
            let mut client = make_client(k, text, config, base);
            let dialer = dialer.clone();
            drivers.push(std::thread::spawn(move || {
                let policy = RetryPolicy {
                    retries: 8,
                    backoff: Duration::from_millis(1),
                    max_backoff: Duration::from_millis(20),
                    seed: client.id().0,
                };
                let curve = drive_client_resumable(
                    &mut client,
                    || {
                        let mut t = dialer.dial()?;
                        t.set_deadline(deadline)?;
                        Ok(t)
                    },
                    MSTEPS,
                    &policy,
                )
                .expect("every client overcomes a single forced fault kind");
                (curve_bits(&curve), adapter_bits(&client))
            }));
        }
        let results = drivers
            .into_iter()
            .map(|d| d.join().expect("driver thread"))
            .collect();
        shutdown.store(true, Ordering::Relaxed);
        let stats = loop_thread.join().expect("loop thread");
        (results, stats)
    }

    #[test]
    fn every_fault_kind_preserves_bit_identity() {
        let (text, config, base) = micro_setup();
        let (reference, _) = matrix_run(
            &text,
            &config,
            &base,
            None,
            EventLoopOptions::default(),
            None,
        );
        for (curve, _) in &reference {
            assert_eq!(curve.len(), MSTEPS);
        }
        let lossy = true; // the connection dies; recovery is a Resume
        let latency = false; // absorbed in place, no reconnect at all
        for (fault, kind) in [
            (Fault::KillRecvAfter(2), lossy),
            (Fault::KillQueueAfter(2), lossy),
            (Fault::HoldReplies(2), latency),
            (Fault::DelayFrames(2), latency),
            (Fault::DuplicateFrame(2), lossy),
            (Fault::CorruptBody(2), lossy),
        ] {
            let (survivors, stats) = matrix_run(
                &text,
                &config,
                &base,
                Some(fault),
                EventLoopOptions::default(),
                None,
            );
            assert_eq!(survivors, reference, "{fault:?} diverged from fault-free");
            if kind {
                assert!(
                    stats.conn_errors > 0,
                    "{fault:?} must be rejected server-side: {stats:?}"
                );
                assert!(
                    stats.resumed > 0,
                    "{fault:?} recovery must go through Resume: {stats:?}"
                );
            } else {
                assert_eq!(
                    stats.conn_errors, 0,
                    "{fault:?} is pure latency, no connection may fail: {stats:?}"
                );
                assert_eq!(
                    stats.resumed, 0,
                    "{fault:?} must be absorbed without a reconnect: {stats:?}"
                );
            }
        }
    }

    /// The partition fault in isolation: after the nth message the
    /// link goes silent with **no FIN in either direction**, so
    /// neither side ever sees a clean close. Recovery must run
    /// entirely on deadlines — the loop's `io_timeout` evicts the
    /// silent session into quarantine, and the client's transport
    /// deadline turns the blackholed reply into a retryable `Timeout`
    /// that redials and resumes. Bit-identity still holds, and the
    /// stats prove detection came from deadline expiry.
    #[test]
    fn partition_is_detected_by_deadline_expiry_not_clean_closes() {
        let (text, config, base) = micro_setup();
        let (reference, _) = matrix_run(
            &text,
            &config,
            &base,
            None,
            EventLoopOptions::default(),
            None,
        );
        for (curve, _) in &reference {
            assert_eq!(curve.len(), MSTEPS);
        }
        let (survivors, stats) = matrix_run(
            &text,
            &config,
            &base,
            Some(Fault::Partition(2)),
            EventLoopOptions {
                // Shorter than the client deadline below, so by the
                // time a partitioned client redials, its session is
                // already quarantined and the Resume lands first try.
                io_timeout: Some(Duration::from_millis(300)),
                ..EventLoopOptions::default()
            },
            Some(Duration::from_secs(1)),
        );
        assert_eq!(survivors, reference, "Partition diverged from fault-free");
        assert!(
            stats.evicted > 0,
            "detection must come from the io_timeout deadline: {stats:?}"
        );
        assert!(
            stats.resumed > 0,
            "recovery must go through Resume: {stats:?}"
        );
    }

    /// Snapshot-disk faults: an ENOSPC-style failure of the atomic
    /// snapshot write (injected by squatting a *directory* on the tmp
    /// path, which fails `File::create` even for root) must degrade
    /// durability only — training continues, `snapshot_errors` accrue,
    /// and the last good `server.snap` is byte-for-byte untouched. A
    /// torn tmp file left by a crash is likewise invisible to readers.
    #[test]
    fn snapshot_disk_faults_degrade_durability_not_service() {
        use menos::split::SnapshotPolicy;

        let dir = std::env::temp_dir().join(format!("menos-snapfault-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        let (text, config, base) = micro_setup();

        // Phase 1, healthy disk: one short run leaves a good snapshot.
        let handler = make_server(&config, &base);
        let (dialer, listener) = event_channel_listener();
        let event_loop = ServerEventLoop::new(
            listener,
            handler,
            EventLoopOptions {
                accept_limit: 1,
                ..EventLoopOptions::default()
            },
        )
        .with_snapshots(SnapshotPolicy::durable(&dir));
        let loop_thread = std::thread::spawn(move || event_loop.run().1);
        let mut client = make_client(0, &text, &config, &base);
        let mut transport = dialer.dial().expect("dial");
        drive_client(&mut client, &mut transport, 2).expect("healthy run");
        drop(transport);
        let stats = loop_thread.join().expect("loop thread");
        assert!(stats.snapshots > 0, "{stats:?}");
        assert_eq!(stats.snapshot_errors, 0, "{stats:?}");
        let last_good = SnapshotPolicy::read(&dir).expect("snapshot written");

        // Phase 2, disk fault: every atomic write now fails mid-flight.
        std::fs::create_dir_all(dir.join("server.snap.tmp")).expect("jam the tmp path");
        let handler = make_server(&config, &base);
        let (dialer, listener) = event_channel_listener();
        let event_loop = ServerEventLoop::new(
            listener,
            handler,
            EventLoopOptions {
                accept_limit: 1,
                ..EventLoopOptions::default()
            },
        )
        .with_snapshots(SnapshotPolicy::durable(&dir));
        let loop_thread = std::thread::spawn(move || event_loop.run().1);
        let mut client = make_client(0, &text, &config, &base);
        let mut transport = dialer.dial().expect("dial");
        let curve = drive_client(&mut client, &mut transport, 4).expect("training survives ENOSPC");
        assert_eq!(curve.points().len(), 4);
        drop(transport);
        let stats = loop_thread.join().expect("loop thread");
        assert_eq!(stats.snapshots, 0, "no write can succeed: {stats:?}");
        assert!(
            stats.snapshot_errors > 0,
            "faults must be counted: {stats:?}"
        );
        assert_eq!(
            SnapshotPolicy::read(&dir).expect("last good survives"),
            last_good,
            "a failed write must never damage the last good snapshot"
        );

        // A torn tmp file (crash mid-write) is ignored by readers: only
        // the atomically renamed server.snap is ever consulted.
        std::fs::remove_dir_all(dir.join("server.snap.tmp")).expect("unjam");
        std::fs::write(dir.join("server.snap.tmp"), b"torn partial write").expect("torn tmp");
        assert_eq!(
            SnapshotPolicy::read(&dir).expect("snapshot still reads"),
            last_good
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A stale epoch — a zombie client resuming with credentials from
/// before its last reconnect — is rejected with the typed error and
/// does *not* consume the quarantined state: the rightful owner can
/// still resume afterwards.
#[test]
fn stale_epoch_resume_is_rejected_with_a_typed_error() {
    let (text, config, base) = micro_setup();
    let server = make_server(&config, &base);
    let client = make_client(0, &text, &config, &base);
    let mut server = server.lock().unwrap();
    server
        .handle(ClientMessage::Connect {
            client: client.id(),
            ft: client.ft_config().clone(),
            split: client.split(),
            epoch: 1,
            codecs: 0,
        })
        .expect("connect");

    // The connection dies; the session is quarantined, not dropped.
    server.connection_lost(client.id());
    assert_eq!(server.active_clients(), 0);
    assert_eq!(server.quarantined_clients(), 1);

    let err = server
        .handle(ClientMessage::Resume {
            client: client.id(),
            epoch: 7,
            last_step: 0,
        })
        .expect_err("wrong epoch must be rejected");
    assert!(
        matches!(
            err,
            ProtocolError::StaleEpoch {
                expected: 1,
                got: 7,
                ..
            }
        ),
        "{err}"
    );
    // Rejection keeps the state: the real owner still resumes, and the
    // server proves it by bumping the epoch past the stale one.
    assert_eq!(server.quarantined_clients(), 1);
    let reply = server
        .handle(ClientMessage::Resume {
            client: client.id(),
            epoch: 1,
            last_step: 0,
        })
        .expect("rightful resume")
        .expect("resume replies");
    match reply {
        ServerMessage::Resumed {
            epoch, server_step, ..
        } => {
            assert_eq!(epoch, 2, "resume bumps the epoch");
            assert_eq!(server_step, 0);
        }
        other => panic!("expected Resumed, got {other:?}"),
    }
    assert_eq!(server.active_clients(), 1);
    assert_eq!(server.quarantined_clients(), 0);
}

/// Server-side deadlines end to end: a client that goes silent is
/// evicted on `io_timeout` (session quarantined, reservation freed),
/// the quarantine is reaped on `max_session_idle`, and a too-late
/// `Resume` is answered with an `Evicted(IdleExpired)` notice that the
/// retry driver surfaces as a terminal typed error.
#[test]
fn silent_clients_are_evicted_and_expired_resumes_get_a_terminal_notice() {
    let (text, config, base) = micro_setup();
    let handler = make_server(&config, &base);
    let (dialer, listener) = event_channel_listener();
    let event_loop = ServerEventLoop::new(
        listener,
        handler.clone(),
        EventLoopOptions {
            io_timeout: Some(Duration::from_millis(150)),
            max_session_idle: Some(Duration::from_millis(200)),
            ..EventLoopOptions::default()
        },
    );
    let shutdown = event_loop.shutdown_handle();
    let loop_thread = std::thread::spawn(move || event_loop.run());

    // Connect, then fall silent while holding the connection open.
    let mut client = make_client(0, &text, &config, &base);
    let mut transport = dialer.dial().expect("dial");
    transport
        .send(&ClientMessage::Connect {
            client: client.id(),
            ft: client.ft_config().clone(),
            split: client.split(),
            epoch: client.epoch(),
            codecs: 0,
        })
        .expect("send connect");
    match transport.recv().expect("ready") {
        ServerMessage::Ready { .. } => {}
        other => panic!("expected Ready, got {other:?}"),
    }
    let reserved = handler.lock().unwrap().reserved_bytes();
    assert!(reserved > 0);

    // Silence past the deadline: the server evicts (best-effort notice
    // on the still-open pipe) and quarantines.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        match transport.recv() {
            Ok(ServerMessage::Evicted { code, .. }) => {
                assert_eq!(format!("{code:?}"), "Timeout");
                break;
            }
            Ok(other) => panic!("expected Evicted, got {other:?}"),
            Err(ProtocolError::Disconnected) => break, // notice raced the drop
            Err(ProtocolError::Timeout) => {
                assert!(
                    std::time::Instant::now() < deadline,
                    "server never evicted the silent client"
                );
            }
            Err(e) => panic!("unexpected transport error: {e}"),
        }
    }
    // Wait out the quarantine TTL, then try to resume: too late.
    std::thread::sleep(Duration::from_millis(600));
    let policy = RetryPolicy {
        retries: 2,
        backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(5),
        seed: 0,
    };
    // First a fresh-connect driver path would succeed, so resume
    // manually to prove the expiry: the parked state is gone.
    let mut late = dialer.dial().expect("redial");
    late.send(&ClientMessage::Resume {
        client: client.id(),
        epoch: client.epoch(),
        last_step: 0,
    })
    .expect("send resume");
    match late.recv() {
        Ok(ServerMessage::Evicted { code, .. }) => {
            assert_eq!(format!("{code:?}"), "IdleExpired");
        }
        Ok(other) => panic!("expected Evicted notice, got {other:?}"),
        // The loop drops the conn right after the notice; losing the
        // race to the drop is acceptable.
        Err(ProtocolError::Disconnected) => {}
        Err(e) => panic!("unexpected transport error: {e}"),
    }

    // A fresh Connect (epoch reset by a new client instance) still
    // works — expiry never wedges an id — and the retry driver
    // finishes a short run despite the hostile timeouts.
    let curve = drive_client_resumable(&mut client, || dialer.dial(), 2, &policy)
        .expect("fresh run after expiry");
    assert_eq!(curve.points().len(), 2);

    shutdown.store(true, std::sync::atomic::Ordering::Relaxed);
    let (_h, stats) = loop_thread.join().expect("loop thread");
    assert!(stats.evicted >= 1, "{stats:?}");
    assert!(stats.expired >= 1, "{stats:?}");

    let mut handler = handler.lock().unwrap();
    assert_eq!(handler.active_clients(), 0);
    handler.expire_idle(Duration::from_millis(0));
    assert_eq!(handler.quarantined_clients(), 0);
    assert_eq!(handler.reserved_bytes(), 0);
}

//! Property-based tests on the tensor engine and data pipeline: the
//! algebraic identities the transformer math relies on.

use proptest::prelude::*;

use menos::data::Vocab;
use menos::net::{decode_tensor, encode_tensor};
use menos::tensor::Tensor;

fn small_vec(max_len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-10.0f32..10.0, 1..max_len)
}

proptest! {
    #[test]
    fn add_commutes_and_mul_distributes(a in small_vec(32)) {
        let n = a.len();
        let b: Vec<f32> = a.iter().map(|x| x * 0.5 - 1.0).collect();
        let ta = Tensor::from_vec(a, [n]);
        let tb = Tensor::from_vec(b, [n]);
        prop_assert!(ta.add(&tb).max_abs_diff(&tb.add(&ta)) < 1e-6);
        // (a + b) * 2 == 2a + 2b
        let lhs = ta.add(&tb).mul_scalar(2.0);
        let rhs = ta.mul_scalar(2.0).add(&tb.mul_scalar(2.0));
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-4);
    }

    #[test]
    fn matmul_identity_and_associativity(data in prop::collection::vec(-2.0f32..2.0, 16)) {
        let a = Tensor::from_vec(data.clone(), [4, 4]);
        let mut eye = vec![0.0f32; 16];
        for i in 0..4 { eye[i * 4 + i] = 1.0; }
        let id = Tensor::from_vec(eye, [4, 4]);
        prop_assert!(a.matmul(&id).max_abs_diff(&a) < 1e-6);
        prop_assert!(id.matmul(&a).max_abs_diff(&a) < 1e-6);
        // (A·B)·C == A·(B·C) within fp tolerance.
        let b = Tensor::from_vec(data.iter().map(|x| x * 0.3).collect::<Vec<_>>(), [4, 4]);
        let c = Tensor::from_vec(data.iter().map(|x| 1.0 - x).collect::<Vec<_>>(), [4, 4]);
        let lhs = a.matmul(&b).matmul(&c);
        let rhs = a.matmul(&b.matmul(&c));
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-3);
    }

    #[test]
    fn transpose_is_involutive(data in prop::collection::vec(-5.0f32..5.0, 12)) {
        let t = Tensor::from_vec(data, [3, 4]);
        prop_assert!(t.t().t().max_abs_diff(&t) < 1e-7);
    }

    #[test]
    fn softmax_rows_are_distributions(data in prop::collection::vec(-30.0f32..30.0, 24)) {
        let t = Tensor::from_vec(data, [4, 6]);
        let s = t.softmax_last();
        let v = s.to_vec();
        for r in 0..4 {
            let row = &v[r * 6..(r + 1) * 6];
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4, "row sum {sum}");
            prop_assert!(row.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn softmax_is_shift_invariant(data in prop::collection::vec(-5.0f32..5.0, 8), shift in -50.0f32..50.0) {
        let a = Tensor::from_vec(data.clone(), [2, 4]);
        let b = Tensor::from_vec(data.iter().map(|x| x + shift).collect::<Vec<_>>(), [2, 4]);
        prop_assert!(a.softmax_last().max_abs_diff(&b.softmax_last()) < 1e-4);
    }

    #[test]
    fn rope_preserves_pair_norms(data in prop::collection::vec(-3.0f32..3.0, 16), offset in 0usize..64) {
        let x = Tensor::from_vec(data, [1, 1, 2, 8]);
        let y = x.rope(10_000.0, offset);
        let xv = x.to_vec();
        let yv = y.to_vec();
        for p in 0..8 {
            let nx = xv[2 * p].powi(2) + xv[2 * p + 1].powi(2);
            let ny = yv[2 * p].powi(2) + yv[2 * p + 1].powi(2);
            prop_assert!((nx - ny).abs() < 1e-3, "pair {p}: {nx} vs {ny}");
        }
    }

    #[test]
    fn reshape_concat_chunk_round_trip(data in prop::collection::vec(-5.0f32..5.0, 24)) {
        let t = Tensor::from_vec(data, [4, 6]);
        let halves = t.chunk(2, 1);
        let back = Tensor::concat(&halves, 1);
        prop_assert!(back.max_abs_diff(&t) < 1e-7);
        let r = t.reshape([6, 4]).reshape([4, 6]);
        prop_assert!(r.max_abs_diff(&t) < 1e-7);
    }

    #[test]
    fn gradient_of_sum_is_ones(data in prop::collection::vec(-5.0f32..5.0, 10)) {
        let n = data.len();
        let x = Tensor::var_from_vec(data, [n]);
        let grads = x.sum_all().backward();
        let g = grads.get(&x).unwrap().to_vec();
        prop_assert!(g.iter().all(|&v| (v - 1.0).abs() < 1e-7));
    }

    #[test]
    fn linearity_of_gradients(data in prop::collection::vec(-3.0f32..3.0, 8), k in -4.0f32..4.0) {
        // d/dx sum(k * x) = k everywhere.
        let n = data.len();
        let x = Tensor::var_from_vec(data, [n]);
        let grads = x.mul_scalar(k).sum_all().backward();
        let g = grads.get(&x).unwrap().to_vec();
        prop_assert!(g.iter().all(|&v| (v - k).abs() < 1e-5));
    }

    #[test]
    fn wire_codec_round_trips(data in prop::collection::vec(-1e6f32..1e6, 1..64), split in 1usize..8) {
        let n = data.len();
        // Arbitrary rank-2 factorization when divisible, else rank-1.
        let t = if n % split == 0 && n / split > 0 {
            Tensor::from_vec(data, [split, n / split])
        } else {
            Tensor::from_vec(data, [n])
        };
        let back = decode_tensor(&encode_tensor(&t)).unwrap();
        prop_assert_eq!(back.dims(), t.dims());
        prop_assert_eq!(back.to_vec(), t.to_vec());
    }

    #[test]
    fn vocab_round_trips_any_text(words in prop::collection::vec("[a-z ]{1,12}", 1..12)) {
        let text = words.join(" ");
        let vocab = Vocab::from_text(&text);
        prop_assert_eq!(vocab.decode(&vocab.encode(&text)), text);
    }

    #[test]
    fn shared_storage_views_stay_coherent(data in prop::collection::vec(-5.0f32..5.0, 8), idx in 0usize..8, val in -10.0f32..10.0) {
        let n = data.len();
        let a = Tensor::from_vec(data, [n]);
        let view = Tensor::from_shared_storage(a.storage().clone(), [n], true);
        view.storage().write()[idx % n] = val;
        prop_assert_eq!(a.to_vec(), view.to_vec());
    }
}

// ----------------------------------------------------------------------
// Thread-count invariance of the parallel compute backend
// ----------------------------------------------------------------------

/// Deterministic data fill (SplitMix64) so each proptest case only has
/// to draw one seed instead of hundreds of kilobytes of floats.
fn fill(seed: u64, len: usize, scale: f32) -> Vec<f32> {
    let mut s = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    (0..len)
        .map(|_| {
            s = s.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            ((z >> 40) as f32 / (1u64 << 24) as f32 * 2.0 - 1.0) * scale
        })
        .collect()
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The acceptance property of the parallel backend: every kernel —
    /// forward and backward — is **bitwise** identical at 1, 2, and 4
    /// worker threads. Sizes are chosen above the parallelism
    /// threshold so the multi-threaded paths actually execute.
    #[test]
    fn kernels_bitwise_invariant_across_thread_counts(seed in any::<u64>()) {
        use menos::tensor::set_threads;
        // [batch, m, k] @ [k, n] with 2*b*m*k*n ≈ 7.9M scalar ops —
        // far above the backend's fan-out threshold.
        let (b, m, k, n) = (4usize, 48usize, 64usize, 160usize);
        let rows = b * m;
        let xs = fill(seed, b * m * k, 1.0);
        let ws = fill(seed ^ 0xabcd, k * n, 0.5);
        let targets: Vec<usize> =
            (0..rows).map(|r| (seed as usize).wrapping_mul(31).wrapping_add(r * 7) % n).collect();

        let restore = menos::tensor::threads();
        let mut reference: Option<Vec<Vec<u32>>> = None;
        for &t in &[1usize, 2, 4] {
            set_threads(t);
            let x = Tensor::var_from_vec(xs.clone(), [b, m, k]);
            let w = Tensor::var_from_vec(ws.clone(), [k, n]);
            let y = x.matmul(&w);
            let gamma = Tensor::var_from_vec(fill(seed ^ 0x77, n, 1.0), [n]);
            let beta = Tensor::var_from_vec(fill(seed ^ 0x99, n, 0.1), [n]);
            let sm = y.softmax_last();
            let ln = y.layer_norm(&gamma, &beta, 1e-5);
            let rn = y.rms_norm(&gamma, 1e-5);
            let act = y.gelu();
            let loss = y.cross_entropy(&targets);
            let grads = loss.backward();
            let outs = vec![
                bits(&y.to_vec()),
                bits(&sm.to_vec()),
                bits(&ln.to_vec()),
                bits(&rn.to_vec()),
                bits(&act.to_vec()),
                bits(&loss.to_vec()),
                bits(&grads.get(&x).unwrap().to_vec()),
                bits(&grads.get(&w).unwrap().to_vec()),
                bits(&ln.sum_all().backward().get(&gamma).unwrap().to_vec()),
            ];
            match &reference {
                None => reference = Some(outs),
                Some(r) => {
                    for (i, (got, want)) in outs.iter().zip(r.iter()).enumerate() {
                        prop_assert_eq!(got, want, "kernel output {} differs at {} threads", i, t);
                    }
                }
            }
        }
        set_threads(restore);
    }

    /// Rope and the batched-rhs matmul backward, same invariance.
    #[test]
    fn batched_and_rope_invariant_across_thread_counts(seed in any::<u64>()) {
        use menos::tensor::set_threads;
        let (b, h, s, d) = (4usize, 4usize, 64usize, 64usize);
        let xs = fill(seed, b * h * s * d, 1.0);
        let ks = fill(seed ^ 0x1234, b * h * d * s, 0.5);

        let restore = menos::tensor::threads();
        let mut reference: Option<Vec<Vec<u32>>> = None;
        for &t in &[1usize, 2, 4] {
            set_threads(t);
            let q = Tensor::var_from_vec(xs.clone(), [b, h, s, d]);
            let kt = Tensor::var_from_vec(ks.clone(), [b, h, d, s]);
            let rot = q.rope(10_000.0, 3);
            let scores = rot.matmul(&kt); // batched rhs path
            let grads = scores.sum_all().backward();
            let outs = vec![
                bits(&rot.to_vec()),
                bits(&scores.to_vec()),
                bits(&grads.get(&q).unwrap().to_vec()),
                bits(&grads.get(&kt).unwrap().to_vec()),
            ];
            match &reference {
                None => reference = Some(outs),
                Some(r) => {
                    for (i, (got, want)) in outs.iter().zip(r.iter()).enumerate() {
                        prop_assert_eq!(got, want, "kernel output {} differs at {} threads", i, t);
                    }
                }
            }
        }
        set_threads(restore);
    }
}

//! Property-based tests on the tensor engine and data pipeline: the
//! algebraic identities the transformer math relies on.

use proptest::prelude::*;

use menos::data::Vocab;
use menos::net::{decode_tensor, encode_tensor};
use menos::tensor::Tensor;

fn small_vec(max_len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-10.0f32..10.0, 1..max_len)
}

proptest! {
    #[test]
    fn add_commutes_and_mul_distributes(a in small_vec(32)) {
        let n = a.len();
        let b: Vec<f32> = a.iter().map(|x| x * 0.5 - 1.0).collect();
        let ta = Tensor::from_vec(a, [n]);
        let tb = Tensor::from_vec(b, [n]);
        prop_assert!(ta.add(&tb).max_abs_diff(&tb.add(&ta)) < 1e-6);
        // (a + b) * 2 == 2a + 2b
        let lhs = ta.add(&tb).mul_scalar(2.0);
        let rhs = ta.mul_scalar(2.0).add(&tb.mul_scalar(2.0));
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-4);
    }

    #[test]
    fn matmul_identity_and_associativity(data in prop::collection::vec(-2.0f32..2.0, 16)) {
        let a = Tensor::from_vec(data.clone(), [4, 4]);
        let mut eye = vec![0.0f32; 16];
        for i in 0..4 { eye[i * 4 + i] = 1.0; }
        let id = Tensor::from_vec(eye, [4, 4]);
        prop_assert!(a.matmul(&id).max_abs_diff(&a) < 1e-6);
        prop_assert!(id.matmul(&a).max_abs_diff(&a) < 1e-6);
        // (A·B)·C == A·(B·C) within fp tolerance.
        let b = Tensor::from_vec(data.iter().map(|x| x * 0.3).collect::<Vec<_>>(), [4, 4]);
        let c = Tensor::from_vec(data.iter().map(|x| 1.0 - x).collect::<Vec<_>>(), [4, 4]);
        let lhs = a.matmul(&b).matmul(&c);
        let rhs = a.matmul(&b.matmul(&c));
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-3);
    }

    #[test]
    fn transpose_is_involutive(data in prop::collection::vec(-5.0f32..5.0, 12)) {
        let t = Tensor::from_vec(data, [3, 4]);
        prop_assert!(t.t().t().max_abs_diff(&t) < 1e-7);
    }

    #[test]
    fn softmax_rows_are_distributions(data in prop::collection::vec(-30.0f32..30.0, 24)) {
        let t = Tensor::from_vec(data, [4, 6]);
        let s = t.softmax_last();
        let v = s.to_vec();
        for r in 0..4 {
            let row = &v[r * 6..(r + 1) * 6];
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4, "row sum {sum}");
            prop_assert!(row.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn softmax_is_shift_invariant(data in prop::collection::vec(-5.0f32..5.0, 8), shift in -50.0f32..50.0) {
        let a = Tensor::from_vec(data.clone(), [2, 4]);
        let b = Tensor::from_vec(data.iter().map(|x| x + shift).collect::<Vec<_>>(), [2, 4]);
        prop_assert!(a.softmax_last().max_abs_diff(&b.softmax_last()) < 1e-4);
    }

    #[test]
    fn rope_preserves_pair_norms(data in prop::collection::vec(-3.0f32..3.0, 16), offset in 0usize..64) {
        let x = Tensor::from_vec(data, [1, 1, 2, 8]);
        let y = x.rope(10_000.0, offset);
        let xv = x.to_vec();
        let yv = y.to_vec();
        for p in 0..8 {
            let nx = xv[2 * p].powi(2) + xv[2 * p + 1].powi(2);
            let ny = yv[2 * p].powi(2) + yv[2 * p + 1].powi(2);
            prop_assert!((nx - ny).abs() < 1e-3, "pair {p}: {nx} vs {ny}");
        }
    }

    #[test]
    fn reshape_concat_chunk_round_trip(data in prop::collection::vec(-5.0f32..5.0, 24)) {
        let t = Tensor::from_vec(data, [4, 6]);
        let halves = t.chunk(2, 1);
        let back = Tensor::concat(&halves, 1);
        prop_assert!(back.max_abs_diff(&t) < 1e-7);
        let r = t.reshape([6, 4]).reshape([4, 6]);
        prop_assert!(r.max_abs_diff(&t) < 1e-7);
    }

    #[test]
    fn gradient_of_sum_is_ones(data in prop::collection::vec(-5.0f32..5.0, 10)) {
        let n = data.len();
        let x = Tensor::var_from_vec(data, [n]);
        let grads = x.sum_all().backward();
        let g = grads.get(&x).unwrap().to_vec();
        prop_assert!(g.iter().all(|&v| (v - 1.0).abs() < 1e-7));
    }

    #[test]
    fn linearity_of_gradients(data in prop::collection::vec(-3.0f32..3.0, 8), k in -4.0f32..4.0) {
        // d/dx sum(k * x) = k everywhere.
        let n = data.len();
        let x = Tensor::var_from_vec(data, [n]);
        let grads = x.mul_scalar(k).sum_all().backward();
        let g = grads.get(&x).unwrap().to_vec();
        prop_assert!(g.iter().all(|&v| (v - k).abs() < 1e-5));
    }

    #[test]
    fn wire_codec_round_trips(data in prop::collection::vec(-1e6f32..1e6, 1..64), split in 1usize..8) {
        let n = data.len();
        // Arbitrary rank-2 factorization when divisible, else rank-1.
        let t = if n % split == 0 && n / split > 0 {
            Tensor::from_vec(data, [split, n / split])
        } else {
            Tensor::from_vec(data, [n])
        };
        let back = decode_tensor(&encode_tensor(&t)).unwrap();
        prop_assert_eq!(back.dims(), t.dims());
        prop_assert_eq!(back.to_vec(), t.to_vec());
    }

    #[test]
    fn vocab_round_trips_any_text(words in prop::collection::vec("[a-z ]{1,12}", 1..12)) {
        let text = words.join(" ");
        let vocab = Vocab::from_text(&text);
        prop_assert_eq!(vocab.decode(&vocab.encode(&text)), text);
    }

    #[test]
    fn shared_storage_views_stay_coherent(data in prop::collection::vec(-5.0f32..5.0, 8), idx in 0usize..8, val in -10.0f32..10.0) {
        let n = data.len();
        let a = Tensor::from_vec(data, [n]);
        let view = Tensor::from_shared_storage(a.storage().clone(), [n], true);
        view.storage().write()[idx % n] = val;
        prop_assert_eq!(a.to_vec(), view.to_vec());
    }
}

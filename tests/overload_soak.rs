//! The overload soak (v1.3 acceptance): 256 clients storm a server
//! whose live-session capacity is 64. Surplus connects are shed with
//! `Busy { retry_after_ms }`, shed clients wait out the hint and
//! retry, every client eventually completes, and — the contract's
//! teeth — every loss curve and final adapter weight is bit-identical
//! to an *uncontended* run of the same fleet, across three model
//! seeds.
//!
//! Overload must also stay bounded: the loop's own high-water metrics
//! prove live sessions never exceeded the cap and per-connection write
//! queues never grew past the configured buffer — no OOM path, no
//! unbounded growth, and shedding is not an error (`conn_errors` stays
//! zero; a shed is a polite refusal, not a failure).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use menos::adapters::FineTuneConfig;
use menos::core::{MenosServer, ServerMode, ServerSpec};
use menos::data::{wiki_corpus, LossCurve, TokenDataset, Vocab};
use menos::models::{CausalLm, ModelConfig};
use menos::sim::seeded_rng;
use menos::split::{
    drive_client_resumable, event_channel_listener, ClientId, EventLoopOptions, EventLoopStats,
    RetryPolicy, ServerEventLoop, SplitClient, SplitSpec,
};

/// The acceptance numbers: 4× oversubscription at fleet scale.
const N: u64 = 256;
const CAPACITY: usize = 64;
/// Steps per client: small, because the soak's subject is admission
/// and shedding, not the math — 256 clients × 4 steps × 2 runs × 3
/// seeds must fit a debug CI budget.
const STEPS: usize = 4;
/// Per-connection write-buffer bound for the contended run; generous
/// for a micro model, so crossing it would mean genuine runaway growth.
const WRITE_BUFFER: u64 = 1 << 20;

fn setup(model_seed: u64) -> (String, ModelConfig, Arc<Mutex<menos::tensor::ParamStore>>) {
    let text = wiki_corpus(model_seed, 3_000);
    let vocab = Vocab::from_text(&text);
    let mut config = ModelConfig::tiny_opt(vocab.size());
    config.hidden = 32;
    config.layers = 2;
    config.heads = 2;
    config.intermediate = 64;
    let mut rng = seeded_rng(model_seed, "overload-soak");
    let base = Arc::new(Mutex::new(menos::models::init_params(&config, &mut rng)));
    (text, config, base)
}

fn make_server(
    config: &ModelConfig,
    base: &Arc<Mutex<menos::tensor::ParamStore>>,
    model_seed: u64,
) -> Arc<Mutex<MenosServer>> {
    let view = base.lock().unwrap().shared_view(false);
    Arc::new(Mutex::new(MenosServer::from_store(
        config.clone(),
        view,
        ServerSpec::v100(ServerMode::menos()),
        model_seed,
    )))
}

fn make_client(
    k: u64,
    text: &str,
    config: &ModelConfig,
    base: &Arc<Mutex<menos::tensor::ParamStore>>,
) -> SplitClient {
    let vocab = Vocab::from_text(text);
    let mut ft = FineTuneConfig::paper(config);
    ft.batch_size = 1;
    ft.seq_len = 8;
    let ds = TokenDataset::new(vocab.encode(text), 8, k);
    let view = base.lock().unwrap().shared_view(false);
    SplitClient::new(
        ClientId(k),
        CausalLm::bind(config, &view),
        SplitSpec::paper(),
        ft,
        ds,
        k,
    )
}

type CurveBits = Vec<(usize, u32)>;
type AdapterBits = Vec<(String, Vec<u32>)>;

fn curve_bits(curve: &LossCurve) -> CurveBits {
    curve
        .points()
        .iter()
        .map(|&(s, l)| (s, l.to_bits()))
        .collect()
}

fn adapter_bits(client: &SplitClient) -> AdapterBits {
    let mut out: AdapterBits = client
        .adapter_params()
        .iter()
        .map(|(name, t)| {
            (
                name.clone(),
                t.to_vec().iter().map(|v| v.to_bits()).collect(),
            )
        })
        .collect();
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

/// Runs the whole fleet against a loop configured by `options`,
/// returning per-client results (in client order) and the loop stats.
fn run_fleet(
    text: &str,
    config: &ModelConfig,
    base: &Arc<Mutex<menos::tensor::ParamStore>>,
    model_seed: u64,
    options: EventLoopOptions,
) -> (Vec<(CurveBits, AdapterBits)>, EventLoopStats) {
    let handler = make_server(config, base, model_seed);
    let (dialer, listener) = event_channel_listener();
    let event_loop = ServerEventLoop::new(listener, handler.clone(), options);
    let shutdown: Arc<AtomicBool> = event_loop.shutdown_handle();
    let loop_thread = std::thread::spawn(move || event_loop.run().1);

    let mut drivers = Vec::new();
    for k in 0..N {
        let mut client = make_client(k, text, config, base);
        let dialer = dialer.clone();
        drivers.push(std::thread::spawn(move || {
            let policy = RetryPolicy {
                retries: 8,
                backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(50),
                seed: client.id().0,
            };
            // `Busy` sheds do not consume the retry budget (they are
            // load, not faults), so a client can wait out arbitrarily
            // long contention on a small budget.
            let curve = drive_client_resumable(&mut client, || dialer.dial(), STEPS, &policy)
                .expect("every client eventually completes under overload");
            (curve_bits(&curve), adapter_bits(&client))
        }));
    }
    let results = drivers
        .into_iter()
        .map(|d| d.join().expect("driver thread"))
        .collect();
    shutdown.store(true, Ordering::Relaxed);
    let stats = loop_thread.join().expect("loop thread");

    let mut handler = handler.lock().unwrap();
    assert_eq!(handler.active_clients(), 0);
    handler.expire_idle(Duration::from_millis(0));
    assert_eq!(handler.quarantined_clients(), 0);
    assert_eq!(
        handler.reserved_bytes(),
        0,
        "the Alg. 2 pool drains to zero"
    );
    (results, stats)
}

#[test]
fn overload_soak_is_bit_identical_to_an_uncontended_run() {
    for model_seed in [43u64, 44, 45] {
        let (text, config, base) = setup(model_seed);

        // The uncontended reference: same fleet, no capacity cap.
        let (reference, _) = run_fleet(
            &text,
            &config,
            &base,
            model_seed,
            EventLoopOptions::default(),
        );
        for (curve, _) in &reference {
            assert_eq!(curve.len(), STEPS);
        }

        // The contended run: 256 clients vs 64 live-session slots,
        // with the write-buffer bound armed so runaway queue growth
        // would be an eviction (and a failed test), not an OOM.
        let (survivors, stats) = run_fleet(
            &text,
            &config,
            &base,
            model_seed,
            EventLoopOptions {
                capacity: CAPACITY,
                busy_retry_after: Duration::from_millis(5),
                max_write_buffer: Some(WRITE_BUFFER),
                ..EventLoopOptions::default()
            },
        );

        assert_eq!(
            survivors, reference,
            "overload diverged from uncontended (seed {model_seed})"
        );

        // 4× oversubscription must actually shed...
        assert!(stats.shed > 0, "no connect was ever shed: {stats:?}");
        // ...while staying bounded: the live-session high-water mark
        // respects the cap, write queues never crossed the buffer
        // bound, and nothing was treated as an error or quarantined.
        assert!(
            stats.max_live_sessions <= CAPACITY,
            "live sessions exceeded capacity (seed {model_seed}): {stats:?}"
        );
        assert!(
            stats.max_queued_write_bytes <= WRITE_BUFFER,
            "write queues grew past the bound (seed {model_seed}): {stats:?}"
        );
        assert_eq!(stats.write_overflows, 0, "{stats:?}");
        assert_eq!(
            stats.conn_errors, 0,
            "a shed is a polite refusal, not a connection error: {stats:?}"
        );
        assert_eq!(stats.resumed, 0, "sheds retry as fresh connects: {stats:?}");
    }
}

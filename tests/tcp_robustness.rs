//! Robustness of the TCP transport: malformed peers and abrupt
//! disconnects must not poison the server or other clients, and a
//! failed connection must reclaim its session memory.

use std::io::Write;
use std::net::TcpStream;
use std::sync::{Arc, Mutex};

use menos::adapters::FineTuneConfig;
use menos::core::{MenosServer, ServerMode, ServerSpec};
use menos::data::{wiki_corpus, TokenDataset, Vocab};
use menos::models::{CausalLm, ModelConfig};
use menos::sim::seeded_rng;
use menos::split::{run_tcp_client, ClientId, ForwardMode, SplitClient, SplitSpec, TcpSplitServer};

fn setup() -> (
    String,
    Vocab,
    ModelConfig,
    Arc<Mutex<menos::tensor::ParamStore>>,
) {
    let text = wiki_corpus(55, 12_000);
    let vocab = Vocab::from_text(&text);
    let config = ModelConfig::tiny_opt(vocab.size());
    let mut rng = seeded_rng(55, "tcp-robust");
    let base = Arc::new(Mutex::new(menos::models::init_params(&config, &mut rng)));
    (text, vocab, config, base)
}

fn spawn_server(
    config: &ModelConfig,
    base: &Arc<Mutex<menos::tensor::ParamStore>>,
    seed: u64,
    mode: ForwardMode,
    clients: usize,
) -> (TcpSplitServer, Arc<Mutex<MenosServer>>) {
    let view = base.lock().unwrap().shared_view(false);
    let mut srv = MenosServer::from_store(
        config.clone(),
        view,
        ServerSpec::v100(ServerMode::menos()),
        seed,
    );
    srv.set_forward_mode(mode);
    let handler = Arc::new(Mutex::new(srv));
    let server = TcpSplitServer::spawn("127.0.0.1:0", handler.clone(), clients).expect("bind");
    (server, handler)
}

fn make_client(
    k: u64,
    text: &str,
    config: &ModelConfig,
    base: &Arc<Mutex<menos::tensor::ParamStore>>,
) -> SplitClient {
    let vocab = Vocab::from_text(text);
    let mut ft = FineTuneConfig::paper(config);
    ft.batch_size = 2;
    ft.seq_len = 16;
    let ds = TokenDataset::new(vocab.encode(text), 16, k);
    let view = base.lock().unwrap().shared_view(false);
    SplitClient::new(
        ClientId(k),
        CausalLm::bind(config, &view),
        SplitSpec::paper(),
        ft,
        ds,
        k,
    )
}

#[test]
fn garbage_peer_does_not_poison_healthy_clients() {
    let (text, _vocab, config, base) = setup();
    // Serve three connections: one garbage, two healthy.
    let (server, handler) = spawn_server(&config, &base, 700, ForwardMode::NoGradReforward, 3);
    let addr = server.addr();

    // Garbage peer: random bytes (not even a valid frame header), then
    // abrupt close. Its connection thread must fail in isolation.
    {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.write_all(&[0xFF; 64]).expect("write garbage");
        // Dropped here: abrupt disconnect.
    }

    // Healthy clients still train fine afterwards.
    let mut handles = Vec::new();
    for k in 0..2u64 {
        let text = text.clone();
        let config = config.clone();
        let base = base.clone();
        handles.push(std::thread::spawn(move || {
            let mut client = make_client(k, &text, &config, &base);
            run_tcp_client(addr, &mut client, 4).expect("healthy client")
        }));
    }
    for h in handles {
        let curve = h.join().expect("thread");
        assert_eq!(curve.points().len(), 4);
    }
    server.join();
    // Every session — including any the garbage peer might have opened —
    // is reclaimed.
    assert_eq!(handler.lock().unwrap().active_clients(), 0);
}

#[test]
fn mid_session_disconnect_is_contained() {
    let (text, _vocab, config, base) = setup();
    let (server, handler) = spawn_server(&config, &base, 701, ForwardMode::Cached, 2);
    let addr = server.addr();

    // First peer: a syntactically plausible-looking stream that is not
    // a valid frame (wrong magic), then vanishes. The server closes
    // the connection instead of hanging.
    {
        use std::io::Read;
        let mut s = TcpStream::connect(addr).expect("connect");
        s.write_all(&[3u8]).expect("type");
        s.write_all(&8u64.to_le_bytes()).expect("len");
        s.write_all(&[0u8; 8]).expect("payload");
        // The server rejects (bad frame) and closes; our read sees EOF
        // rather than a hang.
        let mut buf = [0u8; 1];
        let _ = s.read(&mut buf);
    }

    // The remaining slot still serves a real client.
    let mut client = make_client(1, &text, &config, &base);
    let curve = run_tcp_client(addr, &mut client, 3).expect("client after bad peer");
    assert_eq!(curve.points().len(), 3);
    server.join();
    assert_eq!(handler.lock().unwrap().active_clients(), 0);
}

#[test]
fn clients_with_different_configs_share_one_server() {
    let (text, _vocab, config, base) = setup();
    let (server, handler) = spawn_server(&config, &base, 702, ForwardMode::NoGradReforward, 2);
    let addr = server.addr();

    let mut handles = Vec::new();
    for (k, (batch, rank)) in [(2usize, 4usize), (4, 8)].into_iter().enumerate() {
        let text = text.clone();
        let config = config.clone();
        let base = base.clone();
        handles.push(std::thread::spawn(move || {
            let vocab = Vocab::from_text(&text);
            let mut ft = FineTuneConfig::paper(&config);
            ft.batch_size = batch;
            ft.seq_len = 16;
            if let menos::adapters::AdapterKind::Lora { spec, .. } = &mut ft.adapter {
                spec.rank = rank;
            }
            let ds = TokenDataset::new(vocab.encode(&text), 16, k as u64);
            let view = base.lock().unwrap().shared_view(false);
            let mut client = SplitClient::new(
                ClientId(k as u64),
                CausalLm::bind(&config, &view),
                SplitSpec::paper(),
                ft,
                ds,
                k as u64,
            );
            run_tcp_client(addr, &mut client, 3).expect("heterogeneous client")
        }));
    }
    for h in handles {
        assert_eq!(h.join().expect("thread").points().len(), 3);
    }
    server.join();
    assert_eq!(handler.lock().unwrap().active_clients(), 0);
}

//! The acceptance harness of the unified transport stack: every
//! transport moves the same codec bytes through the same state
//! machine, so (a) training is byte-identical across transports and
//! (b) injected faults surface as typed [`ProtocolError`]s that
//! reclaim the failed client's session and leave other clients
//! training.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use menos::adapters::FineTuneConfig;
use menos::core::{MenosServer, ProtocolError, ServerMode, ServerSpec};
use menos::data::{wiki_corpus, LossCurve, TokenDataset, Vocab};
use menos::models::{CausalLm, ModelConfig};
use menos::net::WireError;
use menos::sim::seeded_rng;
use menos::split::{
    channel_pair, drive_client, event_channel_listener, event_sim_listener, serve_loop, sim_pair,
    ClientId, ClientMessage, EventLoopOptions, EventLoopStats, FaultTransport, ServerEventLoop,
    ServerMessage, SplitClient, SplitSpec, TcpEventServer, TcpSplitServer, Transport,
};

const SEED: u64 = 4100;

fn setup() -> (
    String,
    Vocab,
    ModelConfig,
    Arc<Mutex<menos::tensor::ParamStore>>,
) {
    let text = wiki_corpus(41, 12_000);
    let vocab = Vocab::from_text(&text);
    let config = ModelConfig::tiny_opt(vocab.size());
    let mut rng = seeded_rng(41, "transport-unification");
    let base = Arc::new(Mutex::new(menos::models::init_params(&config, &mut rng)));
    (text, vocab, config, base)
}

fn make_server(
    config: &ModelConfig,
    base: &Arc<Mutex<menos::tensor::ParamStore>>,
) -> Arc<Mutex<MenosServer>> {
    let view = base.lock().unwrap().shared_view(false);
    Arc::new(Mutex::new(MenosServer::from_store(
        config.clone(),
        view,
        ServerSpec::v100(ServerMode::menos()),
        SEED,
    )))
}

fn make_client(
    k: u64,
    text: &str,
    config: &ModelConfig,
    base: &Arc<Mutex<menos::tensor::ParamStore>>,
) -> SplitClient {
    let vocab = Vocab::from_text(text);
    let mut ft = FineTuneConfig::paper(config);
    ft.batch_size = 2;
    ft.seq_len = 16;
    let ds = TokenDataset::new(vocab.encode(text), 16, k);
    let view = base.lock().unwrap().shared_view(false);
    SplitClient::new(
        ClientId(k),
        CausalLm::bind(config, &view),
        SplitSpec::paper(),
        ft,
        ds,
        k,
    )
}

fn connect_msg(client: &SplitClient) -> ClientMessage {
    ClientMessage::Connect {
        client: client.id(),
        ft: client.ft_config().clone(),
        split: client.split(),
        epoch: 1,
        codecs: 0,
    }
}

/// One scripted training step's worth of frames for `client`, captured
/// by running the real client against a scratch server.
fn train_over_channel(
    client: &mut SplitClient,
    handler: Arc<Mutex<MenosServer>>,
    steps: usize,
) -> LossCurve {
    let (mut client_t, mut server_t) = channel_pair();
    let server = std::thread::spawn(move || {
        let mut handler = handler;
        serve_loop(&mut server_t, &mut handler)
    });
    let curve = drive_client(client, &mut client_t, steps).expect("channel training");
    server.join().expect("server thread").expect("clean serve");
    curve
}

#[test]
fn same_messages_give_byte_identical_curves_on_every_transport() {
    let (text, _vocab, config, base) = setup();
    const STEPS: usize = 4;

    // In-memory channels.
    let mut client = make_client(0, &text, &config, &base);
    let channel_curve = train_over_channel(&mut client, make_server(&config, &base), STEPS);

    // Real TCP sockets.
    let handler = make_server(&config, &base);
    let server = TcpSplitServer::spawn("127.0.0.1:0", handler, 1).expect("bind");
    let mut client = make_client(0, &text, &config, &base);
    let tcp_curve =
        menos::split::run_tcp_client(server.addr(), &mut client, STEPS).expect("tcp training");
    server.join();

    // Simulated WAN (same bytes, plus virtual transfer time).
    let (mut client_t, mut server_t) =
        sim_pair(menos::net::WanLink::lan(7), menos::net::WanLink::lan(8));
    let handler = make_server(&config, &base);
    let sim_server = std::thread::spawn(move || {
        let mut handler = handler;
        serve_loop(&mut server_t, &mut handler)
    });
    let mut client = make_client(0, &text, &config, &base);
    let sim_curve = drive_client(&mut client, &mut client_t, STEPS).expect("sim training");
    sim_server.join().expect("thread").expect("clean serve");
    assert!(client_t.elapsed() > menos::sim::Nanos(0));

    // Bit-exact equality: same client, same server seed, same bytes on
    // the wire → the same floats, regardless of transport.
    let bits = |curve: &LossCurve| -> Vec<(usize, u32)> {
        curve
            .points()
            .iter()
            .map(|&(s, l)| (s, l.to_bits()))
            .collect()
    };
    assert_eq!(channel_curve.points().len(), STEPS);
    assert_eq!(bits(&channel_curve), bits(&tcp_curve));
    assert_eq!(bits(&channel_curve), bits(&sim_curve));
}

/// Runs a fault script against a fresh `MenosServer`, returning the
/// serve-loop error and the handler for post-mortem assertions.
fn run_script(
    handler: Arc<Mutex<MenosServer>>,
    script: impl FnOnce(&mut FaultTransport, &ClientMessage),
    connect: &ClientMessage,
) -> ProtocolError {
    let mut transport = FaultTransport::new();
    script(&mut transport, connect);
    let mut h = handler;
    serve_loop(&mut transport, &mut h).expect_err("script must fail the connection")
}

#[test]
fn injected_faults_surface_typed_errors_and_reclaim_sessions() {
    let (text, _vocab, config, base) = setup();
    let handler = make_server(&config, &base);

    let victim = make_client(7, &text, &config, &base);
    let connect = connect_msg(&victim);
    let activations = ClientMessage::Activations {
        client: ClientId(7),
        frame: menos::net::encode_tensor(&menos::tensor::Tensor::zeros([2, 16, 64])),
    };

    // Truncated frame after a successful connect.
    let err = run_script(
        handler.clone(),
        |t, connect| {
            t.push_message(connect);
            t.push_truncated(&activations, 9);
        },
        &connect,
    );
    assert!(
        matches!(err, ProtocolError::Wire(WireError::Truncated)),
        "{err}"
    );
    assert_eq!(handler.lock().unwrap().active_clients(), 0);

    // Hostile oversize length declaration.
    let err = run_script(
        handler.clone(),
        |t, connect| {
            t.push_message(connect);
            t.push_oversize_header(u32::MAX);
        },
        &connect,
    );
    assert!(
        matches!(err, ProtocolError::Wire(WireError::TooLarge { .. })),
        "{err}"
    );
    assert_eq!(handler.lock().unwrap().active_clients(), 0);

    // Out-of-order message: gradients before any forward.
    let err = run_script(
        handler.clone(),
        |t, connect| {
            t.push_message(connect);
            t.push_message(&ClientMessage::Gradients {
                client: ClientId(7),
                frame: menos::net::encode_tensor(&menos::tensor::Tensor::zeros([2, 16, 64])),
            });
        },
        &connect,
    );
    assert!(matches!(err, ProtocolError::OutOfOrder(_)), "{err}");
    assert_eq!(handler.lock().unwrap().active_clients(), 0);

    // Mid-step disconnect: the script runs dry after one good step's
    // first message, modelling an abrupt hang-up.
    let err = run_script(
        handler.clone(),
        |t, connect| {
            t.push_message(connect);
            t.push_message(&activations);
        },
        &connect,
    );
    assert!(matches!(err, ProtocolError::Disconnected), "{err}");
    assert_eq!(handler.lock().unwrap().active_clients(), 0);

    // Deadline enforcement: a frame that arrives too late.
    let err = {
        let mut transport = FaultTransport::new();
        transport
            .set_deadline(Some(Duration::from_millis(100)))
            .unwrap();
        transport.push_message(&connect);
        transport.push_delayed(&activations, Duration::from_secs(120));
        let mut h = handler.clone();
        serve_loop(&mut transport, &mut h).expect_err("late frame must fail")
    };
    assert!(matches!(err, ProtocolError::Timeout), "{err}");
    assert_eq!(handler.lock().unwrap().active_clients(), 0);

    // Through all that abuse, an unrelated client still trains on the
    // same server instance.
    let mut healthy = make_client(1, &text, &config, &base);
    let curve = train_over_channel(&mut healthy, handler.clone(), 3);
    assert_eq!(curve.points().len(), 3);
    assert_eq!(handler.lock().unwrap().active_clients(), 0);
}

// ----------------------------------------------------------------------
// Event-driven server: batched steps must be bit-identical to the
// blocking thread-per-client pump, on every transport.
// ----------------------------------------------------------------------

type CurveBits = Vec<(usize, u32)>;

fn bits(curve: &LossCurve) -> CurveBits {
    curve
        .points()
        .iter()
        .map(|&(s, l)| (s, l.to_bits()))
        .collect()
}

/// Trains `n` clients concurrently against one shared server via the
/// blocking pump (one `serve_loop` thread per client) — the reference
/// the event loop must reproduce bit-for-bit.
fn blocking_fleet(
    n: u64,
    steps: usize,
    text: &str,
    config: &ModelConfig,
    base: &Arc<Mutex<menos::tensor::ParamStore>>,
) -> Vec<CurveBits> {
    let handler = make_server(config, base);
    let mut drivers = Vec::new();
    let mut servers = Vec::new();
    for k in 0..n {
        let (mut client_t, mut server_t) = channel_pair();
        let mut h = handler.clone();
        servers.push(std::thread::spawn(move || {
            serve_loop(&mut server_t, &mut h)
        }));
        let mut client = make_client(k, text, config, base);
        drivers.push(std::thread::spawn(move || {
            bits(&drive_client(&mut client, &mut client_t, steps).expect("blocking fleet"))
        }));
    }
    let curves = drivers
        .into_iter()
        .map(|d| d.join().expect("driver thread"))
        .collect();
    for s in servers {
        s.join().expect("server thread").expect("clean serve");
    }
    assert_eq!(handler.lock().unwrap().active_clients(), 0);
    curves
}

/// Trains `n` clients against one `ServerEventLoop` thread over
/// in-memory channels, returning per-client curves and loop counters.
fn event_loop_fleet(
    n: u64,
    steps: usize,
    text: &str,
    config: &ModelConfig,
    base: &Arc<Mutex<menos::tensor::ParamStore>>,
) -> (Vec<CurveBits>, EventLoopStats) {
    let handler = make_server(config, base);
    let (dialer, listener) = event_channel_listener();
    let event_loop = ServerEventLoop::new(
        listener,
        handler.clone(),
        EventLoopOptions {
            accept_limit: n as usize,
            ..EventLoopOptions::default()
        },
    );
    let loop_thread = std::thread::spawn(move || event_loop.run());
    let mut drivers = Vec::new();
    for k in 0..n {
        let mut client = make_client(k, text, config, base);
        let dialer = dialer.clone();
        drivers.push(std::thread::spawn(move || {
            let mut transport = dialer.dial().expect("dial");
            bits(&drive_client(&mut client, &mut transport, steps).expect("event-loop fleet"))
        }));
    }
    let curves: Vec<CurveBits> = drivers
        .into_iter()
        .map(|d| d.join().expect("driver thread"))
        .collect();
    let (_h, stats) = loop_thread.join().expect("loop thread");
    assert_eq!(handler.lock().unwrap().active_clients(), 0);
    (curves, stats)
}

#[test]
fn event_loop_curves_are_bit_identical_to_blocking_on_all_transports() {
    let (text, _vocab, config, base) = setup();
    const N: u64 = 4;
    const STEPS: usize = 3;

    let reference = blocking_fleet(N, STEPS, &text, &config, &base);
    for curve in &reference {
        assert_eq!(curve.len(), STEPS);
    }

    // Channel transport through the event loop.
    let (channel_curves, stats) = event_loop_fleet(N, STEPS, &text, &config, &base);
    assert_eq!(channel_curves, reference, "channel event loop diverged");
    assert_eq!(stats.accepted, N);
    assert_eq!(stats.served, N);
    assert_eq!(stats.conn_errors, 0);
    assert_eq!(stats.batched_messages, N * STEPS as u64 * 2);

    // Simulated WAN through the event loop (same bytes, plus virtual
    // transfer time on heterogeneous per-client links).
    let handler = make_server(&config, &base);
    let (dialer, listener) = event_sim_listener();
    let event_loop = ServerEventLoop::new(
        listener,
        handler.clone(),
        EventLoopOptions {
            accept_limit: N as usize,
            ..EventLoopOptions::default()
        },
    );
    let loop_thread = std::thread::spawn(move || event_loop.run());
    let mut drivers = Vec::new();
    for k in 0..N {
        let mut client = make_client(k, &text, &config, &base);
        let dialer = dialer.clone();
        drivers.push(std::thread::spawn(move || {
            let mut transport = dialer
                .dial(
                    menos::net::WanLink::lan(7 + k),
                    menos::net::WanLink::lan(100 + k),
                )
                .expect("sim dial");
            bits(&drive_client(&mut client, &mut transport, STEPS).expect("sim event loop"))
        }));
    }
    let sim_curves: Vec<CurveBits> = drivers
        .into_iter()
        .map(|d| d.join().expect("driver thread"))
        .collect();
    loop_thread.join().expect("loop thread");
    assert_eq!(sim_curves, reference, "sim event loop diverged");

    // Real TCP sockets through the event loop (nonblocking reads,
    // partial-frame reassembly, write queues).
    let handler = make_server(&config, &base);
    let server = TcpEventServer::spawn(
        "127.0.0.1:0",
        handler.clone(),
        EventLoopOptions {
            accept_limit: N as usize,
            ..EventLoopOptions::default()
        },
        menos::split::TcpOptions::default(),
    )
    .expect("bind");
    let addr = server.addr();
    let mut drivers = Vec::new();
    for k in 0..N {
        let mut client = make_client(k, &text, &config, &base);
        drivers.push(std::thread::spawn(move || {
            bits(&menos::split::run_tcp_client(addr, &mut client, STEPS).expect("tcp event loop"))
        }));
    }
    let tcp_curves: Vec<CurveBits> = drivers
        .into_iter()
        .map(|d| d.join().expect("driver thread"))
        .collect();
    let (_h, tcp_stats) = server.join().expect("loop finished");
    assert_eq!(tcp_curves, reference, "tcp event loop diverged");
    assert_eq!(tcp_stats.served, N);
}

/// The deterministic core of the bit-identity claim, with no thread
/// timing involved: feeding `handle_batch` all clients' messages at
/// once must produce byte-identical reply frames to dispatching each
/// client alone through `handle`.
#[test]
fn stacked_handle_batch_replies_are_byte_identical_to_solo_dispatch() {
    let (text, _vocab, config, base) = setup();
    const N: u64 = 3;
    const STEPS: usize = 2;

    let solo = make_server(&config, &base);
    let batched = make_server(&config, &base);
    let mut solo_clients: Vec<SplitClient> = (0..N)
        .map(|k| make_client(k, &text, &config, &base))
        .collect();
    let mut batch_clients: Vec<SplitClient> = (0..N)
        .map(|k| make_client(k, &text, &config, &base))
        .collect();

    for client in &solo_clients {
        solo.lock().unwrap().handle(connect_msg(client)).unwrap();
    }
    for client in &batch_clients {
        batched.lock().unwrap().handle(connect_msg(client)).unwrap();
    }

    let tensor_frame = |reply: &ServerMessage| -> bytes::Bytes {
        match reply {
            ServerMessage::ServerActivations { frame, .. }
            | ServerMessage::ServerGradients { frame, .. } => frame.clone(),
            other => panic!("unexpected reply {other:?}"),
        }
    };

    for _ in 0..STEPS {
        // Forward: solo one at a time, batched all at once.
        let mut solo_xs = Vec::new();
        for client in &mut solo_clients {
            let x_c = client.start_step();
            let reply = solo
                .lock()
                .unwrap()
                .handle(ClientMessage::Activations {
                    client: client.id(),
                    frame: menos::net::encode_tensor(&x_c),
                })
                .unwrap()
                .unwrap();
            solo_xs.push(tensor_frame(&reply));
        }
        let batch_msgs: Vec<ClientMessage> = batch_clients
            .iter_mut()
            .map(|client| ClientMessage::Activations {
                client: client.id(),
                frame: menos::net::encode_tensor(&client.start_step()),
            })
            .collect();
        let mut replies = batched.lock().unwrap().handle_batch(batch_msgs);
        replies.sort_by_key(|(client, _)| *client);
        let batch_xs: Vec<bytes::Bytes> = replies
            .iter()
            .map(|(_, r)| tensor_frame(r.as_ref().unwrap().as_ref().unwrap()))
            .collect();
        assert_eq!(solo_xs, batch_xs, "stacked forward diverged");

        // Backward: gradients computed by bit-identical clients.
        let mut solo_gs = Vec::new();
        for (client, x_frame) in solo_clients.iter_mut().zip(&solo_xs) {
            let x_s = menos::net::decode_tensor(x_frame).unwrap();
            let (_loss, g_c) = client.receive_server_activations(&x_s);
            let reply = solo
                .lock()
                .unwrap()
                .handle(ClientMessage::Gradients {
                    client: client.id(),
                    frame: menos::net::encode_tensor(&g_c),
                })
                .unwrap()
                .unwrap();
            solo_gs.push(tensor_frame(&reply));
        }
        let batch_msgs: Vec<ClientMessage> = batch_clients
            .iter_mut()
            .zip(&batch_xs)
            .map(|(client, x_frame)| {
                let x_s = menos::net::decode_tensor(x_frame).unwrap();
                let (_loss, g_c) = client.receive_server_activations(&x_s);
                ClientMessage::Gradients {
                    client: client.id(),
                    frame: menos::net::encode_tensor(&g_c),
                }
            })
            .collect();
        let mut replies = batched.lock().unwrap().handle_batch(batch_msgs);
        replies.sort_by_key(|(client, _)| *client);
        let batch_gs: Vec<bytes::Bytes> = replies
            .iter()
            .map(|(_, r)| tensor_frame(r.as_ref().unwrap().as_ref().unwrap()))
            .collect();
        assert_eq!(solo_gs, batch_gs, "stacked backward diverged");

        for (client, g_frame) in solo_clients.iter_mut().zip(&solo_gs) {
            client.receive_server_gradients(&menos::net::decode_tensor(g_frame).unwrap());
        }
        for (client, g_frame) in batch_clients.iter_mut().zip(&batch_gs) {
            client.receive_server_gradients(&menos::net::decode_tensor(g_frame).unwrap());
        }
    }

    // Final sanity: the loss curves of both fleets agree bit-for-bit.
    for (a, b) in solo_clients.iter().zip(&batch_clients) {
        assert_eq!(bits(a.curve()), bits(b.curve()));
    }
}

#[test]
fn one_event_loop_thread_drives_32_concurrent_clients() {
    let (text, _vocab, config, base) = setup();
    const N: u64 = 32;
    const STEPS: usize = 2;

    let (curves, stats) = event_loop_fleet(N, STEPS, &text, &config, &base);
    assert_eq!(curves.len(), N as usize);
    for curve in &curves {
        assert_eq!(curve.len(), STEPS, "every client finishes training");
    }
    assert_eq!(stats.accepted, N);
    assert_eq!(stats.served, N);
    assert_eq!(stats.conn_errors, 0);
    assert_eq!(stats.batched_messages, N * STEPS as u64 * 2);
    // The whole point of the event loop: with 32 clients hammering one
    // thread, ready sets pile up while the handler computes, so
    // dispatches genuinely batch instead of degenerating to one
    // message each.
    assert!(stats.max_batch >= 2, "no batching happened: {stats:?}");
    assert!(
        stats.batches < stats.batched_messages,
        "every dispatch was a singleton: {stats:?}"
    );
}

/// Batched-step isolation: a client that dies mid-batch — after its
/// activations joined a 32-wide stacked forward but before it sent
/// gradients — is excised without perturbing the 31 survivors. Their
/// reply frames stay byte-identical to solo dispatch, the dead session
/// is quarantined (not leaked), and its Alg. 2 pool reservation is
/// reclaimed once the quarantine expires.
#[test]
fn mid_batch_disconnect_excises_one_client_and_leaves_31_peers_bit_identical() {
    let (text, _vocab, config, base) = setup();
    const N: u64 = 32;
    const VICTIM: ClientId = ClientId(13);

    let solo = make_server(&config, &base);
    let batched = make_server(&config, &base);
    let mut solo_clients: Vec<SplitClient> = (0..N)
        .map(|k| make_client(k, &text, &config, &base))
        .collect();
    let mut batch_clients: Vec<SplitClient> = (0..N)
        .map(|k| make_client(k, &text, &config, &base))
        .collect();
    for client in &solo_clients {
        solo.lock().unwrap().handle(connect_msg(client)).unwrap();
    }
    for client in &batch_clients {
        batched.lock().unwrap().handle(connect_msg(client)).unwrap();
    }
    let full_reservation = batched.lock().unwrap().reserved_bytes();
    assert!(full_reservation > 0, "connects reserve pool capacity");

    let tensor_frame = |reply: &ServerMessage| -> bytes::Bytes {
        match reply {
            ServerMessage::ServerActivations { frame, .. }
            | ServerMessage::ServerGradients { frame, .. } => frame.clone(),
            other => panic!("unexpected reply {other:?}"),
        }
    };

    // Solo reference: every client, including the future victim, runs
    // the full forward alone.
    let mut solo_xs = Vec::new();
    for client in &mut solo_clients {
        let x_c = client.start_step();
        let reply = solo
            .lock()
            .unwrap()
            .handle(ClientMessage::Activations {
                client: client.id(),
                frame: menos::net::encode_tensor(&x_c),
            })
            .unwrap()
            .unwrap();
        solo_xs.push(tensor_frame(&reply));
    }

    // Stacked forward with all 32 aboard.
    let batch_msgs: Vec<ClientMessage> = batch_clients
        .iter_mut()
        .map(|client| ClientMessage::Activations {
            client: client.id(),
            frame: menos::net::encode_tensor(&client.start_step()),
        })
        .collect();
    let mut replies = batched.lock().unwrap().handle_batch(batch_msgs);
    replies.sort_by_key(|(client, _)| *client);
    let batch_xs: Vec<bytes::Bytes> = replies
        .iter()
        .map(|(_, r)| tensor_frame(r.as_ref().unwrap().as_ref().unwrap()))
        .collect();
    assert_eq!(solo_xs, batch_xs, "stacked forward diverged");

    // The victim's connection dies between forward and backward — the
    // event loop reports it via `connection_lost`, which quarantines.
    {
        use menos::split::MessageHandler;
        batched.lock().unwrap().connection_lost(VICTIM);
    }
    assert_eq!(batched.lock().unwrap().active_clients(), N as usize - 1);
    assert_eq!(batched.lock().unwrap().quarantined_clients(), 1);
    assert_eq!(
        batched.lock().unwrap().reserved_bytes() + per_client_reservation(full_reservation, N),
        full_reservation,
        "the dead client's pool reservation is released on quarantine"
    );

    // Backward: solo reference for the 31 survivors...
    let mut solo_gs = Vec::new();
    for (client, x_frame) in solo_clients.iter_mut().zip(&solo_xs) {
        let x_s = menos::net::decode_tensor(x_frame).unwrap();
        let (_loss, g_c) = client.receive_server_activations(&x_s);
        if client.id() == VICTIM {
            continue;
        }
        let reply = solo
            .lock()
            .unwrap()
            .handle(ClientMessage::Gradients {
                client: client.id(),
                frame: menos::net::encode_tensor(&g_c),
            })
            .unwrap()
            .unwrap();
        solo_gs.push(tensor_frame(&reply));
    }

    // ...and a stacked backward that still contains the dead client's
    // in-flight gradients (they raced the hang-up). The batch must
    // excise the victim with a typed error and serve everyone else.
    let batch_msgs: Vec<ClientMessage> = batch_clients
        .iter_mut()
        .zip(&batch_xs)
        .map(|(client, x_frame)| {
            let x_s = menos::net::decode_tensor(x_frame).unwrap();
            let (_loss, g_c) = client.receive_server_activations(&x_s);
            ClientMessage::Gradients {
                client: client.id(),
                frame: menos::net::encode_tensor(&g_c),
            }
        })
        .collect();
    let mut replies = batched.lock().unwrap().handle_batch(batch_msgs);
    replies.sort_by_key(|(client, _)| *client);
    assert_eq!(replies.len(), N as usize);
    let mut batch_gs = Vec::new();
    for (client, reply) in &replies {
        if *client == VICTIM {
            assert!(
                reply.is_err(),
                "the quarantined member must be excised, got {reply:?}"
            );
        } else {
            batch_gs.push(tensor_frame(reply.as_ref().unwrap().as_ref().unwrap()));
        }
    }
    assert_eq!(solo_gs, batch_gs, "survivors' backward diverged");

    // Survivors finish cleanly; the victim's quarantine expires; every
    // reservation returns to the pool.
    for client in &batch_clients {
        if client.id() != VICTIM {
            batched
                .lock()
                .unwrap()
                .handle(ClientMessage::Disconnect {
                    client: client.id(),
                })
                .unwrap();
        }
    }
    let expired = batched
        .lock()
        .unwrap()
        .expire_idle(Duration::from_millis(0));
    assert_eq!(expired, vec![VICTIM]);
    assert_eq!(batched.lock().unwrap().active_clients(), 0);
    assert_eq!(batched.lock().unwrap().quarantined_clients(), 0);
    assert_eq!(batched.lock().unwrap().reserved_bytes(), 0);
}

/// All clients in these tests share one `FineTuneConfig`, so the pool
/// reservation divides evenly.
fn per_client_reservation(total: u64, n: u64) -> u64 {
    assert_eq!(total % n, 0, "equal configs must reserve equal shares");
    total / n
}

#[test]
fn faulty_client_does_not_stop_a_concurrent_one() {
    let (text, _vocab, config, base) = setup();
    let handler = make_server(&config, &base);

    // Healthy client trains over channels on one thread...
    let (mut client_t, mut server_t) = channel_pair();
    let healthy_handler = handler.clone();
    let healthy_server = std::thread::spawn(move || {
        let mut h = healthy_handler;
        serve_loop(&mut server_t, &mut h)
    });
    let mut healthy = make_client(2, &text, &config, &base);

    // ...while a faulty one connects and breaks mid-step on this one.
    let faulty = make_client(3, &text, &config, &base);
    let mut fault_t = FaultTransport::new();
    fault_t.push_message(&connect_msg(&faulty));
    fault_t.push_truncated(
        &ClientMessage::Activations {
            client: ClientId(3),
            frame: menos::net::encode_tensor(&menos::tensor::Tensor::zeros([2, 16, 64])),
        },
        20,
    );
    let mut fault_handler = handler.clone();
    let fault_err = serve_loop(&mut fault_t, &mut fault_handler).expect_err("fault");
    assert!(matches!(fault_err, ProtocolError::Wire(_)), "{fault_err}");

    let curve = drive_client(&mut healthy, &mut client_t, 3).expect("healthy client");
    healthy_server.join().expect("thread").expect("clean serve");
    assert_eq!(curve.points().len(), 3);
    // The faulty session is reclaimed; the healthy one disconnected
    // cleanly — nothing leaks.
    assert_eq!(handler.lock().unwrap().active_clients(), 0);
}

//! The acceptance harness of the unified transport stack: every
//! transport moves the same codec bytes through the same state
//! machine, so (a) training is byte-identical across transports and
//! (b) injected faults surface as typed [`ProtocolError`]s that
//! reclaim the failed client's session and leave other clients
//! training.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use menos::adapters::FineTuneConfig;
use menos::core::{MenosServer, ProtocolError, ServerMode, ServerSpec};
use menos::data::{wiki_corpus, LossCurve, TokenDataset, Vocab};
use menos::models::{CausalLm, ModelConfig};
use menos::net::WireError;
use menos::sim::seeded_rng;
use menos::split::{
    channel_pair, drive_client, serve_loop, sim_pair, ClientId, ClientMessage, FaultTransport,
    SplitClient, SplitSpec, TcpSplitServer, Transport,
};

const SEED: u64 = 4100;

fn setup() -> (
    String,
    Vocab,
    ModelConfig,
    Arc<Mutex<menos::tensor::ParamStore>>,
) {
    let text = wiki_corpus(41, 12_000);
    let vocab = Vocab::from_text(&text);
    let config = ModelConfig::tiny_opt(vocab.size());
    let mut rng = seeded_rng(41, "transport-unification");
    let base = Arc::new(Mutex::new(menos::models::init_params(&config, &mut rng)));
    (text, vocab, config, base)
}

fn make_server(
    config: &ModelConfig,
    base: &Arc<Mutex<menos::tensor::ParamStore>>,
) -> Arc<Mutex<MenosServer>> {
    let view = base.lock().unwrap().shared_view(false);
    Arc::new(Mutex::new(MenosServer::from_store(
        config.clone(),
        view,
        ServerSpec::v100(ServerMode::menos()),
        SEED,
    )))
}

fn make_client(
    k: u64,
    text: &str,
    config: &ModelConfig,
    base: &Arc<Mutex<menos::tensor::ParamStore>>,
) -> SplitClient {
    let vocab = Vocab::from_text(text);
    let mut ft = FineTuneConfig::paper(config);
    ft.batch_size = 2;
    ft.seq_len = 16;
    let ds = TokenDataset::new(vocab.encode(text), 16, k);
    let view = base.lock().unwrap().shared_view(false);
    SplitClient::new(
        ClientId(k),
        CausalLm::bind(config, &view),
        SplitSpec::paper(),
        ft,
        ds,
        k,
    )
}

fn connect_msg(client: &SplitClient) -> ClientMessage {
    ClientMessage::Connect {
        client: client.id(),
        ft: client.ft_config().clone(),
        split: client.split(),
    }
}

/// One scripted training step's worth of frames for `client`, captured
/// by running the real client against a scratch server.
fn train_over_channel(
    client: &mut SplitClient,
    handler: Arc<Mutex<MenosServer>>,
    steps: usize,
) -> LossCurve {
    let (mut client_t, mut server_t) = channel_pair();
    let server = std::thread::spawn(move || {
        let mut handler = handler;
        serve_loop(&mut server_t, &mut handler)
    });
    let curve = drive_client(client, &mut client_t, steps).expect("channel training");
    server.join().expect("server thread").expect("clean serve");
    curve
}

#[test]
fn same_messages_give_byte_identical_curves_on_every_transport() {
    let (text, _vocab, config, base) = setup();
    const STEPS: usize = 4;

    // In-memory channels.
    let mut client = make_client(0, &text, &config, &base);
    let channel_curve = train_over_channel(&mut client, make_server(&config, &base), STEPS);

    // Real TCP sockets.
    let handler = make_server(&config, &base);
    let server = TcpSplitServer::spawn("127.0.0.1:0", handler, 1).expect("bind");
    let mut client = make_client(0, &text, &config, &base);
    let tcp_curve =
        menos::split::run_tcp_client(server.addr(), &mut client, STEPS).expect("tcp training");
    server.join();

    // Simulated WAN (same bytes, plus virtual transfer time).
    let (mut client_t, mut server_t) =
        sim_pair(menos::net::WanLink::lan(7), menos::net::WanLink::lan(8));
    let handler = make_server(&config, &base);
    let sim_server = std::thread::spawn(move || {
        let mut handler = handler;
        serve_loop(&mut server_t, &mut handler)
    });
    let mut client = make_client(0, &text, &config, &base);
    let sim_curve = drive_client(&mut client, &mut client_t, STEPS).expect("sim training");
    sim_server.join().expect("thread").expect("clean serve");
    assert!(client_t.elapsed() > menos::sim::Nanos(0));

    // Bit-exact equality: same client, same server seed, same bytes on
    // the wire → the same floats, regardless of transport.
    let bits = |curve: &LossCurve| -> Vec<(usize, u32)> {
        curve
            .points()
            .iter()
            .map(|&(s, l)| (s, l.to_bits()))
            .collect()
    };
    assert_eq!(channel_curve.points().len(), STEPS);
    assert_eq!(bits(&channel_curve), bits(&tcp_curve));
    assert_eq!(bits(&channel_curve), bits(&sim_curve));
}

/// Runs a fault script against a fresh `MenosServer`, returning the
/// serve-loop error and the handler for post-mortem assertions.
fn run_script(
    handler: Arc<Mutex<MenosServer>>,
    script: impl FnOnce(&mut FaultTransport, &ClientMessage),
    connect: &ClientMessage,
) -> ProtocolError {
    let mut transport = FaultTransport::new();
    script(&mut transport, connect);
    let mut h = handler;
    serve_loop(&mut transport, &mut h).expect_err("script must fail the connection")
}

#[test]
fn injected_faults_surface_typed_errors_and_reclaim_sessions() {
    let (text, _vocab, config, base) = setup();
    let handler = make_server(&config, &base);

    let victim = make_client(7, &text, &config, &base);
    let connect = connect_msg(&victim);
    let activations = ClientMessage::Activations {
        client: ClientId(7),
        frame: menos::net::encode_tensor(&menos::tensor::Tensor::zeros([2, 16, 64])),
    };

    // Truncated frame after a successful connect.
    let err = run_script(
        handler.clone(),
        |t, connect| {
            t.push_message(connect);
            t.push_truncated(&activations, 9);
        },
        &connect,
    );
    assert!(
        matches!(err, ProtocolError::Wire(WireError::Truncated)),
        "{err}"
    );
    assert_eq!(handler.lock().unwrap().active_clients(), 0);

    // Hostile oversize length declaration.
    let err = run_script(
        handler.clone(),
        |t, connect| {
            t.push_message(connect);
            t.push_oversize_header(u32::MAX);
        },
        &connect,
    );
    assert!(
        matches!(err, ProtocolError::Wire(WireError::TooLarge { .. })),
        "{err}"
    );
    assert_eq!(handler.lock().unwrap().active_clients(), 0);

    // Out-of-order message: gradients before any forward.
    let err = run_script(
        handler.clone(),
        |t, connect| {
            t.push_message(connect);
            t.push_message(&ClientMessage::Gradients {
                client: ClientId(7),
                frame: menos::net::encode_tensor(&menos::tensor::Tensor::zeros([2, 16, 64])),
            });
        },
        &connect,
    );
    assert!(matches!(err, ProtocolError::OutOfOrder(_)), "{err}");
    assert_eq!(handler.lock().unwrap().active_clients(), 0);

    // Mid-step disconnect: the script runs dry after one good step's
    // first message, modelling an abrupt hang-up.
    let err = run_script(
        handler.clone(),
        |t, connect| {
            t.push_message(connect);
            t.push_message(&activations);
        },
        &connect,
    );
    assert!(matches!(err, ProtocolError::Disconnected), "{err}");
    assert_eq!(handler.lock().unwrap().active_clients(), 0);

    // Deadline enforcement: a frame that arrives too late.
    let err = {
        let mut transport = FaultTransport::new();
        transport
            .set_deadline(Some(Duration::from_millis(100)))
            .unwrap();
        transport.push_message(&connect);
        transport.push_delayed(&activations, Duration::from_secs(120));
        let mut h = handler.clone();
        serve_loop(&mut transport, &mut h).expect_err("late frame must fail")
    };
    assert!(matches!(err, ProtocolError::Timeout), "{err}");
    assert_eq!(handler.lock().unwrap().active_clients(), 0);

    // Through all that abuse, an unrelated client still trains on the
    // same server instance.
    let mut healthy = make_client(1, &text, &config, &base);
    let curve = train_over_channel(&mut healthy, handler.clone(), 3);
    assert_eq!(curve.points().len(), 3);
    assert_eq!(handler.lock().unwrap().active_clients(), 0);
}

#[test]
fn faulty_client_does_not_stop_a_concurrent_one() {
    let (text, _vocab, config, base) = setup();
    let handler = make_server(&config, &base);

    // Healthy client trains over channels on one thread...
    let (mut client_t, mut server_t) = channel_pair();
    let healthy_handler = handler.clone();
    let healthy_server = std::thread::spawn(move || {
        let mut h = healthy_handler;
        serve_loop(&mut server_t, &mut h)
    });
    let mut healthy = make_client(2, &text, &config, &base);

    // ...while a faulty one connects and breaks mid-step on this one.
    let faulty = make_client(3, &text, &config, &base);
    let mut fault_t = FaultTransport::new();
    fault_t.push_message(&connect_msg(&faulty));
    fault_t.push_truncated(
        &ClientMessage::Activations {
            client: ClientId(3),
            frame: menos::net::encode_tensor(&menos::tensor::Tensor::zeros([2, 16, 64])),
        },
        20,
    );
    let mut fault_handler = handler.clone();
    let fault_err = serve_loop(&mut fault_t, &mut fault_handler).expect_err("fault");
    assert!(matches!(fault_err, ProtocolError::Wire(_)), "{fault_err}");

    let curve = drive_client(&mut healthy, &mut client_t, 3).expect("healthy client");
    healthy_server.join().expect("thread").expect("clean serve");
    assert_eq!(curve.points().len(), 3);
    // The faulty session is reclaimed; the healthy one disconnected
    // cleanly — nothing leaks.
    assert_eq!(handler.lock().unwrap().active_clients(), 0);
}

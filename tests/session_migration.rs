//! Migration-blob robustness (PROTOCOL.md §9.4): the
//! `export_session` / `import_session` pair is what a fleet
//! coordinator replays when it re-homes a dead server's sessions, so
//! it is held to the snapshot standard (`tests/snapshot_corruption.rs`
//! is the one-layer-down mirror): a round-trip preserves every byte of
//! the session — adapter weights, optimizer moments, step/epoch
//! counters, the cached lost-reply replay — and *any* damaged,
//! foreign, or duplicate blob is refused with a typed
//! [`CheckpointError`] that commits nothing.

use bytes::Bytes;
use proptest::prelude::*;

use menos::adapters::FineTuneConfig;
use menos::core::{
    decode_session_record, encode_session_record, MenosServer, ServerMode, ServerSpec,
};
use menos::models::ModelConfig;
use menos::net::encode_tensor;
use menos::split::{ClientId, ClientMessage, ServerMessage, SplitSpec};
use menos::tensor::Tensor;

const SEED: u64 = 5;

fn config() -> ModelConfig {
    ModelConfig::tiny_opt(17)
}

/// A server holding one session for `client`, `steps` full dispatches
/// deep: past step 0 the record carries non-trivial adapter weights,
/// optimizer moments, and a cached `ServerGradients` replay.
fn server_with_session(client: u64, steps: usize) -> MenosServer {
    let config = config();
    let mut ft = FineTuneConfig::paper(&config);
    ft.batch_size = 2;
    ft.seq_len = 8;
    let mut srv = MenosServer::new(config, ServerSpec::v100(ServerMode::menos()), SEED);
    let c = ClientId(client);
    srv.handle(ClientMessage::Connect {
        client: c,
        ft,
        split: SplitSpec::paper(),
        epoch: 1,
        codecs: 0,
    })
    .expect("connect");
    let frame = |t: &Tensor| -> Bytes { encode_tensor(t) };
    for step in 0..steps {
        let x = 0.1 + step as f32 * 0.01;
        srv.handle(ClientMessage::Activations {
            client: c,
            frame: frame(&Tensor::full(x, [2, 8, 64])),
        })
        .expect("activations");
        let reply = srv
            .handle(ClientMessage::Gradients {
                client: c,
                frame: frame(&Tensor::full(x / 10.0, [2, 8, 64])),
            })
            .expect("gradients")
            .expect("reply");
        assert!(matches!(reply, ServerMessage::ServerGradients { .. }));
    }
    srv
}

fn fresh_target() -> MenosServer {
    MenosServer::new(config(), ServerSpec::v100(ServerMode::menos()), SEED)
}

/// Import must be all-or-nothing: on *any* error the target still has
/// no sessions, no quarantine, no reservations.
fn assert_untouched(target: &MenosServer) {
    assert_eq!(target.active_clients(), 0);
    assert_eq!(target.quarantined_clients(), 0);
    assert_eq!(target.reserved_bytes(), 0);
}

/// The blob with its live/quarantined flag normalized: the exporter
/// reports the session's *current* residence (live on the source,
/// quarantined on the importer), which is transport metadata, not
/// session state. Everything else must round-trip bit-exactly.
fn normalized(blob: &[u8]) -> Vec<u8> {
    let (seed, mut rec) = decode_session_record(blob).expect("decodable blob");
    rec.live = false;
    encode_session_record(seed, &rec)
}

fn round_trip(client: u64, steps: usize) {
    let source = server_with_session(client, steps);
    let blob = source
        .export_session(ClientId(client))
        .expect("the session exports");

    let mut target = fresh_target();
    let (imported, epoch) = target.import_session(&blob).expect("pristine blob imports");
    assert_eq!(imported, ClientId(client));
    let (_, rec) = decode_session_record(&blob).unwrap();
    assert_eq!(epoch, rec.epoch, "Imported echoes the resume epoch");
    assert_eq!(target.active_clients(), 0, "imports park in quarantine");
    assert_eq!(target.quarantined_clients(), 1);

    // Re-exporting from the importer reproduces the record byte for
    // byte (modulo the residence flag): nothing was lost or rebuilt
    // differently in transit.
    let again = target
        .export_session(ClientId(client))
        .expect("the import is exportable");
    assert_eq!(
        normalized(&blob),
        normalized(&again),
        "client {client} at {steps} step(s) did not round-trip"
    );
}

#[test]
fn a_mid_training_session_round_trips_byte_exactly() {
    round_trip(4, 2);
}

#[test]
fn a_freshly_connected_session_round_trips_too() {
    round_trip(9, 0);
}

#[test]
fn a_duplicate_import_is_refused_without_forking_the_session() {
    let source = server_with_session(3, 1);
    let blob = source.export_session(ClientId(3)).unwrap();
    let mut target = fresh_target();
    target.import_session(&blob).expect("first import lands");
    // A second copy would give one session two homes.
    let err = target.import_session(&blob).expect_err("duplicate refused");
    let msg = err.to_string();
    assert!(msg.contains("already has a session"), "{msg}");
    assert_eq!(target.quarantined_clients(), 1, "the original is intact");
}

#[test]
fn a_foreign_base_seed_is_refused() {
    let source = server_with_session(3, 1);
    let blob = source.export_session(ClientId(3)).unwrap();
    // A server derived from a different base model: the blob's
    // adapters were trained against other weights, importing them
    // would silently corrupt training.
    let mut target = MenosServer::new(config(), ServerSpec::v100(ServerMode::menos()), SEED + 1);
    let err = target
        .import_session(&blob)
        .expect_err("foreign seed refused");
    assert!(err.to_string().contains("seed"), "{err}");
    assert_untouched(&target);
}

#[test]
fn exporting_an_unknown_client_is_a_clean_none() {
    assert!(fresh_target().export_session(ClientId(77)).is_none());
}

/// The pristine blob all damage cases start from, built once — the
/// proptest sweeps below damage hundreds of copies.
fn pristine_blob() -> &'static [u8] {
    static BYTES: std::sync::OnceLock<Vec<u8>> = std::sync::OnceLock::new();
    BYTES.get_or_init(|| {
        server_with_session(4, 1)
            .export_session(ClientId(4))
            .expect("export")
    })
}

proptest! {
    /// Round-trip fidelity across arbitrary client ids and training
    /// depths (0 dispatches = a just-admitted session; deeper = live
    /// moments and a cached replay).
    #[test]
    fn any_session_round_trips(client in 0u64..10_000, steps in 0usize..3) {
        round_trip(client, steps);
    }

    /// Every truncation is rejected with a typed error at both layers
    /// — structural decode and semantic import — and the import
    /// target stays untouched. (Mirrors the exhaustive sweep in
    /// `crates/core/src/state.rs` under proptest shrinking.)
    #[test]
    fn truncated_blobs_are_rejected_and_commit_nothing(cut_frac in 0.0f64..1.0) {
        let blob = pristine_blob();
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let cut = (((blob.len() as f64) * cut_frac) as usize).min(blob.len() - 1);
        prop_assert!(decode_session_record(&blob[..cut]).is_err());
        let mut target = fresh_target();
        prop_assert!(target.import_session(&blob[..cut]).is_err());
        assert_untouched(&target);
    }

    /// Random multi-site bit damage: between 1 and 8 independent
    /// flips. Multi-bit damage can in principle slip past a CRC-32,
    /// but the validators behind it must never panic or leave a
    /// half-imported session — and a flip set that cancels itself out
    /// legitimately imports.
    #[test]
    fn random_bit_flips_never_panic_or_partially_import(
        flips in prop::collection::vec((0usize..10_000, 0u8..8), 1..8)
    ) {
        let blob = pristine_blob();
        let mut damaged = blob.to_vec();
        for (offset, bit) in flips {
            let offset = offset % damaged.len();
            damaged[offset] ^= 1 << bit;
        }
        let mut target = fresh_target();
        if damaged == *blob {
            prop_assert!(target.import_session(&damaged).is_ok());
        } else if target.import_session(&damaged).is_err() {
            assert_untouched(&target);
        }
    }
}

//! The paper's headline claims as executable integration tests.
//!
//! Each test cites the claim it checks; together they are the
//! regression suite for "does this repository still reproduce Menos".

use menos::adapters::FineTuneConfig;
use menos::core::{
    profile_client, run_experiment, MemoryPolicy, ServerMode, ServerSpec, WorkloadSpec,
};
use menos::models::{LoraSpec, ModelConfig, ModelProfile};

/// Abstract §1: "reducing GPU memory consumption by up to 72%".
#[test]
fn claim_memory_reduction_up_to_72_percent() {
    let profile = ModelProfile::new(ModelConfig::llama2_7b(), 1);
    let lora = LoraSpec::paper();
    let n = 4u64;
    let vanilla = n * profile.vanilla_persistent_bytes(&lora);
    let menos = profile.server_param_bytes() + n * profile.menos_per_client_bytes(&lora);
    let saving = 1.0 - menos as f64 / vanilla as f64;
    assert!(
        saving >= 0.70,
        "expected >= 70% persistent-memory saving at 4 Llama clients, got {:.1}%",
        saving * 100.0
    );
}

/// §2.3: "most high-end server GPUs ... can only support split
/// fine-tuning for a single client at a time" (Llama-2-7B on a 32 GB
/// V100 without sharing).
#[test]
fn claim_v100_fits_only_one_vanilla_llama_client() {
    let cfg = ModelConfig::llama2_7b();
    let profile = ModelProfile::new(cfg.clone(), 1);
    let ft = FineTuneConfig::paper(&cfg);
    let d = profile_client(&profile, &ft);
    let per_client = profile.server_param_bytes() + d.persistent + d.m_b;
    let v100 = 32u64 << 30;
    assert!(per_client <= v100, "one client must fit: {per_client}");
    assert!(
        2 * per_client > v100,
        "two must not fit: {}",
        2 * per_client
    );
}

/// §5.2: with Menos, "scaling the number of clients has a minor impact"
/// while vanilla degrades severely once memory is exhausted.
#[test]
fn claim_menos_scales_where_vanilla_collapses() {
    let w2 = WorkloadSpec::paper(ModelConfig::llama2_7b(), 2, 5);
    let menos = run_experiment(&ServerSpec::v100(ServerMode::menos()), &w2, 1);
    let vanilla = run_experiment(&ServerSpec::v100(ServerMode::VanillaSwapping), &w2, 1);
    assert!(menos.error.is_none() && vanilla.error.is_none());
    assert!(
        vanilla.avg_round_s > 10.0 * menos.avg_round_s,
        "vanilla {} should collapse vs menos {}",
        vanilla.avg_round_s,
        menos.avg_round_s
    );
}

/// §5.2: "the time overhead is negligible" — Menos' slowdown relative
/// to vanilla when vanilla has enough memory (OPT, ≤3 clients) stays
/// within ~20%.
#[test]
fn claim_menos_overhead_negligible_when_vanilla_fits() {
    let w = WorkloadSpec::paper(ModelConfig::opt_1_3b(), 3, 6);
    let menos = run_experiment(&ServerSpec::v100(ServerMode::menos()), &w, 1);
    let vanilla = run_experiment(&ServerSpec::v100(ServerMode::VanillaSwapping), &w, 1);
    let overhead = menos.avg_round_s / vanilla.avg_round_s - 1.0;
    assert!(
        overhead < 0.20,
        "Menos round overhead should be negligible, got {:.1}%",
        overhead * 100.0
    );
}

/// §5.2: "there is almost no waiting time for forward requests even for
/// Llama 2" — forwards backfill around heavy backwards.
#[test]
fn claim_forwards_never_wait() {
    let w = WorkloadSpec::paper(ModelConfig::llama2_7b(), 4, 6);
    let r = run_experiment(&ServerSpec::v100(ServerMode::menos()), &w, 1);
    // Total schedule wait per round (fwd + bwd) stays far below one
    // backward duration; backfills actually happen.
    assert!(r.avg_schedule_s < 1.0, "schedule {}", r.avg_schedule_s);
}

/// §3.2: the paper's trade — on-demand allocation "inevitably increases
/// computation" but "the benefit significantly outweighs the extra
/// computation overhead".
#[test]
fn claim_reforward_costs_compute_but_wins_overall() {
    let w = WorkloadSpec::paper(ModelConfig::llama2_7b(), 4, 6);
    let menos = run_experiment(&ServerSpec::v100(ServerMode::menos()), &w, 1);
    let preserve = run_experiment(
        &ServerSpec::v100(ServerMode::Menos {
            policy: MemoryPolicy::ReleaseAfterBackward,
            backfilling: true,
        }),
        &w,
        1,
    );
    // Compute is higher with re-forward...
    assert!(menos.avg_compute_s > preserve.avg_compute_s);
    // ...but the round completes sooner (no queueing on preserved memory).
    assert!(
        menos.avg_round_s < preserve.avg_round_s,
        "menos {} vs preserve {}",
        menos.avg_round_s,
        preserve.avg_round_s
    );
}

/// Fig. 3a at scale: preserving intermediates across iterations cannot
/// even be set up for multiple Llama clients on one V100.
#[test]
fn claim_preserve_all_is_infeasible_at_scale() {
    let w = WorkloadSpec::paper(ModelConfig::llama2_7b(), 4, 3);
    let r = run_experiment(
        &ServerSpec::v100(ServerMode::Menos {
            policy: MemoryPolicy::PreserveAll,
            backfilling: true,
        }),
        &w,
        1,
    );
    assert!(
        r.error.is_some(),
        "preserve-all must fail for 4 Llama clients"
    );
}

/// §4.2: backfilling "improves overall system throughput" without
/// starving the FCFS head.
#[test]
fn claim_backfilling_does_not_hurt_and_usually_helps() {
    let w = WorkloadSpec::paper(ModelConfig::llama2_7b(), 4, 6);
    let with = run_experiment(&ServerSpec::v100(ServerMode::menos()), &w, 1);
    let without = run_experiment(
        &ServerSpec::v100(ServerMode::Menos {
            policy: MemoryPolicy::menos(),
            backfilling: false,
        }),
        &w,
        1,
    );
    assert!(
        with.avg_schedule_s <= without.avg_schedule_s + 0.05,
        "backfilling made schedule worse: {} vs {}",
        with.avg_schedule_s,
        without.avg_schedule_s
    );
}

/// Table 1's premise: the evaluation transfer sizes match the paper's
/// reported 13.1 MB (OPT) and 6.4 MB (Llama).
#[test]
fn claim_transfer_sizes_match() {
    let opt = ModelProfile::new(ModelConfig::opt_1_3b(), 1).transfer_bytes(16, 100);
    assert!(
        (12_500_000..14_000_000).contains(&opt),
        "OPT transfer {opt}"
    );
    let llama = ModelProfile::new(ModelConfig::llama2_7b(), 1).transfer_bytes(4, 100);
    assert!(
        (6_000_000..7_000_000).contains(&llama),
        "Llama transfer {llama}"
    );
}

//! Corruption robustness for durable server snapshots: a *real*
//! snapshot — live session, adapter weights, optimizer moments, a
//! cached `ServerGradients` reply — is truncated at every byte offset
//! and bit-flipped at every byte offset, plus a proptest sweep of
//! random multi-bit damage. Every damaged form must be rejected with a
//! typed [`CheckpointError`] (never a panic), and a failed restore
//! must leave the target server untouched — no partial restore, ever.
//!
//! This mirrors the wire codec's truncation discipline
//! (`crates/split/tests/codec_proptest.rs`) one layer up: the snapshot
//! is the only artifact that crosses a process-death boundary, so its
//! decode path is held to the same standard.

use bytes::Bytes;
use proptest::prelude::*;

use menos::adapters::FineTuneConfig;
use menos::core::{MenosServer, ServerMode, ServerSpec, ServerState};
use menos::models::ModelConfig;
use menos::net::encode_tensor;
use menos::split::{ClientId, ClientMessage, ServerMessage, SplitSpec};
use menos::tensor::{CheckpointError, Tensor};

/// A server with one mid-training session: connected, one full step
/// dispatched (so adapter weights, optimizer moments, step counters,
/// and the cached lost-reply replay are all non-trivial).
fn busy_server() -> MenosServer {
    let config = ModelConfig::tiny_opt(17);
    let mut ft = FineTuneConfig::paper(&config);
    ft.batch_size = 2;
    ft.seq_len = 8;
    let mut srv = MenosServer::new(config, ServerSpec::v100(ServerMode::menos()), 5);
    let c = ClientId(4);
    srv.handle(ClientMessage::Connect {
        client: c,
        ft,
        split: SplitSpec::paper(),
        epoch: 1,
        codecs: 0,
    })
    .expect("connect");
    let frame = |t: &Tensor| -> Bytes { encode_tensor(t) };
    srv.handle(ClientMessage::Activations {
        client: c,
        frame: frame(&Tensor::full(0.1, [2, 8, 64])),
    })
    .expect("activations");
    let reply = srv
        .handle(ClientMessage::Gradients {
            client: c,
            frame: frame(&Tensor::full(0.01, [2, 8, 64])),
        })
        .expect("gradients")
        .expect("reply");
    assert!(matches!(reply, ServerMessage::ServerGradients { .. }));
    srv
}

/// The pristine snapshot bytes, built once: `busy_server()` is
/// deterministic, and the proptest sweeps below damage hundreds of
/// copies — rebuilding the server per case would dominate the run.
fn snapshot_bytes() -> &'static [u8] {
    static BYTES: std::sync::OnceLock<Vec<u8>> = std::sync::OnceLock::new();
    BYTES.get_or_init(|| busy_server().to_state().to_bytes())
}

/// A fresh restore target sharing the snapshot's config and seed, so
/// the only thing that can make restore fail is the damage itself.
fn fresh_target() -> MenosServer {
    MenosServer::new(
        ModelConfig::tiny_opt(17),
        ServerSpec::v100(ServerMode::menos()),
        5,
    )
}

/// Restore must be all-or-nothing: on *any* error the target still
/// has no sessions, no quarantine, no reservations.
fn assert_untouched(target: &MenosServer) {
    assert_eq!(target.active_clients(), 0);
    assert_eq!(target.quarantined_clients(), 0);
    assert_eq!(target.reserved_bytes(), 0);
}

/// Structural decode + semantic restore of damaged bytes; both layers
/// must reject with a typed error, not a panic.
fn try_restore(bytes: &[u8]) -> Result<usize, CheckpointError> {
    let state = ServerState::from_bytes(bytes)?;
    let mut target = fresh_target();
    let result = target.restore(state);
    if result.is_err() {
        assert_untouched(&target);
    }
    result
}

#[test]
fn pristine_snapshot_restores_fully() {
    assert_eq!(try_restore(snapshot_bytes()).expect("pristine restores"), 1);
}

#[test]
fn every_truncation_is_rejected_with_a_typed_error() {
    let bytes = snapshot_bytes();
    for cut in 0..bytes.len() {
        assert!(
            try_restore(&bytes[..cut]).is_err(),
            "truncation to {cut} bytes must be rejected"
        );
    }
}

#[test]
fn every_single_bit_flip_is_rejected_with_a_typed_error() {
    let bytes = snapshot_bytes();
    // One flip per byte offset, rotating through the bit positions —
    // full offset coverage without an 8× longer run. The outer CRC
    // catches every single-bit flip regardless of position.
    for offset in 0..bytes.len() {
        let mut damaged = bytes.to_vec();
        damaged[offset] ^= 1 << (offset % 8);
        assert!(
            try_restore(&damaged).is_err(),
            "bit flip at offset {offset} must be rejected"
        );
    }
}

proptest! {
    /// Random multi-site damage: between 1 and 8 independent bit
    /// flips anywhere in the snapshot. Multi-bit damage can in
    /// principle slip past a CRC-32 (unlike single flips), but the
    /// structural and semantic validators behind it must still never
    /// panic or partially restore — and a flip set that cancels
    /// itself out (same bit twice) legitimately restores.
    #[test]
    fn random_bit_flips_never_panic_or_partially_restore(
        flips in prop::collection::vec((0usize..10_000, 0u8..8), 1..8)
    ) {
        let bytes = snapshot_bytes();
        let mut damaged = bytes.to_vec();
        for (offset, bit) in flips {
            let offset = offset % damaged.len();
            damaged[offset] ^= 1 << bit;
        }
        if damaged == *bytes {
            prop_assert_eq!(try_restore(&damaged).expect("undamaged"), 1);
        } else {
            // Must return, not panic; overwhelmingly an Err, and on
            // Err the target is untouched (checked in try_restore).
            let _ = try_restore(&damaged);
        }
    }

    /// Random truncation points under proptest shrinking, complementing
    /// the exhaustive sweep above.
    #[test]
    fn random_truncations_are_rejected(cut_frac in 0.0f64..1.0) {
        let bytes = snapshot_bytes();
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        let cut = cut.min(bytes.len() - 1);
        prop_assert!(try_restore(&bytes[..cut]).is_err());
    }
}

//! Character-level vocabulary and tokenization.
//!
//! The paper fine-tunes on wikitext-2 and Tiny-Shakespeare with a
//! subword tokenizer; for the tiny real-training models in this
//! reproduction a character vocabulary keeps the embedding table small
//! while preserving the next-token-prediction task structure.

use std::collections::BTreeMap;

/// A character-level vocabulary mapping each distinct character of a
/// corpus to a contiguous token id.
///
/// Ids are assigned in character (Unicode scalar) order, so the same
/// corpus always yields the same vocabulary.
///
/// # Examples
///
/// ```
/// use menos_data::Vocab;
///
/// let v = Vocab::from_text("hello");
/// assert_eq!(v.size(), 4); // e, h, l, o
/// let ids = v.encode("hell");
/// assert_eq!(v.decode(&ids), "hell");
/// ```
#[derive(Debug, Clone)]
pub struct Vocab {
    char_to_id: BTreeMap<char, usize>,
    id_to_char: Vec<char>,
}

impl Vocab {
    /// Builds a vocabulary over every distinct character in `text`.
    ///
    /// # Panics
    ///
    /// Panics if `text` is empty — an empty vocabulary cannot encode
    /// anything.
    pub fn from_text(text: &str) -> Self {
        assert!(
            !text.is_empty(),
            "cannot build a vocabulary from empty text"
        );
        let mut chars: Vec<char> = text.chars().collect();
        chars.sort_unstable();
        chars.dedup();
        let char_to_id = chars.iter().enumerate().map(|(i, &c)| (c, i)).collect();
        Vocab {
            char_to_id,
            id_to_char: chars,
        }
    }

    /// Number of distinct tokens.
    pub fn size(&self) -> usize {
        self.id_to_char.len()
    }

    /// Encodes text to token ids. Characters outside the vocabulary map
    /// to token 0 (documented lossy fallback, mirroring `<unk>`).
    pub fn encode(&self, text: &str) -> Vec<usize> {
        text.chars()
            .map(|c| self.char_to_id.get(&c).copied().unwrap_or(0))
            .collect()
    }

    /// Decodes token ids back to text.
    ///
    /// # Panics
    ///
    /// Panics if an id is out of range.
    pub fn decode(&self, ids: &[usize]) -> String {
        ids.iter().map(|&i| self.id_to_char[i]).collect()
    }

    /// The id for a character, if in vocabulary.
    pub fn id_of(&self, c: char) -> Option<usize> {
        self.char_to_id.get(&c).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let text = "the quick brown fox";
        let v = Vocab::from_text(text);
        assert_eq!(v.decode(&v.encode(text)), text);
    }

    #[test]
    fn ids_are_contiguous_and_sorted() {
        let v = Vocab::from_text("cba");
        assert_eq!(v.size(), 3);
        assert_eq!(v.id_of('a'), Some(0));
        assert_eq!(v.id_of('b'), Some(1));
        assert_eq!(v.id_of('c'), Some(2));
    }

    #[test]
    fn unknown_chars_map_to_zero() {
        let v = Vocab::from_text("ab");
        assert_eq!(v.encode("axb"), vec![0, 0, 1]);
    }

    #[test]
    fn determinism() {
        let a = Vocab::from_text("hello world");
        let b = Vocab::from_text("hello world");
        assert_eq!(a.encode("low"), b.encode("low"));
    }

    #[test]
    #[should_panic(expected = "empty text")]
    fn empty_text_rejected() {
        Vocab::from_text("");
    }
}

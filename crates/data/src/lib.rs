//! # menos-data — corpora, tokenization, batching, and metrics
//!
//! Stand-ins for the paper's datasets (wikitext-2-raw-v1 and
//! Tiny-Shakespeare) plus the batching and metric utilities used by the
//! convergence experiments (Figs. 8–9).
//!
//! Real datasets are not redistributable inside this repository, so
//! [`wiki_corpus`] generates a deterministic closed-vocabulary
//! wiki-style corpus and [`shakespeare_corpus`] repeats a public-domain
//! passage — both give a stationary, learnable next-token distribution,
//! which is all the convergence experiments require (see DESIGN.md §2).
//!
//! # Examples
//!
//! ```
//! use menos_data::{wiki_corpus, TokenDataset, Vocab};
//!
//! let text = wiki_corpus(42, 2_000);
//! let vocab = Vocab::from_text(&text);
//! let ds = TokenDataset::new(vocab.encode(&text), 16, 42);
//! let batch = ds.batch(0, 4);
//! assert_eq!(batch.dims(), [4, 16]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod corpus;
mod dataset;
mod metrics;
mod vocab;
mod word_vocab;

pub use corpus::{shakespeare_corpus, wiki_corpus};
pub use dataset::{Batch, TokenDataset};
pub use metrics::{perplexity, EmaLoss, LossCurve};
pub use vocab::Vocab;
pub use word_vocab::{WordVocab, UNK};

//! Next-token-prediction datasets and batching.

use rand::seq::SliceRandom;

use menos_sim::seeded_rng;

/// One training batch for causal language modelling.
///
/// `inputs` and `targets` are row-major `[batch, seq]` token-id
/// matrices with `targets[i][j] = inputs[i][j + 1]` in the source text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Batch {
    /// Input token ids, `batch_size * seq_len` entries.
    pub inputs: Vec<usize>,
    /// Target token ids (inputs shifted by one), same length.
    pub targets: Vec<usize>,
    /// Number of sequences in the batch.
    pub batch_size: usize,
    /// Tokens per sequence.
    pub seq_len: usize,
}

impl Batch {
    /// The logical dims of the input matrix.
    pub fn dims(&self) -> [usize; 2] {
        [self.batch_size, self.seq_len]
    }
}

/// A tokenized corpus serving fixed-length causal-LM batches.
///
/// Windows are non-overlapping; epoch order is shuffled
/// deterministically from the dataset seed so multi-client runs are
/// reproducible.
///
/// # Examples
///
/// ```
/// use menos_data::TokenDataset;
///
/// let tokens: Vec<usize> = (0..100).map(|i| i % 7).collect();
/// let ds = TokenDataset::new(tokens, 8, 42);
/// let batch = ds.batch(0, 2);
/// assert_eq!(batch.dims(), [2, 8]);
/// assert_eq!(batch.inputs.len(), 16);
/// ```
#[derive(Debug, Clone)]
pub struct TokenDataset {
    tokens: Vec<usize>,
    seq_len: usize,
    window_order: Vec<usize>,
}

impl TokenDataset {
    /// Builds a dataset of non-overlapping `seq_len` windows over
    /// `tokens` (each window needs `seq_len + 1` tokens for the shifted
    /// target).
    ///
    /// # Panics
    ///
    /// Panics if the corpus is too short for a single window or
    /// `seq_len` is zero.
    pub fn new(tokens: Vec<usize>, seq_len: usize, seed: u64) -> Self {
        assert!(seq_len > 0, "seq_len must be positive");
        assert!(
            tokens.len() > seq_len,
            "corpus of {} tokens too short for seq_len {seq_len}",
            tokens.len()
        );
        let n_windows = (tokens.len() - 1) / seq_len;
        let mut window_order: Vec<usize> = (0..n_windows).collect();
        let mut rng = seeded_rng(seed, "dataset-shuffle");
        window_order.shuffle(&mut rng);
        TokenDataset {
            tokens,
            seq_len,
            window_order,
        }
    }

    /// Number of available windows.
    pub fn num_windows(&self) -> usize {
        self.window_order.len()
    }

    /// Number of batches per epoch at the given batch size (floor).
    pub fn batches_per_epoch(&self, batch_size: usize) -> usize {
        self.num_windows() / batch_size
    }

    /// Tokens per sequence.
    pub fn seq_len(&self) -> usize {
        self.seq_len
    }

    /// Splits the corpus into a training and a held-out validation
    /// dataset at `train_frac` (by token position, so the two never
    /// overlap).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < train_frac < 1` and both halves can hold at
    /// least one window.
    pub fn train_valid_split(&self, train_frac: f64, seed: u64) -> (TokenDataset, TokenDataset) {
        assert!(
            (0.0..1.0).contains(&train_frac) && train_frac > 0.0,
            "train_frac must be in (0, 1)"
        );
        let cut = ((self.tokens.len() as f64) * train_frac) as usize;
        assert!(
            cut > self.seq_len && self.tokens.len() - cut > self.seq_len,
            "split leaves a half too short for seq_len {}",
            self.seq_len
        );
        (
            TokenDataset::new(self.tokens[..cut].to_vec(), self.seq_len, seed),
            TokenDataset::new(self.tokens[cut..].to_vec(), self.seq_len, seed),
        )
    }

    /// Builds batch `index` (wrapping around epochs) of `batch_size`
    /// sequences.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` is zero or exceeds the number of windows.
    pub fn batch(&self, index: usize, batch_size: usize) -> Batch {
        assert!(batch_size > 0, "batch_size must be positive");
        assert!(
            batch_size <= self.num_windows(),
            "batch_size {batch_size} exceeds {} windows",
            self.num_windows()
        );
        let per_epoch = self.batches_per_epoch(batch_size).max(1);
        let b = index % per_epoch;
        let mut inputs = Vec::with_capacity(batch_size * self.seq_len);
        let mut targets = Vec::with_capacity(batch_size * self.seq_len);
        for i in 0..batch_size {
            let w = self.window_order[b * batch_size + i];
            let start = w * self.seq_len;
            inputs.extend_from_slice(&self.tokens[start..start + self.seq_len]);
            targets.extend_from_slice(&self.tokens[start + 1..start + self.seq_len + 1]);
        }
        Batch {
            inputs,
            targets,
            batch_size,
            seq_len: self.seq_len,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ds(n: usize, seq: usize) -> TokenDataset {
        TokenDataset::new((0..n).collect(), seq, 1)
    }

    #[test]
    fn targets_are_shifted_inputs() {
        let d = ds(50, 4);
        let b = d.batch(0, 2);
        for i in 0..b.inputs.len() {
            assert_eq!(b.targets[i], b.inputs[i] + 1);
        }
    }

    #[test]
    fn window_counts() {
        // 50 tokens, seq 4: (50-1)/4 = 12 windows.
        let d = ds(50, 4);
        assert_eq!(d.num_windows(), 12);
        assert_eq!(d.batches_per_epoch(4), 3);
        assert_eq!(d.seq_len(), 4);
    }

    #[test]
    fn batches_wrap_epochs() {
        let d = ds(50, 4);
        let b0 = d.batch(0, 4);
        let b3 = d.batch(3, 4); // wraps to batch 0
        assert_eq!(b0, b3);
    }

    #[test]
    fn shuffling_is_deterministic_per_seed() {
        let a = TokenDataset::new((0..100).collect(), 5, 9).batch(0, 2);
        let b = TokenDataset::new((0..100).collect(), 5, 9).batch(0, 2);
        assert_eq!(a, b);
        let c = TokenDataset::new((0..100).collect(), 5, 10).batch(0, 2);
        assert_ne!(a, c);
    }

    #[test]
    fn windows_do_not_overlap() {
        let d = ds(101, 10);
        let b = d.batch(0, d.num_windows());
        // Every window's first token is a multiple of seq_len.
        for i in 0..b.batch_size {
            assert_eq!(b.inputs[i * 10] % 10, 0);
        }
        // All windows distinct.
        let mut starts: Vec<usize> = (0..b.batch_size).map(|i| b.inputs[i * 10]).collect();
        starts.sort_unstable();
        starts.dedup();
        assert_eq!(starts.len(), b.batch_size);
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn short_corpus_rejected() {
        TokenDataset::new(vec![1, 2, 3], 4, 0);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_batch_rejected() {
        ds(20, 4).batch(0, 100);
    }

    #[test]
    fn train_valid_split_is_disjoint() {
        let d = ds(100, 4);
        let (train, valid) = d.train_valid_split(0.8, 1);
        // Token ids are 0..100 in order; train windows draw from
        // [0, 80), valid from [80, 100).
        let tb = train.batch(0, train.num_windows());
        assert!(tb.inputs.iter().all(|&t| t < 80));
        let vb = valid.batch(0, valid.num_windows());
        assert!(vb.inputs.iter().all(|&t| t >= 80));
        assert!(train.num_windows() > valid.num_windows());
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn split_rejects_tiny_halves() {
        ds(20, 8).train_valid_split(0.9, 1);
    }
}

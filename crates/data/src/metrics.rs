//! Training metrics: loss tracking and perplexity.

/// Perplexity corresponding to a mean cross-entropy (nats).
///
/// # Examples
///
/// ```
/// // A uniform distribution over 4 classes has perplexity 4.
/// let ppl = menos_data::perplexity(4.0f32.ln());
/// assert!((ppl - 4.0).abs() < 1e-4);
/// ```
pub fn perplexity(mean_cross_entropy: f32) -> f32 {
    mean_cross_entropy.exp()
}

/// Exponential-moving-average loss tracker, the smoothing commonly used
/// for convergence plots.
///
/// # Examples
///
/// ```
/// use menos_data::EmaLoss;
///
/// let mut ema = EmaLoss::new(0.5);
/// ema.update(4.0);
/// ema.update(2.0);
/// assert_eq!(ema.value(), Some(3.0));
/// ```
#[derive(Debug, Clone)]
pub struct EmaLoss {
    alpha: f32,
    value: Option<f32>,
    history: Vec<f32>,
}

impl EmaLoss {
    /// Creates a tracker with smoothing factor `alpha` in `(0, 1]`
    /// (weight of the new sample).
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn new(alpha: f32) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        EmaLoss {
            alpha,
            value: None,
            history: Vec::new(),
        }
    }

    /// Incorporates a new raw loss sample and returns the smoothed
    /// value.
    pub fn update(&mut self, loss: f32) -> f32 {
        let v = match self.value {
            None => loss,
            Some(prev) => prev + self.alpha * (loss - prev),
        };
        self.value = Some(v);
        self.history.push(v);
        v
    }

    /// The current smoothed loss.
    pub fn value(&self) -> Option<f32> {
        self.value
    }

    /// The smoothed-loss history, one entry per update.
    pub fn history(&self) -> &[f32] {
        &self.history
    }

    /// Current smoothed perplexity.
    pub fn perplexity(&self) -> Option<f32> {
        self.value.map(perplexity)
    }
}

/// A convergence curve: (step, loss) points plus helpers the
/// experiment harness uses for reporting.
#[derive(Debug, Clone, Default)]
pub struct LossCurve {
    points: Vec<(usize, f32)>,
}

impl LossCurve {
    /// Creates an empty curve.
    pub fn new() -> Self {
        LossCurve::default()
    }

    /// Appends a (step, loss) sample.
    pub fn push(&mut self, step: usize, loss: f32) {
        self.points.push((step, loss));
    }

    /// Removes and returns the most recent sample — how a split client
    /// rolls back the provisional loss point of a step it must redo
    /// after a reconnect.
    pub fn pop(&mut self) -> Option<(usize, f32)> {
        self.points.pop()
    }

    /// All recorded points.
    pub fn points(&self) -> &[(usize, f32)] {
        &self.points
    }

    /// The final loss, if any samples exist.
    pub fn final_loss(&self) -> Option<f32> {
        self.points.last().map(|&(_, l)| l)
    }

    /// Mean loss over the last `n` samples (or all, if fewer).
    pub fn tail_mean(&self, n: usize) -> Option<f32> {
        if self.points.is_empty() {
            return None;
        }
        let take = n.min(self.points.len());
        let s: f32 = self.points[self.points.len() - take..]
            .iter()
            .map(|&(_, l)| l)
            .sum();
        Some(s / take as f32)
    }

    /// Whether the curve decreased overall: tail mean below the mean of
    /// the first `n` samples.
    pub fn decreased(&self, n: usize) -> bool {
        if self.points.len() < 2 * n {
            return false;
        }
        let head: f32 = self.points[..n].iter().map(|&(_, l)| l).sum::<f32>() / n as f32;
        head > self.tail_mean(n).unwrap_or(head)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perplexity_of_zero_loss_is_one() {
        assert!((perplexity(0.0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn ema_first_sample_is_identity() {
        let mut e = EmaLoss::new(0.1);
        assert_eq!(e.value(), None);
        assert_eq!(e.update(5.0), 5.0);
        assert_eq!(e.perplexity(), Some(5.0f32.exp()));
    }

    #[test]
    fn ema_smooths_toward_new_samples() {
        let mut e = EmaLoss::new(0.5);
        e.update(10.0);
        e.update(0.0);
        assert_eq!(e.value(), Some(5.0));
        assert_eq!(e.history(), &[10.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "alpha must be in")]
    fn ema_rejects_bad_alpha() {
        EmaLoss::new(0.0);
    }

    #[test]
    fn loss_curve_statistics() {
        let mut c = LossCurve::new();
        for (i, l) in [5.0, 4.0, 3.0, 1.0, 1.0, 1.0].iter().enumerate() {
            c.push(i, *l);
        }
        assert_eq!(c.final_loss(), Some(1.0));
        assert_eq!(c.tail_mean(3), Some(1.0));
        assert!(c.decreased(2));
        assert_eq!(c.points().len(), 6);
    }

    #[test]
    fn loss_curve_empty() {
        let c = LossCurve::new();
        assert_eq!(c.final_loss(), None);
        assert_eq!(c.tail_mean(3), None);
        assert!(!c.decreased(1));
    }
}

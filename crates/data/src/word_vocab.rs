//! Word-level vocabulary — an alternative tokenizer that makes the
//! wiki-style corpus learnable in far fewer steps than character-level
//! modelling (useful for convergence demos on a budget).

use std::collections::BTreeMap;

/// A whitespace word-level vocabulary with an `<unk>` token at id 0.
///
/// Tokens are maximal non-whitespace runs; whitespace is normalized to
/// single spaces on decode.
///
/// # Examples
///
/// ```
/// use menos_data::WordVocab;
///
/// let v = WordVocab::from_text("the river flows through the valley");
/// assert_eq!(v.decode(&v.encode("the river")), "the river");
/// // Unknown words map to <unk>.
/// assert_eq!(v.encode("the ocean")[1], 0);
/// ```
#[derive(Debug, Clone)]
pub struct WordVocab {
    word_to_id: BTreeMap<String, usize>,
    id_to_word: Vec<String>,
}

/// The reserved unknown-word token.
pub const UNK: &str = "<unk>";

impl WordVocab {
    /// Builds a vocabulary over every distinct whitespace-separated
    /// word in `text`, with `<unk>` as id 0.
    ///
    /// # Panics
    ///
    /// Panics if `text` contains no words.
    pub fn from_text(text: &str) -> Self {
        let mut words: Vec<&str> = text.split_whitespace().collect();
        assert!(
            !words.is_empty(),
            "cannot build a vocabulary from empty text"
        );
        words.sort_unstable();
        words.dedup();
        let mut id_to_word = vec![UNK.to_string()];
        id_to_word.extend(words.iter().map(|w| w.to_string()));
        let word_to_id = id_to_word
            .iter()
            .enumerate()
            .map(|(i, w)| (w.clone(), i))
            .collect();
        WordVocab {
            word_to_id,
            id_to_word,
        }
    }

    /// Number of distinct tokens (including `<unk>`).
    pub fn size(&self) -> usize {
        self.id_to_word.len()
    }

    /// Encodes text to word ids; unknown words become id 0.
    pub fn encode(&self, text: &str) -> Vec<usize> {
        text.split_whitespace()
            .map(|w| self.word_to_id.get(w).copied().unwrap_or(0))
            .collect()
    }

    /// Decodes ids back to space-joined words.
    ///
    /// # Panics
    ///
    /// Panics if an id is out of range.
    pub fn decode(&self, ids: &[usize]) -> String {
        ids.iter()
            .map(|&i| self.id_to_word[i].as_str())
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// The id of a word, if known.
    pub fn id_of(&self, word: &str) -> Option<usize> {
        self.word_to_id.get(word).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::wiki_corpus;

    #[test]
    fn round_trip_known_words() {
        let v = WordVocab::from_text("alpha beta gamma");
        assert_eq!(v.size(), 4); // + <unk>
        assert_eq!(v.decode(&v.encode("beta alpha")), "beta alpha");
    }

    #[test]
    fn unknown_words_become_unk() {
        let v = WordVocab::from_text("alpha beta");
        let ids = v.encode("alpha delta beta");
        assert_eq!(ids[1], 0);
        assert_eq!(v.decode(&ids), "alpha <unk> beta");
    }

    #[test]
    fn wiki_corpus_has_small_word_vocab() {
        // The closed-inventory generator yields a compact vocabulary —
        // ideal for a tiny model's embedding table.
        let v = WordVocab::from_text(&wiki_corpus(3, 20_000));
        assert!(v.size() < 80, "vocab {}", v.size());
        assert!(v.size() > 20);
    }

    #[test]
    fn whitespace_normalization() {
        let v = WordVocab::from_text("a  b\n\nc\t d");
        assert_eq!(v.decode(&v.encode("a\tb \n c")), "a b c");
    }

    #[test]
    fn deterministic_ids() {
        let a = WordVocab::from_text("z y x");
        let b = WordVocab::from_text("x z y");
        assert_eq!(a.encode("x y z"), b.encode("x y z"));
        assert_eq!(a.id_of("x"), Some(1));
        assert_eq!(a.id_of("nope"), None);
    }

    #[test]
    #[should_panic(expected = "empty text")]
    fn empty_rejected() {
        WordVocab::from_text("   ");
    }
}

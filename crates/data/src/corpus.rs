//! Synthetic corpora standing in for wikitext-2-raw-v1 and
//! Tiny-Shakespeare.
//!
//! The convergence experiments (paper Figs. 8–9) only require a
//! stationary, learnable token distribution; these generators produce
//! deterministic text with heavy n-gram structure so that tiny models
//! show the same perplexity-vs-step shape the paper reports.

use rand::Rng;

use menos_sim::seeded_rng;

/// Word inventory for the wiki-style generator: short "encyclopedic"
/// sentences over a closed vocabulary.
const WIKI_SUBJECTS: &[&str] = &[
    "the river",
    "the empire",
    "the treaty",
    "the species",
    "the album",
    "the railway",
    "the castle",
    "the comet",
    "the harbour",
    "the novel",
];
const WIKI_VERBS: &[&str] = &[
    "was established in",
    "flows through",
    "was recorded in",
    "is located near",
    "was signed after",
    "spans across",
    "was discovered by",
    "is known for",
    "was restored during",
    "is named after",
];
const WIKI_OBJECTS: &[&str] = &[
    "the northern province",
    "the early dynasty",
    "the coastal region",
    "the modern era",
    "the ancient capital",
    "the famous expedition",
    "the long winter",
    "the second council",
    "the southern valley",
    "the great migration",
];

/// Generates a deterministic wiki-style corpus of roughly `target_len`
/// characters (stand-in for wikitext-2-raw-v1).
///
/// # Examples
///
/// ```
/// let text = menos_data::wiki_corpus(42, 500);
/// assert!(text.len() >= 500);
/// assert_eq!(text, menos_data::wiki_corpus(42, 500));
/// ```
pub fn wiki_corpus(seed: u64, target_len: usize) -> String {
    let mut rng = seeded_rng(seed, "wiki-corpus");
    let mut out = String::with_capacity(target_len + 64);
    while out.len() < target_len {
        let s = WIKI_SUBJECTS[rng.gen_range(0..WIKI_SUBJECTS.len())];
        let v = WIKI_VERBS[rng.gen_range(0..WIKI_VERBS.len())];
        let o = WIKI_OBJECTS[rng.gen_range(0..WIKI_OBJECTS.len())];
        out.push_str(s);
        out.push(' ');
        out.push_str(v);
        out.push(' ');
        out.push_str(o);
        out.push_str(". ");
    }
    out
}

/// A public-domain Shakespeare passage used as the Tiny-Shakespeare
/// stand-in (repeated to the requested length).
const SHAKESPEARE_SEED_TEXT: &str = "\
First Citizen: Before we proceed any further, hear me speak.
All: Speak, speak.
First Citizen: You are all resolved rather to die than to famish?
All: Resolved. resolved.
First Citizen: First, you know Caius Marcius is chief enemy to the people.
All: We know't, we know't.
First Citizen: Let us kill him, and we'll have corn at our own price. Is't a verdict?
All: No more talking on't; let it be done: away, away!
Second Citizen: One word, good citizens.
First Citizen: We are accounted poor citizens, the patricians good.
What authority surfeits on would relieve us: if they
would yield us but the superfluity, while it were
wholesome, we might guess they relieved us humanely;
but they think we are too dear: the leanness that
afflicts us, the object of our misery, is as an
inventory to particularise their abundance; our
sufferance is a gain to them. Let us revenge this with
our pikes, ere we become rakes: for the gods know I
speak this in hunger for bread, not in thirst for revenge.
";

/// Returns a Tiny-Shakespeare-style corpus of at least `target_len`
/// characters.
///
/// # Examples
///
/// ```
/// let text = menos_data::shakespeare_corpus(1000);
/// assert!(text.len() >= 1000);
/// assert!(text.contains("First Citizen"));
/// ```
pub fn shakespeare_corpus(target_len: usize) -> String {
    let mut out = String::with_capacity(target_len + SHAKESPEARE_SEED_TEXT.len());
    while out.len() < target_len {
        out.push_str(SHAKESPEARE_SEED_TEXT);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wiki_is_deterministic_per_seed() {
        assert_eq!(wiki_corpus(1, 300), wiki_corpus(1, 300));
        assert_ne!(wiki_corpus(1, 300), wiki_corpus(2, 300));
    }

    #[test]
    fn wiki_reaches_target_length() {
        for len in [10, 100, 5000] {
            assert!(wiki_corpus(7, len).len() >= len);
        }
    }

    #[test]
    fn wiki_has_sentence_structure() {
        let text = wiki_corpus(3, 2000);
        assert!(text.contains(". "));
        // Every sentence draws from the closed inventory.
        assert!(text.contains("the "));
    }

    #[test]
    fn shakespeare_repeats_seed_text() {
        let text = shakespeare_corpus(3000);
        assert!(text.len() >= 3000);
        assert!(text.matches("First Citizen").count() >= 2);
    }

    #[test]
    fn corpora_have_small_char_vocabs() {
        use crate::vocab::Vocab;
        // Tiny models need small embedding tables.
        assert!(Vocab::from_text(&wiki_corpus(5, 5000)).size() < 40);
        assert!(Vocab::from_text(&shakespeare_corpus(5000)).size() < 60);
    }
}

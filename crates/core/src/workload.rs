//! Experiment workload and server specifications for the timed
//! (paper-scale) runtime.

use menos_adapters::FineTuneConfig;
use menos_gpu::CostModel;
use menos_models::{ModelConfig, ModelProfile};
use menos_sim::Nanos;
use menos_split::SplitSpec;

use crate::policy::MemoryPolicy;

/// What device the clients run on (paper Fig. 10 scales clients on CPU
/// devices).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientDevice {
    /// A client-grade GPU (RTX A4500 in the paper).
    Gpu,
    /// A CPU-only client.
    Cpu,
}

impl ClientDevice {
    /// The cost model for this device.
    pub fn cost_model(self) -> CostModel {
        match self {
            ClientDevice::Gpu => CostModel::a4500(),
            ClientDevice::Cpu => CostModel::cpu_client(),
        }
    }
}

/// Network parameters for the client-server links.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// One-way latency.
    pub latency: Nanos,
    /// Effective throughput in bytes per second.
    pub bytes_per_sec: f64,
    /// Multiplicative jitter amplitude in `[0, 1)`.
    pub jitter: f64,
}

impl LinkSpec {
    /// The paper's geo-distributed Internet path.
    pub fn geo_distributed() -> Self {
        LinkSpec {
            latency: Nanos::from_millis(60),
            bytes_per_sec: 8e6,
            jitter: 0.05,
        }
    }

    /// A fast local link (negligible communication).
    pub fn lan() -> Self {
        LinkSpec {
            latency: Nanos::from_micros(100),
            bytes_per_sec: 1e9,
            jitter: 0.0,
        }
    }
}

/// How the server manages GPU memory across clients.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerMode {
    /// Menos: shared base model plus an on-demand memory policy and the
    /// FCFS + backfilling scheduler.
    Menos {
        /// Intermediate-memory policy (Fig. 3).
        policy: MemoryPolicy,
        /// Whether the scheduler backfills (ablation switch).
        backfilling: bool,
    },
    /// Vanilla split learning: a private base-model copy per client,
    /// task-level swapping when memory is exhausted.
    VanillaSwapping,
}

impl ServerMode {
    /// The configuration the paper evaluates as "Menos".
    pub fn menos() -> Self {
        ServerMode::Menos {
            policy: MemoryPolicy::menos(),
            backfilling: true,
        }
    }

    /// Short label for report tables.
    pub fn label(&self) -> String {
        match self {
            ServerMode::Menos {
                policy,
                backfilling,
            } => {
                if *backfilling {
                    format!("Menos [{policy}]")
                } else {
                    format!("Menos [{policy}, FCFS-only]")
                }
            }
            ServerMode::VanillaSwapping => "Vanilla".to_string(),
        }
    }
}

/// The server half of an experiment.
#[derive(Debug, Clone)]
pub struct ServerSpec {
    /// Number of GPUs (compute slots; memory pools together, Fig. 2).
    pub gpus: usize,
    /// Memory per GPU in bytes.
    pub gpu_capacity: u64,
    /// Host RAM usable for swapped-out task images.
    pub host_capacity: u64,
    /// GPU/PCIe cost model.
    pub cost: CostModel,
    /// Memory management mode.
    pub mode: ServerMode,
}

impl ServerSpec {
    /// The paper's server: one V100 with 32 GiB, 128 GiB host RAM (110
    /// GiB usable for swapped task images after OS and staging
    /// overhead — calibrated so 4 Llama-sized tasks fit and 5 do not,
    /// matching the paper's N/A cells).
    pub fn v100(mode: ServerMode) -> Self {
        ServerSpec {
            gpus: 1,
            gpu_capacity: 32 << 30,
            host_capacity: 110 << 30,
            cost: CostModel::v100(),
            mode,
        }
    }

    /// Total pooled GPU memory.
    pub fn total_gpu_bytes(&self) -> u64 {
        self.gpus as u64 * self.gpu_capacity
    }
}

/// The client/workload half of an experiment.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Paper-scale model configuration.
    pub model: ModelConfig,
    /// Where the model is cut.
    pub split: SplitSpec,
    /// Fine-tuning settings (shared by all clients, as in the paper).
    pub ft: FineTuneConfig,
    /// Number of concurrent clients.
    pub clients: usize,
    /// Fine-tuning iterations each client performs.
    pub iterations: usize,
    /// Client device type.
    pub client_device: ClientDevice,
    /// Network link parameters.
    pub link: LinkSpec,
    /// Delay between successive client start times (`ZERO` = all start
    /// together, as in the paper's steady-state measurements).
    pub stagger: Nanos,
    /// Optional per-client batch-size overrides (clients may report
    /// different fine-tuning settings, §3.3); `ft.batch_size` is used
    /// for clients beyond the vector or when `None`.
    pub client_batch_sizes: Option<Vec<usize>>,
    /// Optional per-client iteration counts (clients connect and leave
    /// independently); `iterations` is used when `None`.
    pub client_iterations: Option<Vec<usize>>,
    /// Tensor codec the clients negotiate (PROTOCOL.md §7). The
    /// analytic engine charges links with the *post-compression*
    /// per-message byte count for this codec — charging raw f32 sizes
    /// would make compressed WAN steps/s identical to raw, hiding the
    /// whole point of §7.
    pub codec: menos_net::Codec,
}

impl WorkloadSpec {
    /// The paper's evaluation workload for a model: LoRA r=8 on q/v,
    /// paper batch size, seq len 100, GPU clients, geo-distributed
    /// links.
    pub fn paper(model: ModelConfig, clients: usize, iterations: usize) -> Self {
        let ft = FineTuneConfig::paper(&model);
        WorkloadSpec {
            model,
            split: SplitSpec::paper(),
            ft,
            clients,
            iterations,
            client_device: ClientDevice::Gpu,
            link: LinkSpec::geo_distributed(),
            stagger: Nanos::ZERO,
            client_batch_sizes: None,
            client_iterations: None,
            codec: menos_net::Codec::F32Raw,
        }
    }

    /// Batch size for client `i` (override or the shared default).
    pub fn batch_size_of(&self, i: usize) -> usize {
        self.client_batch_sizes
            .as_ref()
            .and_then(|v| v.get(i).copied())
            .unwrap_or(self.ft.batch_size)
    }

    /// Iteration count for client `i` (override or the shared default).
    pub fn iterations_of(&self, i: usize) -> usize {
        self.client_iterations
            .as_ref()
            .and_then(|v| v.get(i).copied())
            .unwrap_or(self.iterations)
    }

    /// The analytic profile of this workload's model under its split.
    pub fn profile(&self) -> ModelProfile {
        ModelProfile::new(self.model.clone(), self.split.front_layers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_workload_defaults() {
        let w = WorkloadSpec::paper(ModelConfig::opt_1_3b(), 4, 10);
        assert_eq!(w.ft.batch_size, 16);
        assert_eq!(w.ft.seq_len, 100);
        assert_eq!(w.clients, 4);
        assert_eq!(w.split.front_layers, 1);
        assert_eq!(w.profile().server_layers(), 23);
    }

    #[test]
    fn server_presets() {
        let s = ServerSpec::v100(ServerMode::menos());
        assert_eq!(s.total_gpu_bytes(), 32 << 30);
        assert!(s.mode.label().contains("Menos"));
        assert_eq!(ServerMode::VanillaSwapping.label(), "Vanilla");
        let fcfs = ServerMode::Menos {
            policy: MemoryPolicy::menos(),
            backfilling: false,
        };
        assert!(fcfs.label().contains("FCFS-only"));
    }

    #[test]
    fn client_devices_have_distinct_speeds() {
        let gpu = ClientDevice::Gpu.cost_model();
        let cpu = ClientDevice::Cpu.cost_model();
        assert!(gpu.flops_per_sec > 10.0 * cpu.flops_per_sec);
    }

    #[test]
    fn link_presets() {
        let geo = LinkSpec::geo_distributed();
        assert_eq!(geo.latency, Nanos::from_millis(60));
        let lan = LinkSpec::lan();
        assert!(lan.bytes_per_sec > geo.bytes_per_sec);
    }
}

//! Tests for heterogeneous-client serving: staggered arrivals, mixed
//! batch sizes, and per-client iteration counts with disconnect
//! reclamation.

use menos_models::ModelConfig;
use menos_sim::Nanos;

use crate::policy::MemoryPolicy;
use crate::runtime::run_experiment;
use crate::workload::{ServerMode, ServerSpec, WorkloadSpec};

fn llama(clients: usize, iterations: usize) -> WorkloadSpec {
    WorkloadSpec::paper(ModelConfig::llama2_7b(), clients, iterations)
}

#[test]
fn staggered_arrivals_run_to_completion() {
    let mut w = llama(4, 4);
    w.stagger = Nanos::from_secs(2);
    let r = run_experiment(&ServerSpec::v100(ServerMode::menos()), &w, 3);
    assert!(r.error.is_none(), "{:?}", r.error);
    assert_eq!(r.iterations, 4);
    // Staggering de-synchronizes the clients; rounds stay near the
    // communication bound.
    assert!((3.0..8.0).contains(&r.avg_round_s), "{}", r.avg_round_s);
}

#[test]
fn stagger_reduces_backward_contention() {
    // Synchronized Llama clients all want the single backward slot at
    // once; staggered ones interleave naturally.
    let sync = run_experiment(&ServerSpec::v100(ServerMode::menos()), &llama(4, 6), 3);
    let mut w = llama(4, 6);
    w.stagger = Nanos::from_millis(1200);
    let staggered = run_experiment(&ServerSpec::v100(ServerMode::menos()), &w, 3);
    assert!(
        staggered.avg_schedule_s <= sync.avg_schedule_s + 0.05,
        "stagger should not increase waits: {} vs {}",
        staggered.avg_schedule_s,
        sync.avg_schedule_s
    );
}

#[test]
fn mixed_batch_sizes_schedule_correctly() {
    // One heavy client (batch 8 ~ double memory) among light ones.
    let mut w = llama(4, 5);
    w.client_batch_sizes = Some(vec![8, 2, 2, 2]);
    let r = run_experiment(&ServerSpec::v100(ServerMode::menos()), &w, 5);
    assert!(r.error.is_none(), "{:?}", r.error);
    assert_eq!(r.iterations, 5);
    assert!(r.peak_bytes <= 32 << 30, "peak {}", r.peak_bytes);
    // The heavy client's backward (≈5.4 GiB) exceeds light ones — the
    // scheduler must still admit everyone (FCFS prevents starvation).
}

#[test]
fn oversized_client_is_rejected_at_admission() {
    // A batch so large its backward could never be granted must be
    // rejected by the profiling/admission step (§3.3) — otherwise its
    // request would reach the FCFS head and starve everyone behind it.
    let mut w = llama(2, 3);
    w.client_batch_sizes = Some(vec![64, 2]);
    let r = run_experiment(&ServerSpec::v100(ServerMode::menos()), &w, 5);
    let err = r.error.expect("oversized client must be rejected");
    assert!(err.contains("exceeds schedulable pool"), "{err}");
}

#[test]
fn early_disconnects_free_memory_for_the_rest() {
    // Three clients leave after 1 iteration; the fourth runs 8 more.
    // Under the preserving policy the memory they pinned frees up, so
    // the survivor's later rounds speed up vs. a run where everyone
    // stays.
    let preserve = ServerMode::Menos {
        policy: MemoryPolicy::ReleaseAfterBackward,
        backfilling: true,
    };
    let mut churn = llama(4, 9);
    churn.client_iterations = Some(vec![1, 1, 1, 9]);
    let churn_run = run_experiment(&ServerSpec::v100(preserve), &churn, 7);
    let full_run = run_experiment(&ServerSpec::v100(preserve), &llama(4, 9), 7);
    assert!(churn_run.error.is_none() && full_run.error.is_none());
    // Round average over the survivor's rounds must beat the contended
    // full run's average.
    assert!(
        churn_run.avg_round_s < full_run.avg_round_s,
        "disconnect reclamation should help: {} vs {}",
        churn_run.avg_round_s,
        full_run.avg_round_s
    );
}

#[test]
fn per_client_iterations_respected() {
    let mut w = llama(3, 6);
    w.client_iterations = Some(vec![2, 4, 6]);
    let r = run_experiment(&ServerSpec::v100(ServerMode::menos()), &w, 2);
    assert!(r.error.is_none());
    // Report's `iterations` is the minimum completed.
    assert_eq!(r.iterations, 2);
}

#[test]
fn vanilla_handles_heterogeneous_tasks() {
    let mut w = WorkloadSpec::paper(ModelConfig::opt_1_3b(), 4, 4);
    w.client_batch_sizes = Some(vec![16, 16, 8, 8]);
    let r = run_experiment(&ServerSpec::v100(ServerMode::VanillaSwapping), &w, 2);
    assert!(r.error.is_none(), "{:?}", r.error);
    assert_eq!(r.iterations, 4);
}

#[test]
fn menos_serves_identical_clients_fairly() {
    let r = run_experiment(&ServerSpec::v100(ServerMode::menos()), &llama(4, 6), 3);
    assert!(r.error.is_none());
    let fairness = crate::runtime::jain_fairness(&r.per_client_round_s);
    assert!(
        fairness > 0.98,
        "unfair service: {fairness} ({:?})",
        r.per_client_round_s
    );
}

#[test]
fn zero_clients_is_an_error_not_a_hang() {
    let w = llama(0, 3);
    let r = run_experiment(&ServerSpec::v100(ServerMode::menos()), &w, 1);
    assert!(r.error.is_some());
}

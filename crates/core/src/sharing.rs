//! The base-model sharing registry (paper §3.1, Fig. 2).
//!
//! Exactly one copy of the frozen base parameters lives in (simulated)
//! GPU memory; every client gets its own *model instance* — a private,
//! mutable structure whose parameter tensors alias the shared storage.
//! Clients may then customize their instance freely (different
//! adapters, different cut layers) without touching each other or
//! duplicating the weights.

use menos_models::{CausalLm, ModelConfig};
use menos_sim::seeded_rng;
use menos_tensor::{ParamStore, Tensor};

/// Owns the single shared copy of a base model's parameters and mints
/// per-client structures over it.
///
/// # Examples
///
/// ```
/// use menos_core::SharedBaseRegistry;
/// use menos_models::ModelConfig;
///
/// let mut registry = SharedBaseRegistry::initialize(ModelConfig::tiny_llama(16), 42);
/// let a = registry.new_instance();
/// let b = registry.new_instance();
/// assert!(registry.verify_aliasing(&a));
/// assert!(registry.verify_aliasing(&b));
/// assert_eq!(registry.instances_created(), 2);
/// ```
#[derive(Debug)]
pub struct SharedBaseRegistry {
    config: ModelConfig,
    base: ParamStore,
    instances: usize,
}

impl SharedBaseRegistry {
    /// Initializes fresh base parameters for `config` (the stand-in for
    /// loading a pretrained checkpoint) and preloads them as the shared
    /// copy.
    pub fn initialize(config: ModelConfig, seed: u64) -> Self {
        let mut rng = seeded_rng(seed, "base-model");
        let base = menos_models::init_params(&config, &mut rng);
        SharedBaseRegistry {
            config,
            base,
            instances: 0,
        }
    }

    /// Wraps an existing parameter store as the shared copy.
    ///
    /// # Panics
    ///
    /// Panics if the store does not contain the parameters `config`
    /// requires (validated by a trial binding).
    pub fn from_store(config: ModelConfig, base: ParamStore) -> Self {
        // Trial bind: fails fast on missing/mis-shaped parameters.
        let _ = CausalLm::bind(&config, &base);
        SharedBaseRegistry {
            config,
            base,
            instances: 0,
        }
    }

    /// The model configuration of the shared base.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// Logical bytes of the shared base parameters (charged once to
    /// GPU memory, regardless of client count).
    pub fn base_bytes(&self) -> u64 {
        self.base.size_bytes()
    }

    /// Number of model instances minted so far.
    pub fn instances_created(&self) -> usize {
        self.instances
    }

    /// Mints a new client model instance: a fresh structure whose base
    /// parameters alias the shared storage and are frozen. The caller
    /// customizes it (adapter injection, cut selection) without
    /// affecting other instances.
    pub fn new_instance(&mut self) -> CausalLm {
        self.instances += 1;
        CausalLm::bind(&self.config, &self.base.shared_view(false))
    }

    /// Verifies that every base parameter of `instance` aliases this
    /// registry's storage — the invariant behind Eq. (3)'s single `M`
    /// term.
    pub fn verify_aliasing(&self, instance: &CausalLm) -> bool {
        let reference = CausalLm::bind(&self.config, &self.base);
        let ours = reference.base_params();
        let theirs = instance.base_params();
        ours.len() == theirs.len()
            && ours
                .iter()
                .zip(theirs.iter())
                .all(|(a, b)| Tensor::same_storage(a, b))
    }

    /// Direct access to the shared parameter store (e.g. to bind a
    /// co-located client for tests).
    pub fn base_store(&self) -> &ParamStore {
        &self.base
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use menos_adapters::{inject_adapters, FineTuneConfig};
    use menos_models::ModelConfig;

    fn registry() -> SharedBaseRegistry {
        SharedBaseRegistry::initialize(ModelConfig::tiny_opt(13), 7)
    }

    #[test]
    fn instances_share_base_storage() {
        let mut r = registry();
        let a = r.new_instance();
        let b = r.new_instance();
        for (x, y) in a.base_params().iter().zip(b.base_params()) {
            assert!(Tensor::same_storage(x, &y));
        }
        assert!(r.verify_aliasing(&a));
    }

    #[test]
    fn instances_customize_independently() {
        let mut r = registry();
        let cfg = r.config().clone();
        let mut a = r.new_instance();
        let mut b = r.new_instance();
        let ft = FineTuneConfig::paper(&cfg);
        let mut rng1 = menos_sim::seeded_rng(1, "t");
        let mut rng2 = menos_sim::seeded_rng(2, "t");
        let pa = inject_adapters(&mut a, 1..4, &ft, &mut rng1);
        let pb = inject_adapters(&mut b, 2..4, &ft, &mut rng2);
        // Different structures...
        assert_eq!(pa.len(), 12);
        assert_eq!(pb.len(), 8);
        // ...over the same weights, with private adapters.
        assert!(r.verify_aliasing(&a));
        assert!(r.verify_aliasing(&b));
        assert!(!pa.shares_storage_with(&pb));
    }

    #[test]
    fn foreign_instance_fails_verification() {
        let mut r1 = registry();
        let mut r2 = registry();
        let foreign = r2.new_instance();
        assert!(!r1.verify_aliasing(&foreign));
        let own = r1.new_instance();
        assert!(r1.verify_aliasing(&own));
    }

    #[test]
    fn base_bytes_counted_once() {
        let mut r = registry();
        let before = r.base_bytes();
        let _a = r.new_instance();
        let _b = r.new_instance();
        // Minting instances adds zero parameter bytes.
        assert_eq!(r.base_bytes(), before);
        assert_eq!(
            before,
            r.config().total_params() * 4,
            "base bytes = param count x 4"
        );
    }

    #[test]
    fn from_store_validates() {
        let cfg = ModelConfig::tiny_llama(13);
        let mut rng = menos_sim::seeded_rng(3, "t");
        let store = menos_models::init_params(&cfg, &mut rng);
        let r = SharedBaseRegistry::from_store(cfg, store);
        assert_eq!(r.instances_created(), 0);
    }

    #[test]
    #[should_panic(expected = "missing from store")]
    fn from_store_rejects_incomplete() {
        let cfg = ModelConfig::tiny_llama(13);
        let mut rng = menos_sim::seeded_rng(3, "t");
        let mut store = menos_models::init_params(&cfg, &mut rng);
        store.remove("blocks.0.attn.q.weight");
        SharedBaseRegistry::from_store(cfg, store);
    }
}

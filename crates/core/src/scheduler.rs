//! The Menos task scheduler — Algorithm 2 of the paper.
//!
//! Event-driven FCFS + backfilling (adapted from EASY backfilling
//! [Mu'alem & Feitelson 2001]) over GPU *memory* at operation
//! granularity. The scheduler is a pure data structure: the DES runtime
//! feeds it arrival and completion events and executes the decisions it
//! returns. Purity keeps decisions microsecond-fast (the paper reports
//! <0.1 ms) and unit-testable.

use std::collections::{HashMap, VecDeque};

use menos_split::ClientId;

/// Which server operation a request asks to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// The first forward pass (input data: client activations `x_c`).
    Forward,
    /// The (re-)forward + backward pass (input data: gradients `g_c`).
    Backward,
}

/// A pending request in the waiting list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Requesting client's serving process.
    pub client: ClientId,
    /// Operation kind.
    pub kind: OpKind,
    /// Bytes of GPU memory the operation needs (from profiling,
    /// filtered through the memory policy).
    pub demand: u64,
}

/// A scheduling decision: run this request now with `granted` bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision {
    /// The admitted request.
    pub request: Request,
    /// Whether it was admitted out of FCFS order (backfilled).
    pub backfilled: bool,
}

/// The admission order a scheduler uses.
///
/// The paper adopts FCFS + backfilling (from EASY backfilling) for its
/// balance of fairness and utilization; the alternatives exist for the
/// ablation study — smallest-demand-first maximizes short-term
/// utilization but starves memory-hungry backward requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedPolicy {
    /// Strict arrival order; a blocked head blocks everyone.
    Fcfs,
    /// Arrival order with backfilling around a blocked head
    /// (Algorithm 2, the paper's choice).
    FcfsBackfill,
    /// Always admit the smallest waiting demand first (ablation:
    /// utilization-greedy, starvation-prone).
    SmallestFirst,
}

/// FCFS + backfilling memory scheduler (Algorithm 2).
///
/// # Examples
///
/// ```
/// use menos_core::{OpKind, Request, Scheduler};
/// use menos_split::ClientId;
///
/// let mut s = Scheduler::new(100, true);
/// // A big backward blocks the head...
/// let d = s.data_arrived(Request { client: ClientId(0), kind: OpKind::Backward, demand: 120 });
/// assert!(d.is_empty());
/// // ...but a small forward backfills around it.
/// let d = s.data_arrived(Request { client: ClientId(1), kind: OpKind::Forward, demand: 30 });
/// assert_eq!(d.len(), 1);
/// assert!(d[0].backfilled);
/// ```
#[derive(Debug)]
pub struct Scheduler {
    m_avail: u64,
    waiting: VecDeque<Request>,
    allocation: HashMap<ClientId, u64>,
    policy: SchedPolicy,
    decisions: u64,
    backfills: u64,
}

impl Scheduler {
    /// Creates a scheduler over `m_avail` bytes of schedulable memory.
    /// `backfilling = false` gives the pure-FCFS ablation.
    pub fn new(m_avail: u64, backfilling: bool) -> Self {
        Scheduler::with_policy(
            m_avail,
            if backfilling {
                SchedPolicy::FcfsBackfill
            } else {
                SchedPolicy::Fcfs
            },
        )
    }

    /// Creates a scheduler with an explicit admission policy.
    pub fn with_policy(m_avail: u64, policy: SchedPolicy) -> Self {
        Scheduler {
            m_avail,
            waiting: VecDeque::new(),
            allocation: HashMap::new(),
            policy,
            decisions: 0,
            backfills: 0,
        }
    }

    /// The admission policy in force.
    pub fn policy(&self) -> SchedPolicy {
        self.policy
    }

    /// Bytes currently grantable.
    pub fn available(&self) -> u64 {
        self.m_avail
    }

    /// Pending requests.
    pub fn waiting_len(&self) -> usize {
        self.waiting.len()
    }

    /// Bytes currently granted to `client`.
    pub fn allocated_to(&self, client: ClientId) -> u64 {
        self.allocation.get(&client).copied().unwrap_or(0)
    }

    /// Lifetime `(decisions, backfills)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.decisions, self.backfills)
    }

    /// Permanently reserves memory outside the scheduling pool (e.g. a
    /// client's persistent `A + O`, or a resident base-model copy in
    /// the vanilla baseline). Returns `false` without change if the
    /// pool is too small.
    pub fn reserve_persistent(&mut self, bytes: u64) -> bool {
        if bytes > self.m_avail {
            return false;
        }
        self.m_avail -= bytes;
        true
    }

    /// Returns previously reserved memory to the pool and re-runs the
    /// scheduling pass.
    pub fn release_persistent(&mut self, bytes: u64) -> Vec<Decision> {
        self.m_avail += bytes;
        self.schedule()
    }

    /// Event: data arrived from a client (Alg. 2 lines 7-9). Appends to
    /// the waiting list and runs a scheduling pass.
    ///
    /// Zero-demand requests (a backward whose memory is already held
    /// under a preserving policy) are granted immediately without
    /// queueing: they need no admission, and parking them behind a
    /// blocked head would deadlock — the head waits for memory that
    /// only the zero-demand request's completion can release.
    pub fn data_arrived(&mut self, request: Request) -> Vec<Decision> {
        if request.demand == 0 {
            self.decisions += 1;
            return vec![Decision {
                request,
                backfilled: false,
            }];
        }
        self.waiting.push_back(request);
        self.schedule()
    }

    /// Event: a client's computation finished and released its memory
    /// (Alg. 2 lines 10-13). Reclaims the allocation and reschedules.
    pub fn task_completed(&mut self, client: ClientId) -> Vec<Decision> {
        if let Some(bytes) = self.allocation.remove(&client) {
            self.m_avail += bytes;
        }
        self.schedule()
    }

    /// Event: a client's connection was lost (deadline eviction or
    /// crash). The Alg. 2 counterpart of session quarantine: the dead
    /// client must not hold memory *or a queue position* while its
    /// session is parked, so any waiting requests are purged, its live
    /// allocation is reclaimed, and the freed capacity reschedules
    /// immediately. A later `Resume` re-enters through `data_arrived`
    /// like any other request.
    pub fn client_evicted(&mut self, client: ClientId) -> Vec<Decision> {
        self.waiting.retain(|r| r.client != client);
        if let Some(bytes) = self.allocation.remove(&client) {
            self.m_avail += bytes;
        }
        self.schedule()
    }

    /// The scheduling procedure (Alg. 2 lines 14-24, or the ablation
    /// variants).
    fn schedule(&mut self) -> Vec<Decision> {
        if self.policy == SchedPolicy::SmallestFirst {
            return self.schedule_smallest_first();
        }
        let mut out = Vec::new();
        // FCFS: admit from the head while it fits. This both prevents
        // starvation of memory-hungry backward requests and admits
        // bursts when memory is plentiful.
        while let Some(head) = self.waiting.front() {
            if head.demand > self.m_avail {
                break;
            }
            let req = self.waiting.pop_front().expect("head exists");
            self.grant(req);
            out.push(Decision {
                request: req,
                backfilled: false,
            });
        }
        // Backfilling: the head is blocked; admit later requests that
        // fit in the remaining memory.
        if self.policy == SchedPolicy::FcfsBackfill && !self.waiting.is_empty() {
            let mut i = 1; // index 0 is the blocked head
            while i < self.waiting.len() {
                if self.waiting[i].demand <= self.m_avail {
                    let req = self.waiting.remove(i).expect("index checked");
                    self.grant(req);
                    self.backfills += 1;
                    out.push(Decision {
                        request: req,
                        backfilled: true,
                    });
                } else {
                    i += 1;
                }
            }
        }
        out
    }

    /// Utilization-greedy ablation: repeatedly admit the smallest
    /// fitting demand, regardless of arrival order.
    fn schedule_smallest_first(&mut self) -> Vec<Decision> {
        let mut out = Vec::new();
        loop {
            let best = self
                .waiting
                .iter()
                .enumerate()
                .filter(|(_, r)| r.demand <= self.m_avail)
                .min_by_key(|(_, r)| r.demand)
                .map(|(i, _)| i);
            let Some(i) = best else { break };
            let req = self.waiting.remove(i).expect("index exists");
            self.grant(req);
            if i != 0 {
                self.backfills += 1;
            }
            out.push(Decision {
                request: req,
                backfilled: i != 0,
            });
        }
        out
    }

    fn grant(&mut self, req: Request) {
        debug_assert!(req.demand <= self.m_avail);
        self.m_avail -= req.demand;
        *self.allocation.entry(req.client).or_insert(0) += req.demand;
        self.decisions += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(client: u64, kind: OpKind, demand: u64) -> Request {
        Request {
            client: ClientId(client),
            kind,
            demand,
        }
    }

    #[test]
    fn grants_immediately_when_memory_free() {
        let mut s = Scheduler::new(100, true);
        let d = s.data_arrived(req(0, OpKind::Forward, 40));
        assert_eq!(d.len(), 1);
        assert!(!d[0].backfilled);
        assert_eq!(s.available(), 60);
        assert_eq!(s.allocated_to(ClientId(0)), 40);
    }

    #[test]
    fn eviction_purges_queue_slots_and_reclaims_memory() {
        let mut s = Scheduler::new(100, true);
        s.data_arrived(req(0, OpKind::Backward, 80)); // running
        assert!(s.data_arrived(req(1, OpKind::Backward, 60)).is_empty()); // blocked head
        assert!(s.data_arrived(req(2, OpKind::Backward, 70)).is_empty()); // queued behind it
        assert_eq!(s.waiting_len(), 2);

        // Client 1 dies while queued: its slot vanishes and the freed
        // head lets nothing through yet (client 0 still holds 80)...
        assert!(s.client_evicted(ClientId(1)).is_empty());
        assert_eq!(s.waiting_len(), 1);

        // ...then client 0 dies holding memory: the reclaim admits the
        // surviving head immediately.
        let d = s.client_evicted(ClientId(0));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].request.client, ClientId(2));
        assert_eq!(s.allocated_to(ClientId(0)), 0);
        assert_eq!(s.available(), 30);

        // Evicting a client the scheduler never saw is a no-op.
        assert!(s.client_evicted(ClientId(9)).is_empty());
    }

    #[test]
    fn fcfs_prevents_starvation_of_big_requests() {
        let mut s = Scheduler::new(100, true);
        s.data_arrived(req(0, OpKind::Backward, 80)); // running
        assert!(s.data_arrived(req(1, OpKind::Backward, 80)).is_empty()); // head, blocked
                                                                          // A stream of small forwards that WOULD fit must not starve the
                                                                          // blocked backward forever: they backfill now, but when client 0
                                                                          // completes, the backward head is admitted first.
        let d = s.data_arrived(req(2, OpKind::Forward, 10));
        assert_eq!(d.len(), 1);
        assert!(d[0].backfilled);
        let d = s.task_completed(ClientId(0));
        // 80 + 10 in flight, 10 free... completing frees 80 → 90 free,
        // head needs 80 → admitted ahead of everything else.
        assert_eq!(d[0].request.client, ClientId(1));
        assert!(!d[0].backfilled);
    }

    #[test]
    fn backfilling_uses_leftover_memory() {
        let mut s = Scheduler::new(100, true);
        s.data_arrived(req(0, OpKind::Backward, 70));
        s.data_arrived(req(1, OpKind::Backward, 70)); // blocked head
        let d = s.data_arrived(req(2, OpKind::Forward, 20));
        assert_eq!(d.len(), 1, "forward backfills around blocked backward");
        assert_eq!(d[0].request.client, ClientId(2));
        assert_eq!(s.available(), 10);
        assert_eq!(s.stats().1, 1);
    }

    #[test]
    fn fcfs_only_mode_never_backfills() {
        let mut s = Scheduler::new(100, false);
        s.data_arrived(req(0, OpKind::Backward, 70));
        s.data_arrived(req(1, OpKind::Backward, 70));
        let d = s.data_arrived(req(2, OpKind::Forward, 20));
        assert!(d.is_empty(), "FCFS-only holds order strictly");
        assert_eq!(s.waiting_len(), 2);
    }

    #[test]
    fn completion_reclaims_and_reschedules() {
        let mut s = Scheduler::new(100, true);
        s.data_arrived(req(0, OpKind::Backward, 100));
        assert!(s.data_arrived(req(1, OpKind::Backward, 60)).is_empty());
        let d = s.task_completed(ClientId(0));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].request.client, ClientId(1));
        assert_eq!(s.available(), 40);
        assert_eq!(s.allocated_to(ClientId(0)), 0);
    }

    #[test]
    fn zero_demand_requests_flow_through() {
        // Preserve policies produce zero-demand backward requests.
        let mut s = Scheduler::new(10, true);
        s.data_arrived(req(0, OpKind::Forward, 10));
        let d = s.data_arrived(req(0, OpKind::Backward, 0));
        assert_eq!(d.len(), 1);
        assert_eq!(s.allocated_to(ClientId(0)), 10);
    }

    #[test]
    fn multiple_decisions_in_one_pass() {
        let mut s = Scheduler::new(100, true);
        s.data_arrived(req(0, OpKind::Backward, 100));
        s.data_arrived(req(1, OpKind::Forward, 30));
        s.data_arrived(req(2, OpKind::Forward, 30));
        s.data_arrived(req(3, OpKind::Backward, 50));
        let d = s.task_completed(ClientId(0));
        // Head (1) and (2) admitted FCFS, (3) admitted FCFS too (30+30+50 > 100?
        // 100 free: 30 -> 70, 30 -> 40, 50 > 40 blocked head; no backfill left).
        assert_eq!(d.len(), 2);
        assert!(d.iter().all(|x| !x.backfilled));
        assert_eq!(s.waiting_len(), 1);
    }

    #[test]
    fn persistent_reservations_shrink_pool() {
        let mut s = Scheduler::new(100, true);
        assert!(s.reserve_persistent(60));
        assert!(!s.reserve_persistent(60));
        assert!(s.data_arrived(req(0, OpKind::Backward, 50)).is_empty());
        let d = s.release_persistent(60);
        assert_eq!(d.len(), 1, "released reservation unblocks the head");
    }

    #[test]
    fn smallest_first_starves_big_requests() {
        // The ablation policy keeps picking small newcomers over an
        // older big request — exactly why the paper chose FCFS.
        let mut s = Scheduler::with_policy(100, SchedPolicy::SmallestFirst);
        s.data_arrived(req(0, OpKind::Forward, 60)); // running
        assert!(s.data_arrived(req(1, OpKind::Backward, 80)).is_empty()); // big, waits
                                                                          // A stream of small requests: each admitted ahead of the big one.
        for i in 2..6 {
            let d = s.data_arrived(req(i, OpKind::Forward, 20));
            if !d.is_empty() {
                assert_ne!(d[0].request.client, ClientId(1));
            }
        }
        // Even after a completion frees memory, a small waiter beats it.
        s.data_arrived(req(9, OpKind::Forward, 30));
        let d = s.task_completed(ClientId(0));
        assert!(
            d.iter()
                .all(|x| x.request.client != ClientId(1) || x.request.demand <= 30)
                || d.iter().any(|x| x.request.client != ClientId(1)),
            "small requests admitted first under smallest-first"
        );
        assert_eq!(s.policy(), SchedPolicy::SmallestFirst);
    }

    #[test]
    fn fcfs_admits_big_request_where_smallest_first_does_not() {
        // Same arrival sequence, different policies: FCFS serves the
        // big backward as soon as memory frees; smallest-first defers
        // it behind any admissible small request.
        let arrivals = [
            req(0, OpKind::Forward, 60),
            req(1, OpKind::Backward, 80),
            req(2, OpKind::Forward, 50),
        ];
        let run = |policy: SchedPolicy| -> Vec<u64> {
            let mut s = Scheduler::with_policy(100, policy);
            for r in arrivals {
                s.data_arrived(r);
            }
            s.task_completed(ClientId(0))
                .iter()
                .map(|d| d.request.client.0)
                .collect()
        };
        let fcfs = run(SchedPolicy::FcfsBackfill);
        let sjf = run(SchedPolicy::SmallestFirst);
        assert_eq!(fcfs.first(), Some(&1), "FCFS serves the waiting backward");
        assert_eq!(sjf.first(), Some(&2), "smallest-first bypasses it");
    }

    #[test]
    fn backfill_preserves_relative_order_of_unschedulable() {
        let mut s = Scheduler::new(100, true);
        s.data_arrived(req(0, OpKind::Backward, 90));
        s.data_arrived(req(1, OpKind::Backward, 50)); // blocked head
        s.data_arrived(req(2, OpKind::Backward, 50)); // blocked
        s.data_arrived(req(3, OpKind::Forward, 10)); // backfills
        assert_eq!(s.waiting_len(), 2);
        let d = s.task_completed(ClientId(0));
        // 90 freed, 10 still held by the backfilled forward: only the
        // first head fits; order is respected.
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].request.client, ClientId(1));
        let d = s.task_completed(ClientId(3));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].request.client, ClientId(2));
    }
}

//! The timed multi-client runtime: a discrete-event simulation of split
//! fine-tuning at paper scale.
//!
//! Every experiment in the paper's §5 that measures *time* or *memory
//! under load* (Figs. 6, 7, 10 and Tables 1–3) runs through
//! [`run_experiment`]. The runtime composes:
//!
//! * per-client WAN links ([`menos_net::WanLink`]);
//! * client- and server-side compute charged from the analytic
//!   [`menos_models::ModelProfile`] through a [`menos_gpu::CostModel`];
//! * for Menos modes, the FCFS+backfilling [`crate::Scheduler`] over the
//!   schedulable memory pool and the Fig. 3 [`crate::MemoryPolicy`];
//! * for the vanilla baseline, LRU task swapping
//!   ([`menos_gpu::SwapManager`]) with PCIe serialization and pinning.
//!
//! Server compute slots equal the GPU count; memory pools across GPUs
//! (paper Fig. 2's "abstraction of all available GPUs").

use std::collections::VecDeque;

use menos_gpu::{SwapError, SwapManager};
use menos_models::ModelProfile;
use menos_net::WanLink;
use menos_sim::{EventQueue, Nanos, PeakTracker, Summary};
use menos_split::ClientId;

use crate::policy::MemoryPolicy;
use crate::profiler::{profile_client, MemoryDemands};
use crate::scheduler::{OpKind, Request, Scheduler};
use crate::workload::{ServerMode, ServerSpec, WorkloadSpec};

/// Aggregated results of one simulated run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Server mode label.
    pub mode: String,
    /// Number of clients.
    pub clients: usize,
    /// Iterations each client completed.
    pub iterations: usize,
    /// Persistent GPU bytes (base params + contexts + per-client A+O
    /// for Menos; per-client tasks for vanilla) — the Fig. 5 quantity.
    pub persistent_bytes: u64,
    /// Peak total GPU bytes observed.
    pub peak_bytes: u64,
    /// Mean seconds per fine-tuning round (Fig. 6).
    pub avg_round_s: f64,
    /// Mean communication seconds per round (Table 1).
    pub avg_comm_s: f64,
    /// Mean server compute seconds per round, incl. re-forward and
    /// release overhead (Table 2).
    pub avg_compute_s: f64,
    /// Mean schedule-wait seconds per round — time between data arrival
    /// and compute start (Table 3 / Fig. 7).
    pub avg_schedule_s: f64,
    /// Mean client-side compute seconds per round.
    pub avg_client_compute_s: f64,
    /// Mean round seconds per client (fairness analysis; index =
    /// client id).
    pub per_client_round_s: Vec<f64>,
    /// `(decisions, backfills)` from the scheduler (Menos modes).
    pub scheduler_stats: (u64, u64),
    /// `(swap-ins, swap-outs)` from the swap manager (vanilla mode).
    pub swap_stats: (u64, u64),
    /// Why the run could not execute (the paper's N/A cells), if so.
    pub error: Option<String>,
}

impl RunReport {
    fn failed(mode: String, clients: usize, why: String) -> Self {
        RunReport {
            mode,
            clients,
            iterations: 0,
            persistent_bytes: 0,
            peak_bytes: 0,
            avg_round_s: f64::NAN,
            avg_comm_s: f64::NAN,
            avg_compute_s: f64::NAN,
            avg_schedule_s: f64::NAN,
            avg_client_compute_s: f64::NAN,
            per_client_round_s: Vec::new(),
            scheduler_stats: (0, 0),
            swap_stats: (0, 0),
            error: Some(why),
        }
    }
}

#[derive(Debug)]
enum Ev {
    IterStart(usize),
    FrontDone(usize),
    XcArrive(usize),
    ServerComputeDone(usize, OpKind),
    XsArrive(usize),
    HeadDone(usize),
    GcArrive(usize),
    GsArrive(usize),
    IterDone(usize),
    ResidencyGranted(usize),
    SlotFree,
}

struct Cl {
    link: WanLink,
    iter_start: Nanos,
    arrival: Nanos,
    completed: usize,
    cur_comm: Nanos,
    cur_compute: Nanos,
    cur_sched: Nanos,
    cur_client: Nanos,
    round: Summary,
    comm: Summary,
    compute: Summary,
    sched: Summary,
    client_compute: Summary,
}

struct Sim<'a> {
    q: EventQueue<Ev>,
    server: &'a ServerSpec,
    workload: &'a WorkloadSpec,
    profile: ModelProfile,
    demands: Vec<MemoryDemands>,
    xfer_bytes: Vec<u64>,
    clients: Vec<Cl>,
    // Menos state.
    scheduler: Option<Scheduler>,
    pool_bytes: u64,
    // Vanilla state.
    swap: Option<SwapManager>,
    residency_queue: VecDeque<usize>,
    pcie_busy: bool,
    // Compute slots.
    free_slots: usize,
    compute_queue: VecDeque<(usize, OpKind, Nanos)>,
    // Memory bookkeeping. `persistent_bytes`/`pool_bytes` are live (a
    // disconnect moves a client's persistent share into the pool);
    // `report_persistent` keeps the setup-time Fig. 5 quantity.
    persistent_bytes: u64,
    report_persistent: u64,
    mem: PeakTracker,
    preload_swaps: (u64, u64),
    trace: Option<Vec<(Nanos, u64)>>,
}

/// Runs a timed experiment and reports per-round statistics.
///
/// Infeasible configurations (e.g. vanilla with more Llama-sized tasks
/// than host RAM can hold — the paper's N/A cells) return a report with
/// [`RunReport::error`] set instead of panicking.
pub fn run_experiment(server: &ServerSpec, workload: &WorkloadSpec, seed: u64) -> RunReport {
    run_experiment_impl(server, workload, seed, false).0
}

/// Like [`run_experiment`] but also returns the GPU memory timeline:
/// `(virtual time, total bytes in use)` samples at every allocation
/// event. This regenerates the paper's Fig. 3 memory-usage patterns.
pub fn run_experiment_traced(
    server: &ServerSpec,
    workload: &WorkloadSpec,
    seed: u64,
) -> (RunReport, Vec<(Nanos, u64)>) {
    let (report, trace) = run_experiment_impl(server, workload, seed, true);
    (report, trace.unwrap_or_default())
}

fn run_experiment_impl(
    server: &ServerSpec,
    workload: &WorkloadSpec,
    seed: u64,
    trace: bool,
) -> (RunReport, Option<Vec<(Nanos, u64)>>) {
    if workload.clients == 0 {
        return (
            RunReport::failed(server.mode.label(), 0, "workload has zero clients".into()),
            None,
        );
    }
    let profile = workload.profile();
    let demands: Vec<MemoryDemands> = (0..workload.clients)
        .map(|i| {
            let mut ft = workload.ft.clone();
            ft.batch_size = workload.batch_size_of(i);
            profile_client(&profile, &ft)
        })
        .collect();
    let mode_label = server.mode.label();
    let n = workload.clients;
    let total_gpu = server.total_gpu_bytes();
    let ctx = server.cost.cuda_context_bytes;

    // ------------------------------------------------------------------
    // Setup: persistent memory layout (or early N/A).
    // ------------------------------------------------------------------
    let (scheduler, swap, persistent_bytes, pool_bytes) = match server.mode {
        ServerMode::Menos {
            policy,
            backfilling,
        } => {
            // One shared base + manager context + per-client (context, A+O).
            let persistent = profile.server_param_bytes()
                + ctx
                + demands.iter().map(|d| ctx + d.persistent).sum::<u64>();
            if persistent > total_gpu {
                return (
                    RunReport::failed(
                        mode_label,
                        n,
                        format!("persistent footprint {persistent} exceeds GPU pool {total_gpu}"),
                    ),
                    None,
                );
            }
            let pool = total_gpu - persistent;
            // Admission control (§3.3): profiling exists so the server
            // can reject a client whose forward/backward demand could
            // NEVER be granted — otherwise that request would reach the
            // FCFS head and starve every client behind it.
            for (i, d) in demands.iter().enumerate() {
                let worst = policy
                    .forward_demand(d.m_f, d.m_b)
                    .max(policy.backward_demand(d.m_b));
                if worst > pool {
                    return (
                        RunReport::failed(
                            mode_label,
                            n,
                            format!(
                                "client {i} profiled demand {worst} exceeds schedulable pool {pool}"
                            ),
                        ),
                        None,
                    );
                }
            }
            let mut sched = Scheduler::new(pool, backfilling);
            let total_mb: u64 = demands.iter().map(|d| d.m_b).sum();
            if policy.holds_memory_across_iterations() && !sched.reserve_persistent(total_mb) {
                return (
                    RunReport::failed(
                        mode_label,
                        n,
                        format!(
                            "preserve-all cannot reserve {total_mb} bytes of intermediates for {n} clients"
                        ),
                    ),
                    None,
                );
            }
            (Some(sched), None, persistent, pool)
        }
        ServerMode::VanillaSwapping => {
            // Private copy per client: M + A + O + context + preserved I.
            let mut swap = SwapManager::new(total_gpu, server.host_capacity);
            let mut total_resident = 0u64;
            for (i, d) in demands.iter().enumerate() {
                let task_transfer = profile.server_param_bytes() + d.persistent + ctx;
                let task_resident = task_transfer + d.m_b;
                total_resident += task_resident;
                if let Err(e) = swap.register(format!("client-{i}"), task_resident, task_transfer) {
                    return (
                        RunReport::failed(
                            mode_label,
                            n,
                            format!("vanilla cannot host {n} tasks: {e}"),
                        ),
                        None,
                    );
                }
            }
            // Preload as many tasks as fit — clients connect before the
            // measured steady state begins, so initial loads are free.
            for (i, d) in demands.iter().enumerate() {
                let task_resident = profile.server_param_bytes() + d.persistent + ctx + d.m_b;
                if swap.gpu_used() + task_resident > total_gpu {
                    break;
                }
                swap.ensure_resident(&format!("client-{i}"), &server.cost)
                    .expect("preload within capacity");
            }
            (None, Some(swap), total_resident, 0)
        }
    };

    let clients = (0..n)
        .map(|i| Cl {
            link: WanLink::new(
                workload.link.latency,
                workload.link.bytes_per_sec,
                workload.link.jitter,
                seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ),
            iter_start: Nanos::ZERO,
            arrival: Nanos::ZERO,
            completed: 0,
            cur_comm: Nanos::ZERO,
            cur_compute: Nanos::ZERO,
            cur_sched: Nanos::ZERO,
            cur_client: Nanos::ZERO,
            round: Summary::new(),
            comm: Summary::new(),
            compute: Summary::new(),
            sched: Summary::new(),
            client_compute: Summary::new(),
        })
        .collect();

    let mut sim = Sim {
        q: EventQueue::new(),
        server,
        workload,
        xfer_bytes: (0..workload.clients)
            .map(|i| {
                menos_split::activation_wire_bytes_with(
                    workload.codec,
                    workload.batch_size_of(i),
                    workload.ft.seq_len,
                    profile.config.hidden,
                )
            })
            .collect(),
        profile,
        demands,
        clients,
        scheduler,
        pool_bytes,
        swap,
        residency_queue: VecDeque::new(),
        pcie_busy: false,
        free_slots: server.gpus,
        compute_queue: VecDeque::new(),
        persistent_bytes,
        report_persistent: persistent_bytes,
        mem: PeakTracker::new(),
        preload_swaps: (0, 0),
        trace: trace.then(Vec::new),
    };
    sim.preload_swaps = sim.swap.as_ref().map(|s| s.swap_counts()).unwrap_or((0, 0));
    // Initial usage: Menos' persistent layout, or the preloaded
    // resident set for vanilla (whose *logical* duplicated demand —
    // the Fig. 5 quantity — may exceed physical capacity).
    sim.record_mem();

    for i in 0..n {
        sim.q
            .schedule_at(workload.stagger * i as u64, Ev::IterStart(i));
    }
    while let Some((_, ev)) = sim.q.pop() {
        sim.handle(ev);
    }

    sim.finish(mode_label)
}

impl Sim<'_> {
    fn policy(&self) -> Option<MemoryPolicy> {
        match self.server.mode {
            ServerMode::Menos { policy, .. } => Some(policy),
            ServerMode::VanillaSwapping => None,
        }
    }

    fn client_cost(&self) -> menos_gpu::CostModel {
        self.workload.client_device.cost_model()
    }

    fn record_mem(&mut self) {
        let used = match (&self.scheduler, &self.swap) {
            (Some(s), _) => self.persistent_bytes + (self.pool_bytes - s.available()),
            (_, Some(sw)) => sw.gpu_used(),
            _ => unreachable!("one memory authority exists"),
        };
        self.mem.record(used);
        if let Some(t) = &mut self.trace {
            t.push((self.q.now(), used));
        }
    }

    fn handle(&mut self, ev: Ev) {
        match ev {
            Ev::IterStart(i) => {
                let now = self.q.now();
                let dur =
                    self.client_cost()
                        .compute_time(self.profile.client_front_flops(
                            self.workload.batch_size_of(i),
                            self.workload.ft.seq_len,
                        ));
                let c = &mut self.clients[i];
                c.iter_start = now;
                c.cur_client += dur;
                self.q.schedule_after(dur, Ev::FrontDone(i));
            }
            Ev::FrontDone(i) => {
                let bytes = self.xfer_bytes[i];
                let c = &mut self.clients[i];
                let dur = c.link.transfer_time(bytes);
                c.cur_comm += dur;
                self.q.schedule_after(dur, Ev::XcArrive(i));
            }
            Ev::XcArrive(i) => {
                self.clients[i].arrival = self.q.now();
                match self.server.mode {
                    ServerMode::Menos { policy, .. } => {
                        let d = &self.demands[i];
                        let demand = policy.forward_demand(d.m_f, d.m_b);
                        let decisions =
                            self.scheduler
                                .as_mut()
                                .expect("menos mode")
                                .data_arrived(Request {
                                    client: ClientId(i as u64),
                                    kind: OpKind::Forward,
                                    demand,
                                });
                        self.apply_decisions(decisions);
                    }
                    ServerMode::VanillaSwapping => {
                        if self.swap.as_ref().expect("vanilla").is_resident(&task(i)) {
                            // Touch + pin, then queue compute.
                            let cost = self.server.cost.clone();
                            let swap = self.swap.as_mut().expect("vanilla");
                            let r = swap.ensure_resident(&task(i), &cost).expect("resident");
                            debug_assert!(r.elapsed == Nanos::ZERO);
                            swap.pin(&task(i));
                            self.enqueue_compute(i, OpKind::Forward);
                        } else {
                            self.residency_queue.push_back(i);
                            self.pump_residency();
                        }
                    }
                }
            }
            Ev::ResidencyGranted(i) => {
                self.pcie_busy = false;
                self.swap.as_mut().expect("vanilla").pin(&task(i));
                self.record_mem();
                self.enqueue_compute(i, OpKind::Forward);
                self.pump_residency();
            }
            Ev::SlotFree => {
                self.free_slots += 1;
                self.try_start_compute();
            }
            Ev::ServerComputeDone(i, kind) => {
                match kind {
                    OpKind::Forward => {
                        // Release or retain intermediate memory per policy.
                        if let Some(policy) = self.policy() {
                            if !policy.holds_memory_while_waiting() {
                                let decisions = self
                                    .scheduler
                                    .as_mut()
                                    .expect("menos")
                                    .task_completed(ClientId(i as u64));
                                self.record_mem();
                                self.apply_decisions(decisions);
                            }
                        }
                        let bytes = self.xfer_bytes[i];
                        let c = &mut self.clients[i];
                        let dur = c.link.transfer_time(bytes);
                        c.cur_comm += dur;
                        self.q.schedule_after(dur, Ev::XsArrive(i));
                    }
                    OpKind::Backward => {
                        match self.server.mode {
                            ServerMode::Menos { policy, .. } => {
                                if !policy.holds_memory_across_iterations() {
                                    let decisions = self
                                        .scheduler
                                        .as_mut()
                                        .expect("menos")
                                        .task_completed(ClientId(i as u64));
                                    self.record_mem();
                                    self.apply_decisions(decisions);
                                }
                            }
                            ServerMode::VanillaSwapping => {
                                self.swap.as_mut().expect("vanilla").unpin(&task(i));
                                self.pump_residency();
                            }
                        }
                        let bytes = self.xfer_bytes[i];
                        let c = &mut self.clients[i];
                        let dur = c.link.transfer_time(bytes);
                        c.cur_comm += dur;
                        self.q.schedule_after(dur, Ev::GsArrive(i));
                    }
                }
            }
            Ev::XsArrive(i) => {
                // Head forward + loss + head backward on the client.
                let flops = self
                    .profile
                    .client_head_flops(self.workload.batch_size_of(i), self.workload.ft.seq_len);
                let dur = self.client_cost().compute_time(3.0 * flops);
                self.clients[i].cur_client += dur;
                self.q.schedule_after(dur, Ev::HeadDone(i));
            }
            Ev::HeadDone(i) => {
                let bytes = self.xfer_bytes[i];
                let c = &mut self.clients[i];
                let dur = c.link.transfer_time(bytes);
                c.cur_comm += dur;
                self.q.schedule_after(dur, Ev::GcArrive(i));
            }
            Ev::GcArrive(i) => {
                self.clients[i].arrival = self.q.now();
                match self.server.mode {
                    ServerMode::Menos { policy, .. } => {
                        let demand = policy.backward_demand(self.demands[i].m_b);
                        let decisions =
                            self.scheduler
                                .as_mut()
                                .expect("menos")
                                .data_arrived(Request {
                                    client: ClientId(i as u64),
                                    kind: OpKind::Backward,
                                    demand,
                                });
                        self.apply_decisions(decisions);
                    }
                    ServerMode::VanillaSwapping => {
                        // Task is pinned resident with activations held.
                        self.enqueue_compute(i, OpKind::Backward);
                    }
                }
            }
            Ev::GsArrive(i) => {
                let flops = self
                    .profile
                    .client_front_flops(self.workload.batch_size_of(i), self.workload.ft.seq_len);
                let dur = self.client_cost().compute_time(2.0 * flops);
                self.clients[i].cur_client += dur;
                self.q.schedule_after(dur, Ev::IterDone(i));
            }
            Ev::IterDone(i) => {
                let now = self.q.now();
                let c = &mut self.clients[i];
                // The first iteration is warm-up (initial loads and
                // pipeline fill) and is excluded from steady-state
                // statistics, as in the paper's averaged measurements.
                if c.completed >= 1 {
                    c.round.add_time(now - c.iter_start);
                    c.comm.add_time(c.cur_comm);
                    c.compute.add_time(c.cur_compute);
                    c.sched.add_time(c.cur_sched);
                    c.client_compute.add_time(c.cur_client);
                }
                c.cur_comm = Nanos::ZERO;
                c.cur_compute = Nanos::ZERO;
                c.cur_sched = Nanos::ZERO;
                c.cur_client = Nanos::ZERO;
                c.completed += 1;
                if c.completed < self.workload.iterations_of(i) {
                    self.q.schedule_now(Ev::IterStart(i));
                } else {
                    self.disconnect(i);
                }
            }
        }
    }

    fn apply_decisions(&mut self, decisions: Vec<crate::scheduler::Decision>) {
        self.record_mem();
        for d in decisions {
            let i = d.request.client.0 as usize;
            self.enqueue_compute(i, d.request.kind);
        }
    }

    fn enqueue_compute(&mut self, i: usize, kind: OpKind) {
        let arrival = self.clients[i].arrival;
        self.compute_queue.push_back((i, kind, arrival));
        self.try_start_compute();
    }

    fn try_start_compute(&mut self) {
        while self.free_slots > 0 {
            let Some((i, kind, arrival)) = self.compute_queue.pop_front() else {
                return;
            };
            self.free_slots -= 1;
            let now = self.q.now();
            let wait = now.saturating_sub(arrival);
            let (slot, extra) = self.server_compute_duration(i, kind);
            let c = &mut self.clients[i];
            c.cur_sched += wait;
            // Table 2 reports compute including the release/re-collect
            // overhead, which runs in the serving process after the
            // kernels finish — the GPU slot frees at kernel completion.
            c.cur_compute += slot + extra;
            self.q.schedule_after(slot, Ev::SlotFree);
            self.q
                .schedule_after(slot + extra, Ev::ServerComputeDone(i, kind));
        }
    }

    /// Returns `(gpu_slot_time, post_compute_overhead)` for a server
    /// operation. The overhead (memory release / re-collection) runs in
    /// the client's serving process and does not occupy the GPU.
    fn server_compute_duration(&self, i: usize, kind: OpKind) -> (Nanos, Nanos) {
        let batch = self.workload.batch_size_of(i);
        let seq = self.workload.ft.seq_len;
        let fwd = self.profile.forward_flops(batch, seq);
        let bwd = self.profile.backward_flops(batch, seq);
        let cost = &self.server.cost;
        let n = self.workload.clients;
        match (self.policy(), kind) {
            // Menos-family policies.
            (Some(p), OpKind::Forward) => {
                let extra = if p.holds_memory_while_waiting() {
                    Nanos::ZERO
                } else {
                    cost.release_time(n)
                };
                (cost.compute_time(fwd), extra)
            }
            (Some(p), OpKind::Backward) => {
                let slot = if p.requires_reforward() {
                    cost.compute_time(fwd + bwd)
                } else {
                    cost.compute_time(bwd)
                };
                let extra = if p.holds_memory_across_iterations() {
                    Nanos::ZERO
                } else {
                    cost.release_time(n)
                };
                (slot, extra)
            }
            // Vanilla preserves memory: no release overhead, no re-forward.
            (None, OpKind::Forward) => (cost.compute_time(fwd), Nanos::ZERO),
            (None, OpKind::Backward) => (cost.compute_time(bwd), Nanos::ZERO),
        }
    }

    /// A client finished fine-tuning: the server releases its
    /// persistent state (context + adapters + optimizer) so remaining
    /// clients can use the memory (Alg. 1's exit path).
    fn disconnect(&mut self, i: usize) {
        if let ServerMode::Menos { .. } = self.server.mode {
            let ctx = self.server.cost.cuda_context_bytes;
            let freed = ctx + self.demands[i].persistent;
            self.persistent_bytes -= freed;
            self.pool_bytes += freed;
            let decisions = self
                .scheduler
                .as_mut()
                .expect("menos")
                .release_persistent(freed);
            self.apply_decisions(decisions);
        }
        // Vanilla: the task image stays registered (host RAM) but its
        // GPU residency is naturally evicted by LRU once others need it.
    }

    fn pump_residency(&mut self) {
        if self.pcie_busy {
            return;
        }
        let Some(&i) = self.residency_queue.front() else {
            return;
        };
        let cost = self.server.cost.clone();
        let swap = self.swap.as_mut().expect("vanilla");
        match swap.ensure_resident(&task(i), &cost) {
            Ok(outcome) => {
                self.residency_queue.pop_front();
                self.record_mem();
                if outcome.elapsed == Nanos::ZERO {
                    self.swap.as_mut().expect("vanilla").pin(&task(i));
                    self.enqueue_compute(i, OpKind::Forward);
                    self.pump_residency();
                } else {
                    self.pcie_busy = true;
                    self.q
                        .schedule_after(outcome.elapsed, Ev::ResidencyGranted(i));
                }
            }
            Err(SwapError::NoVictim) => {
                // Every resident task is mid-iteration; retried on unpin.
            }
            Err(e) => {
                // Registration guarantees tasks fit; anything else is a
                // logic error worth failing loudly on.
                panic!("unexpected residency failure for client {i}: {e}");
            }
        }
    }

    fn finish(mut self, mode: String) -> (RunReport, Option<Vec<(Nanos, u64)>>) {
        let trace = self.trace.take();
        (self.report(mode), trace)
    }

    fn report(self, mode: String) -> RunReport {
        let mut round = Summary::new();
        let mut comm = Summary::new();
        let mut compute = Summary::new();
        let mut sched = Summary::new();
        let mut client_c = Summary::new();
        for c in &self.clients {
            round.add(c.round.mean());
            comm.add(c.comm.mean());
            compute.add(c.compute.mean());
            sched.add(c.sched.mean());
            client_c.add(c.client_compute.mean());
        }
        RunReport {
            mode,
            clients: self.workload.clients,
            iterations: self.clients.iter().map(|c| c.completed).min().unwrap_or(0),
            persistent_bytes: self.report_persistent,
            peak_bytes: self.mem.peak(),
            avg_round_s: round.mean(),
            avg_comm_s: comm.mean(),
            avg_compute_s: compute.mean(),
            avg_schedule_s: sched.mean(),
            avg_client_compute_s: client_c.mean(),
            per_client_round_s: self.clients.iter().map(|c| c.round.mean()).collect(),
            scheduler_stats: self.scheduler.as_ref().map(|s| s.stats()).unwrap_or((0, 0)),
            swap_stats: self
                .swap
                .as_ref()
                .map(|s| {
                    let (i, o) = s.swap_counts();
                    (i - self.preload_swaps.0, o - self.preload_swaps.1)
                })
                .unwrap_or((0, 0)),
            error: None,
        }
    }
}

fn task(i: usize) -> String {
    format!("client-{i}")
}

/// Jain's fairness index over per-client values: `1.0` is perfectly
/// fair, `1/n` maximally unfair.
///
/// # Examples
///
/// ```
/// assert_eq!(menos_core::jain_fairness(&[2.0, 2.0, 2.0]), 1.0);
/// assert!(menos_core::jain_fairness(&[1.0, 0.0, 0.0]) < 0.34);
/// ```
pub fn jain_fairness(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let sum: f64 = values.iter().sum();
    let sum_sq: f64 = values.iter().map(|v| v * v).sum();
    if sum_sq == 0.0 {
        return 1.0;
    }
    sum * sum / (values.len() as f64 * sum_sq)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{ClientDevice, LinkSpec};
    use menos_models::ModelConfig;

    fn opt_workload(clients: usize) -> WorkloadSpec {
        WorkloadSpec::paper(ModelConfig::opt_1_3b(), clients, 6)
    }

    fn llama_workload(clients: usize) -> WorkloadSpec {
        WorkloadSpec::paper(ModelConfig::llama2_7b(), clients, 6)
    }

    #[test]
    fn menos_opt_round_times_match_paper_shape() {
        // Fig. 6a: Menos stays near the communication bound (≈7 s) from
        // 1 to 6 clients, ending below ~10 s at 6.
        let server = ServerSpec::v100(ServerMode::menos());
        let r1 = run_experiment(&server, &opt_workload(1), 1);
        let r6 = run_experiment(&server, &opt_workload(6), 1);
        assert!(r1.error.is_none() && r6.error.is_none());
        assert!(
            (5.5..9.0).contains(&r1.avg_round_s),
            "1 client: {}",
            r1.avg_round_s
        );
        assert!(
            (6.0..11.0).contains(&r6.avg_round_s),
            "6 clients: {}",
            r6.avg_round_s
        );
        assert!(r6.avg_round_s < 2.0 * r1.avg_round_s, "Menos scales gently");
    }

    #[test]
    fn vanilla_opt_swaps_beyond_three_clients() {
        // Fig. 6a: vanilla ≈ Menos for ≤3 clients, then swapping bites
        // (18.2 s at 6 clients in the paper).
        let server = ServerSpec::v100(ServerMode::VanillaSwapping);
        let r3 = run_experiment(&server, &opt_workload(3), 1);
        let r6 = run_experiment(&server, &opt_workload(6), 1);
        assert!(r3.error.is_none(), "{:?}", r3.error);
        assert!(
            (5.5..9.5).contains(&r3.avg_round_s),
            "3 clients: {}",
            r3.avg_round_s
        );
        assert!(
            r6.avg_round_s > 1.5 * r3.avg_round_s,
            "swapping should hurt: {} vs {}",
            r6.avg_round_s,
            r3.avg_round_s
        );
        assert!(r6.swap_stats.0 > 0, "swap-ins expected");
    }

    #[test]
    fn vanilla_llama_collapses_at_two_clients() {
        // Fig. 6b: 3.7 s at 1 client; tens of seconds at 2+.
        let server = ServerSpec::v100(ServerMode::VanillaSwapping);
        let r1 = run_experiment(&server, &llama_workload(1), 1);
        let r2 = run_experiment(&server, &llama_workload(2), 1);
        assert!(r1.error.is_none());
        assert!(
            (3.0..6.5).contains(&r1.avg_round_s),
            "1 client: {}",
            r1.avg_round_s
        );
        assert!(r2.avg_round_s > 30.0, "2 clients: {}", r2.avg_round_s);
    }

    #[test]
    fn vanilla_llama_five_clients_is_na() {
        // The paper's N/A cells: host memory cannot hold 5 Llama tasks.
        let server = ServerSpec::v100(ServerMode::VanillaSwapping);
        let r5 = run_experiment(&server, &llama_workload(5), 1);
        assert!(r5.error.is_some(), "expected N/A");
        let r4 = run_experiment(&server, &llama_workload(4), 1);
        assert!(r4.error.is_none(), "{:?}", r4.error);
    }

    #[test]
    fn menos_llama_stays_fast_to_four_clients() {
        // Fig. 6b: Menos 4.7 → 6.0 s from 1 to 4 clients.
        let server = ServerSpec::v100(ServerMode::menos());
        let r1 = run_experiment(&server, &llama_workload(1), 1);
        let r4 = run_experiment(&server, &llama_workload(4), 1);
        assert!(
            (3.0..7.0).contains(&r1.avg_round_s),
            "1: {}",
            r1.avg_round_s
        );
        assert!(
            (3.5..9.0).contains(&r4.avg_round_s),
            "4: {}",
            r4.avg_round_s
        );
        assert!(r4.avg_round_s < 2.0 * r1.avg_round_s);
    }

    #[test]
    fn menos_compute_grows_with_clients_but_schedule_stays_small() {
        // Tables 2 and 3 for Menos.
        let server = ServerSpec::v100(ServerMode::menos());
        let r1 = run_experiment(&server, &opt_workload(1), 1);
        let r6 = run_experiment(&server, &opt_workload(6), 1);
        assert!(
            r6.avg_compute_s > r1.avg_compute_s + 0.3,
            "fragmentation overhead grows: {} vs {}",
            r1.avg_compute_s,
            r6.avg_compute_s
        );
        assert!(
            r6.avg_schedule_s < 1.5,
            "Menos OPT schedule ≈ 0: {}",
            r6.avg_schedule_s
        );
        // Vanilla compute stays flat (no re-forward, no release churn).
        let server_v = ServerSpec::v100(ServerMode::VanillaSwapping);
        let v3 = run_experiment(&server_v, &opt_workload(3), 1);
        assert!(
            (0.3..0.8).contains(&v3.avg_compute_s),
            "vanilla OPT compute: {}",
            v3.avg_compute_s
        );
        assert!(
            r1.avg_compute_s > v3.avg_compute_s,
            "re-forward costs compute"
        );
    }

    #[test]
    fn communication_dominates_and_is_stable() {
        // Table 1: comm ≈ 6.4-7.1 s (OPT) regardless of client count.
        let server = ServerSpec::v100(ServerMode::menos());
        for n in [1, 4] {
            let r = run_experiment(&server, &opt_workload(n), 1);
            assert!(
                (5.5..8.0).contains(&r.avg_comm_s),
                "OPT comm at {n}: {}",
                r.avg_comm_s
            );
        }
        let r = run_experiment(&server, &llama_workload(2), 1);
        assert!(
            (2.8..4.5).contains(&r.avg_comm_s),
            "Llama comm: {}",
            r.avg_comm_s
        );
    }

    #[test]
    fn memory_preserving_policy_queues_llama_clients() {
        // Fig. 7: preserve policy ≈10 s schedule time at 4 Llama
        // clients; Menos ≈0.4 s.
        let preserve = ServerSpec::v100(ServerMode::Menos {
            policy: MemoryPolicy::ReleaseAfterBackward,
            backfilling: true,
        });
        let menos = ServerSpec::v100(ServerMode::menos());
        let w = llama_workload(4);
        let rp = run_experiment(&preserve, &w, 1);
        let rm = run_experiment(&menos, &w, 1);
        assert!(rp.error.is_none(), "{:?}", rp.error);
        assert!(
            rp.avg_schedule_s > 4.0 * rm.avg_schedule_s.max(0.05),
            "preserving queues: {} vs menos {}",
            rp.avg_schedule_s,
            rm.avg_schedule_s
        );
    }

    #[test]
    fn multi_gpu_reduces_round_time_for_many_clients() {
        // Fig. 10: 10 clients on 1 GPU slow down; 4 GPUs recover.
        let mut w = llama_workload(10);
        w.client_device = ClientDevice::Cpu;
        let one = ServerSpec {
            gpus: 1,
            ..ServerSpec::v100(ServerMode::menos())
        };
        let four = ServerSpec {
            gpus: 4,
            ..ServerSpec::v100(ServerMode::menos())
        };
        let r1 = run_experiment(&one, &w, 1);
        let r4 = run_experiment(&four, &w, 1);
        assert!(
            r1.error.is_none() && r4.error.is_none(),
            "{:?} {:?}",
            r1.error,
            r4.error
        );
        assert!(
            r4.avg_round_s < r1.avg_round_s,
            "more GPUs help: {} vs {}",
            r4.avg_round_s,
            r1.avg_round_s
        );
    }

    #[test]
    fn cpu_clients_only_slightly_slower() {
        // Fig. 10: 2 clients, 4.5 s (GPU) → 5.3 s (CPU).
        let server = ServerSpec::v100(ServerMode::menos());
        let gpu = run_experiment(&server, &llama_workload(2), 1);
        let mut w = llama_workload(2);
        w.client_device = ClientDevice::Cpu;
        let cpu = run_experiment(&server, &w, 1);
        let delta = cpu.avg_round_s - gpu.avg_round_s;
        assert!((0.1..2.5).contains(&delta), "CPU delta: {delta}");
    }

    #[test]
    fn deterministic_across_runs() {
        let server = ServerSpec::v100(ServerMode::menos());
        let a = run_experiment(&server, &opt_workload(3), 9);
        let b = run_experiment(&server, &opt_workload(3), 9);
        assert_eq!(a.avg_round_s.to_bits(), b.avg_round_s.to_bits());
        assert_eq!(a.peak_bytes, b.peak_bytes);
        let c = run_experiment(&server, &opt_workload(3), 10);
        assert_ne!(a.avg_round_s.to_bits(), c.avg_round_s.to_bits());
    }

    #[test]
    fn peak_memory_never_exceeds_capacity() {
        let server = ServerSpec::v100(ServerMode::menos());
        for n in [1, 2, 4] {
            let r = run_experiment(&server, &llama_workload(n), 1);
            assert!(
                r.peak_bytes <= server.total_gpu_bytes(),
                "peak {} exceeds capacity at {n} clients",
                r.peak_bytes
            );
        }
    }

    #[test]
    fn fast_links_shrink_rounds() {
        let server = ServerSpec::v100(ServerMode::menos());
        let mut w = opt_workload(2);
        w.link = LinkSpec::lan();
        let lan = run_experiment(&server, &w, 1);
        let wan = run_experiment(&server, &opt_workload(2), 1);
        assert!(lan.avg_round_s < wan.avg_round_s / 2.0);
        assert!(lan.avg_comm_s < 0.1);
    }
}

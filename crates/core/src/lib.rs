//! # menos-core — the Menos framework
//!
//! The paper's primary contribution: memory-efficient split fine-tuning
//! through **spatial** sharing (one copy of the frozen base model across
//! all clients) and **temporal** sharing (on-demand allocation of
//! intermediate memory scheduled into the communication gaps of split
//! learning).
//!
//! * [`SharedBaseRegistry`] — §3.1's base-model sharing: per-client
//!   model structures aliasing one parameter copy.
//! * [`MemoryPolicy`] — §3.2's Fig. 3 ladder of on-demand allocation
//!   policies, with [`MemoryPolicy::menos`] the shipped one.
//! * [`profile_client`] / [`probe_with_random_input`] — §3.3's
//!   per-client memory profiling.
//! * [`Scheduler`] — §4's Algorithm 2: event-driven FCFS + backfilling
//!   over GPU memory at operation granularity.
//! * [`run_experiment`] — the timed multi-client runtime (discrete-event
//!   simulation) reproducing the paper's Figs. 6–7, 10 and Tables 1–3,
//!   in both Menos and vanilla-swapping server modes.
//! * [`MenosServer`] — the real-engine serving façade: Algorithm 1's
//!   message dispatch with admission control and per-client error
//!   isolation.
//! * [`plan_capacity`] — analytic admission capacity under Eq. (3),
//!   including quantized base precisions.
//!
//! # Examples
//!
//! Reproduce the headline comparison — Llama-2-7B, 4 clients, one V100:
//!
//! ```
//! use menos_core::{run_experiment, ServerMode, ServerSpec, WorkloadSpec};
//! use menos_models::ModelConfig;
//!
//! let workload = WorkloadSpec::paper(ModelConfig::llama2_7b(), 4, 3);
//! let menos = run_experiment(&ServerSpec::v100(ServerMode::menos()), &workload, 42);
//! let vanilla = run_experiment(
//!     &ServerSpec::v100(ServerMode::VanillaSwapping), &workload, 42);
//! // Menos serves 4 clients at seconds per round; vanilla swaps the
//! // 24 GB base model through PCIe and takes minutes.
//! assert!(menos.avg_round_s < 10.0);
//! assert!(vanilla.avg_round_s > 5.0 * menos.avg_round_s);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod capacity;
mod policy;
mod profiler;
mod runtime;
#[cfg(test)]
mod runtime_hetero_tests;
mod scheduler;
mod server;
mod sharing;
mod state;
mod workload;

pub use capacity::{plan_capacity, CapacityPlan};
pub use policy::MemoryPolicy;
pub use profiler::{probe_with_random_input, profile_client, MemoryDemands};
pub use runtime::{jain_fairness, run_experiment, run_experiment_traced, RunReport};
pub use scheduler::{Decision, OpKind, Request, SchedPolicy, Scheduler};
pub use server::MenosServer;
pub use state::{decode_session_record, encode_session_record, ServerState, SessionRecord};
// The serving façade reports errors through the unified protocol
// taxonomy; re-exported so embedders don't need menos-split in scope.
pub use menos_split::ProtocolError;
pub use sharing::SharedBaseRegistry;
pub use workload::{ClientDevice, LinkSpec, ServerMode, ServerSpec, WorkloadSpec};

//! Per-client memory profiling (paper §3.3).
//!
//! Menos enforces strict on-demand allocation, so the server must know
//! each client's exact forward (`M_f`) and backward (`M_b`) memory
//! demands before serving it. The paper profiles by pushing random
//! input sequences through one forward and backward pass; this
//! reproduction computes the same quantities from the analytic
//! [`ModelProfile`] (the simulated GPU charges exactly these numbers),
//! and offers a random-probe path over the real tiny engine to keep the
//! "generic — no model knowledge needed" property testable.

use rand::Rng;

use menos_adapters::{adapter_bytes, optimizer_state_bytes, FineTuneConfig};
use menos_models::ModelProfile;
use menos_split::{ServerSession, SplitSpec};
use menos_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// The profiled memory demands of one client.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryDemands {
    /// Peak bytes of the no-grad first forward (`M_f`).
    pub m_f: u64,
    /// Peak bytes of the gradient-ready re-forward + backward (`M_b`).
    pub m_b: u64,
    /// Persistent per-client bytes: adapters + optimizer states
    /// (`A + O`).
    pub persistent: u64,
}

impl MemoryDemands {
    /// Demand for a forward or backward request under a policy — kept
    /// here so callers don't juggle raw numbers.
    pub fn demand_for(&self, policy: crate::policy::MemoryPolicy, backward: bool) -> u64 {
        if backward {
            policy.backward_demand(self.m_b)
        } else {
            policy.forward_demand(self.m_f, self.m_b)
        }
    }
}

/// Profiles a client's memory demands from its reported fine-tuning
/// configuration (the analytic equivalent of the paper's random-input
/// probe).
///
/// # Examples
///
/// ```
/// use menos_adapters::FineTuneConfig;
/// use menos_core::profile_client;
/// use menos_models::{ModelConfig, ModelProfile};
///
/// let cfg = ModelConfig::llama2_7b();
/// let profile = ModelProfile::new(cfg.clone(), 1);
/// let ft = FineTuneConfig::paper(&cfg);
/// let d = profile_client(&profile, &ft);
/// assert!(d.m_f * 5 < d.m_b, "no-grad forward is far cheaper");
/// assert!(d.persistent < d.m_b / 10, "A+O is small");
/// ```
pub fn profile_client(profile: &ModelProfile, ft: &FineTuneConfig) -> MemoryDemands {
    let a = adapter_bytes(ft, &profile.config, profile.server_layers());
    let o = optimizer_state_bytes(ft, a) + a; // states + gradient buffer
    MemoryDemands {
        m_f: profile.forward_memory_demand(ft.batch_size, ft.seq_len),
        m_b: profile.backward_memory_demand(ft.batch_size, ft.seq_len),
        persistent: a + o,
    }
}

/// Runs the paper's *random-input probe* against a real
/// [`ServerSession`]: generates random activations of the client's
/// reported shape, executes one no-grad forward and one re-forward +
/// backward, and verifies the session serves them without any knowledge
/// of the client's data.
///
/// Returns the number of re-forwards executed (always 1) — the probe's
/// purpose is to exercise the exact code path serving will use.
///
/// # Panics
///
/// Panics if the session cannot complete the probe.
pub fn probe_with_random_input<R: Rng>(
    session: &mut ServerSession,
    ft: &FineTuneConfig,
    split: SplitSpec,
    rng: &mut R,
) -> u64 {
    let hidden = session.model().config.hidden;
    let _ = split;
    let shape = [ft.batch_size, ft.seq_len, hidden];
    let before = session.reforward_count();
    let x_c = Tensor::randn(rng, shape, 1.0);
    let x_s = session.forward_nograd(&x_c);
    assert_eq!(x_s.dims(), &shape, "probe output shape");
    let g_c = Tensor::randn(rng, shape, 1.0);
    let g_s = session.backward(&g_c);
    assert_eq!(g_s.dims(), &shape, "probe gradient shape");
    session.reforward_count() - before
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::MemoryPolicy;
    use menos_models::ModelConfig;
    use menos_sim::seeded_rng;

    #[test]
    fn paper_scale_demands() {
        let cfg = ModelConfig::llama2_7b();
        let profile = ModelProfile::new(cfg.clone(), 1);
        let ft = FineTuneConfig::paper(&cfg);
        let d = profile_client(&profile, &ft);
        const GIB: f64 = (1u64 << 30) as f64;
        // I ≈ 3-4.5 GiB for Llama at batch 4 (paper: "4 GB").
        let mb = d.m_b as f64 / GIB;
        assert!((2.5..5.0).contains(&mb), "M_b {mb} GiB");
        // A+O within a few hundred MB (paper: 246 MB).
        let p = d.persistent as f64 / GIB;
        assert!(p < 0.5, "persistent {p} GiB");
    }

    #[test]
    fn demands_scale_with_batch() {
        let cfg = ModelConfig::opt_1_3b();
        let profile = ModelProfile::new(cfg.clone(), 1);
        let mut ft = FineTuneConfig::paper(&cfg);
        let d16 = profile_client(&profile, &ft);
        ft.batch_size = 8;
        let d8 = profile_client(&profile, &ft);
        assert_eq!(d16.m_b, 2 * d8.m_b, "I scales linearly with batch");
        assert_eq!(d16.persistent, d8.persistent, "A+O independent of batch");
    }

    #[test]
    fn demand_for_policy_dispatch() {
        let d = MemoryDemands {
            m_f: 10,
            m_b: 100,
            persistent: 5,
        };
        assert_eq!(d.demand_for(MemoryPolicy::menos(), false), 10);
        assert_eq!(d.demand_for(MemoryPolicy::menos(), true), 100);
        assert_eq!(d.demand_for(MemoryPolicy::ReleaseAfterBackward, true), 0);
    }

    #[test]
    fn random_probe_exercises_serving_path() {
        use menos_models::{init_params, CausalLm};
        use menos_split::ClientId;
        let cfg = ModelConfig::tiny_llama(11);
        let mut rng = seeded_rng(1, "probe");
        let ps = init_params(&cfg, &mut rng);
        let mut ft = FineTuneConfig::paper(&cfg);
        ft.batch_size = 2;
        ft.seq_len = 8;
        let split = SplitSpec::paper();
        let mut session = ServerSession::new(
            ClientId(0),
            CausalLm::bind(&cfg, &ps.shared_view(false)),
            split,
            &ft,
            1,
        );
        let reforwards = probe_with_random_input(&mut session, &ft, split, &mut rng);
        assert_eq!(reforwards, 1, "probe exercises the re-forward path");
        assert_eq!(session.steps_completed(), 1);
    }
}

//! On-demand memory allocation policies (paper §3.2, Fig. 3).

use serde::{Deserialize, Serialize};

/// When the server allocates and releases GPU memory for a client's
/// intermediate results.
///
/// The four variants correspond to Fig. 3(a)–(d); [`MemoryPolicy::menos`]
/// is the policy the paper ships.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemoryPolicy {
    /// Fig. 3(a): intermediate memory is allocated once and preserved
    /// for the client's lifetime, even while waiting for the next
    /// iteration's activations.
    PreserveAll,
    /// Fig. 3(b): memory is allocated at the (gradient-ready) forward
    /// pass and released after backward — it is still held across the
    /// wait for client gradients.
    ReleaseAfterBackward,
    /// Fig. 3(c): memory is released while waiting for gradients; the
    /// forward pass must be redone when they arrive.
    ReleaseWhileWaiting,
    /// Fig. 3(d), the Menos policy: additionally, the first forward
    /// runs in a no-grad environment, so its peak is a fraction of a
    /// gradient-ready pass.
    NoGradFirstForward,
}

impl MemoryPolicy {
    /// The policy Menos ships (Fig. 3d).
    pub fn menos() -> Self {
        MemoryPolicy::NoGradFirstForward
    }

    /// Whether the first forward pass caches activations for backward
    /// (i.e. runs gradient-ready).
    pub fn first_forward_cached(self) -> bool {
        !matches!(self, MemoryPolicy::NoGradFirstForward)
    }

    /// Whether intermediate memory is held across the wait for client
    /// gradients (forcing the backward demand to zero but pinning the
    /// memory).
    pub fn holds_memory_while_waiting(self) -> bool {
        matches!(
            self,
            MemoryPolicy::PreserveAll | MemoryPolicy::ReleaseAfterBackward
        )
    }

    /// Whether backward must re-execute the forward pass.
    pub fn requires_reforward(self) -> bool {
        matches!(
            self,
            MemoryPolicy::ReleaseWhileWaiting | MemoryPolicy::NoGradFirstForward
        )
    }

    /// Whether intermediate memory persists across iterations.
    pub fn holds_memory_across_iterations(self) -> bool {
        matches!(self, MemoryPolicy::PreserveAll)
    }

    /// Memory the scheduler must grant for a **forward** request, given
    /// the profiled no-grad (`m_f`) and gradient-ready (`m_b`) demands.
    ///
    /// Under [`MemoryPolicy::PreserveAll`] the memory was granted at
    /// registration, so per-operation demand is zero.
    pub fn forward_demand(self, m_f: u64, m_b: u64) -> u64 {
        match self {
            MemoryPolicy::PreserveAll => 0,
            MemoryPolicy::ReleaseAfterBackward | MemoryPolicy::ReleaseWhileWaiting => m_b,
            MemoryPolicy::NoGradFirstForward => m_f,
        }
    }

    /// Memory the scheduler must grant for a **backward** request.
    pub fn backward_demand(self, m_b: u64) -> u64 {
        if self.holds_memory_while_waiting() {
            0
        } else {
            m_b
        }
    }

    /// All policies, in the Fig. 3 ladder order — used by the ablation
    /// bench.
    pub fn ladder() -> [MemoryPolicy; 4] {
        [
            MemoryPolicy::PreserveAll,
            MemoryPolicy::ReleaseAfterBackward,
            MemoryPolicy::ReleaseWhileWaiting,
            MemoryPolicy::NoGradFirstForward,
        ]
    }
}

impl std::fmt::Display for MemoryPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            MemoryPolicy::PreserveAll => "preserve-all (Fig.3a)",
            MemoryPolicy::ReleaseAfterBackward => "release-after-backward (Fig.3b)",
            MemoryPolicy::ReleaseWhileWaiting => "release-while-waiting (Fig.3c)",
            MemoryPolicy::NoGradFirstForward => "no-grad-first-forward (Menos, Fig.3d)",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn menos_is_fig_3d() {
        let p = MemoryPolicy::menos();
        assert!(!p.first_forward_cached());
        assert!(p.requires_reforward());
        assert!(!p.holds_memory_while_waiting());
        assert!(!p.holds_memory_across_iterations());
    }

    #[test]
    fn ladder_is_monotone_in_memory_held() {
        // Walking down the ladder, forward demand never increases for
        // a fixed (m_f << m_b) pair once past the preserve-all special
        // case, and waiting-time retention strictly relaxes.
        let (m_f, m_b) = (100, 1000);
        let demands: Vec<u64> = MemoryPolicy::ladder()
            .iter()
            .map(|p| p.forward_demand(m_f, m_b) + p.backward_demand(m_b))
            .collect();
        // a: 0 + 0 (held persistently), b: m_b + 0, c: m_b + m_b,
        // d: m_f + m_b — d's transient total is below c's.
        assert_eq!(demands, vec![0, 1000, 2000, 1100]);
    }

    #[test]
    fn waiting_retention_flags() {
        assert!(MemoryPolicy::PreserveAll.holds_memory_while_waiting());
        assert!(MemoryPolicy::ReleaseAfterBackward.holds_memory_while_waiting());
        assert!(!MemoryPolicy::ReleaseWhileWaiting.holds_memory_while_waiting());
        assert!(MemoryPolicy::PreserveAll.holds_memory_across_iterations());
        assert!(!MemoryPolicy::ReleaseAfterBackward.holds_memory_across_iterations());
    }

    #[test]
    fn reforward_flags() {
        assert!(!MemoryPolicy::PreserveAll.requires_reforward());
        assert!(!MemoryPolicy::ReleaseAfterBackward.requires_reforward());
        assert!(MemoryPolicy::ReleaseWhileWaiting.requires_reforward());
        assert!(MemoryPolicy::ReleaseWhileWaiting.first_forward_cached());
    }

    #[test]
    fn display_names() {
        assert!(MemoryPolicy::menos().to_string().contains("Menos"));
    }
}

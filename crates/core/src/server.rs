//! The Menos serving façade: one object owning the shared base, the
//! per-client sessions, and the message dispatch of Algorithm 1.
//!
//! The timed multi-client behaviour (scheduling, memory) is the
//! simulated runtime's job; this façade is the *real-engine* server a
//! deployment embeds. It implements `menos-split`'s
//! [`MessageHandler`], so any [`Transport`]-driven
//! [`serve_loop`](menos_split::serve_loop) — in-memory channels, the
//! simulated WAN, or real TCP sockets — pumps messages into the same
//! state machine; the per-session forward/backward step is
//! [`dispatch_session`], shared with the in-process driver.
//!
//! [`Transport`]: menos_split::Transport

use std::collections::{BTreeMap, HashMap, HashSet};
use std::ops::Range;
use std::time::{Duration, Instant};

use bytes::Bytes;
use menos_adapters::FineTuneConfig;
use menos_models::{stacked_model, CausalLm, ModelConfig};
use menos_net::{negotiate, Codec, ROLE_ACTIVATIONS, ROLE_GRADIENTS};
use menos_split::{
    dispatch_session, encode_server_message, BatchHandler, ClientId, ClientMessage, ForwardMode,
    MessageHandler, ProtocolError, ServerMessage, ServerSession, SplitSpec,
};
use menos_tensor::{no_grad, CheckpointError, ParamStore, Tensor};

use crate::profiler::{profile_client, MemoryDemands};
use crate::sharing::SharedBaseRegistry;
use crate::state::{ServerState, SessionRecord};
use crate::workload::ServerSpec;

/// Most sessions one fused stacked step will carry. Beyond this the
/// reverse pass's per-band scatter contributions (each the size of the
/// whole stacked activation) cost more in transient memory and copy
/// bandwidth than the larger matmul saves.
pub const MAX_STACK_MEMBERS: usize = 32;

struct ClientState {
    session: ServerSession,
    demands: MemoryDemands,
    /// Session epoch: 1 for a fresh connect, bumped on every successful
    /// resume so stale reconnect attempts are detectable.
    epoch: u64,
    /// The last gradient reply sent, kept so a resume that raced the
    /// reply can have it re-delivered inside `Resumed`.
    last_reply: Option<ServerMessage>,
}

/// A disconnected client's parked state: the session survives the
/// connection so a reconnecting client can resume exactly where it
/// left off, until the quarantine TTL expires it.
struct Quarantined {
    session: ServerSession,
    demands: MemoryDemands,
    epoch: u64,
    last_reply: Option<ServerMessage>,
    since: Instant,
}

/// A real-engine Menos server: shared base model, per-client sessions,
/// and Algorithm-1 message dispatch.
///
/// # Examples
///
/// ```
/// use menos_adapters::FineTuneConfig;
/// use menos_core::{MenosServer, ServerMode, ServerSpec};
/// use menos_models::ModelConfig;
/// use menos_split::{ClientId, ClientMessage, MessageHandler, SplitSpec};
///
/// let config = ModelConfig::tiny_llama(16);
/// let mut server = MenosServer::new(config.clone(), ServerSpec::v100(ServerMode::menos()), 1);
/// let mut ft = FineTuneConfig::paper(&config);
/// ft.batch_size = 1;
/// ft.seq_len = 4;
/// let reply = server
///     .handle(ClientMessage::Connect {
///         client: ClientId(0),
///         ft,
///         split: SplitSpec::paper(),
///         epoch: 1,
///         codecs: 0,
///     })
///     .unwrap();
/// assert!(matches!(reply, Some(menos_split::ServerMessage::Ready { .. })));
/// assert_eq!(server.active_clients(), 1);
/// ```
pub struct MenosServer {
    registry: SharedBaseRegistry,
    spec: ServerSpec,
    mode: ForwardMode,
    clients: HashMap<ClientId, ClientState>,
    quarantined: HashMap<ClientId, Quarantined>,
    seed: u64,
    supported_codecs: u64,
    /// Live-session admission cap (v1.3, PROTOCOL.md §8): a `Connect`
    /// or `Resume` past it is shed with [`ProtocolError::Busy`]
    /// instead of admitted. `usize::MAX` never sheds.
    capacity: usize,
    /// GPU-pool utilization percentage at or past which the server
    /// reports pressure and shrinks its stacked-batch cap. 100 =
    /// degrade only when the pool is completely reserved.
    pressure_watermark: u8,
    /// The reconnect hint carried in [`ProtocolError::Busy`] sheds.
    busy_retry_after_ms: u64,
}

impl MenosServer {
    /// Creates a server: loads the base model once (the registry) and
    /// prepares to admit clients against `spec`'s memory budget.
    pub fn new(config: ModelConfig, spec: ServerSpec, seed: u64) -> Self {
        Self::with_registry(SharedBaseRegistry::initialize(config, seed), spec, seed)
    }

    /// Creates a server around pre-existing base parameters (e.g. a
    /// store the test harness also binds its clients to, so both sides
    /// share one model without re-deriving it from the seed).
    ///
    /// # Panics
    ///
    /// Panics if `base` does not contain every parameter `config`
    /// requires (delegated to the registry's validation).
    pub fn from_store(config: ModelConfig, base: ParamStore, spec: ServerSpec, seed: u64) -> Self {
        Self::with_registry(SharedBaseRegistry::from_store(config, base), spec, seed)
    }

    fn with_registry(registry: SharedBaseRegistry, spec: ServerSpec, seed: u64) -> Self {
        MenosServer {
            registry,
            spec,
            mode: ForwardMode::NoGradReforward,
            clients: HashMap::new(),
            quarantined: HashMap::new(),
            seed,
            supported_codecs: menos_net::supported_codec_mask(),
            capacity: usize::MAX,
            pressure_watermark: 100,
            busy_retry_after_ms: 100,
        }
    }

    /// Caps the number of *live* sessions this server will hold at
    /// once. A `Connect` or `Resume` arriving at the cap is shed with
    /// [`ProtocolError::Busy`] — retryable, no state touched — rather
    /// than admitted (PROTOCOL.md §8.1). Quarantined sessions do not
    /// count against the cap.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
    }

    /// Sets the GPU-pool utilization percentage at which the server
    /// starts degrading gracefully: [`MenosServer::under_pressure`]
    /// turns true (event-loop accepts are deferred) and the stacked
    /// dispatch cap shrinks below [`MAX_STACK_MEMBERS`] so fused steps
    /// stop growing the transient footprint. Values above 100 are
    /// clamped to 100; the default 100 degrades only at full
    /// reservation.
    pub fn set_pressure_watermark(&mut self, pct: u8) {
        self.pressure_watermark = pct.min(100);
    }

    /// Sets the reconnect hint (milliseconds) carried by admission
    /// sheds.
    pub fn set_busy_retry_after_ms(&mut self, ms: u64) {
        self.busy_retry_after_ms = ms;
    }

    /// Current GPU-pool utilization as a percentage of the
    /// Algorithm-2 budget (live reservations over total pool).
    pub fn utilization_pct(&self) -> u64 {
        let pool = self.spec.total_gpu_bytes().max(1);
        self.reserved_bytes().saturating_mul(100) / pool
    }

    /// True once utilization has crossed the pressure watermark — the
    /// signal behind the event loop's prefer-draining-over-accepting
    /// degradation.
    pub fn under_pressure(&self) -> bool {
        self.utilization_pct() >= u64::from(self.pressure_watermark)
    }

    /// The stacked-dispatch member cap currently in force:
    /// [`MAX_STACK_MEMBERS`] normally, a quarter of it under memory
    /// pressure. Shrinking the stack never changes results — stacking
    /// is byte-identical to solo dispatch at any grouping — it only
    /// bounds the fused step's transient memory while the pool is
    /// tight.
    pub fn effective_stack_cap(&self) -> usize {
        if self.utilization_pct() >= u64::from(self.pressure_watermark) {
            (MAX_STACK_MEMBERS / 4).max(1)
        } else {
            MAX_STACK_MEMBERS
        }
    }

    /// Overrides the tensor-codec mask this server is willing to
    /// negotiate (PROTOCOL.md §7.3). The default is every codec the
    /// build supports; tests narrow it to exercise mismatched-flag
    /// fallback.
    pub fn set_supported_codecs(&mut self, mask: u64) {
        self.supported_codecs = mask;
    }

    /// Switches the execution path (default: Menos' no-grad +
    /// re-forward).
    pub fn set_forward_mode(&mut self, mode: ForwardMode) {
        self.mode = mode;
    }

    /// Currently connected clients.
    pub fn active_clients(&self) -> usize {
        self.clients.len()
    }

    /// The shared-base registry (e.g. to verify aliasing in tests).
    pub fn registry(&self) -> &SharedBaseRegistry {
        &self.registry
    }

    /// The profiled demands of a connected client.
    pub fn demands_of(&self, client: ClientId) -> Option<MemoryDemands> {
        self.clients.get(&client).map(|c| c.demands)
    }

    /// Total profiled backward bytes currently reserved by *live*
    /// sessions — the Algorithm-2 pool share that eviction must return
    /// to zero when the last client leaves. Quarantined sessions hold
    /// no reservation: their GPU claim was released with the
    /// connection; only their (host-side) adapter/optimizer state is
    /// parked.
    pub fn reserved_bytes(&self) -> u64 {
        self.clients.values().map(|c| c.demands.m_b).sum()
    }

    /// Sessions currently parked for reconnection.
    pub fn quarantined_clients(&self) -> usize {
        self.quarantined.len()
    }

    /// The server-side adapter parameters of a client's session, live
    /// or quarantined (for bit-identity checks in tests and tooling).
    pub fn session_adapters(&self, client: ClientId) -> Option<&ParamStore> {
        self.clients
            .get(&client)
            .map(|c| c.session.adapter_params())
            .or_else(|| {
                self.quarantined
                    .get(&client)
                    .map(|q| q.session.adapter_params())
            })
    }

    /// Parks a client's session for later resumption instead of
    /// dropping it — the server side of a lost connection. The live
    /// entry (and with it the Algorithm-2 reservation) is removed; the
    /// session itself survives under quarantine until a [`Resume`]
    /// re-attaches it or [`MenosServer::expire_idle`] reaps it.
    /// Unknown clients are ignored (the connection died before
    /// `Connect`).
    ///
    /// [`Resume`]: ClientMessage::Resume
    pub fn quarantine(&mut self, client: ClientId) {
        if let Some(state) = self.clients.remove(&client) {
            self.quarantined.insert(
                client,
                Quarantined {
                    session: state.session,
                    demands: state.demands,
                    epoch: state.epoch,
                    last_reply: state.last_reply,
                    since: Instant::now(),
                },
            );
        }
    }

    /// Reaps quarantined sessions idle longer than `max_idle`,
    /// returning the expired client ids (so the caller can notify any
    /// late reconnects). Their adapter/optimizer state is dropped for
    /// good.
    pub fn expire_idle(&mut self, max_idle: Duration) -> Vec<ClientId> {
        let mut expired = Vec::new();
        self.quarantined.retain(|client, q| {
            let keep = q.since.elapsed() <= max_idle;
            if !keep {
                expired.push(*client);
            }
            keep
        });
        expired.sort_unstable();
        expired
    }

    /// Dispatches one protocol message (Algorithm 1), returning the
    /// reply to send, if any.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] on unknown clients, undecodable
    /// frames, protocol-order violations, or rejected configurations.
    /// Errors are scoped to the offending client; other clients are
    /// unaffected.
    pub fn handle(&mut self, msg: ClientMessage) -> Result<Option<ServerMessage>, ProtocolError> {
        match msg {
            ClientMessage::Connect {
                client,
                ft,
                split,
                epoch,
                codecs,
            } => {
                let codec = self.connect(client, ft, split, epoch, codecs)?;
                Ok(Some(ServerMessage::Ready { client, codec }))
            }
            ClientMessage::Resume {
                client,
                epoch,
                last_step,
            } => self.resume(client, epoch, last_step).map(Some),
            ClientMessage::Disconnect { client } => {
                if self.clients.remove(&client).is_none()
                    && self.quarantined.remove(&client).is_none()
                {
                    return Err(ProtocolError::UnknownClient(client));
                }
                Ok(None)
            }
            ClientMessage::Ping { client, seq } => Ok(Some(ServerMessage::Pong {
                client,
                seq,
                live_sessions: self.clients.len() as u64,
                utilization_pct: self.utilization_pct(),
            })),
            ClientMessage::ImportSession { client, blob } => {
                let (imported, epoch) = self.import_session(&blob).map_err(|e| {
                    ProtocolError::Rejected(format!("session import rejected: {e}"))
                })?;
                if imported != client {
                    // The frame was addressed to one client but the blob
                    // carries another; un-park and reject so nothing of
                    // the mismatched import survives.
                    self.quarantined.remove(&imported);
                    return Err(ProtocolError::Rejected(format!(
                        "import frame addressed to {client} but blob carries {imported}"
                    )));
                }
                Ok(Some(ServerMessage::Imported { client, epoch }))
            }
            tensor_msg => {
                let client = tensor_msg.client();
                let mode = self.mode;
                let state = self
                    .clients
                    .get_mut(&client)
                    .ok_or(ProtocolError::UnknownClient(client))?;
                let reply = dispatch_session(&mut state.session, mode, &tensor_msg)?;
                if matches!(reply, ServerMessage::ServerGradients { .. }) {
                    state.last_reply = Some(reply.clone());
                }
                Ok(Some(reply))
            }
        }
    }

    /// Re-attaches a quarantined session (the `Resume` handshake).
    ///
    /// The client reports the epoch it last held and the number of
    /// steps it has *completed*. Two positions are reconcilable:
    ///
    /// * server step == `last_step`: both sides agree; the client
    ///   redoes its aborted in-flight step (if any) from scratch.
    /// * server step == `last_step` + 1: the server finished the step
    ///   but the gradient reply was lost in flight; the cached reply is
    ///   re-delivered embedded in [`ServerMessage::Resumed`] so the
    ///   one-reply-per-message contract holds.
    ///
    /// Anything else means the two sides diverged irrecoverably; the
    /// parked state is dropped and the resume rejected.
    fn resume(
        &mut self,
        client: ClientId,
        epoch: u64,
        last_step: u64,
    ) -> Result<ServerMessage, ProtocolError> {
        if self.clients.contains_key(&client) {
            // The old connection is still live (its EOF has not been
            // processed yet). Retryable: the client backs off and tries
            // again rather than hijacking a live session.
            return Err(ProtocolError::SessionActive(client));
        }
        // v1.3: a resume re-enters the live set, so it is subject to
        // the same session cap as a fresh connect. Shedding leaves the
        // quarantined state untouched — the client retries and resumes
        // once the server drains.
        if self.clients.len() >= self.capacity {
            return Err(ProtocolError::Busy {
                client,
                retry_after_ms: self.busy_retry_after_ms,
            });
        }
        let q = self
            .quarantined
            .get(&client)
            .ok_or(ProtocolError::UnknownClient(client))?;
        // Re-attaching returns the session's Algorithm-2 reservation to
        // the pool; if the pool cannot take it back right now, shed
        // (retryable, quarantine intact) rather than oversubscribe.
        if self.reserved_bytes().saturating_add(q.demands.m_b) > self.spec.total_gpu_bytes() {
            return Err(ProtocolError::Busy {
                client,
                retry_after_ms: self.busy_retry_after_ms,
            });
        }
        if q.epoch != epoch {
            return Err(ProtocolError::StaleEpoch {
                client,
                expected: q.epoch,
                got: epoch,
            });
        }
        let server_step = q.session.steps_completed();
        let replay = if server_step == last_step {
            Bytes::new()
        } else if server_step == last_step + 1 {
            match &q.last_reply {
                Some(reply) => encode_server_message(reply),
                None => {
                    return Err(ProtocolError::Unexpected(format!(
                        "{client} resumed one step behind but no reply is cached"
                    )))
                }
            }
        } else {
            self.quarantined.remove(&client);
            return Err(ProtocolError::OutOfOrder(format!(
                "{client} resumed at step {last_step} but the server is at {server_step}"
            )));
        };
        let q = self.quarantined.remove(&client).expect("checked above");
        let new_epoch = epoch + 1;
        self.clients.insert(
            client,
            ClientState {
                session: q.session,
                demands: q.demands,
                epoch: new_epoch,
                last_reply: q.last_reply,
            },
        );
        Ok(ServerMessage::Resumed {
            client,
            epoch: new_epoch,
            server_step,
            replay,
        })
    }

    /// Dispatches a whole ready-set of tensor messages as (at most) one
    /// stacked forward / re-forward+backward per compatible group —
    /// the server step behind the event-driven pump.
    ///
    /// Grouping: messages batch together when they are the same
    /// protocol step (forward or backward) over the same server block
    /// range with the same `[seq, hidden]` activation geometry, the
    /// server runs Menos' no-grad/re-forward policy, and no member
    /// carries a KV prefix in the range (prefix tuning changes the
    /// attention sequence structure and is not stackable). Everything
    /// else — control messages, undecodable frames, unknown clients,
    /// cached-mode traffic — takes the exact solo path of
    /// [`MenosServer::handle`].
    ///
    /// Backward groups are additionally chunked by Algorithm 2's
    /// admissibility rule: members join a chunk while the sum of their
    /// profiled backward demands `m_b` fits the GPU pool, so one fused
    /// re-forward+backward never exceeds the budget that admission
    /// control promised each client individually.
    ///
    /// Per-client results are bit-identical to the solo path: every
    /// `menos-tensor` kernel is row-bitwise-invariant, adapters are
    /// per-band additive paths, and each session's optimizer steps on
    /// its own gradients only.
    pub fn handle_batch(
        &mut self,
        msgs: Vec<ClientMessage>,
    ) -> Vec<(ClientId, Result<Option<ServerMessage>, ProtocolError>)> {
        let mut out = Vec::with_capacity(msgs.len());
        // Group key: protocol step + server range + activation
        // geometry. BTreeMap keeps dispatch order deterministic.
        type GroupKey = (bool, usize, usize, usize, usize);
        let mut groups: BTreeMap<GroupKey, Vec<(ClientId, Tensor)>> = BTreeMap::new();
        // Lock-step allows one tensor frame in flight per client; a
        // second in the same ready-set is a replayed or forged frame.
        // Reject it here, before staging, so a duplicate can never
        // join a fused step — let alone reach an optimizer twice.
        let mut tensor_seen: HashSet<ClientId> = HashSet::new();
        for msg in msgs {
            let is_tensor = matches!(
                msg,
                ClientMessage::Activations { .. } | ClientMessage::Gradients { .. }
            );
            if is_tensor && !tensor_seen.insert(msg.client()) {
                let client = msg.client();
                out.push((
                    client,
                    Err(ProtocolError::OutOfOrder(format!(
                        "duplicate tensor frame from {client} in one ready-set"
                    ))),
                ));
                continue;
            }
            match self.stage_for_batch(&msg) {
                Some((is_backward, range, t)) => {
                    let key = (
                        is_backward,
                        range.start,
                        range.end,
                        t.dims()[1],
                        t.dims()[2],
                    );
                    groups.entry(key).or_default().push((msg.client(), t));
                }
                None => {
                    let client = msg.client();
                    out.push((client, self.handle(msg)));
                }
            }
        }
        for ((is_backward, start, end, _, _), mut members) in groups {
            // A control message above may have removed a member (e.g.
            // a hostile caller mixing Disconnect into the batch).
            members.retain(|(client, _)| {
                let alive = self.clients.contains_key(client);
                if !alive {
                    out.push((*client, Err(ProtocolError::UnknownClient(*client))));
                }
                alive
            });
            if is_backward {
                for chunk in self.admissible_chunks(members) {
                    self.batched_backward(chunk, start..end, &mut out);
                }
            } else {
                for chunk in self.admissible_chunks(members) {
                    self.batched_forward(chunk, start..end, &mut out);
                }
            }
        }
        out
    }

    /// Decides whether a message may join a stacked batch, returning
    /// its decoded tensor and server range if so.
    fn stage_for_batch(&self, msg: &ClientMessage) -> Option<(bool, Range<usize>, Tensor)> {
        if self.mode != ForwardMode::NoGradReforward {
            return None;
        }
        let (frame, is_backward) = match msg {
            ClientMessage::Activations { frame, .. } => (frame, false),
            ClientMessage::Gradients { frame, .. } => (frame, true),
            _ => return None,
        };
        let state = self.clients.get(&msg.client())?;
        let t = state.session.codec().decode(frame).ok()?;
        if t.dims().len() != 3 || t.dims()[0] == 0 {
            return None;
        }
        let range = state.session.range();
        if state.session.model().has_kv_prefix_in(range.clone()) {
            return None;
        }
        if is_backward {
            // Backward needs the no-grad forward's saved input, with a
            // geometry matching the incoming gradients.
            let pending = state.session.pending_input()?;
            if pending.dims() != t.dims() {
                return None;
            }
        }
        Some((is_backward, range, t))
    }

    /// Splits a compatible group into chunks whose summed profiled
    /// backward demands fit the GPU pool (Algorithm 2's admissible
    /// set), additionally capped at [`MAX_STACK_MEMBERS`] sessions per
    /// fused step: the re-forward's autograd pass buffers one
    /// full-batch gradient contribution per member band, so an
    /// unbounded stack turns a wide ready-set into quadratic transient
    /// memory. Admission control guarantees every single client fits,
    /// so chunks are never empty.
    fn admissible_chunks(&self, members: Vec<(ClientId, Tensor)>) -> Vec<Vec<(ClientId, Tensor)>> {
        let pool = self.spec.total_gpu_bytes();
        // Under memory pressure the cap shrinks (graceful degradation,
        // v1.3): smaller fused steps bound the transient footprint
        // while results stay bit-identical at any grouping.
        let stack_cap = self.effective_stack_cap();
        let mut chunks = Vec::new();
        let mut current: Vec<(ClientId, Tensor)> = Vec::new();
        let mut current_bytes = 0u64;
        for (client, t) in members {
            let m_b = self
                .clients
                .get(&client)
                .map(|s| s.demands.m_b)
                .unwrap_or(0);
            if !current.is_empty()
                && (current.len() >= stack_cap || current_bytes.saturating_add(m_b) > pool)
            {
                chunks.push(std::mem::take(&mut current));
                current_bytes = 0;
            }
            current_bytes += m_b;
            current.push((client, t));
        }
        if !current.is_empty() {
            chunks.push(current);
        }
        chunks
    }

    /// One stacked no-grad forward for a group (solo fallback for
    /// singleton groups — same math, fewer copies).
    fn batched_forward(
        &mut self,
        members: Vec<(ClientId, Tensor)>,
        range: Range<usize>,
        out: &mut Vec<(ClientId, Result<Option<ServerMessage>, ProtocolError>)>,
    ) {
        if members.is_empty() {
            return;
        }
        if members.len() == 1 {
            let (client, x_c) = members.into_iter().next().expect("one member");
            let state = self.clients.get_mut(&client).expect("retained member");
            let x_s = state.session.forward_nograd(&x_c);
            let frame = state.session.codec_mut().encode(ROLE_ACTIVATIONS, &x_s);
            out.push((
                client,
                Ok(Some(ServerMessage::ServerActivations { client, frame })),
            ));
            return;
        }
        let spans: Vec<usize> = members.iter().map(|(_, t)| t.dims()[0]).collect();
        let xs: Vec<Tensor> = members.iter().map(|(_, t)| t.detach()).collect();
        let stacked_x = Tensor::stack_batches(&xs);
        // The stacked model borrows every member's session immutably;
        // build it (owned) before mutating any session.
        let model = {
            let group: Vec<(&CausalLm, usize)> = members
                .iter()
                .map(|(client, t)| {
                    let state = self.clients.get(client).expect("retained member");
                    (state.session.model(), t.dims()[0])
                })
                .collect();
            stacked_model(&group, range.clone())
        };
        let stacked_out = no_grad(|| model.blocks_forward(&stacked_x.detach(), range));
        let outs = stacked_out.unstack_batches(&spans);
        for ((client, x_c), x_s) in members.into_iter().zip(outs) {
            let state = self.clients.get_mut(&client).expect("retained member");
            state.session.note_batched_forward(&x_c);
            let frame = state.session.codec_mut().encode(ROLE_ACTIVATIONS, &x_s);
            out.push((
                client,
                Ok(Some(ServerMessage::ServerActivations { client, frame })),
            ));
        }
    }

    /// One fused re-forward + backward for an admissible chunk (solo
    /// fallback for singletons).
    fn batched_backward(
        &mut self,
        chunk: Vec<(ClientId, Tensor)>,
        range: Range<usize>,
        out: &mut Vec<(ClientId, Result<Option<ServerMessage>, ProtocolError>)>,
    ) {
        if chunk.is_empty() {
            return;
        }
        if chunk.len() == 1 {
            let (client, g_c) = chunk.into_iter().next().expect("one member");
            let state = self.clients.get_mut(&client).expect("retained member");
            // Eligibility verified the pending input, so the solo
            // backward cannot hit its missing-forward panic.
            let g_s = state.session.backward(&g_c);
            let frame = state.session.codec_mut().encode(ROLE_GRADIENTS, &g_s);
            let reply = ServerMessage::ServerGradients { client, frame };
            state.last_reply = Some(reply.clone());
            out.push((client, Ok(Some(reply))));
            return;
        }
        let spans: Vec<usize> = chunk.iter().map(|(_, t)| t.dims()[0]).collect();
        let (model, stacked_in) = {
            let mut pend = Vec::with_capacity(chunk.len());
            let mut group: Vec<(&CausalLm, usize)> = Vec::with_capacity(chunk.len());
            for (client, t) in &chunk {
                let state = self.clients.get(client).expect("retained member");
                pend.push(
                    state
                        .session
                        .pending_input()
                        .expect("eligibility checked pending input")
                        .clone(),
                );
                group.push((state.session.model(), t.dims()[0]));
            }
            (
                stacked_model(&group, range.clone()),
                Tensor::stack_batches(&pend),
            )
        };
        // The re-forward runs gradient-ready from a fresh leaf over the
        // stacked inputs — the batched image of the solo re-forward.
        let leaf = Tensor::from_shared_storage(
            stacked_in.storage().clone(),
            stacked_in.shape().clone(),
            true,
        );
        let x_s = model.blocks_forward(&leaf, range);
        let gs: Vec<Tensor> = chunk.iter().map(|(_, t)| t.detach()).collect();
        let stacked_g = Tensor::stack_batches(&gs);
        let mut grads = x_s.backward_with_grad(&stacked_g);
        let g_in = grads
            .remove(&leaf)
            .expect("gradient for stacked client activations");
        let g_outs = g_in.unstack_batches(&spans);
        for ((client, _), g_s) in chunk.into_iter().zip(g_outs) {
            let state = self.clients.get_mut(&client).expect("retained member");
            state.session.apply_batched_backward(&mut grads);
            let frame = state.session.codec_mut().encode(ROLE_GRADIENTS, &g_s);
            let reply = ServerMessage::ServerGradients { client, frame };
            state.last_reply = Some(reply.clone());
            out.push((client, Ok(Some(reply))));
        }
    }

    fn connect(
        &mut self,
        client: ClientId,
        ft: FineTuneConfig,
        split: SplitSpec,
        epoch: u64,
        codecs: u64,
    ) -> Result<Codec, ProtocolError> {
        if self.clients.contains_key(&client) {
            return Err(ProtocolError::Rejected(format!(
                "{client} is already connected"
            )));
        }
        // v1.3 session-capacity shed: checked before any validation or
        // profiling work — an over-capacity server should turn peers
        // away as cheaply as possible.
        if self.clients.len() >= self.capacity {
            return Err(ProtocolError::Busy {
                client,
                retry_after_ms: self.busy_retry_after_ms,
            });
        }
        let config = self.registry.config().clone();
        ft.validate(&config).map_err(ProtocolError::Rejected)?;
        split.validate(&config).map_err(ProtocolError::Rejected)?;
        // Profiling + admission (§3.3): reject demands that could never
        // be scheduled. For the tiny real engine the budget check uses
        // the profile of THIS config, so oversized batches are caught.
        let profile = menos_models::ModelProfile::new(config, split.front_layers);
        let demands = profile_client(&profile, &ft);
        let pool = self.spec.total_gpu_bytes();
        if demands.m_b > pool {
            return Err(ProtocolError::Rejected(format!(
                "profiled backward demand {} exceeds GPU pool {pool}",
                demands.m_b
            )));
        }
        // Algorithm-2 shed (v1.3): the demand fits the pool in
        // isolation but not alongside the live reservations. Unlike
        // the terminal `Rejected` above this is retryable — departures
        // will free the pool — so the peer gets a `Busy` hint instead
        // of a rejection.
        if self.reserved_bytes().saturating_add(demands.m_b) > pool {
            return Err(ProtocolError::Busy {
                client,
                retry_after_ms: self.busy_retry_after_ms,
            });
        }
        let codec = negotiate(codecs, self.supported_codecs);
        let session_seed = self.seed.wrapping_add(client.0);
        let mut session = ServerSession::new(
            client,
            self.registry.new_instance(),
            split,
            &ft,
            session_seed,
        );
        debug_assert!(self.registry.verify_aliasing(session.model()));
        session.set_codec(codec);
        // A fresh Connect is an explicit restart: any parked state from
        // a previous incarnation is superseded.
        self.quarantined.remove(&client);
        self.clients.insert(
            client,
            ClientState {
                session,
                demands,
                // v1.0 peers send no epoch (decoded as 0); treat as 1.
                epoch: epoch.max(1),
                last_reply: None,
            },
        );
        Ok(codec)
    }

    /// Captures the full mutable server state — every session (live or
    /// quarantined), its epoch, and its cached reply — as a
    /// [`ServerState`], sorted by client id so snapshots of the same
    /// state are byte-identical.
    ///
    /// Algorithm-2 reservations are *not* captured: they are a pure
    /// function of the live session set, and restore parks every
    /// session (the connections died with the process), so the
    /// reservations are re-derived when clients resume.
    pub fn to_state(&self) -> ServerState {
        let mut sessions: Vec<SessionRecord> = self
            .clients
            .iter()
            .map(|(client, s)| SessionRecord {
                client: *client,
                epoch: s.epoch,
                live: true,
                session: s.session.to_state(),
                last_reply: s.last_reply.as_ref().map(crate::state::encode_reply),
            })
            .chain(self.quarantined.iter().map(|(client, q)| SessionRecord {
                client: *client,
                epoch: q.epoch,
                live: false,
                session: q.session.to_state(),
                last_reply: q.last_reply.as_ref().map(crate::state::encode_reply),
            }))
            .collect();
        sessions.sort_by_key(|r| r.client.0);
        ServerState {
            seed: self.seed,
            mode: self.mode,
            sessions,
        }
    }

    /// Reconstructs sessions, epochs, and cached replies from a
    /// [`ServerState`], returning how many sessions were restored.
    ///
    /// Every record is validated and rebuilt *before* anything is
    /// committed, so a corrupt state leaves the server exactly as it
    /// was — no partial restore. Restored sessions all land in
    /// quarantine: their connections died with the old process, their
    /// Algorithm-2 reservations are zero until the client's `Resume`
    /// re-attaches them, and the idle TTL reaps any client that never
    /// comes back.
    ///
    /// # Errors
    ///
    /// [`CheckpointError`] if the server already has sessions, the
    /// state's seed disagrees with this server's (future connects
    /// would derive different adapters than the snapshotted ones), or
    /// any record fails to rebuild against the registry's model.
    pub fn restore(&mut self, state: ServerState) -> Result<usize, CheckpointError> {
        if !self.clients.is_empty() || !self.quarantined.is_empty() {
            return Err(CheckpointError::Corrupt(format!(
                "restore into a server with {} live / {} quarantined sessions",
                self.clients.len(),
                self.quarantined.len()
            )));
        }
        if state.seed != self.seed {
            return Err(CheckpointError::Corrupt(format!(
                "snapshot seed {} does not match server seed {}",
                state.seed, self.seed
            )));
        }
        let config = self.registry.config().clone();
        // Validate-then-commit: rebuild everything off to the side
        // first so an error cannot leave a half-restored server.
        let mut rebuilt = Vec::with_capacity(state.sessions.len());
        for rec in &state.sessions {
            let session = ServerSession::from_state(self.registry.new_instance(), &rec.session)?;
            if session.client() != rec.client {
                return Err(CheckpointError::Corrupt(format!(
                    "record for {} holds a session for {}",
                    rec.client,
                    session.client()
                )));
            }
            debug_assert!(self.registry.verify_aliasing(session.model()));
            let profile =
                menos_models::ModelProfile::new(config.clone(), session.split().front_layers);
            let demands = profile_client(&profile, session.ft_config());
            let last_reply = rec
                .last_reply
                .as_deref()
                .map(crate::state::decode_reply)
                .transpose()?;
            rebuilt.push((rec.client, session, demands, rec.epoch, last_reply));
        }
        let restored = rebuilt.len();
        self.mode = state.mode;
        for (client, session, demands, epoch, last_reply) in rebuilt {
            self.quarantined.insert(
                client,
                Quarantined {
                    session,
                    demands,
                    epoch,
                    last_reply,
                    since: Instant::now(),
                },
            );
        }
        Ok(restored)
    }

    /// Serializes one client's session — live or quarantined — into a
    /// self-contained migration blob ([`crate::state::encode_session_record`]):
    /// adapter weights, optimizer moments, step/epoch counters, the
    /// cached lost-reply replay, codec residual state, and the origin
    /// server's base seed. `None` if the client is unknown here.
    ///
    /// The exporter's own state is untouched; a fleet coordinator
    /// re-homing sessions feeds the blob to a survivor via the v1.4
    /// `ImportSession` frame (or [`MenosServer::import_session`]
    /// directly).
    pub fn export_session(&self, client: ClientId) -> Option<Vec<u8>> {
        let rec = if let Some(s) = self.clients.get(&client) {
            SessionRecord {
                client,
                epoch: s.epoch,
                live: true,
                session: s.session.to_state(),
                last_reply: s.last_reply.as_ref().map(crate::state::encode_reply),
            }
        } else {
            let q = self.quarantined.get(&client)?;
            SessionRecord {
                client,
                epoch: q.epoch,
                live: false,
                session: q.session.to_state(),
                last_reply: q.last_reply.as_ref().map(crate::state::encode_reply),
            }
        };
        Some(crate::state::encode_session_record(self.seed, &rec))
    }

    /// Imports a migrated session blob, parking it in quarantine
    /// exactly as [`MenosServer::restore`] parks records: no
    /// Algorithm-2 reservation, no live slot — the client's `Resume`
    /// re-admits it through the normal admission path (and may be shed
    /// `Busy` if this server is itself full). Returns the imported
    /// client and its resume epoch (the fencing token the coordinator
    /// echoes in `Imported`).
    ///
    /// Unlike `restore`, the server may be mid-flight with other
    /// sessions; only a *duplicate* of the imported client (live or
    /// quarantined) is refused — two homes for one session would fork
    /// its training state.
    ///
    /// # Errors
    ///
    /// [`CheckpointError`] if the blob is corrupt, the origin seed
    /// disagrees with this server's (the adapters were trained against
    /// a different base), the client already has a session here, or
    /// the record fails to rebuild. Nothing is committed on error.
    pub fn import_session(&mut self, blob: &[u8]) -> Result<(ClientId, u64), CheckpointError> {
        let (seed, rec) = crate::state::decode_session_record(blob)?;
        if seed != self.seed {
            return Err(CheckpointError::Corrupt(format!(
                "migrated session's origin seed {} does not match server seed {}",
                seed, self.seed
            )));
        }
        if self.clients.contains_key(&rec.client) || self.quarantined.contains_key(&rec.client) {
            return Err(CheckpointError::Corrupt(format!(
                "{} already has a session on this server",
                rec.client
            )));
        }
        // Validate-then-commit, as in restore: rebuild everything off
        // to the side so an error cannot leave a half-imported session.
        let session = ServerSession::from_state(self.registry.new_instance(), &rec.session)?;
        if session.client() != rec.client {
            return Err(CheckpointError::Corrupt(format!(
                "record for {} holds a session for {}",
                rec.client,
                session.client()
            )));
        }
        debug_assert!(self.registry.verify_aliasing(session.model()));
        let config = self.registry.config().clone();
        let profile = menos_models::ModelProfile::new(config, session.split().front_layers);
        let demands = profile_client(&profile, session.ft_config());
        let last_reply = rec
            .last_reply
            .as_deref()
            .map(crate::state::decode_reply)
            .transpose()?;
        self.quarantined.insert(
            rec.client,
            Quarantined {
                session,
                demands,
                epoch: rec.epoch,
                last_reply,
                since: Instant::now(),
            },
        );
        Ok((rec.client, rec.epoch))
    }
}

impl MessageHandler for MenosServer {
    fn handle(&mut self, msg: ClientMessage) -> Result<Option<ServerMessage>, ProtocolError> {
        MenosServer::handle(self, msg)
    }

    /// A lost connection quarantines the session instead of dropping
    /// it, so the client can reconnect and resume.
    fn connection_lost(&mut self, client: ClientId) {
        self.quarantine(client);
    }

    fn expire_idle(&mut self, max_idle: Duration) -> Vec<ClientId> {
        MenosServer::expire_idle(self, max_idle)
    }

    /// The full [`ServerState`] in snapshot byte form — everything a
    /// fresh process needs to [`restore`](MenosServer::restore) and
    /// accept resumes with zero training divergence.
    fn snapshot_bytes(&mut self) -> Option<Vec<u8>> {
        Some(self.to_state().to_bytes())
    }

    /// Pool utilization at or past the watermark tells the pump to
    /// drain before accepting (v1.3 graceful degradation).
    fn under_pressure(&mut self) -> bool {
        MenosServer::under_pressure(self)
    }
}

impl BatchHandler for MenosServer {
    fn handle_batch(
        &mut self,
        msgs: Vec<ClientMessage>,
    ) -> Vec<(ClientId, Result<Option<ServerMessage>, ProtocolError>)> {
        MenosServer::handle_batch(self, msgs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::ServerMode;
    use bytes::Bytes;
    use menos_net::{decode_tensor, encode_tensor, WireError};
    use menos_tensor::Tensor;

    fn server() -> (MenosServer, FineTuneConfig) {
        let config = ModelConfig::tiny_opt(17);
        let mut ft = FineTuneConfig::paper(&config);
        ft.batch_size = 2;
        ft.seq_len = 8;
        (
            MenosServer::new(config, ServerSpec::v100(ServerMode::menos()), 5),
            ft,
        )
    }

    fn frame(t: &Tensor) -> Bytes {
        encode_tensor(t)
    }

    #[test]
    fn full_protocol_cycle() {
        let (mut srv, ft) = server();
        let c = ClientId(0);
        let ready = srv
            .handle(ClientMessage::Connect {
                client: c,
                ft: ft.clone(),
                split: SplitSpec::paper(),
                epoch: 1,
                codecs: 0,
            })
            .unwrap();
        assert!(matches!(ready, Some(ServerMessage::Ready { .. })));
        assert!(srv.demands_of(c).is_some());

        let x_c = Tensor::full(0.1, [2, 8, 64]);
        let reply = srv
            .handle(ClientMessage::Activations {
                client: c,
                frame: frame(&x_c),
            })
            .unwrap()
            .unwrap();
        let ServerMessage::ServerActivations { frame: xs, .. } = reply else {
            panic!("expected activations");
        };
        let x_s = decode_tensor(&xs).unwrap();
        assert_eq!(x_s.dims(), &[2, 8, 64]);

        let g_c = Tensor::full(0.01, [2, 8, 64]);
        let reply = srv
            .handle(ClientMessage::Gradients {
                client: c,
                frame: frame(&g_c),
            })
            .unwrap()
            .unwrap();
        assert!(matches!(reply, ServerMessage::ServerGradients { .. }));

        assert!(srv
            .handle(ClientMessage::Disconnect { client: c })
            .unwrap()
            .is_none());
        assert_eq!(srv.active_clients(), 0);
    }

    /// Drives one full step for `client` and returns the gradient
    /// reply (which the server also caches for resume replay).
    fn one_step(srv: &mut MenosServer, c: ClientId, ft: &FineTuneConfig) -> ServerMessage {
        srv.handle(ClientMessage::Connect {
            client: c,
            ft: ft.clone(),
            split: SplitSpec::paper(),
            epoch: 1,
            codecs: 0,
        })
        .unwrap();
        let x_c = Tensor::full(0.1, [2, 8, 64]);
        srv.handle(ClientMessage::Activations {
            client: c,
            frame: frame(&x_c),
        })
        .unwrap();
        let g_c = Tensor::full(0.01, [2, 8, 64]);
        srv.handle(ClientMessage::Gradients {
            client: c,
            frame: frame(&g_c),
        })
        .unwrap()
        .unwrap()
    }

    #[test]
    fn state_survives_restart_bit_identically() {
        let (mut srv, ft) = server();
        let c = ClientId(4);
        let reply = one_step(&mut srv, c, &ft);
        assert!(matches!(reply, ServerMessage::ServerGradients { .. }));

        let state = srv.to_state();
        let bytes = state.to_bytes();
        assert_eq!(ServerState::from_bytes(&bytes).unwrap(), state);

        // A fresh process: same config and seed re-derive the same
        // base; restore rebuilds the sessions.
        let config = ModelConfig::tiny_opt(17);
        let mut fresh = MenosServer::new(config, ServerSpec::v100(ServerMode::menos()), 5);
        let restored = fresh
            .restore(ServerState::from_bytes(&bytes).unwrap())
            .unwrap();
        assert_eq!(restored, 1);
        // Restored sessions are parked: no live reservation until the
        // client resumes (the old connection died with the process).
        assert_eq!(fresh.active_clients(), 0);
        assert_eq!(fresh.quarantined_clients(), 1);
        assert_eq!(fresh.reserved_bytes(), 0);

        // Adapter weights bit-identical to the snapshotted server's.
        let old = srv.session_adapters(c).unwrap();
        let new = fresh.session_adapters(c).unwrap();
        assert_eq!(old.len(), new.len());
        for (name, t) in old.iter() {
            let r = new.get(name).unwrap();
            let bits = |t: &Tensor| t.to_vec().iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(t), bits(r), "{name}");
        }

        // The resume handshake works against the restored server: the
        // client finished 0 steps, the server finished 1, so the
        // cached reply is replayed byte-for-byte and the Algorithm-2
        // reservation returns.
        let resumed = fresh
            .handle(ClientMessage::Resume {
                client: c,
                epoch: 1,
                last_step: 0,
            })
            .unwrap()
            .unwrap();
        let ServerMessage::Resumed {
            epoch,
            server_step,
            replay,
            ..
        } = resumed
        else {
            panic!("expected Resumed");
        };
        assert_eq!(epoch, 2, "epochs stay monotone across restarts");
        assert_eq!(server_step, 1);
        assert_eq!(replay, encode_server_message(&reply));
        assert!(fresh.reserved_bytes() > 0);
    }

    #[test]
    fn restore_refuses_busy_server_seed_mismatch_and_corruption() {
        let (mut srv, ft) = server();
        one_step(&mut srv, ClientId(0), &ft);
        let bytes = srv.to_state().to_bytes();

        // Busy target: sessions already present.
        let state = ServerState::from_bytes(&bytes).unwrap();
        assert!(srv.restore(state.clone()).is_err());

        // Seed mismatch: a different server identity must not adopt
        // sessions whose adapters derive from another seed.
        let config = ModelConfig::tiny_opt(17);
        let mut other = MenosServer::new(config.clone(), ServerSpec::v100(ServerMode::menos()), 99);
        assert!(other.restore(state.clone()).is_err());
        assert_eq!(other.quarantined_clients(), 0);

        // Corrupt record: validate-then-commit leaves the target
        // untouched.
        let mut fresh = MenosServer::new(config, ServerSpec::v100(ServerMode::menos()), 5);
        let mut broken = state;
        broken.sessions[0].session[60] ^= 0xFF;
        assert!(fresh.restore(broken).is_err());
        assert_eq!(fresh.quarantined_clients(), 0);
        assert_eq!(fresh.active_clients(), 0);
    }

    #[test]
    fn unknown_client_rejected() {
        let (mut srv, _ft) = server();
        let err = srv
            .handle(ClientMessage::Activations {
                client: ClientId(9),
                frame: frame(&Tensor::zeros([1, 1, 64])),
            })
            .unwrap_err();
        assert!(matches!(err, ProtocolError::UnknownClient(_)));
        assert!(err.to_string().contains("unknown client"));
    }

    #[test]
    fn bad_frame_rejected_without_state_damage() {
        let (mut srv, ft) = server();
        let c = ClientId(0);
        srv.handle(ClientMessage::Connect {
            client: c,
            ft,
            split: SplitSpec::paper(),
            epoch: 1,
            codecs: 0,
        })
        .unwrap();
        let err = srv
            .handle(ClientMessage::Activations {
                client: c,
                frame: Bytes::from_static(b"garbage"),
            })
            .unwrap_err();
        assert!(matches!(err, ProtocolError::Wire(WireError::BadMagic(_))));
        // The client remains connected and serviceable.
        let x_c = Tensor::full(0.1, [2, 8, 64]);
        assert!(srv
            .handle(ClientMessage::Activations {
                client: c,
                frame: frame(&x_c),
            })
            .is_ok());
    }

    #[test]
    fn gradients_before_activations_is_a_protocol_error() {
        let (mut srv, ft) = server();
        let c = ClientId(0);
        srv.handle(ClientMessage::Connect {
            client: c,
            ft,
            split: SplitSpec::paper(),
            epoch: 1,
            codecs: 0,
        })
        .unwrap();
        let err = srv
            .handle(ClientMessage::Gradients {
                client: c,
                frame: frame(&Tensor::zeros([2, 8, 64])),
            })
            .unwrap_err();
        assert!(matches!(err, ProtocolError::OutOfOrder(_)));
    }

    #[test]
    fn invalid_config_rejected_at_connect() {
        let (mut srv, mut ft) = server();
        ft.batch_size = 0;
        let err = srv
            .handle(ClientMessage::Connect {
                client: ClientId(0),
                ft,
                split: SplitSpec::paper(),
                epoch: 1,
                codecs: 0,
            })
            .unwrap_err();
        assert!(matches!(err, ProtocolError::Rejected(_)));
        assert_eq!(srv.active_clients(), 0);
    }

    #[test]
    fn duplicate_connect_rejected() {
        let (mut srv, ft) = server();
        let c = ClientId(0);
        let connect = ClientMessage::Connect {
            client: c,
            ft,
            split: SplitSpec::paper(),
            epoch: 1,
            codecs: 0,
        };
        srv.handle(connect.clone()).unwrap();
        let err = srv.handle(connect).unwrap_err();
        assert!(matches!(err, ProtocolError::Rejected(_)), "{err}");
        // The original session is untouched.
        assert_eq!(srv.active_clients(), 1);
    }

    #[test]
    fn sessions_alias_the_shared_base() {
        let (mut srv, ft) = server();
        for k in 0..3 {
            srv.handle(ClientMessage::Connect {
                client: ClientId(k),
                ft: ft.clone(),
                split: SplitSpec::paper(),
                epoch: 1,
                codecs: 0,
            })
            .unwrap();
        }
        assert_eq!(srv.active_clients(), 3);
        assert_eq!(srv.registry().instances_created(), 3);
    }

    #[test]
    fn capacity_shed_is_retryable_and_touches_no_state() {
        let (mut srv, ft) = server();
        srv.set_capacity(1);
        srv.set_busy_retry_after_ms(250);
        let connect = |c| ClientMessage::Connect {
            client: ClientId(c),
            ft: ft.clone(),
            split: SplitSpec::paper(),
            epoch: 1,
            codecs: 0,
        };
        srv.handle(connect(0)).unwrap();
        let err = srv.handle(connect(1)).unwrap_err();
        assert!(
            matches!(
                err,
                ProtocolError::Busy {
                    client: ClientId(1),
                    retry_after_ms: 250,
                }
            ),
            "{err}"
        );
        // Shedding is idempotent and created nothing.
        assert_eq!(srv.active_clients(), 1);
        assert_eq!(srv.quarantined_clients(), 0);
        // Departure frees the slot; the same connect now succeeds —
        // the defining difference from a terminal Rejected.
        srv.handle(ClientMessage::Disconnect {
            client: ClientId(0),
        })
        .unwrap();
        assert!(srv.handle(connect(1)).is_ok());
    }

    #[test]
    fn resume_at_capacity_is_shed_with_quarantine_intact() {
        let (mut srv, ft) = server();
        for c in 0..2 {
            srv.handle(ClientMessage::Connect {
                client: ClientId(c),
                ft: ft.clone(),
                split: SplitSpec::paper(),
                epoch: 1,
                codecs: 0,
            })
            .unwrap();
        }
        srv.quarantine(ClientId(1));
        srv.set_capacity(1);
        let resume = ClientMessage::Resume {
            client: ClientId(1),
            epoch: 1,
            last_step: 0,
        };
        let err = srv.handle(resume.clone()).unwrap_err();
        assert!(matches!(err, ProtocolError::Busy { .. }), "{err}");
        // The parked session survived the shed — a later retry (after
        // the server drained) re-attaches it with zero loss.
        assert_eq!(srv.quarantined_clients(), 1);
        srv.set_capacity(2);
        assert!(matches!(
            srv.handle(resume).unwrap(),
            Some(ServerMessage::Resumed { .. })
        ));
    }

    #[test]
    fn pool_oversubscription_sheds_where_impossible_demands_reject() {
        let (mut srv, ft) = server();
        srv.handle(ClientMessage::Connect {
            client: ClientId(0),
            ft: ft.clone(),
            split: SplitSpec::paper(),
            epoch: 1,
            codecs: 0,
        })
        .unwrap();
        let m_b = srv.demands_of(ClientId(0)).unwrap().m_b;
        // Shrink the pool so a second identical client fits alone but
        // not alongside the first's live reservation: Busy (retryable).
        srv.spec.gpu_capacity = m_b + m_b / 2;
        let connect = |c| ClientMessage::Connect {
            client: ClientId(c),
            ft: ft.clone(),
            split: SplitSpec::paper(),
            epoch: 1,
            codecs: 0,
        };
        let err = srv.handle(connect(1)).unwrap_err();
        assert!(matches!(err, ProtocolError::Busy { .. }), "{err}");
        assert_eq!(srv.active_clients(), 1);
        // A demand that can NEVER fit stays a terminal Rejected — the
        // client must not burn retries on the impossible.
        srv.spec.gpu_capacity = m_b - 1;
        let err = srv.handle(connect(2)).unwrap_err();
        assert!(matches!(err, ProtocolError::Rejected(_)), "{err}");
        // The freed pool admits the shed client on retry.
        srv.spec.gpu_capacity = m_b + m_b / 2;
        srv.handle(ClientMessage::Disconnect {
            client: ClientId(0),
        })
        .unwrap();
        assert!(srv.handle(connect(1)).is_ok());
    }

    #[test]
    fn pressure_watermark_degrades_the_stack_cap() {
        let (mut srv, ft) = server();
        assert!(!srv.under_pressure());
        assert_eq!(srv.effective_stack_cap(), MAX_STACK_MEMBERS);
        srv.handle(ClientMessage::Connect {
            client: ClientId(0),
            ft,
            split: SplitSpec::paper(),
            epoch: 1,
            codecs: 0,
        })
        .unwrap();
        // Watermark 0: the degraded regime is unconditionally in
        // force — handy for pinning the degraded path in tests.
        srv.set_pressure_watermark(0);
        assert!(srv.under_pressure());
        assert_eq!(srv.effective_stack_cap(), (MAX_STACK_MEMBERS / 4).max(1));
        assert!(srv.utilization_pct() <= 100);
        // Back to the default watermark: pressure clears.
        srv.set_pressure_watermark(100);
        assert!(!srv.under_pressure());
        assert_eq!(srv.effective_stack_cap(), MAX_STACK_MEMBERS);
    }

    #[test]
    fn from_store_shares_the_given_base() {
        let config = ModelConfig::tiny_opt(17);
        let mut rng = menos_sim::seeded_rng(5, "base-model");
        let base = menos_models::init_params(&config, &mut rng);
        let srv = MenosServer::from_store(config, base, ServerSpec::v100(ServerMode::menos()), 5);
        assert_eq!(srv.active_clients(), 0);
        assert!(srv.registry().base_bytes() > 0);
    }
}

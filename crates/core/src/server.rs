//! The Menos serving façade: one object owning the shared base, the
//! per-client sessions, and the message dispatch of Algorithm 1.
//!
//! The timed multi-client behaviour (scheduling, memory) is the
//! simulated runtime's job; this façade is the *real-engine* server a
//! deployment embeds — the TCP layer in `menos-split` and the examples
//! drive the same session objects this server manages.

use std::collections::HashMap;

use bytes::Bytes;

use menos_adapters::FineTuneConfig;
use menos_models::ModelConfig;
use menos_net::{decode_tensor, encode_tensor};
use menos_split::{ClientId, ClientMessage, ForwardMode, ServerMessage, ServerSession, SplitSpec};

use crate::profiler::{profile_client, MemoryDemands};
use crate::sharing::SharedBaseRegistry;
use crate::workload::ServerSpec;

/// Errors the serving façade reports to its transport.
#[derive(Debug)]
pub enum ServeError {
    /// The client is not connected (or already disconnected).
    UnknownClient(ClientId),
    /// A tensor frame failed to decode.
    BadFrame(String),
    /// Protocol order violated (e.g. gradients before activations).
    Protocol(String),
    /// The client's configuration is invalid or unschedulable.
    Rejected(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownClient(c) => write!(f, "unknown client {c}"),
            ServeError::BadFrame(m) => write!(f, "bad tensor frame: {m}"),
            ServeError::Protocol(m) => write!(f, "protocol violation: {m}"),
            ServeError::Rejected(m) => write!(f, "client rejected: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}

struct ClientState {
    session: ServerSession,
    demands: MemoryDemands,
}

/// A real-engine Menos server: shared base model, per-client sessions,
/// and Algorithm-1 message dispatch.
///
/// # Examples
///
/// ```
/// use menos_adapters::FineTuneConfig;
/// use menos_core::{MenosServer, ServerMode, ServerSpec};
/// use menos_models::ModelConfig;
/// use menos_split::{ClientId, ClientMessage, SplitSpec};
///
/// let config = ModelConfig::tiny_llama(16);
/// let mut server = MenosServer::new(config.clone(), ServerSpec::v100(ServerMode::menos()), 1);
/// let mut ft = FineTuneConfig::paper(&config);
/// ft.batch_size = 1;
/// ft.seq_len = 4;
/// let reply = server
///     .handle(ClientMessage::Connect {
///         client: ClientId(0),
///         ft,
///         split: SplitSpec::paper(),
///     })
///     .unwrap();
/// assert!(matches!(reply, Some(menos_split::ServerMessage::Ready { .. })));
/// assert_eq!(server.active_clients(), 1);
/// ```
pub struct MenosServer {
    registry: SharedBaseRegistry,
    spec: ServerSpec,
    mode: ForwardMode,
    clients: HashMap<ClientId, ClientState>,
    seed: u64,
}

impl MenosServer {
    /// Creates a server: loads the base model once (the registry) and
    /// prepares to admit clients against `spec`'s memory budget.
    pub fn new(config: ModelConfig, spec: ServerSpec, seed: u64) -> Self {
        MenosServer {
            registry: SharedBaseRegistry::initialize(config, seed),
            spec,
            mode: ForwardMode::NoGradReforward,
            clients: HashMap::new(),
            seed,
        }
    }

    /// Switches the execution path (default: Menos' no-grad +
    /// re-forward).
    pub fn set_forward_mode(&mut self, mode: ForwardMode) {
        self.mode = mode;
    }

    /// Currently connected clients.
    pub fn active_clients(&self) -> usize {
        self.clients.len()
    }

    /// The shared-base registry (e.g. to verify aliasing in tests).
    pub fn registry(&self) -> &SharedBaseRegistry {
        &self.registry
    }

    /// The profiled demands of a connected client.
    pub fn demands_of(&self, client: ClientId) -> Option<MemoryDemands> {
        self.clients.get(&client).map(|c| c.demands)
    }

    /// Dispatches one protocol message (Algorithm 1), returning the
    /// reply to send, if any.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError`] on unknown clients, undecodable frames,
    /// protocol-order violations, or rejected configurations. Errors
    /// are scoped to the offending client; other clients are
    /// unaffected.
    pub fn handle(&mut self, msg: ClientMessage) -> Result<Option<ServerMessage>, ServeError> {
        match msg {
            ClientMessage::Connect { client, ft, split } => {
                self.connect(client, ft, split)?;
                Ok(Some(ServerMessage::Ready { client }))
            }
            ClientMessage::Activations { client, frame } => {
                let mode = self.mode;
                let state = self
                    .clients
                    .get_mut(&client)
                    .ok_or(ServeError::UnknownClient(client))?;
                let x_c = decode(&frame)?;
                let x_s = match mode {
                    ForwardMode::Cached => state.session.forward_cached(&x_c),
                    ForwardMode::NoGradReforward => state.session.forward_nograd(&x_c),
                };
                Ok(Some(ServerMessage::ServerActivations {
                    client,
                    frame: encode_tensor(&x_s),
                }))
            }
            ClientMessage::Gradients { client, frame } => {
                let state = self
                    .clients
                    .get_mut(&client)
                    .ok_or(ServeError::UnknownClient(client))?;
                let g_c = decode(&frame)?;
                // `backward` panics on protocol misuse (no preceding
                // forward); convert that into a recoverable transport
                // error. The session mutates nothing before the check,
                // so unwinding leaves it consistent.
                let g_s = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    state.session.backward(&g_c)
                }))
                .map_err(|_| {
                    ServeError::Protocol("gradients received before activations".into())
                })?;
                Ok(Some(ServerMessage::ServerGradients {
                    client,
                    frame: encode_tensor(&g_s),
                }))
            }
            ClientMessage::Disconnect { client } => {
                self.clients
                    .remove(&client)
                    .ok_or(ServeError::UnknownClient(client))?;
                Ok(None)
            }
        }
    }

    fn connect(
        &mut self,
        client: ClientId,
        ft: FineTuneConfig,
        split: SplitSpec,
    ) -> Result<(), ServeError> {
        let config = self.registry.config().clone();
        ft.validate(&config).map_err(ServeError::Rejected)?;
        split.validate(&config).map_err(ServeError::Rejected)?;
        // Profiling + admission (§3.3): reject demands that could never
        // be scheduled. For the tiny real engine the budget check uses
        // the profile of THIS config, so oversized batches are caught.
        let profile = menos_models::ModelProfile::new(config, split.front_layers);
        let demands = profile_client(&profile, &ft);
        let pool = self.spec.total_gpu_bytes();
        if demands.m_b > pool {
            return Err(ServeError::Rejected(format!(
                "profiled backward demand {} exceeds GPU pool {pool}",
                demands.m_b
            )));
        }
        let session_seed = self.seed.wrapping_add(client.0);
        let session = ServerSession::new(
            client,
            self.registry.new_instance(),
            split,
            &ft,
            session_seed,
        );
        debug_assert!(self.registry.verify_aliasing(session.model()));
        self.clients
            .insert(client, ClientState { session, demands });
        Ok(())
    }
}

fn decode(frame: &Bytes) -> Result<menos_tensor::Tensor, ServeError> {
    decode_tensor(frame).map_err(|e| ServeError::BadFrame(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::ServerMode;
    use menos_tensor::Tensor;

    fn server() -> (MenosServer, FineTuneConfig) {
        let config = ModelConfig::tiny_opt(17);
        let mut ft = FineTuneConfig::paper(&config);
        ft.batch_size = 2;
        ft.seq_len = 8;
        (
            MenosServer::new(config, ServerSpec::v100(ServerMode::menos()), 5),
            ft,
        )
    }

    fn frame(t: &Tensor) -> Bytes {
        encode_tensor(t)
    }

    #[test]
    fn full_protocol_cycle() {
        let (mut srv, ft) = server();
        let c = ClientId(0);
        let ready = srv
            .handle(ClientMessage::Connect {
                client: c,
                ft: ft.clone(),
                split: SplitSpec::paper(),
            })
            .unwrap();
        assert!(matches!(ready, Some(ServerMessage::Ready { .. })));
        assert!(srv.demands_of(c).is_some());

        let x_c = Tensor::full(0.1, [2, 8, 64]);
        let reply = srv
            .handle(ClientMessage::Activations {
                client: c,
                frame: frame(&x_c),
            })
            .unwrap()
            .unwrap();
        let ServerMessage::ServerActivations { frame: xs, .. } = reply else {
            panic!("expected activations");
        };
        let x_s = decode_tensor(&xs).unwrap();
        assert_eq!(x_s.dims(), &[2, 8, 64]);

        let g_c = Tensor::full(0.01, [2, 8, 64]);
        let reply = srv
            .handle(ClientMessage::Gradients {
                client: c,
                frame: frame(&g_c),
            })
            .unwrap()
            .unwrap();
        assert!(matches!(reply, ServerMessage::ServerGradients { .. }));

        assert!(srv
            .handle(ClientMessage::Disconnect { client: c })
            .unwrap()
            .is_none());
        assert_eq!(srv.active_clients(), 0);
    }

    #[test]
    fn unknown_client_rejected() {
        let (mut srv, _ft) = server();
        let err = srv
            .handle(ClientMessage::Activations {
                client: ClientId(9),
                frame: frame(&Tensor::zeros([1, 1, 64])),
            })
            .unwrap_err();
        assert!(matches!(err, ServeError::UnknownClient(_)));
        assert!(err.to_string().contains("unknown client"));
    }

    #[test]
    fn bad_frame_rejected_without_state_damage() {
        let (mut srv, ft) = server();
        let c = ClientId(0);
        srv.handle(ClientMessage::Connect {
            client: c,
            ft,
            split: SplitSpec::paper(),
        })
        .unwrap();
        let err = srv
            .handle(ClientMessage::Activations {
                client: c,
                frame: Bytes::from_static(b"garbage"),
            })
            .unwrap_err();
        assert!(matches!(err, ServeError::BadFrame(_)));
        // The client remains connected and serviceable.
        let x_c = Tensor::full(0.1, [2, 8, 64]);
        assert!(srv
            .handle(ClientMessage::Activations {
                client: c,
                frame: frame(&x_c),
            })
            .is_ok());
    }

    #[test]
    fn gradients_before_activations_is_a_protocol_error() {
        let (mut srv, ft) = server();
        let c = ClientId(0);
        srv.handle(ClientMessage::Connect {
            client: c,
            ft,
            split: SplitSpec::paper(),
        })
        .unwrap();
        let err = srv
            .handle(ClientMessage::Gradients {
                client: c,
                frame: frame(&Tensor::zeros([2, 8, 64])),
            })
            .unwrap_err();
        assert!(matches!(err, ServeError::Protocol(_)));
    }

    #[test]
    fn invalid_config_rejected_at_connect() {
        let (mut srv, mut ft) = server();
        ft.batch_size = 0;
        let err = srv
            .handle(ClientMessage::Connect {
                client: ClientId(0),
                ft,
                split: SplitSpec::paper(),
            })
            .unwrap_err();
        assert!(matches!(err, ServeError::Rejected(_)));
        assert_eq!(srv.active_clients(), 0);
    }

    #[test]
    fn sessions_alias_the_shared_base() {
        let (mut srv, ft) = server();
        for k in 0..3 {
            srv.handle(ClientMessage::Connect {
                client: ClientId(k),
                ft: ft.clone(),
                split: SplitSpec::paper(),
            })
            .unwrap();
        }
        assert_eq!(srv.active_clients(), 3);
        assert_eq!(srv.registry().instances_created(), 3);
    }
}

//! The Menos serving façade: one object owning the shared base, the
//! per-client sessions, and the message dispatch of Algorithm 1.
//!
//! The timed multi-client behaviour (scheduling, memory) is the
//! simulated runtime's job; this façade is the *real-engine* server a
//! deployment embeds. It implements `menos-split`'s
//! [`MessageHandler`], so any [`Transport`]-driven
//! [`serve_loop`](menos_split::serve_loop) — in-memory channels, the
//! simulated WAN, or real TCP sockets — pumps messages into the same
//! state machine; the per-session forward/backward step is
//! [`dispatch_session`], shared with the in-process driver.
//!
//! [`Transport`]: menos_split::Transport

use std::collections::HashMap;

use menos_adapters::FineTuneConfig;
use menos_models::ModelConfig;
use menos_split::{
    dispatch_session, ClientId, ClientMessage, ForwardMode, MessageHandler, ProtocolError,
    ServerMessage, ServerSession, SplitSpec,
};
use menos_tensor::ParamStore;

use crate::profiler::{profile_client, MemoryDemands};
use crate::sharing::SharedBaseRegistry;
use crate::workload::ServerSpec;

struct ClientState {
    session: ServerSession,
    demands: MemoryDemands,
}

/// A real-engine Menos server: shared base model, per-client sessions,
/// and Algorithm-1 message dispatch.
///
/// # Examples
///
/// ```
/// use menos_adapters::FineTuneConfig;
/// use menos_core::{MenosServer, ServerMode, ServerSpec};
/// use menos_models::ModelConfig;
/// use menos_split::{ClientId, ClientMessage, MessageHandler, SplitSpec};
///
/// let config = ModelConfig::tiny_llama(16);
/// let mut server = MenosServer::new(config.clone(), ServerSpec::v100(ServerMode::menos()), 1);
/// let mut ft = FineTuneConfig::paper(&config);
/// ft.batch_size = 1;
/// ft.seq_len = 4;
/// let reply = server
///     .handle(ClientMessage::Connect {
///         client: ClientId(0),
///         ft,
///         split: SplitSpec::paper(),
///     })
///     .unwrap();
/// assert!(matches!(reply, Some(menos_split::ServerMessage::Ready { .. })));
/// assert_eq!(server.active_clients(), 1);
/// ```
pub struct MenosServer {
    registry: SharedBaseRegistry,
    spec: ServerSpec,
    mode: ForwardMode,
    clients: HashMap<ClientId, ClientState>,
    seed: u64,
}

impl MenosServer {
    /// Creates a server: loads the base model once (the registry) and
    /// prepares to admit clients against `spec`'s memory budget.
    pub fn new(config: ModelConfig, spec: ServerSpec, seed: u64) -> Self {
        Self::with_registry(SharedBaseRegistry::initialize(config, seed), spec, seed)
    }

    /// Creates a server around pre-existing base parameters (e.g. a
    /// store the test harness also binds its clients to, so both sides
    /// share one model without re-deriving it from the seed).
    ///
    /// # Panics
    ///
    /// Panics if `base` does not contain every parameter `config`
    /// requires (delegated to the registry's validation).
    pub fn from_store(config: ModelConfig, base: ParamStore, spec: ServerSpec, seed: u64) -> Self {
        Self::with_registry(SharedBaseRegistry::from_store(config, base), spec, seed)
    }

    fn with_registry(registry: SharedBaseRegistry, spec: ServerSpec, seed: u64) -> Self {
        MenosServer {
            registry,
            spec,
            mode: ForwardMode::NoGradReforward,
            clients: HashMap::new(),
            seed,
        }
    }

    /// Switches the execution path (default: Menos' no-grad +
    /// re-forward).
    pub fn set_forward_mode(&mut self, mode: ForwardMode) {
        self.mode = mode;
    }

    /// Currently connected clients.
    pub fn active_clients(&self) -> usize {
        self.clients.len()
    }

    /// The shared-base registry (e.g. to verify aliasing in tests).
    pub fn registry(&self) -> &SharedBaseRegistry {
        &self.registry
    }

    /// The profiled demands of a connected client.
    pub fn demands_of(&self, client: ClientId) -> Option<MemoryDemands> {
        self.clients.get(&client).map(|c| c.demands)
    }

    /// Dispatches one protocol message (Algorithm 1), returning the
    /// reply to send, if any.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] on unknown clients, undecodable
    /// frames, protocol-order violations, or rejected configurations.
    /// Errors are scoped to the offending client; other clients are
    /// unaffected.
    pub fn handle(&mut self, msg: ClientMessage) -> Result<Option<ServerMessage>, ProtocolError> {
        match msg {
            ClientMessage::Connect { client, ft, split } => {
                self.connect(client, ft, split)?;
                Ok(Some(ServerMessage::Ready { client }))
            }
            ClientMessage::Disconnect { client } => {
                self.clients
                    .remove(&client)
                    .ok_or(ProtocolError::UnknownClient(client))?;
                Ok(None)
            }
            tensor_msg => {
                let client = tensor_msg.client();
                let mode = self.mode;
                let state = self
                    .clients
                    .get_mut(&client)
                    .ok_or(ProtocolError::UnknownClient(client))?;
                dispatch_session(&mut state.session, mode, &tensor_msg).map(Some)
            }
        }
    }

    fn connect(
        &mut self,
        client: ClientId,
        ft: FineTuneConfig,
        split: SplitSpec,
    ) -> Result<(), ProtocolError> {
        if self.clients.contains_key(&client) {
            return Err(ProtocolError::Rejected(format!(
                "{client} is already connected"
            )));
        }
        let config = self.registry.config().clone();
        ft.validate(&config).map_err(ProtocolError::Rejected)?;
        split.validate(&config).map_err(ProtocolError::Rejected)?;
        // Profiling + admission (§3.3): reject demands that could never
        // be scheduled. For the tiny real engine the budget check uses
        // the profile of THIS config, so oversized batches are caught.
        let profile = menos_models::ModelProfile::new(config, split.front_layers);
        let demands = profile_client(&profile, &ft);
        let pool = self.spec.total_gpu_bytes();
        if demands.m_b > pool {
            return Err(ProtocolError::Rejected(format!(
                "profiled backward demand {} exceeds GPU pool {pool}",
                demands.m_b
            )));
        }
        let session_seed = self.seed.wrapping_add(client.0);
        let session = ServerSession::new(
            client,
            self.registry.new_instance(),
            split,
            &ft,
            session_seed,
        );
        debug_assert!(self.registry.verify_aliasing(session.model()));
        self.clients
            .insert(client, ClientState { session, demands });
        Ok(())
    }
}

impl MessageHandler for MenosServer {
    fn handle(&mut self, msg: ClientMessage) -> Result<Option<ServerMessage>, ProtocolError> {
        MenosServer::handle(self, msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::ServerMode;
    use bytes::Bytes;
    use menos_net::{decode_tensor, encode_tensor, WireError};
    use menos_tensor::Tensor;

    fn server() -> (MenosServer, FineTuneConfig) {
        let config = ModelConfig::tiny_opt(17);
        let mut ft = FineTuneConfig::paper(&config);
        ft.batch_size = 2;
        ft.seq_len = 8;
        (
            MenosServer::new(config, ServerSpec::v100(ServerMode::menos()), 5),
            ft,
        )
    }

    fn frame(t: &Tensor) -> Bytes {
        encode_tensor(t)
    }

    #[test]
    fn full_protocol_cycle() {
        let (mut srv, ft) = server();
        let c = ClientId(0);
        let ready = srv
            .handle(ClientMessage::Connect {
                client: c,
                ft: ft.clone(),
                split: SplitSpec::paper(),
            })
            .unwrap();
        assert!(matches!(ready, Some(ServerMessage::Ready { .. })));
        assert!(srv.demands_of(c).is_some());

        let x_c = Tensor::full(0.1, [2, 8, 64]);
        let reply = srv
            .handle(ClientMessage::Activations {
                client: c,
                frame: frame(&x_c),
            })
            .unwrap()
            .unwrap();
        let ServerMessage::ServerActivations { frame: xs, .. } = reply else {
            panic!("expected activations");
        };
        let x_s = decode_tensor(&xs).unwrap();
        assert_eq!(x_s.dims(), &[2, 8, 64]);

        let g_c = Tensor::full(0.01, [2, 8, 64]);
        let reply = srv
            .handle(ClientMessage::Gradients {
                client: c,
                frame: frame(&g_c),
            })
            .unwrap()
            .unwrap();
        assert!(matches!(reply, ServerMessage::ServerGradients { .. }));

        assert!(srv
            .handle(ClientMessage::Disconnect { client: c })
            .unwrap()
            .is_none());
        assert_eq!(srv.active_clients(), 0);
    }

    #[test]
    fn unknown_client_rejected() {
        let (mut srv, _ft) = server();
        let err = srv
            .handle(ClientMessage::Activations {
                client: ClientId(9),
                frame: frame(&Tensor::zeros([1, 1, 64])),
            })
            .unwrap_err();
        assert!(matches!(err, ProtocolError::UnknownClient(_)));
        assert!(err.to_string().contains("unknown client"));
    }

    #[test]
    fn bad_frame_rejected_without_state_damage() {
        let (mut srv, ft) = server();
        let c = ClientId(0);
        srv.handle(ClientMessage::Connect {
            client: c,
            ft,
            split: SplitSpec::paper(),
        })
        .unwrap();
        let err = srv
            .handle(ClientMessage::Activations {
                client: c,
                frame: Bytes::from_static(b"garbage"),
            })
            .unwrap_err();
        assert!(matches!(err, ProtocolError::Wire(WireError::Truncated)));
        // The client remains connected and serviceable.
        let x_c = Tensor::full(0.1, [2, 8, 64]);
        assert!(srv
            .handle(ClientMessage::Activations {
                client: c,
                frame: frame(&x_c),
            })
            .is_ok());
    }

    #[test]
    fn gradients_before_activations_is_a_protocol_error() {
        let (mut srv, ft) = server();
        let c = ClientId(0);
        srv.handle(ClientMessage::Connect {
            client: c,
            ft,
            split: SplitSpec::paper(),
        })
        .unwrap();
        let err = srv
            .handle(ClientMessage::Gradients {
                client: c,
                frame: frame(&Tensor::zeros([2, 8, 64])),
            })
            .unwrap_err();
        assert!(matches!(err, ProtocolError::OutOfOrder(_)));
    }

    #[test]
    fn invalid_config_rejected_at_connect() {
        let (mut srv, mut ft) = server();
        ft.batch_size = 0;
        let err = srv
            .handle(ClientMessage::Connect {
                client: ClientId(0),
                ft,
                split: SplitSpec::paper(),
            })
            .unwrap_err();
        assert!(matches!(err, ProtocolError::Rejected(_)));
        assert_eq!(srv.active_clients(), 0);
    }

    #[test]
    fn duplicate_connect_rejected() {
        let (mut srv, ft) = server();
        let c = ClientId(0);
        let connect = ClientMessage::Connect {
            client: c,
            ft,
            split: SplitSpec::paper(),
        };
        srv.handle(connect.clone()).unwrap();
        let err = srv.handle(connect).unwrap_err();
        assert!(matches!(err, ProtocolError::Rejected(_)), "{err}");
        // The original session is untouched.
        assert_eq!(srv.active_clients(), 1);
    }

    #[test]
    fn sessions_alias_the_shared_base() {
        let (mut srv, ft) = server();
        for k in 0..3 {
            srv.handle(ClientMessage::Connect {
                client: ClientId(k),
                ft: ft.clone(),
                split: SplitSpec::paper(),
            })
            .unwrap();
        }
        assert_eq!(srv.active_clients(), 3);
        assert_eq!(srv.registry().instances_created(), 3);
    }

    #[test]
    fn from_store_shares_the_given_base() {
        let config = ModelConfig::tiny_opt(17);
        let mut rng = menos_sim::seeded_rng(5, "base-model");
        let base = menos_models::init_params(&config, &mut rng);
        let srv = MenosServer::from_store(config, base, ServerSpec::v100(ServerMode::menos()), 5);
        assert_eq!(srv.active_clients(), 0);
        assert!(srv.registry().base_bytes() > 0);
    }
}

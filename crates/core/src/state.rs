//! The versioned, serializable form of everything a Menos server
//! mutates while training: [`ServerState`].
//!
//! A running [`MenosServer`](crate::MenosServer) owns four kinds of
//! mutable state — per-client sessions (adapters, optimizer moments,
//! counters), their quarantine status and resume epochs, the cached
//! `ServerGradients` replies that back lost-reply replay, and the
//! forward-mode switch. `ServerState` is that state flattened into
//! plain data: each session as its own serialized container (see
//! `ServerSession::to_state`), each cached reply as its wire encoding,
//! everything else as scalars. What it deliberately does *not* carry:
//!
//! * the base model — that is re-derived from the seed (or re-bound
//!   from the deployment's store) on start, exactly as at first boot;
//! * Algorithm-2 reservations — those are a pure function of the live
//!   session set, and every restored session starts parked
//!   (quarantined), re-acquiring its reservation through the `Resume`
//!   admission path;
//! * in-flight autograd graphs — the v1.1 resume reconciliation makes
//!   clients redo unacknowledged steps, so only completed-step state
//!   needs to be durable.
//!
//! The byte form is a tagged section container
//! ([`menos_tensor::SectionWriter`]) closed by a CRC-32, so a
//! truncated or bit-flipped snapshot is rejected with a typed
//! [`CheckpointError`] — never a panic, never a partial restore.

use bytes::Bytes;
use menos_split::{
    decode_server_message, encode_server_message, ClientId, ForwardMode, ServerMessage,
};
use menos_tensor::{CheckpointError, SectionReader, SectionWriter};

/// Frame-size cap when re-decoding a cached reply out of a snapshot;
/// snapshots are local trusted-path artifacts, but the decode is still
/// length-validated against this bound.
pub(crate) const SNAPSHOT_MAX_FRAME: usize = menos_net::DEFAULT_MAX_FRAME;

// Outer container tags.
const TAG_SERVER_META: u32 = 1;
const TAG_SESSION: u32 = 2;

// Per-session record tags (nested container).
const TAG_RECORD_META: u32 = 1;
const TAG_RECORD_SESSION: u32 = 2;
const TAG_RECORD_REPLY: u32 = 3;

/// One client's durable record inside a [`ServerState`]: identity,
/// resume epoch, liveness at snapshot time, the serialized session,
/// and the cached lost-reply replay (wire-encoded), if any.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionRecord {
    /// The client this record belongs to.
    pub client: ClientId,
    /// Resume epoch fencing stale reconnects.
    pub epoch: u64,
    /// Whether the session was live (vs. quarantined) when captured.
    /// Restore parks every record either way — the connections died
    /// with the process — so this is diagnostic, not behavioural.
    pub live: bool,
    /// `ServerSession::to_state` bytes.
    pub session: Vec<u8>,
    /// The last `ServerGradients` reply, wire-encoded, kept so a
    /// resume that raced the reply can replay it after a restart.
    pub last_reply: Option<Vec<u8>>,
}

/// The full mutable state of a [`MenosServer`](crate::MenosServer),
/// versioned and serializable.
///
/// # Examples
///
/// ```
/// use menos_core::{MenosServer, ServerMode, ServerSpec};
/// use menos_models::ModelConfig;
///
/// let config = ModelConfig::tiny_llama(16);
/// let server = MenosServer::new(config, ServerSpec::v100(ServerMode::menos()), 7);
/// let state = server.to_state();
/// let restored = menos_core::ServerState::from_bytes(&state.to_bytes()).unwrap();
/// assert_eq!(restored, state);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerState {
    /// The server's base seed (session seeds derive from it).
    pub seed: u64,
    /// The forward-mode switch at snapshot time.
    pub mode: ForwardMode,
    /// Every session, live or quarantined, sorted by client id.
    pub sessions: Vec<SessionRecord>,
}

fn mode_to_byte(mode: ForwardMode) -> u8 {
    match mode {
        ForwardMode::Cached => 0,
        ForwardMode::NoGradReforward => 1,
    }
}

fn mode_from_byte(b: u8) -> Result<ForwardMode, CheckpointError> {
    match b {
        0 => Ok(ForwardMode::Cached),
        1 => Ok(ForwardMode::NoGradReforward),
        other => Err(CheckpointError::Corrupt(format!("forward mode {other}"))),
    }
}

impl ServerState {
    /// Serializes to the snapshot byte form: one tagged, versioned,
    /// CRC-closed container with a meta section and one nested
    /// container per session.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut meta = Vec::new();
        meta.extend(self.seed.to_le_bytes());
        meta.push(mode_to_byte(self.mode));
        meta.extend((self.sessions.len() as u64).to_le_bytes());
        let mut w = SectionWriter::new();
        w.section(TAG_SERVER_META, meta);
        for rec in &self.sessions {
            w.section(TAG_SESSION, encode_record(rec));
        }
        w.finish()
    }

    /// Decodes snapshot bytes written by [`to_bytes`](Self::to_bytes).
    ///
    /// # Errors
    ///
    /// [`CheckpointError`] on truncation, corruption (checksum or
    /// structural), or version mismatch — never panics on untrusted
    /// input. Validation here is purely structural; semantic checks
    /// (does each session rebuild against the model?) happen in
    /// `MenosServer::restore`, which commits nothing until every
    /// record has been validated.
    pub fn from_bytes(bytes: &[u8]) -> Result<ServerState, CheckpointError> {
        let r = SectionReader::parse(bytes)?;
        let meta = r.require(TAG_SERVER_META)?;
        if meta.len() != 17 {
            return Err(CheckpointError::Corrupt(format!(
                "server meta of {} bytes",
                meta.len()
            )));
        }
        let seed = u64::from_le_bytes(meta[0..8].try_into().expect("8"));
        let mode = mode_from_byte(meta[8])?;
        let declared = u64::from_le_bytes(meta[9..17].try_into().expect("8"));
        let mut sessions = Vec::new();
        for (tag, body) in r.sections() {
            if tag != TAG_SESSION {
                continue;
            }
            sessions.push(decode_record(body)?);
        }
        if sessions.len() as u64 != declared {
            return Err(CheckpointError::Corrupt(format!(
                "{} session records, meta declares {declared}",
                sessions.len()
            )));
        }
        let mut seen = std::collections::HashSet::new();
        for rec in &sessions {
            if !seen.insert(rec.client) {
                return Err(CheckpointError::Corrupt(format!(
                    "duplicate session record for {}",
                    rec.client
                )));
            }
        }
        Ok(ServerState {
            seed,
            mode,
            sessions,
        })
    }
}

/// Serializes one session record into its nested container bytes —
/// the body of a `TAG_SESSION` section.
fn encode_record(rec: &SessionRecord) -> Vec<u8> {
    let mut rec_meta = Vec::new();
    rec_meta.extend(rec.client.0.to_le_bytes());
    rec_meta.extend(rec.epoch.to_le_bytes());
    rec_meta.push(u8::from(rec.live));
    let mut inner = SectionWriter::new();
    inner.section(TAG_RECORD_META, rec_meta);
    inner.section(TAG_RECORD_SESSION, rec.session.clone());
    if let Some(reply) = &rec.last_reply {
        inner.section(TAG_RECORD_REPLY, reply.clone());
    }
    inner.finish()
}

/// Decodes one nested session-record container.
fn decode_record(body: &[u8]) -> Result<SessionRecord, CheckpointError> {
    let inner = SectionReader::parse(body)?;
    let rec_meta = inner.require(TAG_RECORD_META)?;
    if rec_meta.len() != 17 {
        return Err(CheckpointError::Corrupt(format!(
            "session record meta of {} bytes",
            rec_meta.len()
        )));
    }
    let client = ClientId(u64::from_le_bytes(rec_meta[0..8].try_into().expect("8")));
    let epoch = u64::from_le_bytes(rec_meta[8..16].try_into().expect("8"));
    let live = match rec_meta[16] {
        0 => false,
        1 => true,
        other => {
            return Err(CheckpointError::Corrupt(format!("liveness byte {other}")));
        }
    };
    let session = inner.require(TAG_RECORD_SESSION)?.to_vec();
    let last_reply = inner.find(TAG_RECORD_REPLY).map(<[u8]>::to_vec);
    Ok(SessionRecord {
        client,
        epoch,
        live,
        session,
        last_reply,
    })
}

/// Serializes one [`SessionRecord`] plus its origin server's base seed
/// into a self-contained, CRC-sealed migration blob — the body of a
/// v1.4 `ImportSession` frame. The seed travels with the record so the
/// importing server can refuse state that was trained against a
/// different base model.
#[must_use]
pub fn encode_session_record(seed: u64, rec: &SessionRecord) -> Vec<u8> {
    let mut w = SectionWriter::new();
    w.section(TAG_SERVER_META, seed.to_le_bytes().to_vec());
    w.section(TAG_SESSION, encode_record(rec));
    w.finish()
}

/// Decodes a migration blob written by [`encode_session_record`],
/// returning `(origin seed, record)`.
///
/// # Errors
///
/// [`CheckpointError`] on truncation, corruption, or version mismatch
/// — never panics on untrusted input. A full server snapshot fed here
/// by mistake is rejected too (its meta section is 17 bytes, not 8).
pub fn decode_session_record(bytes: &[u8]) -> Result<(u64, SessionRecord), CheckpointError> {
    let r = SectionReader::parse(bytes)?;
    let meta = r.require(TAG_SERVER_META)?;
    if meta.len() != 8 {
        return Err(CheckpointError::Corrupt(format!(
            "migration meta of {} bytes",
            meta.len()
        )));
    }
    let seed = u64::from_le_bytes(meta[0..8].try_into().expect("8"));
    let rec = decode_record(r.require(TAG_SESSION)?)?;
    Ok((seed, rec))
}

/// Wire-encodes a cached reply for a [`SessionRecord`].
pub(crate) fn encode_reply(reply: &ServerMessage) -> Vec<u8> {
    encode_server_message(reply).to_vec()
}

/// Decodes a [`SessionRecord`]'s cached reply back to a message,
/// mapping wire errors into the checkpoint taxonomy.
pub(crate) fn decode_reply(bytes: &[u8]) -> Result<ServerMessage, CheckpointError> {
    let reply = decode_server_message(&Bytes::from(bytes.to_vec()), SNAPSHOT_MAX_FRAME)
        .map_err(|e| CheckpointError::Corrupt(format!("cached reply: {e}")))?;
    if !matches!(reply, ServerMessage::ServerGradients { .. }) {
        return Err(CheckpointError::Corrupt(format!(
            "cached reply is {reply:?}, expected ServerGradients"
        )));
    }
    Ok(reply)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ServerState {
        ServerState {
            seed: 21,
            mode: ForwardMode::NoGradReforward,
            sessions: vec![
                SessionRecord {
                    client: ClientId(3),
                    epoch: 2,
                    live: true,
                    session: vec![1, 2, 3, 4],
                    last_reply: Some(vec![9, 9]),
                },
                SessionRecord {
                    client: ClientId(7),
                    epoch: 1,
                    live: false,
                    session: vec![5; 64],
                    last_reply: None,
                },
            ],
        }
    }

    #[test]
    fn round_trips_including_empty() {
        let state = sample();
        assert_eq!(ServerState::from_bytes(&state.to_bytes()).unwrap(), state);
        let empty = ServerState {
            seed: 0,
            mode: ForwardMode::Cached,
            sessions: vec![],
        };
        assert_eq!(ServerState::from_bytes(&empty.to_bytes()).unwrap(), empty);
    }

    #[test]
    fn rejects_truncation_and_bit_flips_everywhere() {
        let bytes = sample().to_bytes();
        for cut in 0..bytes.len() {
            assert!(ServerState::from_bytes(&bytes[..cut]).is_err(), "cut={cut}");
        }
        for offset in 0..bytes.len() {
            let mut flipped = bytes.clone();
            flipped[offset] ^= 1 << (offset % 8);
            assert!(
                ServerState::from_bytes(&flipped).is_err(),
                "offset={offset}"
            );
        }
    }

    #[test]
    fn session_record_blob_round_trips_and_rejects_damage() {
        let state = sample();
        let rec = &state.sessions[0];
        let blob = encode_session_record(state.seed, rec);
        let (seed, decoded) = decode_session_record(&blob).unwrap();
        assert_eq!(seed, state.seed);
        assert_eq!(&decoded, rec);
        for cut in 0..blob.len() {
            assert!(decode_session_record(&blob[..cut]).is_err(), "cut={cut}");
        }
        for offset in 0..blob.len() {
            let mut flipped = blob.clone();
            flipped[offset] ^= 1 << (offset % 8);
            assert!(decode_session_record(&flipped).is_err(), "offset={offset}");
        }
        // The two container formats are mutually exclusive: a full
        // snapshot is not a migration blob and vice versa.
        assert!(decode_session_record(&state.to_bytes()).is_err());
        assert!(ServerState::from_bytes(&blob).is_err());
    }

    #[test]
    fn rejects_duplicate_records_and_count_mismatch() {
        let mut state = sample();
        state.sessions.push(state.sessions[0].clone());
        assert!(matches!(
            ServerState::from_bytes(&state.to_bytes()),
            Err(CheckpointError::Corrupt(msg)) if msg.contains("duplicate")
        ));
    }
}

//! Analytic capacity planning: how many concurrent fine-tuning clients
//! a server can admit — the operational question the paper's
//! conclusion poses ("substantially reduce operating expenses").
//!
//! The planner applies Eq. (3): Menos admits `N` clients when
//! `M + ctx·(N+1) + N·(A+O) + max(M_b) ≤ capacity` (the shared base, a
//! context and adapter/optimizer state per client, and room to run at
//! least one backward). The vanilla comparator packs whole
//! `(M+A+O+I)` tasks.

use menos_adapters::FineTuneConfig;
use menos_models::{ModelConfig, ModelProfile, Precision};
use menos_split::SplitSpec;

use crate::profiler::profile_client;
use crate::workload::ServerSpec;

/// The result of a capacity query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CapacityPlan {
    /// Concurrent clients Menos admits without queueing at setup.
    pub menos_clients: usize,
    /// Concurrent clients vanilla split learning keeps resident
    /// (beyond this it must swap).
    pub vanilla_resident_clients: usize,
    /// Bytes of the (possibly quantized) shared base.
    pub shared_base_bytes: u64,
    /// Per-client persistent bytes under Menos (context + A + O).
    pub menos_per_client_bytes: u64,
    /// Whole-task bytes per client under vanilla.
    pub vanilla_task_bytes: u64,
}

/// Computes admission capacity for a server, model, and fine-tuning
/// configuration, with the base stored at `precision`.
///
/// # Examples
///
/// ```
/// use menos_adapters::FineTuneConfig;
/// use menos_core::{plan_capacity, ServerMode, ServerSpec};
/// use menos_models::{ModelConfig, Precision};
/// use menos_split::SplitSpec;
///
/// let cfg = ModelConfig::llama2_7b();
/// let plan = plan_capacity(
///     &ServerSpec::v100(ServerMode::menos()),
///     &cfg,
///     &FineTuneConfig::paper(&cfg),
///     SplitSpec::paper(),
///     Precision::Fp32,
/// );
/// assert!(plan.menos_clients >= 10);
/// assert_eq!(plan.vanilla_resident_clients, 1);
/// ```
pub fn plan_capacity(
    server: &ServerSpec,
    model: &ModelConfig,
    ft: &FineTuneConfig,
    split: SplitSpec,
    precision: Precision,
) -> CapacityPlan {
    let profile = ModelProfile::new(model.clone(), split.front_layers);
    let demands = profile_client(&profile, ft);
    let ctx = server.cost.cuda_context_bytes;
    let total = server.total_gpu_bytes();
    let m = profile.server_param_bytes_at(precision);

    let menos_per_client = ctx + demands.persistent;
    // M + manager ctx + one backward's working memory must fit before
    // any client does.
    let fixed = m + ctx + demands.m_b;
    let menos_clients = if fixed >= total {
        0
    } else {
        ((total - fixed) / menos_per_client.max(1)) as usize
    };

    let vanilla_task = m + demands.persistent + ctx + demands.m_b;
    let vanilla_resident = (total / vanilla_task.max(1)) as usize;

    CapacityPlan {
        menos_clients,
        vanilla_resident_clients: vanilla_resident,
        shared_base_bytes: m,
        menos_per_client_bytes: menos_per_client,
        vanilla_task_bytes: vanilla_task,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::ServerMode;

    fn v100() -> ServerSpec {
        ServerSpec::v100(ServerMode::menos())
    }

    #[test]
    fn paper_capacities() {
        // Fig. 6's setting: one V100.
        let llama = ModelConfig::llama2_7b();
        let plan = plan_capacity(
            &v100(),
            &llama,
            &FineTuneConfig::paper(&llama),
            SplitSpec::paper(),
            Precision::Fp32,
        );
        // Vanilla: exactly one resident Llama task (paper §2.3).
        assert_eq!(plan.vanilla_resident_clients, 1);
        // Menos: an order of magnitude more.
        assert!(plan.menos_clients >= 10, "{plan:?}");

        let opt = ModelConfig::opt_1_3b();
        let plan = plan_capacity(
            &v100(),
            &opt,
            &FineTuneConfig::paper(&opt),
            SplitSpec::paper(),
            Precision::Fp32,
        );
        // Vanilla OPT: 3 resident tasks (paper Fig. 6a).
        assert_eq!(plan.vanilla_resident_clients, 3);
        assert!(plan.menos_clients > plan.vanilla_resident_clients);
    }

    #[test]
    fn quantization_multiplies_capacity() {
        let llama = ModelConfig::llama2_7b();
        let ft = FineTuneConfig::paper(&llama);
        let fp32 = plan_capacity(&v100(), &llama, &ft, SplitSpec::paper(), Precision::Fp32);
        let nf4 = plan_capacity(&v100(), &llama, &ft, SplitSpec::paper(), Precision::Nf4);
        assert!(
            nf4.menos_clients > 3 * fp32.menos_clients,
            "{fp32:?} vs {nf4:?}"
        );
        assert_eq!(nf4.shared_base_bytes, fp32.shared_base_bytes / 8);
    }

    #[test]
    fn more_gpus_admit_more_clients() {
        let llama = ModelConfig::llama2_7b();
        let ft = FineTuneConfig::paper(&llama);
        let one = plan_capacity(&v100(), &llama, &ft, SplitSpec::paper(), Precision::Fp32);
        let mut big = v100();
        big.gpus = 4;
        let four = plan_capacity(&big, &llama, &ft, SplitSpec::paper(), Precision::Fp32);
        assert!(four.menos_clients > 2 * one.menos_clients);
    }

    #[test]
    fn base_too_large_yields_zero() {
        let llama = ModelConfig::llama2_7b();
        let ft = FineTuneConfig::paper(&llama);
        let mut tiny = v100();
        tiny.gpu_capacity = 8 << 30;
        let plan = plan_capacity(&tiny, &llama, &ft, SplitSpec::paper(), Precision::Fp32);
        assert_eq!(plan.menos_clients, 0);
        assert_eq!(plan.vanilla_resident_clients, 0);
    }

    #[test]
    fn planner_agrees_with_runtime_feasibility() {
        // Any N within the plan must set up without error in the DES.
        use crate::runtime::run_experiment;
        use crate::workload::WorkloadSpec;
        let llama = ModelConfig::llama2_7b();
        let ft = FineTuneConfig::paper(&llama);
        let plan = plan_capacity(&v100(), &llama, &ft, SplitSpec::paper(), Precision::Fp32);
        let n = plan.menos_clients.min(8); // keep the check fast
        let w = WorkloadSpec::paper(llama, n, 2);
        let r = run_experiment(&v100(), &w, 1);
        assert!(r.error.is_none(), "planner said {n} fits: {:?}", r.error);
    }
}

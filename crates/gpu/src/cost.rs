//! The GPU/link cost model, calibrated against the paper's measured
//! timings (DESIGN.md §7).

use menos_sim::Nanos;
use serde::{Deserialize, Serialize};

/// Durations and sizes that convert logical work (FLOPs, bytes, alloc
/// churn) into simulated time.
///
/// The defaults ([`CostModel::v100`]) are calibrated so the simulated
/// system reproduces the paper's Tables 1–3: ≈0.45 s vanilla
/// forward+backward for OPT-1.3B at batch 16, ≈60 s model swaps for
/// Llama-2-7B over PCIe, and release/realloc overhead growing with the
/// number of clients.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Sustained compute throughput in FLOP/s (effective, mixed
    /// precision).
    pub flops_per_sec: f64,
    /// Effective host↔device transfer bandwidth for task swapping,
    /// bytes/s. Deliberately below PCIe peak: it includes allocation,
    /// pinning, and driver overhead.
    pub pcie_bytes_per_sec: f64,
    /// Fixed overhead per kernel-launch batch (one forward or backward
    /// pass).
    pub launch_overhead: Nanos,
    /// Base overhead of releasing + re-collecting a client's GPU
    /// memory (Menos does this every pass).
    pub release_overhead: Nanos,
    /// Additional release overhead per concurrently-served client —
    /// models the allocator fragmentation the paper reports in Table 2.
    pub release_overhead_per_client: Nanos,
    /// Per-process CUDA context bytes (charged once per serving
    /// process, and once for Menos' shared-parameter manager).
    pub cuda_context_bytes: u64,
}

impl CostModel {
    /// Calibration for the paper's NVIDIA V100 testbed.
    pub fn v100() -> Self {
        CostModel {
            flops_per_sec: 22e12,
            pcie_bytes_per_sec: 0.8e9,
            launch_overhead: Nanos::from_millis(5),
            release_overhead: Nanos::from_millis(60),
            release_overhead_per_client: Nanos::from_millis(110),
            cuda_context_bytes: 400 << 20, // 400 MiB
        }
    }

    /// A client-grade GPU (the paper's RTX A4500): same model, lower
    /// throughput.
    pub fn a4500() -> Self {
        CostModel {
            flops_per_sec: 12e12,
            ..CostModel::v100()
        }
    }

    /// A CPU-only client device (paper Fig. 10): orders of magnitude
    /// slower compute, no CUDA context.
    pub fn cpu_client() -> Self {
        CostModel {
            flops_per_sec: 0.8e12,
            pcie_bytes_per_sec: 0.0,
            launch_overhead: Nanos::ZERO,
            release_overhead: Nanos::ZERO,
            release_overhead_per_client: Nanos::ZERO,
            cuda_context_bytes: 0,
        }
    }

    /// Time to execute `flops` floating-point operations, including the
    /// launch overhead.
    pub fn compute_time(&self, flops: f64) -> Nanos {
        self.launch_overhead + menos_sim::compute_time(flops, self.flops_per_sec)
    }

    /// Time to move `bytes` between host and device memory.
    pub fn swap_time(&self, bytes: u64) -> Nanos {
        menos_sim::transfer_time(bytes, self.pcie_bytes_per_sec)
    }

    /// Overhead of an on-demand release/re-collect cycle with
    /// `concurrent_clients` active clients (paper Table 2: grows with
    /// client count as allocation becomes fragmented).
    pub fn release_time(&self, concurrent_clients: usize) -> Nanos {
        self.release_overhead
            + self.release_overhead_per_client * concurrent_clients.saturating_sub(1) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v100_calibration_matches_paper_tables() {
        let cm = CostModel::v100();
        // Table 2 (vanilla OPT): forward+backward ≈ 0.41-0.54 s.
        // OPT server fwd ≈ 3.4 TFLOP, bwd 2x.
        let fwd = 3.4e12;
        let total = cm.compute_time(fwd) + cm.compute_time(2.0 * fwd);
        let secs = total.as_secs_f64();
        assert!((0.3..0.7).contains(&secs), "OPT compute {secs}s");

        // Fig. 6b (vanilla Llama swap): 24 GB out + 24 GB in ≈ 60 s.
        let swap = cm.swap_time(2 * 24 * (1u64 << 30)).as_secs_f64();
        assert!((50.0..75.0).contains(&swap), "Llama swap {swap}s");
    }

    #[test]
    fn release_overhead_grows_with_clients() {
        let cm = CostModel::v100();
        let t1 = cm.release_time(1);
        let t4 = cm.release_time(4);
        let t6 = cm.release_time(6);
        assert!(t1 < t4 && t4 < t6);
        assert_eq!(t1, cm.release_overhead);
        // Table 2 (Menos OPT): per-iteration compute grows by roughly
        // 0.2 s per added client (two release cycles per iteration).
        let growth = (t6 - t4).as_secs_f64() * 2.0 / 2.0;
        assert!((0.05..0.3).contains(&growth), "growth {growth}");
    }

    #[test]
    fn cpu_client_is_much_slower() {
        let cpu = CostModel::cpu_client();
        let gpu = CostModel::a4500();
        let flops = 1e12;
        assert!(cpu.compute_time(flops) > gpu.compute_time(flops) * 10);
        assert_eq!(cpu.cuda_context_bytes, 0);
    }

    #[test]
    fn zero_bandwidth_swaps_are_free() {
        // CPU clients never swap; the cost model treats zero bandwidth
        // as an infinitely fast (irrelevant) resource.
        assert_eq!(CostModel::cpu_client().swap_time(1 << 30), Nanos::ZERO);
    }
}

//! An address-space region allocator: first-fit over a sorted free
//! list with coalescing on free.
//!
//! [`crate::GpuDevice`] uses it to give every allocation a concrete
//! offset, which makes *external fragmentation* observable — the
//! phenomenon the paper blames for Menos' release/re-collection
//! overhead growing with client count (Table 2).

/// A free or allocated region `[offset, offset + len)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// Start address in bytes.
    pub offset: u64,
    /// Length in bytes.
    pub len: u64,
}

impl Region {
    fn end(&self) -> u64 {
        self.offset + self.len
    }
}

/// First-fit allocator over a contiguous address space.
///
/// # Examples
///
/// ```
/// use menos_gpu::RegionAllocator;
///
/// let mut a = RegionAllocator::new(100);
/// let r1 = a.alloc(40).unwrap();
/// let r2 = a.alloc(40).unwrap();
/// assert_eq!((r1.offset, r2.offset), (0, 40));
/// a.free(r1);
/// // First-fit reuses the hole at the front.
/// assert_eq!(a.alloc(30).unwrap().offset, 0);
/// ```
#[derive(Debug, Clone)]
pub struct RegionAllocator {
    capacity: u64,
    // Sorted by offset; no two regions adjacent (always coalesced).
    free: Vec<Region>,
}

impl RegionAllocator {
    /// Creates an allocator over `capacity` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: u64) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        RegionAllocator {
            capacity,
            free: vec![Region {
                offset: 0,
                len: capacity,
            }],
        }
    }

    /// Total address space.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Total free bytes (may be scattered).
    pub fn free_bytes(&self) -> u64 {
        self.free.iter().map(|r| r.len).sum()
    }

    /// Largest single free region.
    pub fn largest_free(&self) -> u64 {
        self.free.iter().map(|r| r.len).max().unwrap_or(0)
    }

    /// External fragmentation in `[0, 1]`: `1 - largest_free /
    /// free_bytes` (zero when free space is one contiguous region or
    /// exhausted).
    pub fn fragmentation(&self) -> f64 {
        let total = self.free_bytes();
        if total == 0 {
            return 0.0;
        }
        1.0 - self.largest_free() as f64 / total as f64
    }

    /// Number of free-list holes.
    pub fn hole_count(&self) -> usize {
        self.free.len()
    }

    /// Allocates `len` bytes at the first fitting offset, or `None` if
    /// no single free region is large enough (even when the *total*
    /// free bytes would suffice — that is external fragmentation).
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn alloc(&mut self, len: u64) -> Option<Region> {
        assert!(len > 0, "zero-length allocation");
        let idx = self.free.iter().position(|r| r.len >= len)?;
        let region = self.free[idx];
        let out = Region {
            offset: region.offset,
            len,
        };
        if region.len == len {
            self.free.remove(idx);
        } else {
            self.free[idx] = Region {
                offset: region.offset + len,
                len: region.len - len,
            };
        }
        Some(out)
    }

    /// Returns a region to the free list, coalescing with neighbours.
    ///
    /// # Panics
    ///
    /// Panics if the region overlaps free space or exceeds the address
    /// space — double frees and corruption are logic errors.
    pub fn free(&mut self, region: Region) {
        assert!(region.end() <= self.capacity, "region beyond capacity");
        // Find insertion point by offset.
        let idx = self.free.partition_point(|r| r.offset < region.offset);
        if idx > 0 {
            assert!(
                self.free[idx - 1].end() <= region.offset,
                "double free or overlap with previous hole"
            );
        }
        if idx < self.free.len() {
            assert!(
                region.end() <= self.free[idx].offset,
                "double free or overlap with next hole"
            );
        }
        self.free.insert(idx, region);
        // Coalesce with next, then previous.
        if idx + 1 < self.free.len() && self.free[idx].end() == self.free[idx + 1].offset {
            self.free[idx].len += self.free[idx + 1].len;
            self.free.remove(idx + 1);
        }
        if idx > 0 && self.free[idx - 1].end() == self.free[idx].offset {
            self.free[idx - 1].len += self.free[idx].len;
            self.free.remove(idx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_round_trip_restores_one_region() {
        let mut a = RegionAllocator::new(100);
        let r1 = a.alloc(30).unwrap();
        let r2 = a.alloc(30).unwrap();
        let r3 = a.alloc(40).unwrap();
        assert_eq!(a.free_bytes(), 0);
        assert!(a.alloc(1).is_none());
        // Free out of order; coalescing must leave one hole.
        a.free(r2);
        a.free(r1);
        a.free(r3);
        assert_eq!(a.hole_count(), 1);
        assert_eq!(a.free_bytes(), 100);
        assert_eq!(a.fragmentation(), 0.0);
    }

    #[test]
    fn external_fragmentation_blocks_large_allocs() {
        let mut a = RegionAllocator::new(100);
        let regions: Vec<Region> = (0..10).map(|_| a.alloc(10).unwrap()).collect();
        // Free every other region: 50 bytes free, but max hole is 10.
        for r in regions.iter().step_by(2) {
            a.free(*r);
        }
        assert_eq!(a.free_bytes(), 50);
        assert_eq!(a.largest_free(), 10);
        assert!(
            a.alloc(20).is_none(),
            "fragmented space rejects large alloc"
        );
        assert!(a.fragmentation() > 0.7);
        assert_eq!(a.hole_count(), 5);
    }

    #[test]
    fn first_fit_prefers_lowest_offset() {
        let mut a = RegionAllocator::new(100);
        let r1 = a.alloc(20).unwrap();
        let _r2 = a.alloc(20).unwrap();
        let r3 = a.alloc(20).unwrap();
        a.free(r1);
        a.free(r3);
        // Two holes (0..20 and 40..60): first-fit takes the first.
        assert_eq!(a.alloc(10).unwrap().offset, 0);
        // A 20-byte request no longer fits hole 0 (10 left) -> hole 40.
        assert_eq!(a.alloc(20).unwrap().offset, 40);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_detected() {
        let mut a = RegionAllocator::new(100);
        let r = a.alloc(10).unwrap();
        a.free(r);
        a.free(r);
    }

    #[test]
    #[should_panic(expected = "beyond capacity")]
    fn out_of_bounds_free_detected() {
        let mut a = RegionAllocator::new(100);
        a.free(Region {
            offset: 90,
            len: 20,
        });
    }

    #[test]
    fn exact_fit_consumes_hole() {
        let mut a = RegionAllocator::new(50);
        let r = a.alloc(50).unwrap();
        assert_eq!(a.hole_count(), 0);
        a.free(r);
        assert_eq!(a.hole_count(), 1);
    }
}

//! # menos-gpu — a simulated GPU memory and compute substrate
//!
//! The paper's experiments run on real V100/A4500 GPUs; this crate
//! replaces them with a byte-accurate simulation (DESIGN.md §2). Every
//! decision Menos makes — admission, backfilling, swap-vs-wait — depends
//! only on *bytes available* and *relative durations*, both of which
//! this crate models:
//!
//! * [`GpuDevice`] / [`GpuCluster`] — typed allocations (the paper's
//!   M/A/O/I components), OOM errors, peak tracking, multi-GPU pools
//!   with spanning (model-parallel) allocation.
//! * [`CostModel`] — calibrated conversion from FLOPs, transfer bytes,
//!   and allocator churn to simulated time (DESIGN.md §7).
//! * [`SwapManager`] — LRU task-level swapping, the vanilla baseline's
//!   strategy, with finite host RAM.
//!
//! # Examples
//!
//! ```
//! use menos_gpu::{AllocKind, CostModel, GpuDevice};
//!
//! let mut v100 = GpuDevice::new(0, 32 << 30);
//! let base = v100.alloc(24 << 30, AllocKind::Model, "llama-base").unwrap();
//! let act = v100.alloc(4 << 30, AllocKind::Activation, "client-0").unwrap();
//! assert!(v100.available() < 8 << 30);
//! v100.free(act);
//! v100.free(base);
//!
//! let cost = CostModel::v100();
//! assert!(cost.swap_time(24 << 30).as_secs_f64() > 10.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
mod cost;
mod device;
mod region;
mod swap;

pub use cluster::{ClusterAlloc, GpuCluster};
pub use cost::CostModel;
pub use device::{AllocId, AllocKind, Allocation, GpuDevice, OomError};
pub use region::{Region, RegionAllocator};
pub use swap::{ResidencyOutcome, SwapError, SwapManager};

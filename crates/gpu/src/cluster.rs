//! A pool of GPUs on one server.
//!
//! Fig. 2 of the paper notes its GPU memory is "an abstraction of all
//! available GPUs": a model too large for one device is laid out across
//! several, and more GPUs simply mean more schedulable memory. The
//! cluster exposes both single-device (first-fit) and spanning
//! (model-parallel) allocation.

use crate::device::{AllocId, AllocKind, GpuDevice, OomError};

/// An allocation placed on the cluster; may span several devices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterAlloc {
    /// `(device index, allocation id, bytes)` per participating device.
    parts: Vec<(usize, AllocId, u64)>,
}

impl ClusterAlloc {
    /// Total bytes across all parts.
    pub fn bytes(&self) -> u64 {
        self.parts.iter().map(|&(_, _, b)| b).sum()
    }

    /// Number of devices the allocation spans.
    pub fn span(&self) -> usize {
        self.parts.len()
    }
}

/// A fixed set of identical-capacity GPU devices.
///
/// # Examples
///
/// ```
/// use menos_gpu::{AllocKind, GpuCluster};
///
/// let mut cluster = GpuCluster::new(2, 16 << 30);
/// // 24 GiB does not fit one device but spans two.
/// assert!(cluster.alloc(24 << 30, AllocKind::Model, "base").is_err());
/// let a = cluster.alloc_spanning(24 << 30, AllocKind::Model, "base").unwrap();
/// assert_eq!(a.span(), 2);
/// cluster.free(a);
/// assert_eq!(cluster.used(), 0);
/// ```
#[derive(Debug)]
pub struct GpuCluster {
    devices: Vec<GpuDevice>,
}

impl GpuCluster {
    /// Creates `n` devices of `capacity_each` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize, capacity_each: u64) -> Self {
        assert!(n > 0, "cluster needs at least one GPU");
        GpuCluster {
            devices: (0..n).map(|i| GpuDevice::new(i, capacity_each)).collect(),
        }
    }

    /// Number of devices.
    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    /// A device by index.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn device(&self, i: usize) -> &GpuDevice {
        &self.devices[i]
    }

    /// Total capacity across devices.
    pub fn capacity(&self) -> u64 {
        self.devices.iter().map(GpuDevice::capacity).sum()
    }

    /// Total bytes in use.
    pub fn used(&self) -> u64 {
        self.devices.iter().map(GpuDevice::used).sum()
    }

    /// Total bytes free.
    pub fn available(&self) -> u64 {
        self.capacity() - self.used()
    }

    /// Sum of per-device peaks (upper bound on cluster peak).
    pub fn peak(&self) -> u64 {
        self.devices.iter().map(GpuDevice::peak).sum()
    }

    /// Resets every device's peak.
    pub fn reset_peaks(&mut self) {
        for d in &mut self.devices {
            d.reset_peak();
        }
    }

    /// Allocates on a single device (first-fit over devices in index
    /// order).
    ///
    /// # Errors
    ///
    /// Returns the OOM error of the *most free* device if none fits.
    pub fn alloc(
        &mut self,
        bytes: u64,
        kind: AllocKind,
        owner: impl Into<String>,
    ) -> Result<ClusterAlloc, OomError> {
        let owner = owner.into();
        let best = self
            .devices
            .iter()
            .enumerate()
            .max_by_key(|(_, d)| d.available())
            .map(|(i, _)| i)
            .expect("cluster non-empty");
        for i in 0..self.devices.len() {
            if self.devices[i].available() >= bytes {
                let id = self.devices[i].alloc(bytes, kind, owner)?;
                return Ok(ClusterAlloc {
                    parts: vec![(i, id, bytes)],
                });
            }
        }
        Err(OomError {
            requested: bytes,
            available: self.devices[best].available(),
            device: best,
        })
    }

    /// Allocates `bytes` across as many devices as needed (layer-wise
    /// model parallelism). Devices are filled in index order.
    ///
    /// # Errors
    ///
    /// Returns an OOM error (and leaves the cluster unchanged) if the
    /// total free memory is insufficient.
    pub fn alloc_spanning(
        &mut self,
        bytes: u64,
        kind: AllocKind,
        owner: impl Into<String>,
    ) -> Result<ClusterAlloc, OomError> {
        let owner = owner.into();
        let mut remaining = bytes;
        let mut parts = Vec::new();
        for i in 0..self.devices.len() {
            // Take contiguous holes from this device until it is out
            // or the request is satisfied (layer-parallel shards need
            // not be contiguous).
            loop {
                if remaining == 0 {
                    break;
                }
                let take = remaining.min(self.devices[i].largest_free());
                if take == 0 {
                    break;
                }
                let id = self.devices[i]
                    .alloc(take, kind, owner.clone())
                    .expect("largest_free-sized alloc fits");
                parts.push((i, id, take));
                remaining -= take;
            }
        }
        if remaining > 0 {
            // Roll back: the pool cannot host this request.
            let shortfall_available = self.available();
            for (dev, id, _) in parts {
                self.devices[dev].free(id);
            }
            return Err(OomError {
                requested: bytes,
                available: shortfall_available,
                device: 0,
            });
        }
        Ok(ClusterAlloc { parts })
    }

    /// Frees a cluster allocation, returning total bytes released.
    ///
    /// # Panics
    ///
    /// Panics on double-free.
    pub fn free(&mut self, alloc: ClusterAlloc) -> u64 {
        alloc
            .parts
            .into_iter()
            .map(|(dev, id, _)| self.devices[dev].free(id))
            .sum()
    }

    /// Frees every allocation belonging to `owner` on all devices.
    pub fn free_owner(&mut self, owner: &str) -> u64 {
        self.devices.iter_mut().map(|d| d.free_owner(owner)).sum()
    }

    /// Bytes used by `kind` across all devices.
    pub fn used_by_kind(&self, kind: AllocKind) -> u64 {
        self.devices.iter().map(|d| d.used_by_kind(kind)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GIB: u64 = 1 << 30;

    #[test]
    fn first_fit_single_device() {
        let mut c = GpuCluster::new(2, 4 * GIB);
        let a = c.alloc(3 * GIB, AllocKind::Model, "a").unwrap();
        assert_eq!(a.span(), 1);
        assert_eq!(c.device(0).used(), 3 * GIB);
        // Next 3 GiB goes to device 1.
        let b = c.alloc(3 * GIB, AllocKind::Model, "b").unwrap();
        assert_eq!(b.span(), 1);
        assert_eq!(c.device(1).used(), 3 * GIB);
        assert_eq!(c.used(), 6 * GIB);
    }

    #[test]
    fn single_device_alloc_fails_when_fragmented() {
        let mut c = GpuCluster::new(2, 4 * GIB);
        c.alloc(3 * GIB, AllocKind::Model, "a").unwrap();
        c.alloc(3 * GIB, AllocKind::Model, "b").unwrap();
        // 2 GiB total free but only 1 GiB per device.
        let err = c.alloc(2 * GIB, AllocKind::Activation, "c").unwrap_err();
        assert_eq!(err.available, GIB);
    }

    #[test]
    fn spanning_uses_total_capacity() {
        let mut c = GpuCluster::new(4, 8 * GIB);
        let a = c
            .alloc_spanning(25 * GIB, AllocKind::Model, "llama")
            .unwrap();
        assert_eq!(a.bytes(), 25 * GIB);
        assert_eq!(a.span(), 4);
        assert_eq!(c.available(), 7 * GIB);
        c.free(a);
        assert_eq!(c.used(), 0);
    }

    #[test]
    fn spanning_oom_when_pool_exhausted() {
        let mut c = GpuCluster::new(2, GIB);
        assert!(c.alloc_spanning(3 * GIB, AllocKind::Model, "x").is_err());
        assert_eq!(c.used(), 0, "failed spanning alloc must not leak");
    }

    #[test]
    fn free_owner_across_devices() {
        let mut c = GpuCluster::new(2, 2 * GIB);
        c.alloc_spanning(3 * GIB, AllocKind::Model, "base").unwrap();
        c.alloc(GIB / 2, AllocKind::Adapter, "client-1").unwrap();
        assert_eq!(c.free_owner("base"), 3 * GIB);
        assert_eq!(c.used(), GIB / 2);
    }

    #[test]
    fn kind_accounting() {
        let mut c = GpuCluster::new(2, 2 * GIB);
        c.alloc_spanning(3 * GIB, AllocKind::Model, "m").unwrap();
        c.alloc(GIB / 4, AllocKind::Activation, "a").unwrap();
        assert_eq!(c.used_by_kind(AllocKind::Model), 3 * GIB);
        assert_eq!(c.used_by_kind(AllocKind::Activation), GIB / 4);
    }

    #[test]
    fn peaks_reset() {
        let mut c = GpuCluster::new(2, GIB);
        let a = c.alloc(GIB / 2, AllocKind::Activation, "x").unwrap();
        c.free(a);
        assert_eq!(c.peak(), GIB / 2);
        c.reset_peaks();
        assert_eq!(c.peak(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one GPU")]
    fn empty_cluster_rejected() {
        GpuCluster::new(0, GIB);
    }
}

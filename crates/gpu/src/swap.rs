//! Task-level swapping — the vanilla split-learning baseline's way of
//! over-committing GPU memory (paper §5.1, "Comparison").
//!
//! Each client task owns a private copy of the base model plus adapter,
//! optimizer state, and preserved activations (Eq. 2's
//! `(M + A + O + I) × N`). When a task's turn arrives and GPU memory is
//! insufficient, resident tasks are evicted (LRU) to host RAM at PCIe
//! cost, then the incoming task is loaded. Only parameters and states
//! move over PCIe — activations are dropped and recreated — so a task's
//! *transfer* bytes are smaller than its *resident* footprint. Host RAM
//! is finite too: with enough Llama-sized tasks even swapping fails,
//! which is why the paper's vanilla numbers stop at 4 clients.

use std::collections::HashMap;

use menos_sim::Nanos;

use crate::cost::CostModel;

/// Why a task could not be made resident.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SwapError {
    /// Host memory cannot hold another task's swapped-out image.
    HostExhausted {
        /// Bytes the new task needs in host RAM.
        requested: u64,
        /// Host bytes still free.
        available: u64,
    },
    /// The task does not fit on the GPU even with everything evicted.
    TaskTooLarge {
        /// Resident bytes the task needs.
        requested: u64,
        /// GPU capacity.
        capacity: u64,
    },
    /// Eviction is required but every resident task is pinned
    /// (mid-iteration); the caller should retry after an unpin.
    NoVictim,
    /// The task name is unknown.
    UnknownTask(String),
}

impl std::fmt::Display for SwapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SwapError::HostExhausted {
                requested,
                available,
            } => write!(
                f,
                "host memory exhausted: need {requested} bytes, {available} free"
            ),
            SwapError::TaskTooLarge {
                requested,
                capacity,
            } => write!(
                f,
                "task of {requested} bytes exceeds GPU capacity {capacity}"
            ),
            SwapError::NoVictim => write!(f, "all resident tasks are pinned"),
            SwapError::UnknownTask(n) => write!(f, "unknown task {n}"),
        }
    }
}

impl std::error::Error for SwapError {}

#[derive(Debug)]
struct TaskState {
    resident_bytes: u64,
    transfer_bytes: u64,
    resident: bool,
    pinned: bool,
    last_used: u64,
}

/// The outcome of a successful residency request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResidencyOutcome {
    /// Simulated PCIe time spent (zero if already resident).
    pub elapsed: Nanos,
    /// Names of tasks evicted to make room.
    pub evicted: Vec<String>,
}

/// LRU task-swapping manager with pinning, tracking a fixed GPU pool.
///
/// # Examples
///
/// ```
/// use menos_gpu::{CostModel, SwapManager};
///
/// let mut swap = SwapManager::new(10 << 30, 64 << 30);
/// swap.register("a", 8 << 30, 8 << 30).unwrap();
/// swap.register("b", 8 << 30, 8 << 30).unwrap();
/// let cost = CostModel::v100();
/// let r1 = swap.ensure_resident("a", &cost).unwrap();
/// assert!(r1.evicted.is_empty());
/// // "b" forces "a" out.
/// let r2 = swap.ensure_resident("b", &cost).unwrap();
/// assert_eq!(r2.evicted, vec!["a".to_string()]);
/// ```
#[derive(Debug)]
pub struct SwapManager {
    tasks: HashMap<String, TaskState>,
    gpu_capacity: u64,
    gpu_used: u64,
    host_capacity: u64,
    clock: u64,
    swap_ins: u64,
    swap_outs: u64,
}

impl SwapManager {
    /// Creates a manager over `gpu_capacity` bytes of device memory and
    /// `host_capacity` bytes of host RAM for swapped-out images.
    pub fn new(gpu_capacity: u64, host_capacity: u64) -> Self {
        SwapManager {
            tasks: HashMap::new(),
            gpu_capacity,
            gpu_used: 0,
            host_capacity,
            clock: 0,
            swap_ins: 0,
            swap_outs: 0,
        }
    }

    /// Registers a task. `resident_bytes` is its full GPU footprint
    /// (M + A + O + I); `transfer_bytes` is what actually crosses PCIe
    /// on a swap (M + A + O — activations are recreated, not moved).
    ///
    /// # Errors
    ///
    /// Fails if host RAM could not hold all registered tasks' images at
    /// once (the worst case the baseline must survive), or if the task
    /// exceeds GPU capacity outright.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        resident_bytes: u64,
        transfer_bytes: u64,
    ) -> Result<(), SwapError> {
        if resident_bytes > self.gpu_capacity {
            return Err(SwapError::TaskTooLarge {
                requested: resident_bytes,
                capacity: self.gpu_capacity,
            });
        }
        let total: u64 = self.tasks.values().map(|t| t.transfer_bytes).sum();
        if total + transfer_bytes > self.host_capacity {
            return Err(SwapError::HostExhausted {
                requested: transfer_bytes,
                available: self.host_capacity.saturating_sub(total),
            });
        }
        self.tasks.insert(
            name.into(),
            TaskState {
                resident_bytes,
                transfer_bytes,
                resident: false,
                pinned: false,
                last_used: 0,
            },
        );
        Ok(())
    }

    /// Whether a task currently lives on the GPU.
    pub fn is_resident(&self, name: &str) -> bool {
        self.tasks.get(name).map(|t| t.resident).unwrap_or(false)
    }

    /// Number of registered tasks.
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Bytes currently resident on the GPU.
    pub fn gpu_used(&self) -> u64 {
        self.gpu_used
    }

    /// Lifetime (swap-in, swap-out) counts.
    pub fn swap_counts(&self) -> (u64, u64) {
        (self.swap_ins, self.swap_outs)
    }

    /// Pins a resident task: it cannot be chosen as an eviction victim
    /// until unpinned (a task mid-iteration must not be swapped out).
    ///
    /// # Panics
    ///
    /// Panics if the task is unknown or not resident.
    pub fn pin(&mut self, name: &str) {
        let t = self
            .tasks
            .get_mut(name)
            .unwrap_or_else(|| panic!("pin of unknown task {name}"));
        assert!(t.resident, "cannot pin non-resident task {name}");
        t.pinned = true;
    }

    /// Unpins a task, making it evictable again.
    ///
    /// # Panics
    ///
    /// Panics if the task is unknown.
    pub fn unpin(&mut self, name: &str) {
        self.tasks
            .get_mut(name)
            .unwrap_or_else(|| panic!("unpin of unknown task {name}"))
            .pinned = false;
    }

    /// Makes `name` resident, evicting least-recently-used *unpinned*
    /// tasks as needed.
    ///
    /// # Errors
    ///
    /// [`SwapError::NoVictim`] if eviction is needed but every resident
    /// task is pinned — the caller should retry after an unpin. Also
    /// fails for unknown tasks.
    pub fn ensure_resident(
        &mut self,
        name: &str,
        cost: &CostModel,
    ) -> Result<ResidencyOutcome, SwapError> {
        self.clock += 1;
        let clock = self.clock;
        let task = self
            .tasks
            .get_mut(name)
            .ok_or_else(|| SwapError::UnknownTask(name.to_string()))?;
        task.last_used = clock;
        if task.resident {
            return Ok(ResidencyOutcome {
                elapsed: Nanos::ZERO,
                evicted: Vec::new(),
            });
        }
        let needed = task.resident_bytes;
        let transfer = task.transfer_bytes;

        // Plan evictions without mutating, then commit.
        let mut evicted = Vec::new();
        let mut elapsed = Nanos::ZERO;
        while self.gpu_capacity - self.gpu_used < needed {
            let victim = self
                .tasks
                .iter()
                .filter(|(n, t)| t.resident && !t.pinned && n.as_str() != name)
                .min_by_key(|(_, t)| t.last_used)
                .map(|(n, _)| n.clone());
            let Some(victim) = victim else {
                // Roll back planned evictions? None were needed to roll
                // back logically: we commit evictions as we go, which is
                // faithful — a real system would have paged them out
                // before discovering it still cannot fit.
                return Err(SwapError::NoVictim);
            };
            let v = self.tasks.get_mut(&victim).expect("victim exists");
            v.resident = false;
            self.gpu_used -= v.resident_bytes;
            elapsed += cost.swap_time(v.transfer_bytes);
            self.swap_outs += 1;
            evicted.push(victim);
        }

        let t = self.tasks.get_mut(name).expect("task exists");
        t.resident = true;
        self.gpu_used += needed;
        elapsed += cost.swap_time(transfer);
        self.swap_ins += 1;
        Ok(ResidencyOutcome { elapsed, evicted })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GIB: u64 = 1 << 30;

    fn setup(gpu_gib: u64, host_gib: u64) -> (SwapManager, CostModel) {
        (
            SwapManager::new(gpu_gib * GIB, host_gib * GIB),
            CostModel::v100(),
        )
    }

    #[test]
    fn resident_task_costs_nothing() {
        let (mut s, cost) = setup(32, 128);
        s.register("t", 10 * GIB, 10 * GIB).unwrap();
        let r = s.ensure_resident("t", &cost).unwrap();
        assert!(r.elapsed > Nanos::ZERO);
        let r = s.ensure_resident("t", &cost).unwrap();
        assert_eq!(r.elapsed, Nanos::ZERO);
        assert!(s.is_resident("t"));
        assert_eq!(s.swap_counts(), (1, 0));
        assert_eq!(s.gpu_used(), 10 * GIB);
    }

    #[test]
    fn lru_eviction_order() {
        let (mut s, cost) = setup(20, 128);
        for n in ["a", "b"] {
            s.register(n, 8 * GIB, 8 * GIB).unwrap();
        }
        s.ensure_resident("a", &cost).unwrap();
        s.ensure_resident("b", &cost).unwrap();
        s.ensure_resident("a", &cost).unwrap(); // touch a; b is LRU
        s.register("c", 8 * GIB, 8 * GIB).unwrap();
        let r = s.ensure_resident("c", &cost).unwrap();
        assert_eq!(r.evicted, vec!["b".to_string()]);
        assert!(s.is_resident("a"));
        assert!(!s.is_resident("b"));
    }

    #[test]
    fn pinned_tasks_survive_eviction() {
        let (mut s, cost) = setup(20, 128);
        for n in ["a", "b", "c"] {
            s.register(n, 8 * GIB, 8 * GIB).unwrap();
        }
        s.ensure_resident("a", &cost).unwrap();
        s.ensure_resident("b", &cost).unwrap();
        s.pin("a");
        // a is older but pinned; b must be the victim.
        let r = s.ensure_resident("c", &cost).unwrap();
        assert_eq!(r.evicted, vec!["b".to_string()]);
        assert!(s.is_resident("a"));
    }

    #[test]
    fn all_pinned_yields_no_victim() {
        let (mut s, cost) = setup(16, 128);
        for n in ["a", "b", "c"] {
            s.register(n, 8 * GIB, 8 * GIB).unwrap();
        }
        s.ensure_resident("a", &cost).unwrap();
        s.ensure_resident("b", &cost).unwrap();
        s.pin("a");
        s.pin("b");
        assert_eq!(s.ensure_resident("c", &cost), Err(SwapError::NoVictim));
        s.unpin("b");
        assert!(s.ensure_resident("c", &cost).is_ok());
    }

    #[test]
    fn transfer_bytes_priced_not_resident_bytes() {
        // Activations (I) are part of the footprint but never cross
        // PCIe.
        let (mut s, cost) = setup(32, 128);
        s.register("t", 28 * GIB, 24 * GIB).unwrap();
        let r = s.ensure_resident("t", &cost).unwrap();
        assert_eq!(r.elapsed, cost.swap_time(24 * GIB));
    }

    #[test]
    fn host_capacity_limits_registration() {
        // Paper: "at 5 clients even main memory is insufficient" for
        // Llama-sized tasks.
        let (mut s, _cost) = setup(32, 120);
        let llama_transfer = 25 * GIB + 512 * (1 << 20);
        for i in 0..4 {
            s.register(format!("client-{i}"), 29 * GIB, llama_transfer)
                .unwrap();
        }
        let err = s
            .register("client-4", 29 * GIB, llama_transfer)
            .unwrap_err();
        assert!(matches!(err, SwapError::HostExhausted { .. }));
        assert_eq!(s.num_tasks(), 4);
    }

    #[test]
    fn task_larger_than_gpu_fails_at_registration() {
        let (mut s, _cost) = setup(8, 128);
        let err = s.register("huge", 16 * GIB, 16 * GIB).unwrap_err();
        assert!(matches!(err, SwapError::TaskTooLarge { .. }));
    }

    #[test]
    fn unknown_task_rejected() {
        let (mut s, cost) = setup(8, 128);
        assert!(matches!(
            s.ensure_resident("ghost", &cost),
            Err(SwapError::UnknownTask(_))
        ));
    }

    #[test]
    fn eviction_accounts_both_directions() {
        let (mut s, cost) = setup(10, 128);
        s.register("a", 8 * GIB, 6 * GIB).unwrap();
        s.register("b", 8 * GIB, 6 * GIB).unwrap();
        s.ensure_resident("a", &cost).unwrap();
        let r = s.ensure_resident("b", &cost).unwrap();
        assert_eq!(r.elapsed, cost.swap_time(6 * GIB) * 2);
        assert_eq!(s.swap_counts(), (2, 1));
    }

    #[test]
    #[should_panic(expected = "cannot pin non-resident")]
    fn pin_requires_residency() {
        let (mut s, _cost) = setup(8, 128);
        s.register("t", GIB, GIB).unwrap();
        s.pin("t");
    }

    #[test]
    fn error_display() {
        assert!(SwapError::NoVictim.to_string().contains("pinned"));
        assert!(SwapError::UnknownTask("x".into()).to_string().contains("x"));
    }
}

//! A simulated GPU device: byte-accurate memory accounting with typed
//! allocations, OOM errors, and peak tracking.

use std::collections::HashMap;
use std::fmt;

use menos_sim::{format_bytes, PeakTracker};

use crate::region::{Region, RegionAllocator};

/// What an allocation holds — mirrors the paper's M/A/O/I memory
/// decomposition plus the per-process CUDA context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AllocKind {
    /// Base model parameters (M).
    Model,
    /// Adapter parameters (A).
    Adapter,
    /// Optimizer states (O).
    Optimizer,
    /// Intermediate results / activations (I).
    Activation,
    /// Per-process CUDA context overhead.
    Context,
}

/// Handle to a live allocation on a [`GpuDevice`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AllocId(u64);

/// Allocation metadata.
#[derive(Debug, Clone)]
pub struct Allocation {
    /// Size in bytes.
    pub bytes: u64,
    /// Component type.
    pub kind: AllocKind,
    /// Owner label (e.g. `"client-3"`).
    pub owner: String,
    /// The address-space region backing this allocation.
    pub region: Region,
}

/// Error returned when a device cannot satisfy an allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OomError {
    /// Bytes requested.
    pub requested: u64,
    /// Bytes available at the time of the request.
    pub available: u64,
    /// Device that rejected the request.
    pub device: usize,
}

impl fmt::Display for OomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "out of GPU memory on device {}: requested {}, available {}",
            self.device,
            format_bytes(self.requested),
            format_bytes(self.available)
        )
    }
}

impl std::error::Error for OomError {}

/// One simulated GPU with a fixed memory capacity.
///
/// The device tracks *logical* bytes: the experiments account memory
/// for paper-scale models without materializing their data. Allocation
/// and free are O(1); the device never over-commits.
///
/// # Examples
///
/// ```
/// use menos_gpu::{AllocKind, GpuDevice};
///
/// let mut gpu = GpuDevice::new(0, 32 * (1 << 30)); // a 32 GiB V100
/// let model = gpu.alloc(24 << 30, AllocKind::Model, "base").unwrap();
/// assert!(gpu.alloc(16 << 30, AllocKind::Activation, "too big").is_err());
/// gpu.free(model);
/// assert_eq!(gpu.used(), 0);
/// ```
#[derive(Debug)]
pub struct GpuDevice {
    id: usize,
    capacity: u64,
    allocs: HashMap<AllocId, Allocation>,
    regions: RegionAllocator,
    next_id: u64,
    tracker: PeakTracker,
    alloc_count: u64,
    free_count: u64,
}

impl GpuDevice {
    /// Creates a device with `capacity` bytes of memory.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(id: usize, capacity: u64) -> Self {
        assert!(capacity > 0, "GPU capacity must be positive");
        GpuDevice {
            id,
            capacity,
            allocs: HashMap::new(),
            regions: RegionAllocator::new(capacity),
            next_id: 0,
            tracker: PeakTracker::new(),
            alloc_count: 0,
            free_count: 0,
        }
    }

    /// Device index.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> u64 {
        self.tracker.current()
    }

    /// Bytes currently free (possibly scattered across holes).
    pub fn available(&self) -> u64 {
        self.capacity - self.used()
    }

    /// Largest single allocatable region — under external
    /// fragmentation this is below [`GpuDevice::available`].
    pub fn largest_free(&self) -> u64 {
        self.regions.largest_free()
    }

    /// External fragmentation of the free space in `[0, 1]`.
    pub fn fragmentation(&self) -> f64 {
        self.regions.fragmentation()
    }

    /// Highest usage ever observed.
    pub fn peak(&self) -> u64 {
        self.tracker.peak()
    }

    /// Resets the peak to the current usage.
    pub fn reset_peak(&mut self) {
        self.tracker.reset_peak();
    }

    /// Number of live allocations.
    pub fn live_allocations(&self) -> usize {
        self.allocs.len()
    }

    /// Lifetime (alloc, free) operation counts — the release/realloc
    /// churn that Menos' cost model charges overhead for.
    pub fn op_counts(&self) -> (u64, u64) {
        (self.alloc_count, self.free_count)
    }

    /// Allocates `bytes` for `owner` at a concrete address.
    ///
    /// # Errors
    ///
    /// Returns [`OomError`] if no contiguous free region of `bytes`
    /// exists — either the memory is exhausted or externally
    /// fragmented. The device state is unchanged on failure.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero.
    pub fn alloc(
        &mut self,
        bytes: u64,
        kind: AllocKind,
        owner: impl Into<String>,
    ) -> Result<AllocId, OomError> {
        let Some(region) = self.regions.alloc(bytes) else {
            return Err(OomError {
                requested: bytes,
                available: self.available(),
                device: self.id,
            });
        };
        let id = AllocId(self.next_id);
        self.next_id += 1;
        self.allocs.insert(
            id,
            Allocation {
                bytes,
                kind,
                owner: owner.into(),
                region,
            },
        );
        self.tracker.add(bytes);
        self.alloc_count += 1;
        Ok(id)
    }

    /// Frees an allocation, returning its size.
    ///
    /// # Panics
    ///
    /// Panics if the id was already freed — double-free is a logic
    /// error the experiments must never commit.
    pub fn free(&mut self, id: AllocId) -> u64 {
        let a = self
            .allocs
            .remove(&id)
            .unwrap_or_else(|| panic!("double free of {id:?} on device {}", self.id));
        self.regions.free(a.region);
        self.tracker.sub(a.bytes);
        self.free_count += 1;
        a.bytes
    }

    /// Looks up allocation metadata.
    pub fn get(&self, id: AllocId) -> Option<&Allocation> {
        self.allocs.get(&id)
    }

    /// Bytes used by allocations of `kind`.
    pub fn used_by_kind(&self, kind: AllocKind) -> u64 {
        self.allocs
            .values()
            .filter(|a| a.kind == kind)
            .map(|a| a.bytes)
            .sum()
    }

    /// Bytes used by allocations belonging to `owner`.
    pub fn used_by_owner(&self, owner: &str) -> u64 {
        self.allocs
            .values()
            .filter(|a| a.owner == owner)
            .map(|a| a.bytes)
            .sum()
    }

    /// Frees every allocation belonging to `owner`, returning the total
    /// bytes released.
    pub fn free_owner(&mut self, owner: &str) -> u64 {
        let ids: Vec<AllocId> = self
            .allocs
            .iter()
            .filter(|(_, a)| a.owner == owner)
            .map(|(&id, _)| id)
            .collect();
        ids.into_iter().map(|id| self.free(id)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GIB: u64 = 1 << 30;

    #[test]
    fn alloc_free_cycle() {
        let mut gpu = GpuDevice::new(0, 10 * GIB);
        let a = gpu.alloc(4 * GIB, AllocKind::Model, "m").unwrap();
        let b = gpu.alloc(2 * GIB, AllocKind::Activation, "act").unwrap();
        assert_eq!(gpu.used(), 6 * GIB);
        assert_eq!(gpu.available(), 4 * GIB);
        assert_eq!(gpu.live_allocations(), 2);
        assert_eq!(gpu.free(a), 4 * GIB);
        assert_eq!(gpu.free(b), 2 * GIB);
        assert_eq!(gpu.used(), 0);
        assert_eq!(gpu.peak(), 6 * GIB);
        assert_eq!(gpu.op_counts(), (2, 2));
    }

    #[test]
    fn oom_leaves_state_unchanged() {
        let mut gpu = GpuDevice::new(3, GIB);
        gpu.alloc(GIB / 2, AllocKind::Model, "m").unwrap();
        let err = gpu.alloc(GIB, AllocKind::Activation, "a").unwrap_err();
        assert_eq!(err.requested, GIB);
        assert_eq!(err.available, GIB / 2);
        assert_eq!(err.device, 3);
        assert_eq!(gpu.used(), GIB / 2);
        assert!(err.to_string().contains("out of GPU memory"));
    }

    #[test]
    fn exact_fit_allowed() {
        let mut gpu = GpuDevice::new(0, 100);
        assert!(gpu.alloc(100, AllocKind::Model, "m").is_ok());
        assert_eq!(gpu.available(), 0);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut gpu = GpuDevice::new(0, 100);
        let a = gpu.alloc(10, AllocKind::Model, "m").unwrap();
        gpu.free(a);
        gpu.free(a);
    }

    #[test]
    fn accounting_by_kind_and_owner() {
        let mut gpu = GpuDevice::new(0, 1000);
        gpu.alloc(100, AllocKind::Model, "base").unwrap();
        gpu.alloc(10, AllocKind::Adapter, "client-1").unwrap();
        gpu.alloc(20, AllocKind::Optimizer, "client-1").unwrap();
        gpu.alloc(10, AllocKind::Adapter, "client-2").unwrap();
        assert_eq!(gpu.used_by_kind(AllocKind::Adapter), 20);
        assert_eq!(gpu.used_by_owner("client-1"), 30);
        assert_eq!(gpu.free_owner("client-1"), 30);
        assert_eq!(gpu.used(), 110);
        assert_eq!(gpu.used_by_owner("client-1"), 0);
    }

    #[test]
    fn peak_reset() {
        let mut gpu = GpuDevice::new(0, 1000);
        let a = gpu.alloc(500, AllocKind::Activation, "x").unwrap();
        gpu.free(a);
        assert_eq!(gpu.peak(), 500);
        gpu.reset_peak();
        assert_eq!(gpu.peak(), 0);
    }

    #[test]
    fn allocation_metadata() {
        let mut gpu = GpuDevice::new(0, 100);
        let a = gpu.alloc(10, AllocKind::Context, "mgr").unwrap();
        let meta = gpu.get(a).unwrap();
        assert_eq!(meta.bytes, 10);
        assert_eq!(meta.kind, AllocKind::Context);
        assert_eq!(meta.owner, "mgr");
        gpu.free(a);
        assert!(gpu.get(a).is_none());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        GpuDevice::new(0, 0);
    }
}

//! Model architecture configurations.
//!
//! Two architecture families mirror the paper's evaluation models:
//! OPT-style (LayerNorm, GELU MLP, learned absolute positions, tied
//! embeddings) and Llama-style (RMSNorm, SwiGLU MLP, rotary positions,
//! untied head).
//!
//! Each family comes in a **paper-scale** preset — used analytically by
//! [`crate::ModelProfile`] for memory/FLOP accounting, never
//! instantiated — and a **tiny** preset that is actually trained with
//! `menos-tensor` in the convergence experiments.

use serde::{Deserialize, Serialize};

/// Architecture family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Arch {
    /// OPT-style decoder: LayerNorm + GELU + learned positions, tied
    /// input/output embeddings.
    Opt,
    /// Llama-2-style decoder: RMSNorm + SwiGLU + RoPE, untied head.
    Llama,
}

impl std::fmt::Display for Arch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Arch::Opt => write!(f, "OPT"),
            Arch::Llama => write!(f, "Llama 2"),
        }
    }
}

/// Hyper-parameters of a decoder-only transformer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Architecture family.
    pub arch: Arch,
    /// Human-readable name (e.g. `"opt-1.3b"`).
    pub name: String,
    /// Vocabulary size.
    pub vocab_size: usize,
    /// Hidden (embedding) dimension.
    pub hidden: usize,
    /// Number of transformer blocks.
    pub layers: usize,
    /// Number of attention heads (`hidden % heads == 0`).
    pub heads: usize,
    /// MLP intermediate dimension.
    pub intermediate: usize,
    /// Maximum sequence length (positions for OPT).
    pub max_seq: usize,
    /// RoPE base frequency (Llama only).
    pub rope_base: f32,
    /// Normalization epsilon.
    pub norm_eps: f32,
    /// Whether the LM head shares the embedding matrix (OPT does).
    pub tie_embeddings: bool,
}

impl ModelConfig {
    /// Paper-scale OPT-1.3B (evaluation model #1). Used analytically.
    pub fn opt_1_3b() -> Self {
        ModelConfig {
            arch: Arch::Opt,
            name: "opt-1.3b".into(),
            vocab_size: 50_272,
            hidden: 2048,
            layers: 24,
            heads: 32,
            intermediate: 8192,
            max_seq: 2048,
            rope_base: 0.0,
            norm_eps: 1e-5,
            tie_embeddings: true,
        }
    }

    /// Paper-scale Llama-2-7B (evaluation model #2). Used analytically.
    pub fn llama2_7b() -> Self {
        ModelConfig {
            arch: Arch::Llama,
            name: "llama2-7b".into(),
            vocab_size: 32_000,
            hidden: 4096,
            layers: 32,
            heads: 32,
            intermediate: 11_008,
            max_seq: 4096,
            rope_base: 10_000.0,
            norm_eps: 1e-5,
            tie_embeddings: false,
        }
    }

    /// A tiny OPT-style model that trains in milliseconds — the real
    /// engine behind the convergence experiments (Fig. 8).
    pub fn tiny_opt(vocab_size: usize) -> Self {
        ModelConfig {
            arch: Arch::Opt,
            name: "tiny-opt".into(),
            vocab_size,
            hidden: 64,
            layers: 4,
            heads: 4,
            intermediate: 256,
            max_seq: 128,
            rope_base: 0.0,
            norm_eps: 1e-5,
            tie_embeddings: true,
        }
    }

    /// A tiny Llama-style model (Fig. 9's real engine).
    pub fn tiny_llama(vocab_size: usize) -> Self {
        ModelConfig {
            arch: Arch::Llama,
            name: "tiny-llama".into(),
            vocab_size,
            hidden: 64,
            layers: 4,
            heads: 4,
            intermediate: 176,
            max_seq: 128,
            rope_base: 10_000.0,
            norm_eps: 1e-5,
            tie_embeddings: false,
        }
    }

    /// Head dimension.
    ///
    /// # Panics
    ///
    /// Panics if `hidden` is not divisible by `heads`.
    pub fn head_dim(&self) -> usize {
        assert_eq!(self.hidden % self.heads, 0, "hidden must divide by heads");
        self.hidden / self.heads
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.vocab_size == 0 {
            return Err("vocab_size must be positive".into());
        }
        if self.hidden == 0 || self.heads == 0 || self.layers == 0 {
            return Err("hidden, heads, and layers must be positive".into());
        }
        if !self.hidden.is_multiple_of(self.heads) {
            return Err(format!(
                "hidden {} not divisible by heads {}",
                self.hidden, self.heads
            ));
        }
        if self.arch == Arch::Llama && !self.head_dim().is_multiple_of(2) {
            return Err("RoPE requires an even head dimension".into());
        }
        if self.arch == Arch::Llama && self.rope_base <= 0.0 {
            return Err("Llama config needs a positive rope_base".into());
        }
        if self.intermediate == 0 || self.max_seq == 0 {
            return Err("intermediate and max_seq must be positive".into());
        }
        Ok(())
    }

    /// Parameter count of one transformer block.
    pub fn block_params(&self) -> u64 {
        let h = self.hidden as u64;
        let ffn = self.intermediate as u64;
        let attn = 4 * h * h + if self.arch == Arch::Opt { 4 * h } else { 0 };
        let mlp = match self.arch {
            // fc1 + fc2 with biases.
            Arch::Opt => 2 * h * ffn + ffn + h,
            // gate + up + down, no biases.
            Arch::Llama => 3 * h * ffn,
        };
        let norms = match self.arch {
            Arch::Opt => 4 * h,   // two LayerNorms (gamma + beta)
            Arch::Llama => 2 * h, // two RMSNorms (gamma)
        };
        attn + mlp + norms
    }

    /// Total parameter count of the full model.
    pub fn total_params(&self) -> u64 {
        let h = self.hidden as u64;
        let v = self.vocab_size as u64;
        let embed = v * h;
        let pos = if self.arch == Arch::Opt {
            self.max_seq as u64 * h
        } else {
            0
        };
        let head = if self.tie_embeddings { 0 } else { v * h };
        let final_norm = if self.arch == Arch::Opt { 2 * h } else { h };
        embed + pos + head + final_norm + self.layers as u64 * self.block_params()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        for cfg in [
            ModelConfig::opt_1_3b(),
            ModelConfig::llama2_7b(),
            ModelConfig::tiny_opt(64),
            ModelConfig::tiny_llama(64),
        ] {
            cfg.validate().unwrap();
            assert!(cfg.head_dim() > 0);
        }
    }

    #[test]
    fn paper_scale_param_counts() {
        // OPT-1.3B really has ~1.3 billion parameters.
        let opt = ModelConfig::opt_1_3b();
        let p = opt.total_params();
        assert!((1.2e9..1.45e9).contains(&(p as f64)), "OPT params {p}");

        // Llama-2-7B has ~6.7 billion.
        let llama = ModelConfig::llama2_7b();
        let p = llama.total_params();
        assert!((6.5e9..7.0e9).contains(&(p as f64)), "Llama params {p}");
    }

    #[test]
    fn llama_block_matches_reference() {
        // 4*4096^2 + 3*4096*11008 + 2*4096 = 202,383,360.
        let cfg = ModelConfig::llama2_7b();
        assert_eq!(cfg.block_params(), 202_383_360);
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut cfg = ModelConfig::tiny_opt(64);
        cfg.heads = 7;
        assert!(cfg.validate().is_err());

        let mut cfg = ModelConfig::tiny_llama(64);
        cfg.rope_base = 0.0;
        assert!(cfg.validate().is_err());

        let mut cfg = ModelConfig::tiny_llama(64);
        cfg.hidden = 60;
        cfg.heads = 30; // head_dim 2 ok; make it odd instead
        cfg.heads = 20; // head_dim 3, odd
        assert!(cfg.validate().is_err());

        let mut cfg = ModelConfig::tiny_opt(64);
        cfg.vocab_size = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn display_names() {
        assert_eq!(Arch::Opt.to_string(), "OPT");
        assert_eq!(Arch::Llama.to_string(), "Llama 2");
    }
}

//! Cross-client batch stacking: run several clients' micro-batches
//! through the shared base model as ONE forward pass while keeping
//! each client's private adapters mathematically (and bitwise) intact.
//!
//! The Menos server multiplexes many clients over one set of frozen
//! base weights. Executing their activations one client at a time
//! wastes the compute backend on small matmuls; stacking them along
//! the batch axis ([`menos_tensor::Tensor::stack_batches`]) feeds the
//! kernels the large batches they were built for. The only thing that
//! differs between clients is their *adapters* — so a stacked model is
//! just a structural alias of the shared base
//! ([`crate::CausalLm::clone_structure`]) whose adapter slots hold a
//! [`StackedAdapter`]: a dispatcher that narrows the stacked rows back
//! to per-client bands, applies each client's own adapter to its band,
//! and concatenates the results.
//!
//! Because every kernel in `menos-tensor` is row-bitwise-invariant
//! (a row's value never depends on which batch position it occupies)
//! and LoRA-style adapters are a *separate additive path* on top of
//! the base projection, each client's outputs — and, through autograd,
//! each client's adapter gradients — are bit-identical to running that
//! client alone. Prefix tuning breaks this (it changes the attention
//! sequence structure), so models carrying KV prefixes in the stacked
//! range are rejected; the server falls back to per-client execution
//! for them.

use std::ops::Range;
use std::sync::Arc;

use menos_tensor::Tensor;

use crate::layers::LinearAdapter;
use crate::model::{AdapterTarget, CausalLm};

/// Every projection an adapter can attach to, in a fixed order.
pub const ALL_ADAPTER_TARGETS: [AdapterTarget; 6] = [
    AdapterTarget::Q,
    AdapterTarget::K,
    AdapterTarget::V,
    AdapterTarget::O,
    AdapterTarget::MlpUp,
    AdapterTarget::MlpDown,
];

/// A [`LinearAdapter`] that multiplexes one stacked batch across the
/// per-client adapters of a group: client `i` owns rows
/// `[offset_i, offset_i + spans[i])` of the batch dimension and its
/// band is adjusted by `parts[i]` (or passed through untouched when
/// that client has no adapter on this projection).
#[derive(Debug)]
pub struct StackedAdapter {
    /// Batch-dimension extent of each client's band, in stack order.
    spans: Vec<usize>,
    /// Each client's adapter for this projection (`None` = frozen
    /// base only).
    parts: Vec<Option<Arc<dyn LinearAdapter>>>,
}

impl StackedAdapter {
    /// Builds a dispatcher over `(span, adapter)` pairs in stack order.
    ///
    /// # Panics
    ///
    /// Panics on an empty group or a zero span.
    pub fn new(parts: Vec<(usize, Option<Arc<dyn LinearAdapter>>)>) -> StackedAdapter {
        assert!(!parts.is_empty(), "stacked adapter over zero clients");
        assert!(
            parts.iter().all(|(span, _)| *span > 0),
            "zero-size batch band"
        );
        let (spans, parts) = parts.into_iter().unzip();
        StackedAdapter { spans, parts }
    }
}

impl LinearAdapter for StackedAdapter {
    fn adjust(&self, x: &Tensor, base: &Tensor) -> Tensor {
        // Bands are narrowed lazily: a pass-through band (no adapter)
        // only narrows `base`, never `x`, so no input copy — and no
        // autograd edge — is created for clients that don't need one.
        // An unused narrow contributes nothing to the graph, so the
        // result stays bit-identical to the eager unstack.
        let mut adjusted = Vec::with_capacity(self.spans.len());
        let mut start = 0;
        for (part, &span) in self.parts.iter().zip(&self.spans) {
            let base_i = base.narrow(0, start, span);
            adjusted.push(match part {
                Some(a) => a.adjust(&x.narrow(0, start, span), &base_i),
                None => base_i,
            });
            start += span;
        }
        Tensor::stack_batches(&adjusted)
    }

    fn trainable_params(&self) -> Vec<(String, Tensor)> {
        let mut out = Vec::new();
        for (i, part) in self.parts.iter().enumerate() {
            if let Some(a) = part {
                for (suffix, t) in a.trainable_params() {
                    out.push((format!("stack{i}.{suffix}"), t));
                }
            }
        }
        out
    }
}

/// Builds a model that executes blocks `range` for a whole group of
/// clients at once: a structural alias of `group[0]`'s base weights
/// with every adapter slot in `range` replaced by a [`StackedAdapter`]
/// dispatching to the group members' own adapters. `group[i].1` is
/// client `i`'s batch size (its band in the stacked batch dimension).
///
/// The caller is responsible for the grouping precondition that makes
/// this meaningful: all members bind the *same* base storage and run
/// the *same* block range (the server checks both before grouping).
///
/// # Panics
///
/// Panics on an empty group or if any member carries a KV prefix in
/// `range` (prefix tuning is not stackable).
pub fn stacked_model(group: &[(&CausalLm, usize)], range: Range<usize>) -> CausalLm {
    assert!(!group.is_empty(), "stacked model over zero clients");
    for (m, _) in group {
        assert!(
            !m.has_kv_prefix_in(range.clone()),
            "prefix tuning is not stackable"
        );
    }
    let mut stacked = group[0].0.clone_structure();
    for layer in range {
        for target in ALL_ADAPTER_TARGETS {
            let parts: Vec<(usize, Option<Arc<dyn LinearAdapter>>)> = group
                .iter()
                .map(|(m, span)| (*span, m.linear_adapter(layer, target)))
                .collect();
            if parts.iter().any(|(_, a)| a.is_some()) {
                stacked.set_linear_adapter(layer, target, Arc::new(StackedAdapter::new(parts)));
            } else {
                stacked.clear_linear_adapter(layer, target);
            }
        }
    }
    stacked
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy adapter that adds `bump` to every output element —
    /// enough to prove per-band dispatch without pulling in
    /// menos-adapters (which depends on this crate).
    #[derive(Debug)]
    struct Bump {
        bump: Tensor,
    }

    impl LinearAdapter for Bump {
        fn adjust(&self, _x: &Tensor, base: &Tensor) -> Tensor {
            base.add(&self.bump)
        }
        fn trainable_params(&self) -> Vec<(String, Tensor)> {
            vec![("bump".into(), self.bump.clone())]
        }
    }

    #[test]
    fn bands_get_their_own_adapter_and_bare_bands_pass_through() {
        let a: Arc<dyn LinearAdapter> = Arc::new(Bump {
            bump: Tensor::scalar(10.0),
        });
        let b: Arc<dyn LinearAdapter> = Arc::new(Bump {
            bump: Tensor::scalar(100.0),
        });
        let stacked = StackedAdapter::new(vec![(1, Some(a)), (2, None), (1, Some(b))]);
        let x = Tensor::zeros([4, 2]);
        let base = Tensor::from_vec((0..8).map(|v| v as f32).collect(), [4, 2]);
        let out = stacked.adjust(&x, &base);
        assert_eq!(
            out.to_vec(),
            vec![10.0, 11.0, 2.0, 3.0, 4.0, 5.0, 106.0, 107.0]
        );
        let names: Vec<String> = stacked
            .trainable_params()
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        assert_eq!(names, vec!["stack0.bump", "stack2.bump"]);
    }

    #[test]
    #[should_panic(expected = "zero-size batch band")]
    fn rejects_empty_band() {
        StackedAdapter::new(vec![(0, None)]);
    }
}

//! Autoregressive text generation from a (fine-tuned) model.
//!
//! Fine-tuning exists to be *used*: this module samples continuations
//! from a [`CausalLm`], so the examples can show a before/after of the
//! adapters' effect. Generation runs under [`menos_tensor::no_grad`]
//! and recomputes the full prefix each step (tiny models make a KV
//! cache unnecessary).

use rand::Rng;

use menos_tensor::no_grad;

use crate::model::CausalLm;

/// Sampling configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenerateConfig {
    /// Tokens to generate beyond the prompt.
    pub max_tokens: usize,
    /// Softmax temperature; `0.0` means greedy decoding.
    pub temperature: f32,
    /// Keep only the `top_k` most likely tokens before sampling
    /// (`0` disables the filter).
    pub top_k: usize,
    /// Nucleus sampling: keep the smallest set of tokens whose
    /// cumulative probability reaches `top_p` (`1.0` disables the
    /// filter). Applied after `top_k`.
    pub top_p: f32,
}

impl Default for GenerateConfig {
    fn default() -> Self {
        GenerateConfig {
            max_tokens: 32,
            temperature: 0.8,
            top_k: 20,
            top_p: 1.0,
        }
    }
}

impl GenerateConfig {
    /// Greedy decoding (deterministic, highest-probability token).
    pub fn greedy(max_tokens: usize) -> Self {
        GenerateConfig {
            max_tokens,
            temperature: 0.0,
            top_k: 0,
            top_p: 1.0,
        }
    }
}

impl CausalLm {
    /// Generates a continuation of `prompt`, returning prompt +
    /// generated tokens.
    ///
    /// # Panics
    ///
    /// Panics if the prompt is empty, contains out-of-vocabulary ids,
    /// or generation would exceed the model's maximum sequence length.
    pub fn generate<R: Rng>(
        &self,
        prompt: &[usize],
        cfg: &GenerateConfig,
        rng: &mut R,
    ) -> Vec<usize> {
        assert!(!prompt.is_empty(), "prompt must not be empty");
        assert!(
            prompt.len() + cfg.max_tokens <= self.config.max_seq,
            "prompt {} + {} tokens exceeds max_seq {}",
            prompt.len(),
            cfg.max_tokens,
            self.config.max_seq
        );
        let mut tokens = prompt.to_vec();
        no_grad(|| {
            for _ in 0..cfg.max_tokens {
                let logits = self.forward(&tokens, 1, tokens.len());
                let vocab = self.config.vocab_size;
                let data = logits.to_vec();
                let last = &data[(tokens.len() - 1) * vocab..tokens.len() * vocab];
                let next = sample_token(last, cfg, rng);
                tokens.push(next);
            }
        });
        tokens
    }
}

/// Samples one token from a logit row per the configuration.
fn sample_token<R: Rng>(logits: &[f32], cfg: &GenerateConfig, rng: &mut R) -> usize {
    if cfg.temperature <= 0.0 {
        return argmax(logits);
    }
    // Temperature-scaled softmax sampling with optional top-k and
    // nucleus (top-p) filtering.
    let mut indexed: Vec<(usize, f32)> = logits
        .iter()
        .map(|&l| l / cfg.temperature)
        .enumerate()
        .collect();
    indexed.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite logits"));
    if cfg.top_k > 0 && cfg.top_k < indexed.len() {
        indexed.truncate(cfg.top_k);
    }
    let max = indexed.first().map(|&(_, l)| l).unwrap_or(0.0);
    if cfg.top_p < 1.0 {
        let weights: Vec<f32> = indexed.iter().map(|&(_, l)| (l - max).exp()).collect();
        let total: f32 = weights.iter().sum();
        let mut cum = 0.0;
        let mut keep = indexed.len();
        for (i, w) in weights.iter().enumerate() {
            cum += w / total;
            if cum >= cfg.top_p {
                keep = i + 1;
                break;
            }
        }
        indexed.truncate(keep.max(1));
    }
    let weights: Vec<f32> = indexed.iter().map(|&(_, l)| (l - max).exp()).collect();
    let total: f32 = weights.iter().sum();
    let mut draw = rng.gen_range(0.0..total);
    for (&(idx, _), &w) in indexed.iter().zip(weights.iter()) {
        if draw < w {
            return idx;
        }
        draw -= w;
    }
    indexed.last().expect("non-empty").0
}

fn argmax(xs: &[f32]) -> usize {
    xs.iter()
        .enumerate()
        .fold((0, f32::NEG_INFINITY), |(bi, bv), (i, &v)| {
            if v > bv {
                (i, v)
            } else {
                (bi, bv)
            }
        })
        .0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::model::init_params;
    use menos_sim::seeded_rng;

    fn tiny_model() -> CausalLm {
        let cfg = ModelConfig::tiny_opt(19);
        let mut rng = seeded_rng(4, "gen");
        let ps = init_params(&cfg, &mut rng);
        CausalLm::bind(&cfg, &ps)
    }

    #[test]
    fn greedy_generation_is_deterministic() {
        let lm = tiny_model();
        let mut rng1 = seeded_rng(1, "a");
        let mut rng2 = seeded_rng(2, "b");
        let cfg = GenerateConfig::greedy(8);
        let a = lm.generate(&[1, 2, 3], &cfg, &mut rng1);
        let b = lm.generate(&[1, 2, 3], &cfg, &mut rng2);
        assert_eq!(a, b, "greedy ignores the rng");
        assert_eq!(a.len(), 11);
        assert_eq!(&a[..3], &[1, 2, 3], "prompt preserved");
        assert!(a.iter().all(|&t| t < 19));
    }

    #[test]
    fn sampled_generation_is_seed_deterministic() {
        let lm = tiny_model();
        let cfg = GenerateConfig {
            max_tokens: 10,
            temperature: 1.0,
            top_k: 5,
            top_p: 1.0,
        };
        let a = lm.generate(&[4, 5], &cfg, &mut seeded_rng(7, "s"));
        let b = lm.generate(&[4, 5], &cfg, &mut seeded_rng(7, "s"));
        assert_eq!(a, b);
    }

    #[test]
    fn top_k_restricts_candidates() {
        // With top_k = 1, sampling degenerates to greedy.
        let lm = tiny_model();
        let greedy = lm.generate(&[2], &GenerateConfig::greedy(6), &mut seeded_rng(1, "g"));
        let topk1 = lm.generate(
            &[2],
            &GenerateConfig {
                max_tokens: 6,
                temperature: 1.0,
                top_k: 1,
                top_p: 1.0,
            },
            &mut seeded_rng(9, "k"),
        );
        assert_eq!(greedy, topk1);
    }

    #[test]
    fn sample_token_respects_distribution_support() {
        let mut rng = seeded_rng(3, "dist");
        // One dominant logit: it must be picked nearly always.
        let logits = [0.0f32, 10.0, 0.0, 0.0];
        let cfg = GenerateConfig {
            max_tokens: 1,
            temperature: 1.0,
            top_k: 0,
            top_p: 1.0,
        };
        let hits = (0..200)
            .filter(|_| sample_token(&logits, &cfg, &mut rng) == 1)
            .count();
        assert!(hits > 190, "dominant token sampled {hits}/200");
    }

    #[test]
    fn nucleus_sampling_restricts_to_dominant_mass() {
        let mut rng = seeded_rng(8, "p");
        // Token 1 carries >90% of the mass; top_p = 0.5 keeps only it.
        let logits = [0.0f32, 6.0, 0.0, 0.0];
        let cfg = GenerateConfig {
            max_tokens: 1,
            temperature: 1.0,
            top_k: 0,
            top_p: 0.5,
        };
        for _ in 0..50 {
            assert_eq!(sample_token(&logits, &cfg, &mut rng), 1);
        }
    }

    #[test]
    fn top_p_one_is_a_noop() {
        let mut rng = seeded_rng(9, "p1");
        let logits = [1.0f32, 1.0, 1.0, 1.0];
        let cfg = GenerateConfig {
            max_tokens: 1,
            temperature: 1.0,
            top_k: 0,
            top_p: 1.0,
        };
        // Uniform logits with no filter: all four tokens reachable.
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(sample_token(&logits, &cfg, &mut rng));
        }
        assert_eq!(seen.len(), 4);
    }

    #[test]
    #[should_panic(expected = "exceeds max_seq")]
    fn generation_respects_max_seq() {
        let lm = tiny_model();
        let cfg = GenerateConfig::greedy(1000);
        lm.generate(&[1], &cfg, &mut seeded_rng(1, "x"));
    }

    #[test]
    #[should_panic(expected = "prompt must not be empty")]
    fn empty_prompt_rejected() {
        let lm = tiny_model();
        lm.generate(&[], &GenerateConfig::greedy(4), &mut seeded_rng(1, "x"));
    }
}

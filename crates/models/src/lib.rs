//! # menos-models — decoder-only transformers with adapter hooks
//!
//! From-scratch OPT-style and Llama-style causal language models built
//! on `menos-tensor`, standing in for the paper's OPT-1.3B and
//! Llama-2-7B. Two layers of use:
//!
//! * **Real execution** — tiny configs ([`ModelConfig::tiny_opt`],
//!   [`ModelConfig::tiny_llama`]) are bound to initialized parameters
//!   and actually trained in the convergence experiments.
//! * **Analytic accounting** — paper-scale configs
//!   ([`ModelConfig::opt_1_3b`], [`ModelConfig::llama2_7b`]) feed
//!   [`ModelProfile`], which computes the M/A/O/I memory components and
//!   FLOPs used by the simulated-GPU experiments without materializing
//!   any weights.
//!
//! The model structure deliberately separates from its parameters:
//! [`init_params`] creates a named [`menos_tensor::ParamStore`], and
//! [`CausalLm::bind`] builds a structure whose tensors *alias* a store.
//! Binding two structures to one store — or to
//! [`menos_tensor::ParamStore::shared_view`]s of it — is Menos' base
//! model sharing.
//!
//! # Examples
//!
//! ```
//! use menos_models::{init_params, CausalLm, ModelConfig};
//!
//! let cfg = ModelConfig::tiny_llama(32);
//! let mut rng = menos_sim::seeded_rng(0, "example");
//! let params = init_params(&cfg, &mut rng);
//! let model = CausalLm::bind(&cfg, &params);
//! let logits = model.forward(&[1, 2, 3, 4], 1, 4);
//! assert_eq!(logits.dims(), &[1, 4, 32]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod generate;
mod layers;
mod model;
mod profile;
mod stacked;

pub use config::{Arch, ModelConfig};
pub use generate::GenerateConfig;
pub use layers::{Attention, Block, KvPrefixProvider, Linear, LinearAdapter, Mlp, Norm};
pub use model::{causal_lm_loss, init_params, AdapterTarget, CausalLm};
pub use profile::{
    paper_batch_size, LoraSpec, ModelProfile, Precision, BYTES_PER_ELEM, PAPER_SEQ_LEN,
};
pub use stacked::{stacked_model, StackedAdapter, ALL_ADAPTER_TARGETS};

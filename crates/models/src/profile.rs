//! Analytic memory and compute profiles of a model under split
//! fine-tuning.
//!
//! The paper's §2.3 measurement study decomposes server GPU memory into
//! base parameters (M), adapter parameters (A), optimizer states (O),
//! and intermediate results (I). [`ModelProfile`] computes each
//! component from the architecture configuration, so the paper-scale
//! experiments can account bytes and FLOPs without materializing
//! billions of parameters.
//!
//! Calibration choices (DESIGN.md §7): fp32 parameters and activations;
//! cached-activation footprint per layer
//! `batch * seq * (8·hidden + 2·ffn + heads·seq) * 4` bytes, which
//! reproduces the paper's ≈4 GB intermediate footprint for Llama-2-7B
//! at batch 4.

use serde::{Deserialize, Serialize};

use crate::config::{Arch, ModelConfig};

/// Bytes per parameter / activation element (fp32).
pub const BYTES_PER_ELEM: u64 = 4;

/// Base-model parameter precision.
///
/// The paper notes quantization (QLoRA's NF4, GPTQ's 3/4-bit,
/// fp16/int8) is *orthogonal* to Menos: the shared base can be stored
/// at any precision, multiplying the savings. Adapters, optimizer
/// states, and activations stay fp32.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Precision {
    /// 32-bit floats (this reproduction's calibration baseline).
    Fp32,
    /// 16-bit floats (mixed-precision storage).
    Fp16,
    /// 8-bit integers (LLM.int8-style).
    Int8,
    /// 4-bit NormalFloat (QLoRA).
    Nf4,
}

impl Precision {
    /// Bits per parameter.
    pub fn bits(self) -> u64 {
        match self {
            Precision::Fp32 => 32,
            Precision::Fp16 => 16,
            Precision::Int8 => 8,
            Precision::Nf4 => 4,
        }
    }

    /// Bytes needed to store `params` parameters at this precision
    /// (rounded up).
    pub fn bytes_for(self, params: u64) -> u64 {
        (params * self.bits()).div_ceil(8)
    }
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Precision::Fp32 => write!(f, "fp32"),
            Precision::Fp16 => write!(f, "fp16"),
            Precision::Int8 => write!(f, "int8"),
            Precision::Nf4 => write!(f, "nf4"),
        }
    }
}

/// LoRA adapter hyper-parameters used for sizing.
///
/// The paper's configuration is `r = 8`, `α = 16`, targets = query and
/// value projections.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoraSpec {
    /// Low-rank dimension.
    pub rank: usize,
    /// Scaling numerator (`α`); effective scale is `α / r`.
    pub alpha: f32,
    /// Number of projections adapted per block (2 for q+v).
    pub targets_per_block: usize,
}

impl LoraSpec {
    /// The paper's configuration: r = 8, α = 16, q and v projections.
    pub fn paper() -> Self {
        LoraSpec {
            rank: 8,
            alpha: 16.0,
            targets_per_block: 2,
        }
    }

    /// Effective scale `α / r`.
    pub fn scale(&self) -> f32 {
        self.alpha / self.rank as f32
    }
}

/// Analytic per-model byte and FLOP accounting for split fine-tuning.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelProfile {
    /// The architecture being profiled.
    pub config: ModelConfig,
    /// Blocks on the client before the cut (the paper uses 1).
    pub front_layers: usize,
}

impl ModelProfile {
    /// Builds a profile for `config` split after `front_layers` client
    /// blocks.
    ///
    /// # Panics
    ///
    /// Panics if `front_layers >= config.layers` (the server must hold
    /// at least one block).
    pub fn new(config: ModelConfig, front_layers: usize) -> Self {
        assert!(
            front_layers < config.layers,
            "front_layers {front_layers} leaves no server blocks"
        );
        ModelProfile {
            config,
            front_layers,
        }
    }

    /// Number of transformer blocks hosted by the server.
    pub fn server_layers(&self) -> usize {
        self.config.layers - self.front_layers
    }

    /// Base model parameter bytes resident on the **server** (M in the
    /// paper): the server-side transformer blocks.
    pub fn server_param_bytes(&self) -> u64 {
        self.server_layers() as u64 * self.config.block_params() * BYTES_PER_ELEM
    }

    /// Server base-parameter bytes at a given storage precision — the
    /// QLoRA/GPTQ-combined variant of `M` (paper §6: quantization is
    /// orthogonal and multiplies Menos' savings).
    pub fn server_param_bytes_at(&self, precision: Precision) -> u64 {
        precision.bytes_for(self.server_layers() as u64 * self.config.block_params())
    }

    /// Base model parameter bytes on the **client**: embedding (+
    /// positions), front blocks, final norm, LM head.
    pub fn client_param_bytes(&self) -> u64 {
        let total = self.config.total_params() * BYTES_PER_ELEM;
        total - self.server_param_bytes()
    }

    /// Adapter parameter bytes on the server (A) for a LoRA spec: each
    /// adapted projection adds `2 * hidden * rank` parameters.
    pub fn lora_adapter_bytes(&self, lora: &LoraSpec) -> u64 {
        let per_target = 2 * self.config.hidden as u64 * lora.rank as u64;
        self.server_layers() as u64 * lora.targets_per_block as u64 * per_target * BYTES_PER_ELEM
    }

    /// Optimizer state bytes (O) for Adam over the adapter: two moment
    /// buffers plus the gradient buffer, i.e. `3 × A`.
    pub fn optimizer_bytes(&self, adapter_bytes: u64) -> u64 {
        3 * adapter_bytes
    }

    /// Intermediate-result bytes (I): activations cached by a
    /// gradient-ready forward pass over the server blocks.
    pub fn cached_activation_bytes(&self, batch: usize, seq: usize) -> u64 {
        let per_layer = self.cached_activation_bytes_per_layer(batch, seq);
        self.server_layers() as u64 * per_layer
    }

    /// Cached activation bytes for a single block.
    pub fn cached_activation_bytes_per_layer(&self, batch: usize, seq: usize) -> u64 {
        let h = self.config.hidden as u64;
        let ffn = self.config.intermediate as u64;
        let heads = self.config.heads as u64;
        let (b, s) = (batch as u64, seq as u64);
        b * s * (8 * h + 2 * ffn + heads * s) * BYTES_PER_ELEM
    }

    /// Peak transient bytes of a **no-grad** forward pass: one block's
    /// working set plus the layer output — nothing accumulates across
    /// layers because nothing is cached.
    pub fn nograd_forward_bytes(&self, batch: usize, seq: usize) -> u64 {
        let h = self.config.hidden as u64;
        let ffn = self.config.intermediate as u64;
        let heads = self.config.heads as u64;
        let (b, s) = (batch as u64, seq as u64);
        b * s * (4 * h + ffn + heads * s) * BYTES_PER_ELEM
    }

    /// Bytes of one activation (or gradient) tensor crossing the wire:
    /// `batch * seq * hidden` elements.
    pub fn transfer_bytes(&self, batch: usize, seq: usize) -> u64 {
        (batch * seq * self.config.hidden) as u64 * BYTES_PER_ELEM
    }

    /// Forward FLOPs over the server blocks: dense `2 · params ·
    /// tokens` plus the quadratic attention term.
    pub fn forward_flops(&self, batch: usize, seq: usize) -> f64 {
        let tokens = (batch * seq) as f64;
        let dense =
            2.0 * (self.server_layers() as u64 * self.config.block_params()) as f64 * tokens;
        // Q@K^T and P@V: 2 matmuls of [s, d] x [d, s] per head per layer.
        let attn =
            4.0 * (batch * seq * seq * self.config.hidden) as f64 * self.server_layers() as f64;
        dense + attn
    }

    /// Backward FLOPs (standard 2× forward).
    pub fn backward_flops(&self, batch: usize, seq: usize) -> f64 {
        2.0 * self.forward_flops(batch, seq)
    }

    /// Forward FLOPs of the client's input section (`f_i`): the front
    /// blocks. Embedding lookups are table reads, not FLOPs.
    pub fn client_front_flops(&self, batch: usize, seq: usize) -> f64 {
        let tokens = (batch * seq) as f64;
        let dense = 2.0 * (self.front_layers as u64 * self.config.block_params()) as f64 * tokens;
        let attn = 4.0 * (batch * seq * seq * self.config.hidden) as f64 * self.front_layers as f64;
        dense + attn
    }

    /// Forward FLOPs of the client's output section (`f_o`): final norm
    /// (negligible) plus the LM-head projection.
    pub fn client_head_flops(&self, batch: usize, seq: usize) -> f64 {
        let tokens = (batch * seq) as f64;
        2.0 * tokens * (self.config.hidden as f64) * (self.config.vocab_size as f64)
    }

    /// The paper's per-client persistent footprint under **vanilla**
    /// split learning: `M + A + O`.
    pub fn vanilla_persistent_bytes(&self, lora: &LoraSpec) -> u64 {
        let a = self.lora_adapter_bytes(lora);
        self.server_param_bytes() + a + self.optimizer_bytes(a)
    }

    /// Per-client persistent footprint under Menos (excluding the
    /// shared base): `A + O`.
    pub fn menos_per_client_bytes(&self, lora: &LoraSpec) -> u64 {
        let a = self.lora_adapter_bytes(lora);
        a + self.optimizer_bytes(a)
    }

    /// Peak memory demand of the gradient-ready re-forward + backward
    /// (what the Menos profiler reports as `M_b`): cached activations
    /// plus transient working set.
    pub fn backward_memory_demand(&self, batch: usize, seq: usize) -> u64 {
        self.cached_activation_bytes(batch, seq) + self.nograd_forward_bytes(batch, seq)
    }

    /// Peak memory demand of the no-grad first forward (`M_f`).
    pub fn forward_memory_demand(&self, batch: usize, seq: usize) -> u64 {
        self.nograd_forward_bytes(batch, seq)
    }
}

/// The batch sizes the paper evaluates with.
///
/// # Examples
///
/// ```
/// use menos_models::{paper_batch_size, ModelConfig};
/// assert_eq!(paper_batch_size(&ModelConfig::opt_1_3b()), 16);
/// assert_eq!(paper_batch_size(&ModelConfig::llama2_7b()), 4);
/// ```
pub fn paper_batch_size(config: &ModelConfig) -> usize {
    match config.arch {
        Arch::Opt => 16,
        Arch::Llama => 4,
    }
}

/// The evaluation sequence length. 100 tokens reproduces the paper's
/// reported transfer sizes (13.1 MB for OPT at batch 16, 6.4 MB for
/// Llama at batch 4) with fp32 activations.
pub const PAPER_SEQ_LEN: usize = 100;

#[cfg(test)]
mod tests {
    use super::*;

    const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

    fn opt_profile() -> ModelProfile {
        ModelProfile::new(ModelConfig::opt_1_3b(), 1)
    }

    fn llama_profile() -> ModelProfile {
        ModelProfile::new(ModelConfig::llama2_7b(), 1)
    }

    #[test]
    fn server_param_bytes_match_paper_measurements() {
        // Paper §2.3 / Fig.5: OPT server portion ≈ 4.7 GB, Llama ≈ 24 GB.
        let opt = opt_profile().server_param_bytes() as f64 / GIB;
        assert!((4.0..5.2).contains(&opt), "OPT server params {opt} GiB");
        let llama = llama_profile().server_param_bytes() as f64 / GIB;
        assert!(
            (22.0..26.5).contains(&llama),
            "Llama server params {llama} GiB"
        );
    }

    #[test]
    fn cached_activations_match_paper_order() {
        // Paper: ≈4 GB of intermediates for Llama at batch 4.
        let i = llama_profile().cached_activation_bytes(4, PAPER_SEQ_LEN) as f64 / GIB;
        assert!((2.5..4.5).contains(&i), "Llama intermediates {i} GiB");
    }

    #[test]
    fn transfer_bytes_match_paper() {
        // OPT batch 16: ≈13.1 MB per activation transfer.
        let opt = opt_profile().transfer_bytes(16, PAPER_SEQ_LEN) as f64 / 1e6;
        assert!((12.0..14.5).contains(&opt), "OPT transfer {opt} MB");
        // Llama batch 4: ≈6.4 MB.
        let llama = llama_profile().transfer_bytes(4, PAPER_SEQ_LEN) as f64 / 1e6;
        assert!((6.0..7.0).contains(&llama), "Llama transfer {llama} MB");
    }

    #[test]
    fn adapter_is_much_smaller_than_base() {
        let lora = LoraSpec::paper();
        for p in [opt_profile(), llama_profile()] {
            let a = p.lora_adapter_bytes(&lora);
            let m = p.server_param_bytes();
            assert!(a * 100 < m, "A should be <1% of M (A={a}, M={m})");
            let per_client = p.menos_per_client_bytes(&lora);
            assert_eq!(per_client, 4 * a); // A + 3A optimizer
        }
    }

    #[test]
    fn nograd_forward_far_smaller_than_backward() {
        let p = llama_profile();
        let mf = p.forward_memory_demand(4, PAPER_SEQ_LEN);
        let mb = p.backward_memory_demand(4, PAPER_SEQ_LEN);
        assert!(mf * 10 < mb, "M_f {mf} vs M_b {mb}");
    }

    #[test]
    fn vanilla_scaling_is_linear() {
        let p = opt_profile();
        let lora = LoraSpec::paper();
        let one = p.vanilla_persistent_bytes(&lora);
        // Four clients cost exactly 4x in vanilla split learning (Eq. 2).
        assert_eq!(4 * one, 4 * p.vanilla_persistent_bytes(&lora));
        // And Menos' shared-base saving at N=4 is at least 60% (paper: 64.1%).
        let vanilla4 = 4 * one;
        let menos4 = p.server_param_bytes() + 4 * p.menos_per_client_bytes(&lora);
        let saving = 1.0 - menos4 as f64 / vanilla4 as f64;
        assert!(saving > 0.6, "saving {saving}");
    }

    #[test]
    fn llama_sharing_saving_exceeds_70_percent() {
        // Paper: 72.2% at 4 clients.
        let p = llama_profile();
        let lora = LoraSpec::paper();
        let vanilla4 = 4 * p.vanilla_persistent_bytes(&lora);
        let menos4 = p.server_param_bytes() + 4 * p.menos_per_client_bytes(&lora);
        let saving = 1.0 - menos4 as f64 / vanilla4 as f64;
        assert!((0.70..0.76).contains(&saving), "saving {saving}");
    }

    #[test]
    fn flops_give_subsecond_compute_at_paper_throughput() {
        // Paper Table 2: vanilla fwd+bwd ≈ 0.45 s (OPT) / 0.5 s (Llama)
        // at ~22 TFLOP/s effective.
        let throughput = 22e12;
        let opt = opt_profile();
        let t = (opt.forward_flops(16, PAPER_SEQ_LEN) + opt.backward_flops(16, PAPER_SEQ_LEN))
            / throughput;
        assert!((0.2..0.9).contains(&t), "OPT compute {t}s");
        let llama = llama_profile();
        let t = (llama.forward_flops(4, PAPER_SEQ_LEN) + llama.backward_flops(4, PAPER_SEQ_LEN))
            / throughput;
        assert!((0.3..1.1).contains(&t), "Llama compute {t}s");
    }

    #[test]
    #[should_panic(expected = "no server blocks")]
    fn profile_requires_server_blocks() {
        ModelProfile::new(ModelConfig::tiny_opt(10), 4);
    }

    #[test]
    fn client_plus_server_covers_everything() {
        for p in [opt_profile(), llama_profile()] {
            let total = p.config.total_params() * BYTES_PER_ELEM;
            assert_eq!(p.client_param_bytes() + p.server_param_bytes(), total);
        }
    }

    #[test]
    fn lora_spec_scale() {
        assert_eq!(LoraSpec::paper().scale(), 2.0);
    }

    #[test]
    fn precision_byte_math() {
        assert_eq!(Precision::Fp32.bytes_for(10), 40);
        assert_eq!(Precision::Fp16.bytes_for(10), 20);
        assert_eq!(Precision::Int8.bytes_for(10), 10);
        assert_eq!(Precision::Nf4.bytes_for(10), 5);
        assert_eq!(Precision::Nf4.bytes_for(3), 2, "rounds up");
        assert_eq!(Precision::Nf4.to_string(), "nf4");
    }

    #[test]
    fn quantized_base_shrinks_proportionally() {
        let p = llama_profile();
        let fp32 = p.server_param_bytes_at(Precision::Fp32);
        assert_eq!(fp32, p.server_param_bytes());
        assert_eq!(p.server_param_bytes_at(Precision::Fp16), fp32 / 2);
        assert_eq!(p.server_param_bytes_at(Precision::Nf4), fp32 / 8);
        // QLoRA-style: the 24 GB Llama base drops under 4 GiB.
        assert!((p.server_param_bytes_at(Precision::Nf4) as f64 / GIB) < 4.0);
    }
}

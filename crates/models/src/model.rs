//! Full causal language models: parameter initialization, structural
//! binding, and forward passes over layer ranges (the primitive that
//! split fine-tuning cuts at).

use std::ops::Range;
use std::sync::Arc;

use rand::Rng;

use menos_tensor::{ParamStore, Tensor};

use crate::config::{Arch, ModelConfig};
use crate::layers::{Attention, Block, KvPrefixProvider, Linear, LinearAdapter, Mlp, Norm};

/// Initializes a fresh parameter store for `cfg` with canonical names.
///
/// Loading a pre-trained model in the paper is "construct the structure,
/// then read parameters from files"; here initialization plays the role
/// of the file read. Menos' base-model sharing intercepts *binding*
/// ([`CausalLm::bind`]), never initialization — exactly one store holds
/// the base weights.
pub fn init_params<R: Rng>(cfg: &ModelConfig, rng: &mut R) -> ParamStore {
    cfg.validate().expect("invalid model config");
    let h = cfg.hidden;
    let v = cfg.vocab_size;
    let ffn = cfg.intermediate;
    let std = 0.02f32;
    let mut ps = ParamStore::new();

    ps.insert("embed.weight", Tensor::randn(rng, [v, h], std));
    if cfg.arch == Arch::Opt {
        ps.insert("pos.weight", Tensor::randn(rng, [cfg.max_seq, h], std));
    }

    for i in 0..cfg.layers {
        let p = |s: &str| format!("blocks.{i}.{s}");
        match cfg.arch {
            Arch::Opt => {
                ps.insert(p("attn_norm.gamma"), Tensor::ones([h]));
                ps.insert(p("attn_norm.beta"), Tensor::zeros([h]));
                ps.insert(p("mlp_norm.gamma"), Tensor::ones([h]));
                ps.insert(p("mlp_norm.beta"), Tensor::zeros([h]));
            }
            Arch::Llama => {
                ps.insert(p("attn_norm.gamma"), Tensor::ones([h]));
                ps.insert(p("mlp_norm.gamma"), Tensor::ones([h]));
            }
        }
        for proj in ["q", "k", "v", "o"] {
            ps.insert(
                p(&format!("attn.{proj}.weight")),
                Tensor::randn(rng, [h, h], std),
            );
            if cfg.arch == Arch::Opt {
                ps.insert(p(&format!("attn.{proj}.bias")), Tensor::zeros([h]));
            }
        }
        match cfg.arch {
            Arch::Opt => {
                ps.insert(p("mlp.fc1.weight"), Tensor::randn(rng, [h, ffn], std));
                ps.insert(p("mlp.fc1.bias"), Tensor::zeros([ffn]));
                ps.insert(p("mlp.fc2.weight"), Tensor::randn(rng, [ffn, h], std));
                ps.insert(p("mlp.fc2.bias"), Tensor::zeros([h]));
            }
            Arch::Llama => {
                ps.insert(p("mlp.gate.weight"), Tensor::randn(rng, [h, ffn], std));
                ps.insert(p("mlp.up.weight"), Tensor::randn(rng, [h, ffn], std));
                ps.insert(p("mlp.down.weight"), Tensor::randn(rng, [ffn, h], std));
            }
        }
    }

    ps.insert("final_norm.gamma", Tensor::ones([h]));
    if cfg.arch == Arch::Opt {
        ps.insert("final_norm.beta", Tensor::zeros([h]));
    }
    if !cfg.tie_embeddings {
        ps.insert("lm_head.weight", Tensor::randn(rng, [h, v], std));
    }
    ps
}

/// A decoder-only causal LM whose structure is private but whose
/// parameters may alias a shared store.
///
/// Build one with [`CausalLm::bind`]; the forward pass is exposed in
/// three sections matching the split fine-tuning cut (Fig. 1):
/// [`CausalLm::embed_forward`] (client input section),
/// [`CausalLm::blocks_forward`] over an arbitrary layer range (server
/// body), and [`CausalLm::head_forward`] (client output section).
#[derive(Debug)]
pub struct CausalLm {
    /// The architecture this instance was bound against.
    pub config: ModelConfig,
    embed: Tensor,
    pos: Option<Tensor>,
    blocks: Vec<Block>,
    final_norm: Norm,
    lm_head: Option<Linear>,
}

impl CausalLm {
    /// Binds a model structure to parameters in `store`.
    ///
    /// Tensors are aliased, not copied — binding the same store twice
    /// yields two independent structures over one set of weights.
    ///
    /// # Panics
    ///
    /// Panics if a required parameter is missing or mis-shaped.
    pub fn bind(cfg: &ModelConfig, store: &ParamStore) -> CausalLm {
        cfg.validate().expect("invalid model config");
        let fetch = |name: &str| -> Tensor {
            store
                .get(name)
                .unwrap_or_else(|| panic!("parameter {name} missing from store"))
                .clone()
        };
        let h = cfg.hidden;
        let make_norm = |prefix: &str| -> Norm {
            match cfg.arch {
                Arch::Opt => Norm::Layer {
                    gamma: fetch(&format!("{prefix}.gamma")),
                    beta: fetch(&format!("{prefix}.beta")),
                    eps: cfg.norm_eps,
                },
                Arch::Llama => Norm::Rms {
                    gamma: fetch(&format!("{prefix}.gamma")),
                    eps: cfg.norm_eps,
                },
            }
        };
        let make_linear = |prefix: &str, with_bias: bool| -> Linear {
            Linear::new(
                fetch(&format!("{prefix}.weight")),
                if with_bias {
                    Some(fetch(&format!("{prefix}.bias")))
                } else {
                    None
                },
            )
        };

        let blocks = (0..cfg.layers)
            .map(|i| {
                let p = |s: &str| format!("blocks.{i}.{s}");
                let biased = cfg.arch == Arch::Opt;
                Block {
                    attn_norm: make_norm(&p("attn_norm")),
                    attn: Attention {
                        q: make_linear(&p("attn.q"), biased),
                        k: make_linear(&p("attn.k"), biased),
                        v: make_linear(&p("attn.v"), biased),
                        o: make_linear(&p("attn.o"), biased),
                        heads: cfg.heads,
                        head_dim: cfg.head_dim(),
                        rope_base: (cfg.arch == Arch::Llama).then_some(cfg.rope_base),
                        prefix: None,
                    },
                    mlp_norm: make_norm(&p("mlp_norm")),
                    mlp: match cfg.arch {
                        Arch::Opt => Mlp::Gelu {
                            fc1: make_linear(&p("mlp.fc1"), true),
                            fc2: make_linear(&p("mlp.fc2"), true),
                        },
                        Arch::Llama => Mlp::SwiGlu {
                            gate: make_linear(&p("mlp.gate"), false),
                            up: make_linear(&p("mlp.up"), false),
                            down: make_linear(&p("mlp.down"), false),
                        },
                    },
                    arch: cfg.arch,
                }
            })
            .collect();

        let embed = fetch("embed.weight");
        assert_eq!(embed.dims(), &[cfg.vocab_size, h], "embed shape");

        CausalLm {
            config: cfg.clone(),
            embed,
            pos: (cfg.arch == Arch::Opt).then(|| fetch("pos.weight")),
            blocks,
            final_norm: make_norm("final_norm"),
            lm_head: (!cfg.tie_embeddings).then(|| make_linear("lm_head", false)),
        }
    }

    /// Number of transformer blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// The input section: token (+ position) embedding. `ids` has
    /// `batch * seq` entries in row-major `[batch, seq]` order.
    ///
    /// # Panics
    ///
    /// Panics if `seq` exceeds the configured maximum or ids are out of
    /// vocabulary.
    pub fn embed_forward(&self, ids: &[usize], batch: usize, seq: usize) -> Tensor {
        assert!(
            seq <= self.config.max_seq,
            "sequence length {seq} exceeds max {}",
            self.config.max_seq
        );
        let tok = Tensor::embedding(&self.embed, ids, &[batch, seq]);
        match &self.pos {
            Some(pos) => {
                let pos_ids: Vec<usize> = (0..batch).flat_map(|_| 0..seq).collect();
                let pe = Tensor::embedding(pos, &pos_ids, &[batch, seq]);
                tok.add(&pe)
            }
            None => tok,
        }
    }

    /// Applies blocks `range` to hidden states `[batch, seq, hidden]`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the block count.
    pub fn blocks_forward(&self, x: &Tensor, range: Range<usize>) -> Tensor {
        assert!(range.end <= self.blocks.len(), "block range out of bounds");
        let mut h = x.clone();
        for b in &self.blocks[range] {
            h = b.forward(&h);
        }
        h
    }

    /// The output section: final norm + LM head, returning logits
    /// `[batch, seq, vocab]`.
    pub fn head_forward(&self, x: &Tensor) -> Tensor {
        let h = self.final_norm.forward(x);
        match &self.lm_head {
            Some(head) => head.forward(&h),
            // Tied embeddings: logits = h @ E^T.
            None => h.matmul(&self.embed.t()),
        }
    }

    /// Full forward pass: embedding, every block, head.
    pub fn forward(&self, ids: &[usize], batch: usize, seq: usize) -> Tensor {
        let x = self.embed_forward(ids, batch, seq);
        let x = self.blocks_forward(&x, 0..self.blocks.len());
        self.head_forward(&x)
    }

    /// Attaches a [`LinearAdapter`] to a projection of block `layer`.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range or `target` names a projection
    /// the architecture does not have.
    pub fn set_linear_adapter(
        &mut self,
        layer: usize,
        target: AdapterTarget,
        adapter: Arc<dyn LinearAdapter>,
    ) {
        let block = &mut self.blocks[layer];
        let slot: &mut Linear = match target {
            AdapterTarget::Q => &mut block.attn.q,
            AdapterTarget::K => &mut block.attn.k,
            AdapterTarget::V => &mut block.attn.v,
            AdapterTarget::O => &mut block.attn.o,
            AdapterTarget::MlpUp => match &mut block.mlp {
                Mlp::Gelu { fc1, .. } => fc1,
                Mlp::SwiGlu { up, .. } => up,
            },
            AdapterTarget::MlpDown => match &mut block.mlp {
                Mlp::Gelu { fc2, .. } => fc2,
                Mlp::SwiGlu { down, .. } => down,
            },
        };
        slot.adapter = Some(adapter);
    }

    /// Attaches a KV-prefix provider (prefix tuning) to block `layer`.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range.
    pub fn set_kv_prefix(&mut self, layer: usize, provider: Arc<dyn KvPrefixProvider>) {
        self.blocks[layer].attn.prefix = Some(provider);
    }

    /// The adapter currently attached to a projection, if any.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range.
    pub fn linear_adapter(
        &self,
        layer: usize,
        target: AdapterTarget,
    ) -> Option<Arc<dyn LinearAdapter>> {
        let block = &self.blocks[layer];
        let slot: &Linear = match target {
            AdapterTarget::Q => &block.attn.q,
            AdapterTarget::K => &block.attn.k,
            AdapterTarget::V => &block.attn.v,
            AdapterTarget::O => &block.attn.o,
            AdapterTarget::MlpUp => match &block.mlp {
                Mlp::Gelu { fc1, .. } => fc1,
                Mlp::SwiGlu { up, .. } => up,
            },
            AdapterTarget::MlpDown => match &block.mlp {
                Mlp::Gelu { fc2, .. } => fc2,
                Mlp::SwiGlu { down, .. } => down,
            },
        };
        slot.adapter.clone()
    }

    /// Detaches the adapter (if any) from a projection.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range.
    pub fn clear_linear_adapter(&mut self, layer: usize, target: AdapterTarget) {
        let block = &mut self.blocks[layer];
        let slot: &mut Linear = match target {
            AdapterTarget::Q => &mut block.attn.q,
            AdapterTarget::K => &mut block.attn.k,
            AdapterTarget::V => &mut block.attn.v,
            AdapterTarget::O => &mut block.attn.o,
            AdapterTarget::MlpUp => match &mut block.mlp {
                Mlp::Gelu { fc1, .. } => fc1,
                Mlp::SwiGlu { up, .. } => up,
            },
            AdapterTarget::MlpDown => match &mut block.mlp {
                Mlp::Gelu { fc2, .. } => fc2,
                Mlp::SwiGlu { down, .. } => down,
            },
        };
        slot.adapter = None;
    }

    /// True if any block in `range` carries a KV-prefix provider.
    /// Prefix tuning changes the attention sequence structure, so
    /// models with prefixes cannot take part in cross-client batch
    /// stacking (see [`crate::StackedAdapter`]).
    pub fn has_kv_prefix_in(&self, range: Range<usize>) -> bool {
        self.blocks[range].iter().any(|b| b.attn.prefix.is_some())
    }

    /// A structural copy whose every parameter tensor *aliases* this
    /// model's storage — the binding analogue of `bind`ing the same
    /// store twice, but without needing the store. Adapter hooks are
    /// carried over as shared handles; callers typically replace them
    /// (e.g. with stacked adapters) before use.
    pub fn clone_structure(&self) -> CausalLm {
        CausalLm {
            config: self.config.clone(),
            embed: self.embed.clone(),
            pos: self.pos.clone(),
            blocks: self.blocks.clone(),
            final_norm: self.final_norm.clone(),
            lm_head: self.lm_head.clone(),
        }
    }

    /// All trainable adapter parameters across blocks, named
    /// `blocks.{i}.{projection}.{suffix}`.
    pub fn adapter_params(&self) -> ParamStore {
        let mut ps = ParamStore::new();
        for (i, b) in self.blocks.iter().enumerate() {
            for (name, t) in b.adapter_params() {
                ps.insert(format!("blocks.{i}.{name}"), t);
            }
        }
        ps
    }

    /// The base (non-adapter) parameters this structure is bound to, as
    /// aliases.
    pub fn base_params(&self) -> Vec<Tensor> {
        let mut out = vec![self.embed.clone()];
        if let Some(p) = &self.pos {
            out.push(p.clone());
        }
        for b in &self.blocks {
            for lin in [&b.attn.q, &b.attn.k, &b.attn.v, &b.attn.o] {
                out.push(lin.weight.clone());
                if let Some(bias) = &lin.bias {
                    out.push(bias.clone());
                }
            }
            match &b.mlp {
                Mlp::Gelu { fc1, fc2 } => {
                    for lin in [fc1, fc2] {
                        out.push(lin.weight.clone());
                        if let Some(bias) = &lin.bias {
                            out.push(bias.clone());
                        }
                    }
                }
                Mlp::SwiGlu { gate, up, down } => {
                    for lin in [gate, up, down] {
                        out.push(lin.weight.clone());
                    }
                }
            }
            for norm in [&b.attn_norm, &b.mlp_norm] {
                match norm {
                    Norm::Layer { gamma, beta, .. } => {
                        out.push(gamma.clone());
                        out.push(beta.clone());
                    }
                    Norm::Rms { gamma, .. } => out.push(gamma.clone()),
                }
            }
        }
        match &self.final_norm {
            Norm::Layer { gamma, beta, .. } => {
                out.push(gamma.clone());
                out.push(beta.clone());
            }
            Norm::Rms { gamma, .. } => out.push(gamma.clone()),
        }
        if let Some(head) = &self.lm_head {
            out.push(head.weight.clone());
        }
        out
    }
}

/// Which projection a [`LinearAdapter`] attaches to.
///
/// The paper's LoRA configuration targets `Q` and `V` (r = 8, α = 16).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum AdapterTarget {
    /// Query projection.
    Q,
    /// Key projection.
    K,
    /// Value projection.
    V,
    /// Attention output projection.
    O,
    /// MLP up projection (`fc1` for OPT, `up` for Llama).
    MlpUp,
    /// MLP down projection (`fc2` for OPT, `down` for Llama).
    MlpDown,
}

/// Mean cross-entropy between logits `[batch, seq, vocab]` and shifted
/// targets (`batch * seq` token ids).
///
/// # Panics
///
/// Panics if shapes disagree.
pub fn causal_lm_loss(logits: &Tensor, targets: &[usize]) -> Tensor {
    let dims = logits.dims();
    assert_eq!(dims.len(), 3, "logits must be [batch, seq, vocab]");
    let rows = dims[0] * dims[1];
    assert_eq!(targets.len(), rows, "one target per position");
    logits.reshape([rows, dims[2]]).cross_entropy(targets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use menos_sim::seeded_rng;

    fn tiny(arch: Arch) -> (ModelConfig, ParamStore) {
        let cfg = match arch {
            Arch::Opt => ModelConfig::tiny_opt(19),
            Arch::Llama => ModelConfig::tiny_llama(19),
        };
        let mut rng = seeded_rng(7, "model-test");
        let ps = init_params(&cfg, &mut rng);
        (cfg, ps)
    }

    #[test]
    fn init_creates_expected_params() {
        let (cfg, ps) = tiny(Arch::Opt);
        assert!(ps.get("embed.weight").is_some());
        assert!(ps.get("pos.weight").is_some());
        assert!(ps.get("blocks.0.attn.q.weight").is_some());
        assert!(ps.get("blocks.0.attn.q.bias").is_some());
        assert!(ps.get("blocks.3.mlp.fc2.bias").is_some());
        assert!(ps.get("final_norm.beta").is_some());
        assert!(ps.get("lm_head.weight").is_none(), "OPT ties embeddings");
        let _ = cfg;

        let (_, ps) = tiny(Arch::Llama);
        assert!(ps.get("pos.weight").is_none());
        assert!(ps.get("blocks.0.mlp.gate.weight").is_some());
        assert!(ps.get("blocks.0.attn.q.bias").is_none());
        assert!(ps.get("lm_head.weight").is_some());
    }

    #[test]
    fn param_count_matches_analytic() {
        for arch in [Arch::Opt, Arch::Llama] {
            let (cfg, ps) = tiny(arch);
            assert_eq!(
                ps.param_count() as u64,
                cfg.total_params(),
                "analytic count mismatch for {arch:?}"
            );
        }
    }

    #[test]
    fn forward_shapes() {
        for arch in [Arch::Opt, Arch::Llama] {
            let (cfg, ps) = tiny(arch);
            let lm = CausalLm::bind(&cfg, &ps);
            let ids: Vec<usize> = (0..12).map(|i| i % 19).collect();
            let logits = lm.forward(&ids, 2, 6);
            assert_eq!(logits.dims(), &[2, 6, 19]);
            assert!(logits.all_finite());
        }
    }

    #[test]
    fn split_forward_equals_full_forward() {
        // Cutting the model into sections must not change the math —
        // the core premise of split fine-tuning.
        for arch in [Arch::Opt, Arch::Llama] {
            let (cfg, ps) = tiny(arch);
            let lm = CausalLm::bind(&cfg, &ps);
            let ids: Vec<usize> = (0..10).map(|i| (i * 3) % 19).collect();
            let full = lm.forward(&ids, 2, 5);

            let x = lm.embed_forward(&ids, 2, 5);
            let x = lm.blocks_forward(&x, 0..1); // client front
            let x = lm.blocks_forward(&x, 1..lm.num_blocks()); // server
            let split = lm.head_forward(&x); // client back
            assert!(full.max_abs_diff(&split) < 1e-5, "{arch:?}");
        }
    }

    #[test]
    fn two_bindings_share_storage() {
        let (cfg, ps) = tiny(Arch::Llama);
        let a = CausalLm::bind(&cfg, &ps);
        let view = ps.shared_view(false);
        let b = CausalLm::bind(&cfg, &view);
        let pa = a.base_params();
        let pb = b.base_params();
        assert_eq!(pa.len(), pb.len());
        for (x, y) in pa.iter().zip(pb.iter()) {
            assert!(Tensor::same_storage(x, y), "structures must share weights");
        }
    }

    #[test]
    #[should_panic(expected = "missing from store")]
    fn bind_reports_missing_param() {
        let (cfg, mut ps) = tiny(Arch::Opt);
        ps.remove("blocks.2.attn.k.weight");
        let _ = CausalLm::bind(&cfg, &ps);
    }

    #[test]
    #[should_panic(expected = "exceeds max")]
    fn embed_checks_seq_len() {
        let (cfg, ps) = tiny(Arch::Opt);
        let lm = CausalLm::bind(&cfg, &ps);
        let ids = vec![0; 2 * 1000];
        lm.embed_forward(&ids, 2, 1000);
    }

    #[test]
    fn loss_decreases_direction() {
        // Sanity: loss of random logits is ~ln(vocab).
        let (cfg, ps) = tiny(Arch::Opt);
        let lm = CausalLm::bind(&cfg, &ps);
        let ids: Vec<usize> = (0..8).map(|i| i % 19).collect();
        let logits = lm.forward(&ids, 1, 8);
        let loss = causal_lm_loss(&logits, &ids).to_scalar();
        assert!((loss - (19.0f32).ln()).abs() < 0.5, "loss {loss}");
    }

    #[test]
    fn adapter_params_empty_without_adapters() {
        let (cfg, ps) = tiny(Arch::Llama);
        let lm = CausalLm::bind(&cfg, &ps);
        assert!(lm.adapter_params().is_empty());
    }

    #[test]
    fn base_params_cover_store() {
        for arch in [Arch::Opt, Arch::Llama] {
            let (cfg, ps) = tiny(arch);
            let lm = CausalLm::bind(&cfg, &ps);
            let total: usize = lm.base_params().iter().map(Tensor::elem_count).sum();
            assert_eq!(total, ps.param_count(), "{arch:?}");
            let _ = cfg;
        }
    }
}

//! Transformer building blocks with adapter injection points.

use std::sync::Arc;

use menos_tensor::Tensor;

use crate::config::Arch;

/// Hook for adapters that modify a linear projection's output — LoRA
/// attaches here.
///
/// Implementations live in `menos-adapters`; the model only knows the
/// injection point. This is what lets *one* shared base structure
/// definition serve clients with different fine-tuning methods.
pub trait LinearAdapter: Send + Sync + std::fmt::Debug {
    /// Adjusts the base projection output: given the layer input `x`
    /// (`[.., in]`) and the frozen-path output `base` (`[.., out]`),
    /// returns the adapted output.
    fn adjust(&self, x: &Tensor, base: &Tensor) -> Tensor;

    /// The adapter's trainable parameters as `(suffix, tensor)` pairs.
    fn trainable_params(&self) -> Vec<(String, Tensor)>;
}

/// Hook for adapters that prepend learned key/value prefixes to
/// attention — prefix tuning attaches here.
pub trait KvPrefixProvider: Send + Sync + std::fmt::Debug {
    /// Returns `(k, v)` prefixes, each shaped `[heads, prefix_len,
    /// head_dim]`.
    fn prefix_kv(&self) -> (Tensor, Tensor);

    /// Number of prefix positions.
    fn prefix_len(&self) -> usize;

    /// The adapter's trainable parameters as `(suffix, tensor)` pairs.
    fn trainable_params(&self) -> Vec<(String, Tensor)>;
}

/// A linear projection `y = x W (+ b)` with an optional adapter hook.
///
/// The weight is stored `[in, out]` so no transpose is needed on the
/// forward path.
#[derive(Debug, Clone)]
pub struct Linear {
    /// Projection weight, `[in, out]`.
    pub weight: Tensor,
    /// Optional bias, `[out]`.
    pub bias: Option<Tensor>,
    /// Optional output adapter (e.g. LoRA).
    pub adapter: Option<Arc<dyn LinearAdapter>>,
}

impl Linear {
    /// Creates a plain linear layer.
    pub fn new(weight: Tensor, bias: Option<Tensor>) -> Self {
        Linear {
            weight,
            bias,
            adapter: None,
        }
    }

    /// Applies the projection (and adapter, if attached).
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let mut y = x.matmul(&self.weight);
        if let Some(b) = &self.bias {
            y = y.add(b);
        }
        match &self.adapter {
            Some(a) => a.adjust(x, &y),
            None => y,
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.weight.shape().dim(0)
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.weight.shape().dim(1)
    }
}

/// Pre-attention / pre-MLP normalization: LayerNorm (OPT) or RMSNorm
/// (Llama).
#[derive(Debug, Clone)]
pub enum Norm {
    /// LayerNorm with affine gamma/beta.
    Layer {
        /// Scale, `[hidden]`.
        gamma: Tensor,
        /// Shift, `[hidden]`.
        beta: Tensor,
        /// Numerical epsilon.
        eps: f32,
    },
    /// RMSNorm with gamma only.
    Rms {
        /// Scale, `[hidden]`.
        gamma: Tensor,
        /// Numerical epsilon.
        eps: f32,
    },
}

impl Norm {
    /// Applies the normalization.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        match self {
            Norm::Layer { gamma, beta, eps } => x.layer_norm(gamma, beta, *eps),
            Norm::Rms { gamma, eps } => x.rms_norm(gamma, *eps),
        }
    }
}

/// Multi-head causal self-attention with optional RoPE and an optional
/// KV-prefix hook.
#[derive(Debug, Clone)]
pub struct Attention {
    /// Query projection.
    pub q: Linear,
    /// Key projection.
    pub k: Linear,
    /// Value projection.
    pub v: Linear,
    /// Output projection.
    pub o: Linear,
    /// Number of heads.
    pub heads: usize,
    /// Per-head dimension.
    pub head_dim: usize,
    /// RoPE base frequency; `None` for absolute-position models.
    pub rope_base: Option<f32>,
    /// Optional prefix-tuning hook.
    pub prefix: Option<Arc<dyn KvPrefixProvider>>,
}

impl Attention {
    /// Runs attention over `x` of shape `[batch, seq, hidden]` with a
    /// causal mask.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not 3-D or hidden does not match the
    /// projections.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.rank(), 3, "attention input must be [batch, seq, hidden]");
        let (b, s, h) = (x.dims()[0], x.dims()[1], x.dims()[2]);
        assert_eq!(h, self.heads * self.head_dim, "hidden/heads mismatch");

        let split = |t: &Tensor| -> Tensor {
            // [b, s, h] -> [b, heads, s, head_dim]
            t.reshape([b, s, self.heads, self.head_dim])
                .permute(&[0, 2, 1, 3])
        };

        let mut q = split(&self.q.forward(x));
        let mut k = split(&self.k.forward(x));
        let mut v = split(&self.v.forward(x));

        if let Some(base) = self.rope_base {
            q = q.rope(base, 0);
            k = k.rope(base, 0);
        }

        // Prefix tuning: prepend learned KV positions (attendable by
        // every query, so they carry no causal restriction).
        let mut p = 0usize;
        if let Some(provider) = &self.prefix {
            let (pk, pv) = provider.prefix_kv();
            p = provider.prefix_len();
            assert_eq!(
                pk.dims(),
                &[self.heads, p, self.head_dim],
                "prefix kv shape"
            );
            // Broadcast prefix across the batch by explicit repetition.
            let pk_b = Tensor::concat(&vec![pk.reshape([1, self.heads, p, self.head_dim]); b], 0);
            let pv_b = Tensor::concat(&vec![pv.reshape([1, self.heads, p, self.head_dim]); b], 0);
            k = Tensor::concat(&[pk_b, k], 2);
            v = Tensor::concat(&[pv_b, v], 2);
        }

        // Scores: [b, heads, s, p + s].
        let scale = 1.0 / (self.head_dim as f32).sqrt();
        let scores = q.matmul(&k.t()).mul_scalar(scale);
        let mask = causal_mask_with_prefix(s, p);
        let probs = scores.add(&mask).softmax_last();

        let ctx = probs.matmul(&v); // [b, heads, s, head_dim]
        let merged = ctx.permute(&[0, 2, 1, 3]).reshape([b, s, h]);
        self.o.forward(&merged)
    }
}

/// Additive mask of shape `[seq, prefix + seq]`: queries may attend to
/// every prefix position and to keys at their own position or earlier.
fn causal_mask_with_prefix(seq: usize, prefix: usize) -> Tensor {
    if prefix == 0 {
        return Tensor::causal_mask(seq);
    }
    let cols = prefix + seq;
    let mut data = vec![0.0f32; seq * cols];
    for i in 0..seq {
        for j in 0..seq {
            if j > i {
                data[i * cols + prefix + j] = -1e9;
            }
        }
    }
    Tensor::from_vec(data, [seq, cols])
}

/// Feed-forward block: GELU MLP (OPT) or SwiGLU (Llama).
#[derive(Debug, Clone)]
pub enum Mlp {
    /// OPT-style: `fc2(gelu(fc1(x)))`.
    Gelu {
        /// Up projection `[hidden, intermediate]`.
        fc1: Linear,
        /// Down projection `[intermediate, hidden]`.
        fc2: Linear,
    },
    /// Llama-style: `down(silu(gate(x)) * up(x))`.
    SwiGlu {
        /// Gate projection.
        gate: Linear,
        /// Up projection.
        up: Linear,
        /// Down projection.
        down: Linear,
    },
}

impl Mlp {
    /// Applies the feed-forward block.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        match self {
            Mlp::Gelu { fc1, fc2 } => fc2.forward(&fc1.forward(x).gelu()),
            Mlp::SwiGlu { gate, up, down } => {
                let g = gate.forward(x).silu();
                let u = up.forward(x);
                down.forward(&(&g * &u))
            }
        }
    }
}

/// One pre-norm transformer block: `x + attn(norm(x))`, then
/// `x + mlp(norm(x))`.
#[derive(Debug, Clone)]
pub struct Block {
    /// Normalization before attention.
    pub attn_norm: Norm,
    /// Self-attention.
    pub attn: Attention,
    /// Normalization before the MLP.
    pub mlp_norm: Norm,
    /// Feed-forward block.
    pub mlp: Mlp,
    /// Which architecture family this block belongs to.
    pub arch: Arch,
}

impl Block {
    /// Applies the block to `[batch, seq, hidden]`.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let h = x.add(&self.attn.forward(&self.attn_norm.forward(x)));
        h.add(&self.mlp.forward(&self.mlp_norm.forward(&h)))
    }

    /// Trainable adapter parameters attached to this block, prefixed by
    /// projection name.
    pub fn adapter_params(&self) -> Vec<(String, Tensor)> {
        let mut out = Vec::new();
        for (name, lin) in [
            ("attn.q", &self.attn.q),
            ("attn.k", &self.attn.k),
            ("attn.v", &self.attn.v),
            ("attn.o", &self.attn.o),
        ] {
            if let Some(a) = &lin.adapter {
                for (suffix, t) in a.trainable_params() {
                    out.push((format!("{name}.{suffix}"), t));
                }
            }
        }
        let mlp_linears: Vec<(&str, &Linear)> = match &self.mlp {
            Mlp::Gelu { fc1, fc2 } => vec![("mlp.fc1", fc1), ("mlp.fc2", fc2)],
            Mlp::SwiGlu { gate, up, down } => {
                vec![("mlp.gate", gate), ("mlp.up", up), ("mlp.down", down)]
            }
        };
        for (name, lin) in mlp_linears {
            if let Some(a) = &lin.adapter {
                for (suffix, t) in a.trainable_params() {
                    out.push((format!("{name}.{suffix}"), t));
                }
            }
        }
        if let Some(p) = &self.attn.prefix {
            for (suffix, t) in p.trainable_params() {
                out.push((format!("attn.prefix.{suffix}"), t));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear(in_dim: usize, out_dim: usize, scale: f32) -> Linear {
        let n = in_dim * out_dim;
        let w: Vec<f32> = (0..n)
            .map(|i| scale * ((i % 7) as f32 - 3.0) / 10.0)
            .collect();
        Linear::new(Tensor::from_vec(w, [in_dim, out_dim]), None)
    }

    #[test]
    fn linear_identity() {
        let lin = Linear::new(
            Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], [2, 2]),
            Some(Tensor::from_vec(vec![0.5, -0.5], [2])),
        );
        let x = Tensor::from_vec(vec![1.0, 2.0], [1, 2]);
        assert_eq!(lin.forward(&x).to_vec(), vec![1.5, 1.5]);
        assert_eq!(lin.in_dim(), 2);
        assert_eq!(lin.out_dim(), 2);
    }

    #[derive(Debug)]
    struct DoubleAdapter;
    impl LinearAdapter for DoubleAdapter {
        fn adjust(&self, _x: &Tensor, base: &Tensor) -> Tensor {
            base.mul_scalar(2.0)
        }
        fn trainable_params(&self) -> Vec<(String, Tensor)> {
            Vec::new()
        }
    }

    #[test]
    fn linear_adapter_hook_applies() {
        let mut lin = Linear::new(Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], [2, 2]), None);
        lin.adapter = Some(Arc::new(DoubleAdapter));
        let x = Tensor::from_vec(vec![3.0, 4.0], [1, 2]);
        assert_eq!(lin.forward(&x).to_vec(), vec![6.0, 8.0]);
    }

    #[test]
    fn norm_variants_forward() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [1, 4]);
        let ln = Norm::Layer {
            gamma: Tensor::ones([4]),
            beta: Tensor::zeros([4]),
            eps: 1e-5,
        };
        let y = ln.forward(&x).to_vec();
        assert!((y.iter().sum::<f32>()).abs() < 1e-4);
        let rms = Norm::Rms {
            gamma: Tensor::ones([4]),
            eps: 1e-5,
        };
        assert!(rms.forward(&x).all_finite());
    }

    fn attention(heads: usize, head_dim: usize, rope: Option<f32>) -> Attention {
        let h = heads * head_dim;
        Attention {
            q: linear(h, h, 1.0),
            k: linear(h, h, 0.7),
            v: linear(h, h, 0.9),
            o: linear(h, h, 0.8),
            heads,
            head_dim,
            rope_base: rope,
            prefix: None,
        }
    }

    #[test]
    fn attention_shapes() {
        let attn = attention(2, 4, None);
        let x = Tensor::from_vec((0..48).map(|i| 0.01 * i as f32).collect(), [2, 3, 8]);
        let y = attn.forward(&x);
        assert_eq!(y.dims(), &[2, 3, 8]);
        assert!(y.all_finite());
    }

    #[test]
    fn attention_is_causal() {
        // Changing a later token must not affect earlier outputs.
        let attn = attention(2, 4, None);
        let base: Vec<f32> = (0..24).map(|i| 0.05 * i as f32).collect();
        let mut changed = base.clone();
        changed[16] += 5.0; // token 2 of 3
        let y1 = attn.forward(&Tensor::from_vec(base, [1, 3, 8]));
        let y2 = attn.forward(&Tensor::from_vec(changed, [1, 3, 8]));
        let v1 = y1.to_vec();
        let v2 = y2.to_vec();
        // Tokens 0 and 1 (first 16 outputs) unchanged.
        for i in 0..16 {
            assert!((v1[i] - v2[i]).abs() < 1e-6, "causality violated at {i}");
        }
        // Token 2 changed.
        assert!((16..24).any(|i| (v1[i] - v2[i]).abs() > 1e-4));
    }

    #[test]
    fn attention_matches_hand_computation() {
        // One head, head_dim 2, identity projections: the output is the
        // causal softmax-weighted average of the values, computable by
        // hand.
        let eye = Linear::new(Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], [2, 2]), None);
        let attn = Attention {
            q: eye.clone(),
            k: eye.clone(),
            v: eye.clone(),
            o: eye,
            heads: 1,
            head_dim: 2,
            rope_base: None,
            prefix: None,
        };
        let x0 = [1.0f32, 0.0];
        let x1 = [0.0f32, 2.0];
        let x = Tensor::from_vec(vec![x0[0], x0[1], x1[0], x1[1]], [1, 2, 2]);
        let y = attn.forward(&x).to_vec();

        // Token 0 attends only to itself: output = v0 = x0.
        assert!((y[0] - x0[0]).abs() < 1e-6);
        assert!((y[1] - x0[1]).abs() < 1e-6);

        // Token 1: scores over (k0, k1) = (q1·k0, q1·k1)/sqrt(2).
        let scale = 1.0 / 2.0f32.sqrt();
        let s0 = (x1[0] * x0[0] + x1[1] * x0[1]) * scale; // 0
        let s1 = (x1[0] * x1[0] + x1[1] * x1[1]) * scale; // 4/sqrt(2)
        let (e0, e1) = ((s0 - s1).exp(), 1.0f32);
        let (w0, w1) = (e0 / (e0 + e1), e1 / (e0 + e1));
        let expected = [w0 * x0[0] + w1 * x1[0], w0 * x0[1] + w1 * x1[1]];
        assert!(
            (y[2] - expected[0]).abs() < 1e-5,
            "{} vs {}",
            y[2],
            expected[0]
        );
        assert!(
            (y[3] - expected[1]).abs() < 1e-5,
            "{} vs {}",
            y[3],
            expected[1]
        );
    }

    #[test]
    fn attention_with_rope_runs() {
        let attn = attention(2, 4, Some(10_000.0));
        let x = Tensor::from_vec((0..24).map(|i| 0.05 * i as f32).collect(), [1, 3, 8]);
        assert!(attn.forward(&x).all_finite());
    }

    #[derive(Debug)]
    struct FixedPrefix {
        k: Tensor,
        v: Tensor,
    }
    impl KvPrefixProvider for FixedPrefix {
        fn prefix_kv(&self) -> (Tensor, Tensor) {
            (self.k.clone(), self.v.clone())
        }
        fn prefix_len(&self) -> usize {
            self.k.dims()[1]
        }
        fn trainable_params(&self) -> Vec<(String, Tensor)> {
            vec![("k".into(), self.k.clone()), ("v".into(), self.v.clone())]
        }
    }

    #[test]
    fn attention_with_prefix_changes_output() {
        let mut attn = attention(2, 4, None);
        let x = Tensor::from_vec((0..24).map(|i| 0.05 * i as f32).collect(), [1, 3, 8]);
        let plain = attn.forward(&x);
        attn.prefix = Some(Arc::new(FixedPrefix {
            k: Tensor::full(0.3, [2, 2, 4]),
            v: Tensor::full(1.0, [2, 2, 4]),
        }));
        let with_prefix = attn.forward(&x);
        assert_eq!(plain.dims(), with_prefix.dims());
        assert!(plain.max_abs_diff(&with_prefix) > 1e-4);
    }

    #[test]
    fn prefix_mask_allows_prefix_blocks_future() {
        let m = causal_mask_with_prefix(2, 3);
        assert_eq!(m.dims(), &[2, 5]);
        let v = m.to_vec();
        // Row 0: prefix cols 0-2 open, own position open, future blocked.
        assert_eq!(&v[0..4], &[0.0, 0.0, 0.0, 0.0]);
        assert_eq!(v[4], -1e9);
        // Row 1: everything open.
        assert!(v[5..10].iter().all(|&x| x == 0.0));
    }

    #[test]
    fn mlp_variants() {
        let x = Tensor::from_vec(vec![0.5, -0.5], [1, 2]);
        let gelu = Mlp::Gelu {
            fc1: linear(2, 4, 1.0),
            fc2: linear(4, 2, 1.0),
        };
        assert_eq!(gelu.forward(&x).dims(), &[1, 2]);
        let swiglu = Mlp::SwiGlu {
            gate: linear(2, 4, 1.0),
            up: linear(2, 4, 0.5),
            down: linear(4, 2, 1.0),
        };
        assert_eq!(swiglu.forward(&x).dims(), &[1, 2]);
    }

    #[test]
    fn block_residual_path() {
        // With zero attention/MLP weights the block is the identity.
        let h = 8;
        let zeros = |i, o| Linear::new(Tensor::zeros([i, o]), None);
        let block = Block {
            attn_norm: Norm::Rms {
                gamma: Tensor::ones([h]),
                eps: 1e-5,
            },
            attn: Attention {
                q: zeros(h, h),
                k: zeros(h, h),
                v: zeros(h, h),
                o: zeros(h, h),
                heads: 2,
                head_dim: 4,
                rope_base: None,
                prefix: None,
            },
            mlp_norm: Norm::Rms {
                gamma: Tensor::ones([h]),
                eps: 1e-5,
            },
            mlp: Mlp::SwiGlu {
                gate: zeros(h, h),
                up: zeros(h, h),
                down: zeros(h, h),
            },
            arch: Arch::Llama,
        };
        let x = Tensor::from_vec((0..16).map(|i| i as f32 * 0.1).collect(), [1, 2, 8]);
        let y = block.forward(&x);
        assert!(x.max_abs_diff(&y) < 1e-6);
        assert!(block.adapter_params().is_empty());
    }
}

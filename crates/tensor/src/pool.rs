//! Size-classed buffer pools for the tensor hot path.
//!
//! The split-learning step loop decodes a boundary tensor, runs the
//! server segment, and encodes a reply — every step, for every client.
//! Without pooling each of those stages allocates fresh storage that
//! lives for exactly one step. This module recycles that storage:
//! freed `Vec<f32>` tensor buffers and `Vec<u8>` frame buffers park in
//! per-thread, size-classed bins and are handed back to the next
//! allocation of a compatible size.
//!
//! # Bit-identity / poisoning argument
//!
//! A recycled buffer may still *physically* contain a previous
//! tensor's bytes, but safe code can never observe them:
//!
//! * [`take_f32`] / [`take_bytes`] return buffers with **length 0**
//!   (only capacity is recycled). The whole crate is
//!   `#![forbid(unsafe_code)]`, so the spare capacity beyond `len` is
//!   unreachable; callers grow the buffer exclusively by writing new
//!   data (`push` / `extend_from_slice` / `resize`).
//! * [`take_zeroed_f32`] returns a buffer fully overwritten with
//!   `0.0` before it is exposed.
//!
//! Either way every byte a caller can read was written after the
//! buffer left the pool, so pooled and non-pooled execution are
//! bitwise identical.
//!
//! # Threading
//!
//! Bins are thread-local (no locks on the hot path); the hit/miss
//! counters are global atomics so benchmarks can observe pool
//! behaviour across worker threads.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Smallest `f32` buffer the pool recycles (in elements). Anything
/// below this is cheaper to malloc than to bin.
const MIN_POOL_F32: usize = 512;

/// Smallest byte buffer the pool recycles.
const MIN_POOL_BYTES: usize = 4096;

/// Largest buffer the pool will hold on to (bytes). Anything bigger
/// is returned to the allocator.
const MAX_POOL_BYTES: usize = 64 << 20;

/// Per-thread ceiling on parked bytes across all bins; recycling past
/// this drops the buffer instead. Kept tight: parked capacity is real
/// RSS, and a cap much larger than a step's working set turns the
/// pool into a leak-shaped plateau of never-reused size classes.
const HELD_BYTES_CAP: usize = 48 << 20;

/// Max parked buffers per size class per thread.
const PER_CLASS_CAP: usize = 8;

const NUM_CLASSES: usize = 64;

// Global counters (shared by the f32 and byte pools).
static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static RECYCLED: AtomicU64 = AtomicU64::new(0);
static DROPPED: AtomicU64 = AtomicU64::new(0);
static BYTES_COPIED: AtomicU64 = AtomicU64::new(0);

struct Bins<T> {
    classes: Vec<Vec<Vec<T>>>,
    held_bytes: usize,
}

impl<T> Bins<T> {
    fn new() -> Self {
        Bins {
            classes: (0..NUM_CLASSES).map(|_| Vec::new()).collect(),
            held_bytes: 0,
        }
    }
}

struct LocalPool {
    f32s: Bins<f32>,
    bytes: Bins<u8>,
}

thread_local! {
    static POOL: RefCell<LocalPool> = RefCell::new(LocalPool {
        f32s: Bins::new(),
        bytes: Bins::new(),
    });
}

/// Class index a request of `len` elements draws from: the smallest
/// power of two ≥ `len`, so every parked buffer in that class has
/// enough capacity.
fn class_for_request(len: usize) -> usize {
    len.next_power_of_two().trailing_zeros() as usize
}

/// Class index a buffer of `cap` capacity parks in: the largest power
/// of two ≤ `cap`, so its capacity covers any request routed there.
fn class_for_capacity(cap: usize) -> usize {
    (usize::BITS - 1 - cap.leading_zeros()) as usize
}

fn take<T>(bins: &mut Bins<T>, len: usize, elem_size: usize) -> Option<Vec<T>> {
    let first = class_for_request(len);
    // A request may also be satisfied by the next class up; checking
    // one extra bin keeps odd sizes from permanently missing.
    for class in first..(first + 2).min(NUM_CLASSES) {
        if let Some(buf) = bins.classes[class].pop() {
            bins.held_bytes -= buf.capacity() * elem_size;
            HITS.fetch_add(1, Ordering::Relaxed);
            return Some(buf);
        }
    }
    MISSES.fetch_add(1, Ordering::Relaxed);
    None
}

fn park<T>(bins: &mut Bins<T>, buf: Vec<T>, elem_size: usize) {
    let cap_bytes = buf.capacity() * elem_size;
    let class = class_for_capacity(buf.capacity());
    if class >= NUM_CLASSES
        || bins.classes[class].len() >= PER_CLASS_CAP
        || bins.held_bytes + cap_bytes > HELD_BYTES_CAP
    {
        DROPPED.fetch_add(1, Ordering::Relaxed);
        return;
    }
    bins.held_bytes += cap_bytes;
    bins.classes[class].push(buf);
    RECYCLED.fetch_add(1, Ordering::Relaxed);
}

/// Takes an **empty** `f32` buffer with capacity ≥ `len` from the
/// pool (or the allocator on a miss). The returned vector has length
/// zero: callers fill it with `push`/`extend` and never observe
/// recycled contents.
pub fn take_f32(len: usize) -> Vec<f32> {
    if len < MIN_POOL_F32 {
        return Vec::with_capacity(len);
    }
    let pooled = POOL
        .try_with(|p| take(&mut p.borrow_mut().f32s, len, 4))
        .ok()
        .flatten();
    match pooled {
        Some(mut buf) => {
            buf.clear();
            buf
        }
        None => Vec::with_capacity(len),
    }
}

/// Takes a zero-filled `f32` buffer of exactly `len` elements.
pub fn take_zeroed_f32(len: usize) -> Vec<f32> {
    let mut buf = take_f32(len);
    buf.resize(len, 0.0);
    buf
}

/// Returns an `f32` buffer to the pool. Small or oversized buffers
/// (and overflow past the per-thread cap) go back to the allocator.
pub fn recycle_f32(buf: Vec<f32>) {
    if buf.capacity() < MIN_POOL_F32 || buf.capacity() * 4 > MAX_POOL_BYTES {
        return;
    }
    let _ = POOL.try_with(|p| park(&mut p.borrow_mut().f32s, buf, 4));
}

/// Takes an **empty** byte buffer with capacity ≥ `len` (length 0;
/// see the module docs for why recycled contents stay unreachable).
pub fn take_bytes(len: usize) -> Vec<u8> {
    if len < MIN_POOL_BYTES {
        return Vec::with_capacity(len);
    }
    let pooled = POOL
        .try_with(|p| take(&mut p.borrow_mut().bytes, len, 1))
        .ok()
        .flatten();
    match pooled {
        Some(mut buf) => {
            buf.clear();
            buf
        }
        None => Vec::with_capacity(len),
    }
}

/// Returns a byte buffer to the pool.
pub fn recycle_bytes(buf: Vec<u8>) {
    if buf.capacity() < MIN_POOL_BYTES || buf.capacity() > MAX_POOL_BYTES {
        return;
    }
    let _ = POOL.try_with(|p| park(&mut p.borrow_mut().bytes, buf, 1));
}

/// Adds `n` bytes to the global copied-bytes counter. The wire codec
/// and the stack/unstack kernels call this on every bulk copy so
/// benchmarks can report bytes moved per step.
pub fn count_copied(n: usize) {
    BYTES_COPIED.fetch_add(n as u64, Ordering::Relaxed);
}

/// A snapshot of the global pool counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Takes satisfied from a bin.
    pub hits: u64,
    /// Takes that fell through to the allocator.
    pub misses: u64,
    /// Buffers parked for reuse.
    pub recycled: u64,
    /// Buffers dropped at recycle time (bin full / over cap).
    pub dropped: u64,
    /// Bytes moved through instrumented bulk copies.
    pub bytes_copied: u64,
}

impl PoolStats {
    /// Hit fraction over all pool-eligible takes (0.0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Reads the global pool counters.
pub fn stats() -> PoolStats {
    PoolStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        recycled: RECYCLED.load(Ordering::Relaxed),
        dropped: DROPPED.load(Ordering::Relaxed),
        bytes_copied: BYTES_COPIED.load(Ordering::Relaxed),
    }
}

/// Resets the global pool counters (benchmark warm-up boundary).
pub fn reset_stats() {
    HITS.store(0, Ordering::Relaxed);
    MISSES.store(0, Ordering::Relaxed);
    RECYCLED.store(0, Ordering::Relaxed);
    DROPPED.store(0, Ordering::Relaxed);
    BYTES_COPIED.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_routing_guarantees_capacity() {
        for len in [1usize, 2, 3, 511, 512, 513, 1000, 1024, 1 << 20] {
            let req = class_for_request(len);
            assert!(1usize << req >= len);
        }
        for cap in [512usize, 513, 1023, 1024, 4096, 1 << 20] {
            let cls = class_for_capacity(cap);
            assert!(1usize << cls <= cap);
        }
    }

    #[test]
    fn recycled_buffer_is_reused_and_empty() {
        let mut v = take_f32(2048);
        v.extend(std::iter::repeat(7.5f32).take(2048));
        let cap = v.capacity();
        recycle_f32(v);
        let v2 = take_f32(2048);
        assert_eq!(v2.len(), 0, "recycled take must be empty");
        assert!(v2.capacity() >= 2048);
        // Same thread, compatible class: expect the parked buffer back.
        assert_eq!(v2.capacity(), cap);
    }

    #[test]
    fn zeroed_take_is_all_zero_after_recycle() {
        let mut v = take_f32(4096);
        v.extend(std::iter::repeat(f32::NAN).take(4096));
        recycle_f32(v);
        let z = take_zeroed_f32(4096);
        assert_eq!(z.len(), 4096);
        assert!(z.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn tiny_buffers_bypass_the_pool() {
        // Park a big buffer, then make a tiny request: the bypass path
        // must not hand the big pooled buffer to a sub-threshold take.
        let mut big = take_f32(1 << 16);
        big.push(1.0);
        recycle_f32(big);
        let v = take_f32(4);
        assert!(v.capacity() < MIN_POOL_F32);
    }

    #[test]
    fn byte_pool_round_trip() {
        let mut b = take_bytes(8192);
        b.extend_from_slice(&[0xAB; 8192]);
        recycle_bytes(b);
        let b2 = take_bytes(5000);
        assert_eq!(b2.len(), 0);
        assert!(b2.capacity() >= 5000);
    }
}

//! The recorded operation graph and per-op backward rules.

use std::sync::Arc;

use crate::ops::binary::reduce_grad_to;
use crate::ops::matmul::matmul_backward;
use crate::ops::nn::{
    cross_entropy_backward, embedding_backward, layer_norm_backward, rms_norm_backward,
    rope_backward, softmax_backward,
};
use crate::ops::shape_ops::{inverse_perm, narrow_backward_kernel, permute_kernel};
use crate::ops::unary::{gelu_exact_prime, gelu_prime, sigmoid, silu_prime};
use crate::tensor::Tensor;

/// A recorded tensor operation, holding its inputs.
///
/// Backward passes *recompute* any forward quantities they need (e.g.
/// softmax outputs, normalization statistics) from the stored inputs
/// rather than caching them — this keeps the graph small and matches
/// the recompute-oriented design of Menos' on-demand memory policy.
pub(crate) enum Op {
    Add(Tensor, Tensor),
    Sub(Tensor, Tensor),
    Mul(Tensor, Tensor),
    Div(Tensor, Tensor),
    AddScalar(Tensor),
    MulScalar(Tensor, f32),
    PowScalar(Tensor, i32),
    Exp(Tensor),
    Ln(Tensor),
    Tanh(Tensor),
    Sqrt(Tensor),
    Sigmoid(Tensor),
    Relu(Tensor),
    Gelu(Tensor),
    GeluExact(Tensor),
    Silu(Tensor),
    Matmul(Tensor, Tensor),
    SumAll(Tensor),
    MeanAll(Tensor),
    SumLastKeepdim(Tensor),
    Reshape(Tensor),
    Permute(Tensor, Vec<usize>),
    Narrow(Tensor, usize, usize, usize),
    Concat(Vec<Tensor>, usize),
    Softmax(Tensor),
    LayerNorm {
        x: Tensor,
        gamma: Tensor,
        beta: Tensor,
        eps: f32,
    },
    RmsNorm {
        x: Tensor,
        gamma: Tensor,
        eps: f32,
    },
    Embedding {
        table: Tensor,
        ids: Arc<Vec<usize>>,
    },
    CrossEntropy {
        logits: Tensor,
        targets: Arc<Vec<usize>>,
    },
    Rope {
        x: Tensor,
        base: f32,
        pos_offset: usize,
    },
    Dropout {
        x: Tensor,
        /// Pre-scaled keep mask (0 or 1/(1-p)) applied in both passes.
        mask: Tensor,
    },
}

impl Op {
    /// The input tensors of this op, in a fixed order.
    pub(crate) fn parents(&self) -> Vec<Tensor> {
        match self {
            Op::Add(a, b) | Op::Sub(a, b) | Op::Mul(a, b) | Op::Div(a, b) | Op::Matmul(a, b) => {
                vec![a.clone(), b.clone()]
            }
            Op::AddScalar(a)
            | Op::MulScalar(a, _)
            | Op::PowScalar(a, _)
            | Op::Exp(a)
            | Op::Ln(a)
            | Op::Tanh(a)
            | Op::Sqrt(a)
            | Op::Sigmoid(a)
            | Op::Relu(a)
            | Op::Gelu(a)
            | Op::GeluExact(a)
            | Op::Silu(a)
            | Op::SumAll(a)
            | Op::MeanAll(a)
            | Op::SumLastKeepdim(a)
            | Op::Reshape(a)
            | Op::Permute(a, _)
            | Op::Narrow(a, _, _, _)
            | Op::Softmax(a) => vec![a.clone()],
            Op::Concat(ts, _) => ts.clone(),
            Op::LayerNorm { x, gamma, beta, .. } => {
                vec![x.clone(), gamma.clone(), beta.clone()]
            }
            Op::RmsNorm { x, gamma, .. } => vec![x.clone(), gamma.clone()],
            Op::Embedding { table, .. } => vec![table.clone()],
            Op::CrossEntropy { logits, .. } => vec![logits.clone()],
            Op::Rope { x, .. } => vec![x.clone()],
            Op::Dropout { x, .. } => vec![x.clone()],
        }
    }

    /// Computes gradients for each parent given the output gradient,
    /// returned as `(parent, grad_data)` pairs in parent order.
    pub(crate) fn backward(&self, out: &Tensor, grad: &[f32]) -> Vec<(Tensor, Vec<f32>)> {
        match self {
            Op::Add(a, b) => vec![
                (a.clone(), reduce_grad_to(grad, out.shape(), a.shape())),
                (b.clone(), reduce_grad_to(grad, out.shape(), b.shape())),
            ],
            Op::Sub(a, b) => {
                let gb: Vec<f32> = grad.iter().map(|g| -g).collect();
                vec![
                    (a.clone(), reduce_grad_to(grad, out.shape(), a.shape())),
                    (b.clone(), reduce_grad_to(&gb, out.shape(), b.shape())),
                ]
            }
            Op::Mul(a, b) => {
                // Gradient w.r.t. a is grad * broadcast(b); expand each
                // operand to the output shape first.
                let (b_bcast, _) =
                    crate::ops::binary::broadcast_binary_kernel(b, &out_like(out), |bv, _| bv);
                let (a_bcast, _) =
                    crate::ops::binary::broadcast_binary_kernel(a, &out_like(out), |av, _| av);
                let ga: Vec<f32> = grad.iter().zip(&b_bcast).map(|(g, bv)| g * bv).collect();
                let gb: Vec<f32> = grad.iter().zip(&a_bcast).map(|(g, av)| g * av).collect();
                vec![
                    (a.clone(), reduce_grad_to(&ga, out.shape(), a.shape())),
                    (b.clone(), reduce_grad_to(&gb, out.shape(), b.shape())),
                ]
            }
            Op::Div(a, b) => {
                let (b_bcast, _) =
                    crate::ops::binary::broadcast_binary_kernel(b, &out_like(out), |bv, _| bv);
                let (a_bcast, _) =
                    crate::ops::binary::broadcast_binary_kernel(a, &out_like(out), |av, _| av);
                let ga: Vec<f32> = grad.iter().zip(&b_bcast).map(|(g, bv)| g / bv).collect();
                let gb: Vec<f32> = grad
                    .iter()
                    .zip(a_bcast.iter().zip(&b_bcast))
                    .map(|(g, (av, bv))| -g * av / (bv * bv))
                    .collect();
                vec![
                    (a.clone(), reduce_grad_to(&ga, out.shape(), a.shape())),
                    (b.clone(), reduce_grad_to(&gb, out.shape(), b.shape())),
                ]
            }
            Op::AddScalar(a) => vec![(a.clone(), grad.to_vec())],
            Op::MulScalar(a, s) => {
                vec![(a.clone(), grad.iter().map(|g| g * s).collect())]
            }
            Op::PowScalar(a, p) => {
                let x = a.storage().read();
                let g = grad
                    .iter()
                    .zip(x.iter())
                    .map(|(g, &xv)| g * (*p as f32) * xv.powi(p - 1))
                    .collect();
                drop(x);
                vec![(a.clone(), g)]
            }
            Op::Exp(a) => unary_grad(a, grad, |x| x.exp()),
            Op::Ln(a) => unary_grad(a, grad, |x| 1.0 / x),
            Op::Tanh(a) => unary_grad(a, grad, |x| {
                let t = x.tanh();
                1.0 - t * t
            }),
            Op::Sqrt(a) => unary_grad(a, grad, |x| 0.5 / x.sqrt()),
            Op::Sigmoid(a) => unary_grad(a, grad, |x| {
                let s = sigmoid(x);
                s * (1.0 - s)
            }),
            Op::Relu(a) => unary_grad(a, grad, |x| if x > 0.0 { 1.0 } else { 0.0 }),
            Op::Gelu(a) => unary_grad(a, grad, gelu_prime),
            Op::GeluExact(a) => unary_grad(a, grad, gelu_exact_prime),
            Op::Silu(a) => unary_grad(a, grad, silu_prime),
            Op::Matmul(a, b) => {
                let (ga, gb) = matmul_backward(a, b, grad);
                vec![(a.clone(), ga), (b.clone(), gb)]
            }
            Op::SumAll(a) => {
                let g = grad[0];
                vec![(a.clone(), vec![g; a.elem_count()])]
            }
            Op::MeanAll(a) => {
                let g = grad[0] / a.elem_count() as f32;
                vec![(a.clone(), vec![g; a.elem_count()])]
            }
            Op::SumLastKeepdim(a) => {
                let (rows, cols) = a.shape().rows_cols();
                let mut g = vec![0.0f32; a.elem_count()];
                for r in 0..rows {
                    for c in 0..cols {
                        g[r * cols + c] = grad[r];
                    }
                }
                vec![(a.clone(), g)]
            }
            Op::Reshape(a) => vec![(a.clone(), grad.to_vec())],
            Op::Permute(a, perm) => {
                let inv = inverse_perm(perm);
                let (g, _) = permute_kernel(grad, out.shape(), &inv);
                vec![(a.clone(), g)]
            }
            Op::Narrow(a, dim, start, len) => {
                let g = narrow_backward_kernel(grad, a.shape(), *dim, *start, *len);
                vec![(a.clone(), g)]
            }
            Op::Concat(ts, dim) => {
                let dim = *dim;
                let outer: usize = out.dims()[..dim].iter().product();
                let inner: usize = out.dims()[dim + 1..].iter().product();
                let total = out.shape().dim(dim);
                let mut grads: Vec<Vec<f32>> =
                    ts.iter().map(|t| vec![0.0f32; t.elem_count()]).collect();
                for o in 0..outer {
                    let mut offset = 0usize;
                    for (ti, t) in ts.iter().enumerate() {
                        let d = t.shape().dim(dim);
                        let src = o * total * inner + offset * inner;
                        let dst = o * d * inner;
                        grads[ti][dst..dst + d * inner]
                            .copy_from_slice(&grad[src..src + d * inner]);
                        offset += d;
                    }
                }
                ts.iter().cloned().zip(grads).collect()
            }
            Op::Softmax(a) => vec![(a.clone(), softmax_backward(a, grad))],
            Op::LayerNorm {
                x,
                gamma,
                beta,
                eps,
            } => {
                let (dx, dg, db) = layer_norm_backward(x, gamma, *eps, grad);
                vec![(x.clone(), dx), (gamma.clone(), dg), (beta.clone(), db)]
            }
            Op::RmsNorm { x, gamma, eps } => {
                let (dx, dg) = rms_norm_backward(x, gamma, *eps, grad);
                vec![(x.clone(), dx), (gamma.clone(), dg)]
            }
            Op::Embedding { table, ids } => {
                vec![(table.clone(), embedding_backward(table, ids, grad))]
            }
            Op::CrossEntropy { logits, targets } => {
                vec![(
                    logits.clone(),
                    cross_entropy_backward(logits, targets, grad[0]),
                )]
            }
            Op::Rope {
                x,
                base,
                pos_offset,
            } => {
                vec![(x.clone(), rope_backward(x, *base, *pos_offset, grad))]
            }
            Op::Dropout { x, mask } => {
                let m = mask.storage().read();
                let g = grad.iter().zip(m.iter()).map(|(g, m)| g * m).collect();
                drop(m);
                vec![(x.clone(), g)]
            }
        }
    }
}

/// A zero tensor with the same shape as `out`, used as a shape carrier
/// for broadcasting kernels during backward.
fn out_like(out: &Tensor) -> Tensor {
    Tensor::zeros(out.shape().clone())
}

fn unary_grad(a: &Tensor, grad: &[f32], dfdx: impl Fn(f32) -> f32) -> Vec<(Tensor, Vec<f32>)> {
    let x = a.storage().read();
    let g = grad
        .iter()
        .zip(x.iter())
        .map(|(g, &xv)| g * dfdx(xv))
        .collect();
    drop(x);
    vec![(a.clone(), g)]
}

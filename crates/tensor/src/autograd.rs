//! Reverse-mode automatic differentiation.

use std::collections::{HashMap, HashSet};

use crate::tensor::Tensor;

/// Gradients produced by [`Tensor::backward`], keyed by tensor
/// identity.
///
/// Only tensors with `requires_grad` receive entries. Gradients are
/// plain (untracked) tensors; double backward is not supported.
///
/// # Examples
///
/// ```
/// use menos_tensor::Tensor;
///
/// let w = Tensor::var_from_vec(vec![3.0], [1]);
/// let loss = (&w * &w).sum_all();
/// let grads = loss.backward();
/// assert_eq!(grads.get(&w).unwrap().to_vec(), vec![6.0]);
/// ```
#[derive(Debug, Default)]
pub struct GradStore {
    grads: HashMap<u64, Tensor>,
}

impl GradStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        GradStore::default()
    }

    /// The gradient of `t`, if one was computed.
    pub fn get(&self, t: &Tensor) -> Option<&Tensor> {
        self.grads.get(&t.id())
    }

    /// Removes and returns the gradient of `t`.
    pub fn remove(&mut self, t: &Tensor) -> Option<Tensor> {
        self.grads.remove(&t.id())
    }

    /// Stores `grad` as the gradient of `t`, replacing any existing
    /// entry. Used when redistributing the gradients of a fused
    /// (batched) backward pass to their owning sessions.
    pub fn insert(&mut self, t: &Tensor, grad: Tensor) {
        self.grads.insert(t.id(), grad);
    }

    /// Number of tensors with gradients.
    pub fn len(&self) -> usize {
        self.grads.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.grads.is_empty()
    }

    /// Iterates over `(tensor_id, gradient)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&u64, &Tensor)> {
        self.grads.iter()
    }

    /// Inserts a gradient by raw tensor id (backward-pass internal).
    fn insert_raw(&mut self, id: u64, grad: Tensor) {
        self.grads.insert(id, grad);
    }

    /// Total bytes held by all gradients — used by the memory
    /// accounting layer.
    pub fn size_bytes(&self) -> u64 {
        self.grads.values().map(Tensor::size_bytes).sum()
    }

    /// Scales every gradient in place — used to average accumulated
    /// micro-batch gradients before an optimizer step.
    pub fn scale(&mut self, factor: f32) {
        for grad in self.grads.values() {
            for g in grad.storage().write().iter_mut() {
                *g *= factor;
            }
        }
    }

    /// Merges another store into this one, accumulating gradients for
    /// tensors present in both. Split-learning clients use this to
    /// combine the output-section and input-section backward passes of
    /// one optimization step.
    pub fn merge(&mut self, other: GradStore) {
        for (id, grad) in other.grads {
            match self.grads.get_mut(&id) {
                Some(existing) => {
                    let g = grad.to_vec();
                    let mut w = existing.storage().write();
                    for (e, d) in w.iter_mut().zip(g.iter()) {
                        *e += d;
                    }
                }
                None => {
                    self.grads.insert(id, grad);
                }
            }
        }
    }
}

impl Tensor {
    /// Runs reverse-mode differentiation from this tensor.
    ///
    /// The seed gradient is all-ones (for the usual scalar-loss case
    /// this is the conventional `dL/dL = 1`). Use
    /// [`Tensor::backward_with_grad`] to seed with an explicit
    /// gradient — this is how the *client* side of split fine-tuning
    /// resumes back-propagation with gradients received over the
    /// network.
    pub fn backward(&self) -> GradStore {
        self.backward_with_grad(&Tensor::ones(self.shape().clone()))
    }

    /// Reverse-mode differentiation seeded with `grad` (same shape as
    /// `self`).
    ///
    /// # Panics
    ///
    /// Panics if `grad` has a different shape.
    pub fn backward_with_grad(&self, grad: &Tensor) -> GradStore {
        assert_eq!(
            grad.shape(),
            self.shape(),
            "seed gradient shape {} does not match tensor {}",
            grad.shape(),
            self.shape()
        );
        let mut store = GradStore::new();
        if !self.requires_grad() {
            return store;
        }

        // Topological order via iterative post-order DFS.
        let mut topo: Vec<Tensor> = Vec::new();
        let mut visited: HashSet<u64> = HashSet::new();
        let mut stack: Vec<(Tensor, bool)> = vec![(self.clone(), false)];
        while let Some((t, expanded)) = stack.pop() {
            if expanded {
                topo.push(t);
                continue;
            }
            if !visited.insert(t.id()) {
                continue;
            }
            let parents = t.op().map(|op| op.parents()).unwrap_or_default();
            stack.push((t, true));
            for p in parents {
                if p.requires_grad() && !visited.contains(&p.id()) {
                    stack.push((p, false));
                }
            }
        }

        // Contributions are buffered per tensor and summed in ascending
        // consumer-creation order, NOT in traversal-arrival order. The
        // traversal order depends on the global graph shape, so two
        // graphs computing the same per-row math (e.g. a solo model and
        // its image inside a stacked multi-client batch) would group
        // float additions differently and drift by ulps. Creation order
        // is a structural property of the op that built each consumer,
        // identical in both graphs, which makes gradients bitwise
        // reproducible across graph embeddings.
        let mut pending: HashMap<u64, Vec<(u64, Vec<f32>)>> = HashMap::new();
        // Seed sorts first: no real consumer can have id 0 here because
        // the root itself was created after id 0.
        pending.insert(self.id(), vec![(0, grad.to_vec())]);

        for t in topo.iter().rev() {
            let Some(mut contribs) = pending.remove(&t.id()) else {
                continue;
            };
            contribs.sort_by_key(|(consumer, _)| *consumer);
            let mut it = contribs.into_iter();
            let (_, mut acc) = it.next().expect("non-empty contribution list");
            for (_, data) in it {
                debug_assert_eq!(acc.len(), data.len(), "gradient shape changed");
                for (e, d) in acc.iter_mut().zip(data.iter()) {
                    *e += d;
                }
            }
            if let Some(op) = t.op() {
                for (parent, pgrad) in op.backward(t, &acc) {
                    if parent.requires_grad() {
                        pending
                            .entry(parent.id())
                            .or_default()
                            .push((t.id(), pgrad));
                    }
                }
            }
            // Interior gradients could be dropped here to save memory;
            // they are kept because tests inspect them.
            store.insert_raw(t.id(), Tensor::from_vec(acc, t.shape().clone()));
        }
        store
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[f32], b: &[f32], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < tol, "{a:?} vs {b:?}");
        }
    }

    /// Central finite differences of `f` w.r.t. `x`.
    fn finite_diff(x: &Tensor, f: impl Fn(&Tensor) -> Tensor) -> Vec<f32> {
        let eps = 1e-2f32;
        let n = x.elem_count();
        let base = x.to_vec();
        let mut grads = Vec::with_capacity(n);
        for i in 0..n {
            let mut plus = base.clone();
            plus[i] += eps;
            let mut minus = base.clone();
            minus[i] -= eps;
            let xp = Tensor::var_from_vec(plus, x.shape().clone());
            let xm = Tensor::var_from_vec(minus, x.shape().clone());
            let fp = f(&xp).to_scalar();
            let fm = f(&xm).to_scalar();
            grads.push((fp - fm) / (2.0 * eps));
        }
        grads
    }

    fn check_grad(x_data: Vec<f32>, shape: &[usize], f: impl Fn(&Tensor) -> Tensor, tol: f32) {
        let x = Tensor::var_from_vec(x_data, shape.to_vec());
        let loss = f(&x);
        let grads = loss.backward();
        let analytic = grads.get(&x).expect("missing gradient").to_vec();
        let numeric = finite_diff(&x, f);
        assert_close(&analytic, &numeric, tol);
    }

    #[test]
    fn grad_of_square() {
        check_grad(vec![1.0, -2.0, 0.5], &[3], |x| (x * x).sum_all(), 1e-3);
    }

    #[test]
    fn grad_of_binary_chain() {
        check_grad(
            vec![0.5, 1.5],
            &[2],
            |x| {
                let c = Tensor::from_vec(vec![2.0, -1.0], [2]);
                (&(x + &c) * x).sum_all()
            },
            1e-3,
        );
    }

    #[test]
    fn grad_of_div() {
        check_grad(
            vec![1.0, 2.0],
            &[2],
            |x| {
                let c = Tensor::from_vec(vec![3.0, 4.0], [2]);
                (&c / x).sum_all()
            },
            1e-2,
        );
    }

    #[test]
    fn grad_of_broadcast_add() {
        // Bias broadcast: gradient must reduce over rows.
        let bias = Tensor::var_from_vec(vec![0.1, 0.2], [2]);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [3, 2]);
        let loss = x.add(&bias).sum_all();
        let grads = loss.backward();
        assert_eq!(grads.get(&bias).unwrap().to_vec(), vec![3.0, 3.0]);
    }

    #[test]
    fn grad_of_unary_ops() {
        for f in [
            (|x: &Tensor| x.exp().sum_all()) as fn(&Tensor) -> Tensor,
            |x| x.tanh().sum_all(),
            |x| x.sigmoid().sum_all(),
            |x| x.gelu_exact().sum_all(),
            |x| x.silu().sum_all(),
        ] {
            check_grad(vec![0.3, -0.8, 1.2], &[3], f, 1e-2);
        }
        // ln and sqrt need positive inputs.
        check_grad(vec![0.5, 1.5, 3.0], &[3], |x| x.ln().sum_all(), 1e-2);
        check_grad(vec![0.5, 1.5, 3.0], &[3], |x| x.sqrt().sum_all(), 1e-2);
        // The fast (sigmoid-form) gelu is smooth enough that finite
        // differences through its polynomial exp2 stay within the
        // gradient-check tolerance.
        check_grad(vec![0.3, -0.8, 1.2], &[3], |x| x.gelu().sum_all(), 1e-2);
    }

    #[test]
    fn grad_of_matmul() {
        check_grad(
            vec![1.0, 2.0, 3.0, 4.0],
            &[2, 2],
            |x| {
                let w = Tensor::from_vec(vec![0.5, -1.0, 2.0, 1.5], [2, 2]);
                x.matmul(&w).sum_all()
            },
            1e-2,
        );
        // Gradient w.r.t. the weight too.
        let w = Tensor::var_from_vec(vec![0.5, -1.0, 2.0, 1.5], [2, 2]);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
        let grads = x.matmul(&w).sum_all().backward();
        let analytic = grads.get(&w).unwrap().to_vec();
        let numeric = finite_diff(&w, |w| x.matmul(w).sum_all());
        assert_close(&analytic, &numeric, 1e-2);
    }

    #[test]
    fn grad_of_batched_matmul() {
        let w = Tensor::from_vec((0..8).map(|i| 0.3 * i as f32 - 1.0).collect(), [2, 2, 2]);
        check_grad(
            (0..8).map(|i| 0.1 * i as f32).collect(),
            &[2, 2, 2],
            move |x| x.matmul(&w).sum_all(),
            1e-2,
        );
    }

    #[test]
    fn grad_of_softmax() {
        check_grad(
            vec![0.5, -0.5, 1.0, 0.2],
            &[2, 2],
            |x| {
                let w = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
                (&x.softmax_last() * &w).sum_all()
            },
            1e-2,
        );
    }

    #[test]
    fn grad_of_layer_norm() {
        let gamma = Tensor::from_vec(vec![1.5, 0.5, 2.0], [3]);
        let beta = Tensor::from_vec(vec![0.1, -0.1, 0.2], [3]);
        check_grad(
            vec![0.5, -1.0, 2.0, 1.0, 0.0, -0.5],
            &[2, 3],
            |x| {
                let w = Tensor::from_vec(vec![1.0, -2.0, 0.5, 2.0, 1.0, -1.0], [2, 3]);
                (&x.layer_norm(&gamma, &beta, 1e-5) * &w).sum_all()
            },
            2e-2,
        );
        // Gamma / beta gradients.
        let x = Tensor::from_vec(vec![0.5, -1.0, 2.0], [1, 3]);
        let g = Tensor::var_from_vec(vec![1.0, 1.0, 1.0], [3]);
        let b = Tensor::var_from_vec(vec![0.0, 0.0, 0.0], [3]);
        let w = Tensor::from_vec(vec![1.0, -2.0, 0.5], [1, 3]);
        let grads = (&x.layer_norm(&g, &b, 1e-5) * &w).sum_all().backward();
        let dg = grads.get(&g).unwrap().to_vec();
        let numeric = finite_diff(&g, |g| (&x.layer_norm(g, &b.detach(), 1e-5) * &w).sum_all());
        assert_close(&dg, &numeric, 2e-2);
        let db = grads.get(&b).unwrap().to_vec();
        assert_close(&db, &w.to_vec(), 1e-4);
    }

    #[test]
    fn grad_of_rms_norm() {
        let gamma = Tensor::from_vec(vec![1.5, 0.5, 2.0], [3]);
        check_grad(
            vec![0.5, -1.0, 2.0, 1.0, 0.3, -0.5],
            &[2, 3],
            |x| {
                let w = Tensor::from_vec(vec![1.0, -2.0, 0.5, 2.0, 1.0, -1.0], [2, 3]);
                (&x.rms_norm(&gamma, 1e-5) * &w).sum_all()
            },
            2e-2,
        );
        let x = Tensor::from_vec(vec![0.5, -1.0, 2.0], [1, 3]);
        let g = Tensor::var_from_vec(vec![1.0, 0.5, 2.0], [3]);
        let w = Tensor::from_vec(vec![1.0, -2.0, 0.5], [1, 3]);
        let grads = (&x.rms_norm(&g, 1e-5) * &w).sum_all().backward();
        let dg = grads.get(&g).unwrap().to_vec();
        let numeric = finite_diff(&g, |g| (&x.rms_norm(g, 1e-5) * &w).sum_all());
        assert_close(&dg, &numeric, 2e-2);
    }

    #[test]
    fn grad_of_embedding() {
        let table = Tensor::var_from_vec(vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6], [3, 2]);
        let out = Tensor::embedding(&table, &[2, 0, 2], &[3]);
        let grads = out.sum_all().backward();
        let dt = grads.get(&table).unwrap().to_vec();
        assert_eq!(dt, vec![1.0, 1.0, 0.0, 0.0, 2.0, 2.0]);
    }

    #[test]
    fn grad_of_cross_entropy() {
        check_grad(
            vec![0.2, -0.3, 0.8, -0.1, 0.4, 0.0],
            &[2, 3],
            |x| x.cross_entropy(&[2, 1]),
            1e-2,
        );
    }

    #[test]
    fn grad_of_rope() {
        check_grad(
            (0..8).map(|i| 0.2 * i as f32 - 0.7).collect(),
            &[1, 1, 2, 4],
            |x| {
                let w = Tensor::from_vec((0..8).map(|i| (i as f32).sin()).collect(), [1, 1, 2, 4]);
                (&x.rope(100.0, 1) * &w).sum_all()
            },
            1e-2,
        );
    }

    #[test]
    fn grad_of_shape_ops() {
        check_grad(
            (0..6).map(|i| i as f32).collect(),
            &[2, 3],
            |x| {
                let w = Tensor::from_vec(vec![1.0, -1.0, 2.0, 0.5, 3.0, -2.0], [3, 2]);
                (&x.t() * &w).sum_all()
            },
            1e-2,
        );
        check_grad(
            (0..6).map(|i| i as f32).collect(),
            &[2, 3],
            |x| x.narrow(1, 1, 2).sum_all(),
            1e-2,
        );
        check_grad(
            (0..6).map(|i| i as f32).collect(),
            &[2, 3],
            |x| x.reshape([3, 2]).sum_all(),
            1e-2,
        );
    }

    #[test]
    fn grad_of_concat() {
        let a = Tensor::var_from_vec(vec![1.0, 2.0], [1, 2]);
        let b = Tensor::var_from_vec(vec![3.0, 4.0], [1, 2]);
        let w = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
        let grads = (&Tensor::concat(&[a.clone(), b.clone()], 0) * &w)
            .sum_all()
            .backward();
        assert_eq!(grads.get(&a).unwrap().to_vec(), vec![1.0, 2.0]);
        assert_eq!(grads.get(&b).unwrap().to_vec(), vec![3.0, 4.0]);
    }

    #[test]
    fn grad_accumulates_on_reuse() {
        // x used twice: gradients must add.
        let x = Tensor::var_from_vec(vec![2.0], [1]);
        let y = (&(&x * &x) + &x).sum_all(); // d/dx (x^2 + x) = 2x + 1 = 5
        let grads = y.backward();
        assert_eq!(grads.get(&x).unwrap().to_vec(), vec![5.0]);
    }

    #[test]
    fn grad_of_mean() {
        let x = Tensor::var_from_vec(vec![1.0, 2.0, 3.0, 4.0], [4]);
        let grads = x.mean_all().backward();
        assert_eq!(grads.get(&x).unwrap().to_vec(), vec![0.25; 4]);
    }

    #[test]
    fn backward_with_explicit_seed() {
        // The split-learning client resumes backward with a received
        // gradient: y = 2x, seed dL/dy = [3], so dL/dx = [6].
        let x = Tensor::var_from_vec(vec![1.0], [1]);
        let y = x.mul_scalar(2.0);
        let seed = Tensor::from_vec(vec![3.0], [1]);
        let grads = y.backward_with_grad(&seed);
        assert_eq!(grads.get(&x).unwrap().to_vec(), vec![6.0]);
    }

    #[test]
    #[should_panic(expected = "seed gradient shape")]
    fn backward_seed_shape_checked() {
        let x = Tensor::var_from_vec(vec![1.0, 2.0], [2]);
        let y = x.mul_scalar(2.0);
        y.backward_with_grad(&Tensor::ones([3]));
    }

    #[test]
    fn no_grad_blocks_graph() {
        let x = Tensor::var_from_vec(vec![1.0], [1]);
        let y = crate::tensor::no_grad(|| (&x * &x).sum_all());
        let grads = y.backward();
        assert!(grads.is_empty());
    }

    #[test]
    fn detached_branch_gets_no_grad() {
        let x = Tensor::var_from_vec(vec![3.0], [1]);
        let d = x.detach();
        let y = (&x * &d).sum_all(); // treat d as constant: dy/dx = d = 3
        let grads = y.backward();
        assert_eq!(grads.get(&x).unwrap().to_vec(), vec![3.0]);
        assert!(grads.get(&d).is_none());
    }

    #[test]
    fn diamond_graph_gradients() {
        // y = (x + x) * x = 2x^2, dy/dx = 4x.
        let x = Tensor::var_from_vec(vec![1.5], [1]);
        let s = &x + &x;
        let y = (&s * &x).sum_all();
        let grads = y.backward();
        assert_close(&grads.get(&x).unwrap().to_vec(), &[6.0], 1e-5);
    }

    #[test]
    fn grad_store_scale_and_merge() {
        let x = Tensor::var_from_vec(vec![2.0], [1]);
        let mut a = (&x * &x).sum_all().backward(); // dx = 4
        let b = x.sum_all().backward(); // dx = 1
        a.merge(b);
        assert_eq!(a.get(&x).unwrap().to_vec(), vec![5.0]);
        a.scale(0.5);
        assert_eq!(a.get(&x).unwrap().to_vec(), vec![2.5]);
        // Merge of a disjoint store inserts.
        let y = Tensor::var_from_vec(vec![1.0], [1]);
        let c = y.sum_all().backward();
        a.merge(c);
        assert_eq!(a.get(&y).unwrap().to_vec(), vec![1.0]);
    }

    #[test]
    fn grad_store_api() {
        let x = Tensor::var_from_vec(vec![1.0], [1]);
        let mut grads = (&x * &x).sum_all().backward();
        assert!(!grads.is_empty());
        assert!(grads.size_bytes() > 0);
        let g = grads.remove(&x).unwrap();
        assert_eq!(g.to_vec(), vec![2.0]);
        assert!(grads.get(&x).is_none());
    }
}

//! Tensor operations, grouped by family.

pub(crate) mod binary;
pub(crate) mod matmul;
pub(crate) mod nn;
pub(crate) mod reduce;
pub(crate) mod shape_ops;
pub(crate) mod unary;

//! Neural-network primitives: softmax, normalization layers, embedding
//! lookup, fused cross-entropy, and rotary position embeddings.
//!
//! Row-wise kernels fan out over the shared worker pool (see
//! [`crate::parallel`]); rows are independent, so any partition of
//! them yields bitwise-identical results. Cross-row reductions
//! (the cross-entropy loss, `dgamma`/`dbeta`) accumulate over
//! fixed-size row blocks combined in block order, which keeps them
//! independent of the thread count too.

use std::sync::Arc;

use crate::op::Op;
use crate::parallel;
use crate::shape::Shape;
use crate::tensor::Tensor;

/// Rows per reduction block for blocked cross-row accumulations. Fixed
/// (not derived from the pool size) so the summation tree never moves.
const ROW_BLOCK: usize = 64;

// ----------------------------------------------------------------------
// Forward kernels (shared by ops and by backward recomputation)
// ----------------------------------------------------------------------

fn softmax_row(row: &mut [f32]) {
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut z = 0.0;
    for x in row.iter_mut() {
        *x = (*x - max).exp();
        z += *x;
    }
    let inv = 1.0 / z;
    for x in row.iter_mut() {
        *x *= inv;
    }
}

/// Numerically stable softmax along the last dimension, in place row by
/// row (rows are distributed over the worker pool).
pub(crate) fn softmax_rows(data: &mut [f32], rows: usize, cols: usize) {
    debug_assert_eq!(data.len(), rows * cols);
    parallel::par_chunks_mut(data, cols, rows * cols * 8, |_, chunk| {
        for row in chunk.chunks_exact_mut(cols) {
            softmax_row(row);
        }
    });
}

pub(crate) fn layer_norm_stats(row: &[f32], eps: f32) -> (f32, f32) {
    let n = row.len() as f32;
    let mu = row.iter().sum::<f32>() / n;
    let var = row.iter().map(|x| (x - mu) * (x - mu)).sum::<f32>() / n;
    (mu, 1.0 / (var + eps).sqrt())
}

pub(crate) fn rms_norm_rrms(row: &[f32], eps: f32) -> f32 {
    let n = row.len() as f32;
    let ms = row.iter().map(|x| x * x).sum::<f32>() / n;
    1.0 / (ms + eps).sqrt()
}

/// Rotary-embedding angle for pair index `i` at position `pos`.
pub(crate) fn rope_angle(pos: usize, pair: usize, half_dim: usize, base: f32) -> f32 {
    let exponent = pair as f32 / half_dim as f32;
    pos as f32 / base.powf(exponent)
}

// ----------------------------------------------------------------------
// Tensor methods
// ----------------------------------------------------------------------

impl Tensor {
    /// Softmax along the last dimension (numerically stabilized).
    pub fn softmax_last(&self) -> Tensor {
        let (rows, cols) = self.shape().rows_cols();
        let mut data = self.to_vec();
        softmax_rows(&mut data, rows, cols);
        Tensor::from_op(data, self.shape().clone(), Op::Softmax(self.clone()))
    }

    /// Layer normalization over the last dimension with affine
    /// parameters: `(x - mean) / sqrt(var + eps) * gamma + beta`.
    ///
    /// # Panics
    ///
    /// Panics if `gamma`/`beta` are not 1-D of the last-dim size.
    pub fn layer_norm(&self, gamma: &Tensor, beta: &Tensor, eps: f32) -> Tensor {
        let (rows, cols) = self.shape().rows_cols();
        assert_eq!(gamma.dims(), &[cols], "layer_norm gamma shape");
        assert_eq!(beta.dims(), &[cols], "layer_norm beta shape");
        let x = self.storage().read();
        let g = gamma.storage().read();
        let b = beta.storage().read();
        let mut out = crate::pool::take_zeroed_f32(rows * cols);
        parallel::par_chunks_mut(&mut out, cols, rows * cols * 6, |start, chunk| {
            for (local, orow) in chunk.chunks_exact_mut(cols).enumerate() {
                let r = start / cols + local;
                let row = &x[r * cols..(r + 1) * cols];
                let (mu, rstd) = layer_norm_stats(row, eps);
                for c in 0..cols {
                    orow[c] = (row[c] - mu) * rstd * g[c] + b[c];
                }
            }
        });
        drop((x, g, b));
        Tensor::from_op(
            out,
            self.shape().clone(),
            Op::LayerNorm {
                x: self.clone(),
                gamma: gamma.clone(),
                beta: beta.clone(),
                eps,
            },
        )
    }

    /// RMS normalization over the last dimension (Llama-style):
    /// `x / sqrt(mean(x^2) + eps) * gamma`.
    ///
    /// # Panics
    ///
    /// Panics if `gamma` is not 1-D of the last-dim size.
    pub fn rms_norm(&self, gamma: &Tensor, eps: f32) -> Tensor {
        let (rows, cols) = self.shape().rows_cols();
        assert_eq!(gamma.dims(), &[cols], "rms_norm gamma shape");
        let x = self.storage().read();
        let g = gamma.storage().read();
        let mut out = crate::pool::take_zeroed_f32(rows * cols);
        parallel::par_chunks_mut(&mut out, cols, rows * cols * 4, |start, chunk| {
            for (local, orow) in chunk.chunks_exact_mut(cols).enumerate() {
                let r = start / cols + local;
                let row = &x[r * cols..(r + 1) * cols];
                let rrms = rms_norm_rrms(row, eps);
                for c in 0..cols {
                    orow[c] = row[c] * rrms * g[c];
                }
            }
        });
        drop((x, g));
        Tensor::from_op(
            out,
            self.shape().clone(),
            Op::RmsNorm {
                x: self.clone(),
                gamma: gamma.clone(),
                eps,
            },
        )
    }

    /// Embedding lookup: for a table of shape `[vocab, dim]` and ids of
    /// logical shape `batch_dims`, returns `batch_dims + [dim]`.
    ///
    /// Gradients scatter-add into the table.
    ///
    /// # Panics
    ///
    /// Panics if the table is not 2-D, an id is out of vocabulary, or
    /// `ids.len()` does not equal the product of `batch_dims`.
    pub fn embedding(table: &Tensor, ids: &[usize], batch_dims: &[usize]) -> Tensor {
        assert_eq!(table.rank(), 2, "embedding table must be [vocab, dim]");
        let vocab = table.shape().dim(0);
        let dim = table.shape().dim(1);
        assert_eq!(
            ids.len(),
            batch_dims.iter().product::<usize>(),
            "ids length does not match batch dims {batch_dims:?}"
        );
        for &id in ids {
            assert!(id < vocab, "token id {id} out of vocabulary {vocab}");
        }
        let t = table.storage().read();
        let mut out = crate::pool::take_zeroed_f32(ids.len() * dim);
        parallel::par_chunks_mut(&mut out, dim, ids.len() * dim, |start, chunk| {
            for (local, orow) in chunk.chunks_exact_mut(dim).enumerate() {
                let id = ids[start / dim + local];
                orow.copy_from_slice(&t[id * dim..(id + 1) * dim]);
            }
        });
        drop(t);
        let mut dims = batch_dims.to_vec();
        dims.push(dim);
        Tensor::from_op(
            out,
            Shape::new(dims),
            Op::Embedding {
                table: table.clone(),
                ids: Arc::new(ids.to_vec()),
            },
        )
    }

    /// Fused mean cross-entropy between `self` (logits, `[N, vocab]` or
    /// `[.., vocab]` flattened row-wise) and integer `targets` (one per
    /// row).
    ///
    /// Equivalent to `mean(-log_softmax(logits)[target])`, with the
    /// backward pass fused for numerical stability.
    ///
    /// # Panics
    ///
    /// Panics if `targets.len()` does not match the number of rows or a
    /// target is out of range.
    pub fn cross_entropy(&self, targets: &[usize]) -> Tensor {
        let (rows, cols) = self.shape().rows_cols();
        assert_eq!(targets.len(), rows, "one target per logit row");
        let mut probs = self.to_vec();
        softmax_rows(&mut probs, rows, cols);
        // Fixed-size row blocks keep the f64 summation order identical
        // at any thread count.
        let blocks = rows.div_ceil(ROW_BLOCK);
        let partials = parallel::par_blocks(blocks, rows * 8, |bi| {
            let lo = bi * ROW_BLOCK;
            let hi = (lo + ROW_BLOCK).min(rows);
            let mut s = 0.0f64;
            for (r, &t) in targets[lo..hi].iter().enumerate().map(|(i, t)| (lo + i, t)) {
                assert!(t < cols, "target {t} out of range {cols}");
                // Clamp to avoid -inf on underflow.
                s -= f64::from(probs[r * cols + t].max(1e-12).ln());
            }
            s
        });
        let loss = (partials.iter().sum::<f64>() / rows as f64) as f32;
        Tensor::from_op(
            vec![loss],
            Shape::scalar(),
            Op::CrossEntropy {
                logits: self.clone(),
                targets: Arc::new(targets.to_vec()),
            },
        )
    }

    /// Applies rotary position embeddings to a `[batch, heads, seq,
    /// head_dim]` tensor, rotating adjacent pairs by position-dependent
    /// angles (`base` is typically `10000.0`). `pos_offset` shifts the
    /// position index (for generation with a prefix).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 4-D or the head dimension is odd.
    pub fn rope(&self, base: f32, pos_offset: usize) -> Tensor {
        assert_eq!(self.rank(), 4, "rope expects [b, h, s, d]");
        let d = self.shape().dim(3);
        assert_eq!(d % 2, 0, "rope head dim must be even");
        let s = self.shape().dim(2);
        let x = self.storage().read();
        let mut out = crate::pool::take_zeroed_f32(x.len());
        let half = d / 2;
        parallel::par_chunks_mut(&mut out, d, x.len() * 12, |start, chunk| {
            for (local, orow) in chunk.chunks_exact_mut(d).enumerate() {
                let row = start / d + local;
                let si = row % s;
                let off = row * d;
                for i in 0..half {
                    let theta = rope_angle(si + pos_offset, i, half, base);
                    let (sin, cos) = theta.sin_cos();
                    let x0 = x[off + 2 * i];
                    let x1 = x[off + 2 * i + 1];
                    orow[2 * i] = x0 * cos - x1 * sin;
                    orow[2 * i + 1] = x0 * sin + x1 * cos;
                }
            }
        });
        drop(x);
        Tensor::from_op(
            out,
            self.shape().clone(),
            Op::Rope {
                x: self.clone(),
                base,
                pos_offset,
            },
        )
    }

    /// An additive causal attention mask of shape `[seq, seq]`: zero on
    /// and below the diagonal, a large negative value above. Broadcasts
    /// against `[batch, heads, seq, seq]` attention scores.
    pub fn causal_mask(seq: usize) -> Tensor {
        let mut data = crate::pool::take_zeroed_f32(seq * seq);
        for i in 0..seq {
            for j in (i + 1)..seq {
                data[i * seq + j] = -1e9;
            }
        }
        Tensor::from_vec(data, [seq, seq])
    }
}

// ----------------------------------------------------------------------
// Backward kernels (called from Op::backward)
// ----------------------------------------------------------------------

pub(crate) fn softmax_backward(x: &Tensor, grad: &[f32]) -> Vec<f32> {
    let (rows, cols) = x.shape().rows_cols();
    let mut y = x.to_vec();
    softmax_rows(&mut y, rows, cols);
    let mut dx = crate::pool::take_zeroed_f32(y.len());
    parallel::par_chunks_mut(&mut dx, cols, rows * cols * 4, |start, chunk| {
        for (local, drow) in chunk.chunks_exact_mut(cols).enumerate() {
            let r = start / cols + local;
            let yr = &y[r * cols..(r + 1) * cols];
            let gr = &grad[r * cols..(r + 1) * cols];
            let dot: f32 = yr.iter().zip(gr.iter()).map(|(a, b)| a * b).sum();
            for c in 0..cols {
                drow[c] = yr[c] * (gr[c] - dot);
            }
        }
    });
    dx
}

pub(crate) fn layer_norm_backward(
    x: &Tensor,
    gamma: &Tensor,
    eps: f32,
    grad: &[f32],
) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
    let (rows, cols) = x.shape().rows_cols();
    let xd = x.storage().read();
    let g = gamma.storage().read();
    let n = cols as f32;
    let mut dx = crate::pool::take_zeroed_f32(xd.len());
    // One pass per fixed row block: writes the block's dx rows and
    // returns its dgamma/dbeta partials; folding the partials in block
    // order reproduces one summation order at any pool size.
    let partials =
        parallel::par_blocks_mut(&mut dx, ROW_BLOCK * cols, rows * cols * 10, |bi, chunk| {
            let mut dgamma = vec![0.0f32; cols];
            let mut dbeta = vec![0.0f32; cols];
            for (local, drow) in chunk.chunks_exact_mut(cols).enumerate() {
                let r = bi * ROW_BLOCK + local;
                let row = &xd[r * cols..(r + 1) * cols];
                let gr = &grad[r * cols..(r + 1) * cols];
                let (mu, rstd) = layer_norm_stats(row, eps);
                // xhat and dxhat.
                let mut sum_dxhat = 0.0f32;
                let mut sum_dxhat_xhat = 0.0f32;
                for c in 0..cols {
                    let xhat = (row[c] - mu) * rstd;
                    let dxhat = gr[c] * g[c];
                    sum_dxhat += dxhat;
                    sum_dxhat_xhat += dxhat * xhat;
                    dgamma[c] += gr[c] * xhat;
                    dbeta[c] += gr[c];
                }
                for c in 0..cols {
                    let xhat = (row[c] - mu) * rstd;
                    let dxhat = gr[c] * g[c];
                    drow[c] = rstd / n * (n * dxhat - sum_dxhat - xhat * sum_dxhat_xhat);
                }
            }
            (dgamma, dbeta)
        });
    let mut dgamma = vec![0.0f32; cols];
    let mut dbeta = vec![0.0f32; cols];
    for (pg, pb) in partials {
        for c in 0..cols {
            dgamma[c] += pg[c];
            dbeta[c] += pb[c];
        }
    }
    (dx, dgamma, dbeta)
}

pub(crate) fn rms_norm_backward(
    x: &Tensor,
    gamma: &Tensor,
    eps: f32,
    grad: &[f32],
) -> (Vec<f32>, Vec<f32>) {
    let (rows, cols) = x.shape().rows_cols();
    let xd = x.storage().read();
    let g = gamma.storage().read();
    let n = cols as f32;
    let mut dx = crate::pool::take_zeroed_f32(xd.len());
    let partials =
        parallel::par_blocks_mut(&mut dx, ROW_BLOCK * cols, rows * cols * 8, |bi, chunk| {
            let mut dgamma = vec![0.0f32; cols];
            for (local, drow) in chunk.chunks_exact_mut(cols).enumerate() {
                let r = bi * ROW_BLOCK + local;
                let row = &xd[r * cols..(r + 1) * cols];
                let gr = &grad[r * cols..(r + 1) * cols];
                let rrms = rms_norm_rrms(row, eps);
                let mut dot = 0.0f32; // sum_i dy_i * gamma_i * x_i
                for c in 0..cols {
                    dot += gr[c] * g[c] * row[c];
                    dgamma[c] += gr[c] * row[c] * rrms;
                }
                let k = rrms * rrms * rrms / n;
                for c in 0..cols {
                    drow[c] = gr[c] * g[c] * rrms - k * row[c] * dot;
                }
            }
            dgamma
        });
    let mut dgamma = vec![0.0f32; cols];
    for pg in partials {
        for c in 0..cols {
            dgamma[c] += pg[c];
        }
    }
    (dx, dgamma)
}

pub(crate) fn embedding_backward(table: &Tensor, ids: &[usize], grad: &[f32]) -> Vec<f32> {
    // Scatter-add: distinct ids may collide on the same table row, so
    // this stays serial (it is gather/scatter memory-bound anyway).
    let dim = table.shape().dim(1);
    let mut dt = crate::pool::take_zeroed_f32(table.elem_count());
    for (n, &id) in ids.iter().enumerate() {
        let src = &grad[n * dim..(n + 1) * dim];
        let dst = &mut dt[id * dim..(id + 1) * dim];
        for (d, s) in dst.iter_mut().zip(src.iter()) {
            *d += s;
        }
    }
    dt
}

pub(crate) fn cross_entropy_backward(
    logits: &Tensor,
    targets: &[usize],
    grad_scalar: f32,
) -> Vec<f32> {
    let (rows, cols) = logits.shape().rows_cols();
    let mut probs = logits.to_vec();
    softmax_rows(&mut probs, rows, cols);
    let scale = grad_scalar / rows as f32;
    parallel::par_chunks_mut(&mut probs, cols, rows * cols * 2, |start, chunk| {
        for (local, prow) in chunk.chunks_exact_mut(cols).enumerate() {
            prow[targets[start / cols + local]] -= 1.0;
            for p in prow.iter_mut() {
                *p *= scale;
            }
        }
    });
    probs
}

pub(crate) fn rope_backward(x: &Tensor, base: f32, pos_offset: usize, grad: &[f32]) -> Vec<f32> {
    let (s, d) = (x.shape().dim(2), x.shape().dim(3));
    let half = d / 2;
    let mut dx = crate::pool::take_zeroed_f32(grad.len());
    parallel::par_chunks_mut(&mut dx, d, grad.len() * 12, |start, chunk| {
        for (local, drow) in chunk.chunks_exact_mut(d).enumerate() {
            let row = start / d + local;
            let si = row % s;
            let off = row * d;
            for i in 0..half {
                let theta = rope_angle(si + pos_offset, i, half, base);
                let (sin, cos) = theta.sin_cos();
                let g0 = grad[off + 2 * i];
                let g1 = grad[off + 2 * i + 1];
                // Rotation is orthogonal: the adjoint rotates by -theta.
                drow[2 * i] = g0 * cos + g1 * sin;
                drow[2 * i + 1] = -g0 * sin + g1 * cos;
            }
        }
    });
    dx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 1000.0, 1000.0, 1000.0], [2, 3]);
        let y = x.softmax_last();
        let v = y.to_vec();
        let s1: f32 = v[..3].iter().sum();
        let s2: f32 = v[3..].iter().sum();
        assert!((s1 - 1.0).abs() < 1e-6);
        assert!((s2 - 1.0).abs() < 1e-6, "overflow not handled");
        assert!(v[2] > v[1] && v[1] > v[0]);
        assert!((v[3] - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn layer_norm_normalizes() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [1, 4]);
        let gamma = Tensor::ones([4]);
        let beta = Tensor::zeros([4]);
        let y = x.layer_norm(&gamma, &beta, 1e-5).to_vec();
        let mean: f32 = y.iter().sum::<f32>() / 4.0;
        let var: f32 = y.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-6);
        assert!((var - 1.0).abs() < 1e-3);
    }

    #[test]
    fn layer_norm_affine() {
        let x = Tensor::from_vec(vec![-1.0, 1.0], [1, 2]);
        let gamma = Tensor::from_vec(vec![2.0, 2.0], [2]);
        let beta = Tensor::from_vec(vec![1.0, 1.0], [2]);
        let y = x.layer_norm(&gamma, &beta, 1e-9).to_vec();
        assert!((y[0] - (-1.0)).abs() < 1e-3, "{y:?}");
        assert!((y[1] - 3.0).abs() < 1e-3);
    }

    #[test]
    fn rms_norm_matches_manual() {
        let x = Tensor::from_vec(vec![3.0, 4.0], [1, 2]);
        let gamma = Tensor::ones([2]);
        let y = x.rms_norm(&gamma, 0.0).to_vec();
        // rms = sqrt((9+16)/2) = sqrt(12.5)
        let rms = 12.5f32.sqrt();
        assert!((y[0] - 3.0 / rms).abs() < 1e-6);
        assert!((y[1] - 4.0 / rms).abs() < 1e-6);
    }

    #[test]
    fn embedding_lookup_and_shape() {
        let table = Tensor::from_vec(vec![0.0, 0.1, 1.0, 1.1, 2.0, 2.1], [3, 2]);
        let out = Tensor::embedding(&table, &[2, 0, 1, 1], &[2, 2]);
        assert_eq!(out.dims(), &[2, 2, 2]);
        assert_eq!(out.to_vec(), vec![2.0, 2.1, 0.0, 0.1, 1.0, 1.1, 1.0, 1.1]);
    }

    #[test]
    #[should_panic(expected = "out of vocabulary")]
    fn embedding_validates_ids() {
        let table = Tensor::zeros([3, 2]);
        Tensor::embedding(&table, &[3], &[1]);
    }

    #[test]
    fn embedding_backward_scatters() {
        let table = Tensor::zeros([3, 2]);
        let grad = vec![1.0, 2.0, 3.0, 4.0];
        // ids [1, 1]: both rows accumulate into table row 1.
        let dt = embedding_backward(&table, &[1, 1], &grad);
        assert_eq!(dt, vec![0.0, 0.0, 4.0, 6.0, 0.0, 0.0]);
    }

    #[test]
    fn cross_entropy_uniform_logits() {
        let logits = Tensor::zeros([2, 4]);
        let loss = logits.cross_entropy(&[0, 3]).to_scalar();
        assert!((loss - 4.0f32.ln()).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_confident_correct_is_small() {
        let logits = Tensor::from_vec(vec![10.0, 0.0, 0.0, 10.0], [2, 2]);
        let loss = logits.cross_entropy(&[0, 1]).to_scalar();
        assert!(loss < 1e-3);
    }

    #[test]
    fn cross_entropy_backward_rowsum_zero() {
        // softmax - onehot rows each sum to zero.
        let logits = Tensor::from_vec(vec![0.3, -0.4, 1.0, 0.0, 0.0, 0.0], [2, 3]);
        let g = cross_entropy_backward(&logits, &[2, 0], 1.0);
        let s1: f32 = g[..3].iter().sum();
        let s2: f32 = g[3..].iter().sum();
        assert!(s1.abs() < 1e-6 && s2.abs() < 1e-6);
    }

    #[test]
    fn rope_position_zero_is_identity() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [1, 1, 1, 4]);
        let y = x.rope(10_000.0, 0);
        assert!(x.max_abs_diff(&y) < 1e-6);
    }

    #[test]
    fn rope_preserves_norm() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0], [1, 1, 2, 4]);
        let y = x.rope(10_000.0, 3);
        let nx: f32 = x.to_vec().iter().map(|v| v * v).sum();
        let ny: f32 = y.to_vec().iter().map(|v| v * v).sum();
        assert!((nx - ny).abs() < 1e-4);
    }

    #[test]
    fn rope_relative_property() {
        // The same content at shifted offsets differs (absolute
        // encoding) but preserves pairwise dot products within a head
        // at equal relative distance.
        let x = Tensor::from_vec(vec![1.0, 0.5, -0.3, 0.8, 0.2, -1.0, 0.6, 0.1], [1, 1, 2, 4]);
        let y0 = x.rope(10_000.0, 0).to_vec();
        let y5 = x.rope(10_000.0, 5).to_vec();
        let dot = |a: &[f32], b: &[f32]| -> f32 { a.iter().zip(b).map(|(p, q)| p * q).sum() };
        let d0 = dot(&y0[..4], &y0[4..]);
        let d5 = dot(&y5[..4], &y5[4..]);
        assert!((d0 - d5).abs() < 1e-4, "{d0} vs {d5}");
    }

    #[test]
    fn causal_mask_shape_and_values() {
        let m = Tensor::causal_mask(3);
        assert_eq!(m.dims(), &[3, 3]);
        let v = m.to_vec();
        assert_eq!(v[0], 0.0); // (0,0)
        assert_eq!(v[1], -1e9); // (0,1) future
        assert_eq!(v[3], 0.0); // (1,0) past
        assert_eq!(v[4], 0.0); // (1,1)
        assert_eq!(v[5], -1e9); // (1,2) future
    }
}

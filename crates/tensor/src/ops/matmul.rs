//! Matrix multiplication: 2-D and batched, with a 2-D right-hand-side
//! fast path for linear layers.

use crate::op::Op;
use crate::shape::Shape;
use crate::tensor::Tensor;

/// `C[m,n] += A[m,k] @ B[k,n]` into `out` (row-major, pre-zeroed by the
/// caller). The i-k-j loop keeps the inner loop contiguous over `B` and
/// `out`.
pub(crate) fn matmul_2d_accum(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (kk, &aik) in a_row.iter().enumerate() {
            if aik == 0.0 {
                continue;
            }
            let b_row = &b[kk * n..(kk + 1) * n];
            for (o, &bkn) in out_row.iter_mut().zip(b_row.iter()) {
                *o += aik * bkn;
            }
        }
    }
}

/// `A^T[k,m] @ B[m? ...]` helper: computes `C[k,n] += A[m,k]^T @ B[m,n]`.
pub(crate) fn matmul_at_b_accum(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let b_row = &b[i * n..(i + 1) * n];
        for (kk, &aik) in a_row.iter().enumerate() {
            if aik == 0.0 {
                continue;
            }
            let out_row = &mut out[kk * n..(kk + 1) * n];
            for (o, &bin) in out_row.iter_mut().zip(b_row.iter()) {
                *o += aik * bin;
            }
        }
    }
}

/// `C[m,k] += A[m,n] @ B[k,n]^T`.
pub(crate) fn matmul_a_bt_accum(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    n: usize,
    k: usize,
) {
    for i in 0..m {
        let a_row = &a[i * n..(i + 1) * n];
        let out_row = &mut out[i * k..(i + 1) * k];
        for (kk, o) in out_row.iter_mut().enumerate() {
            let b_row = &b[kk * n..(kk + 1) * n];
            let mut acc = 0.0;
            for (x, y) in a_row.iter().zip(b_row.iter()) {
                acc += x * y;
            }
            *o += acc;
        }
    }
}

/// Describes how a matmul's operands line up.
pub(crate) struct MatmulDims {
    /// Number of batch matrices on the left (product of leading dims).
    pub batch: usize,
    pub m: usize,
    pub k: usize,
    pub n: usize,
    /// Whether the right operand is a single 2-D matrix shared across
    /// the batch (the linear-layer case).
    pub rhs_2d: bool,
}

pub(crate) fn matmul_dims(a: &Shape, b: &Shape) -> MatmulDims {
    assert!(a.rank() >= 2, "matmul lhs must be at least 2-D, got {a}");
    assert!(b.rank() >= 2, "matmul rhs must be at least 2-D, got {b}");
    let m = a.dim(a.rank() - 2);
    let k = a.dim(a.rank() - 1);
    let kb = b.dim(b.rank() - 2);
    let n = b.dim(b.rank() - 1);
    assert_eq!(
        k, kb,
        "matmul inner dimensions disagree: {a} @ {b} (k={k} vs {kb})"
    );
    let batch_a: usize = a.dims()[..a.rank() - 2].iter().product();
    if b.rank() == 2 {
        return MatmulDims {
            batch: batch_a,
            m,
            k,
            n,
            rhs_2d: true,
        };
    }
    let batch_b: usize = b.dims()[..b.rank() - 2].iter().product();
    assert_eq!(
        a.dims()[..a.rank() - 2],
        b.dims()[..b.rank() - 2],
        "matmul batch dimensions disagree: {a} @ {b}"
    );
    debug_assert_eq!(batch_a, batch_b);
    MatmulDims {
        batch: batch_a,
        m,
        k,
        n,
        rhs_2d: false,
    }
}

pub(crate) fn matmul_forward(a: &Tensor, b: &Tensor) -> (Vec<f32>, Shape) {
    let d = matmul_dims(a.shape(), b.shape());
    let da = a.storage().read();
    let db = b.storage().read();
    let mut out = vec![0.0f32; d.batch * d.m * d.n];
    for bi in 0..d.batch {
        let a_off = bi * d.m * d.k;
        let b_off = if d.rhs_2d { 0 } else { bi * d.k * d.n };
        let o_off = bi * d.m * d.n;
        matmul_2d_accum(
            &da[a_off..a_off + d.m * d.k],
            &db[b_off..b_off + d.k * d.n],
            &mut out[o_off..o_off + d.m * d.n],
            d.m,
            d.k,
            d.n,
        );
    }
    let mut dims = a.dims()[..a.rank() - 2].to_vec();
    dims.push(d.m);
    dims.push(d.n);
    (out, Shape::new(dims))
}

impl Tensor {
    /// Matrix multiplication.
    ///
    /// Supported operand layouts:
    ///
    /// * `[.., m, k] @ [.., k, n]` with identical leading (batch) dims;
    /// * `[.., m, k] @ [k, n]` — a shared 2-D right operand, the linear
    ///   layer case.
    ///
    /// # Panics
    ///
    /// Panics if inner or batch dimensions disagree or an operand has
    /// rank < 2.
    ///
    /// # Examples
    ///
    /// ```
    /// use menos_tensor::Tensor;
    ///
    /// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
    /// let id = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], [2, 2]);
    /// assert_eq!(a.matmul(&id).to_vec(), a.to_vec());
    /// ```
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        let (data, shape) = matmul_forward(self, rhs);
        Tensor::from_op(data, shape, Op::Matmul(self.clone(), rhs.clone()))
    }
}

/// Backward kernels returning `(grad_a, grad_b)` as flat data.
pub(crate) fn matmul_backward(a: &Tensor, b: &Tensor, grad_out: &[f32]) -> (Vec<f32>, Vec<f32>) {
    let d = matmul_dims(a.shape(), b.shape());
    let da = a.storage().read();
    let db = b.storage().read();
    let mut ga = vec![0.0f32; da.len()];
    let mut gb = vec![0.0f32; db.len()];
    for bi in 0..d.batch {
        let a_off = bi * d.m * d.k;
        let b_off = if d.rhs_2d { 0 } else { bi * d.k * d.n };
        let o_off = bi * d.m * d.n;
        let go = &grad_out[o_off..o_off + d.m * d.n];
        // dA = dC @ B^T  : [m,n] @ [k,n]^T -> [m,k]
        matmul_a_bt_accum(
            go,
            &db[b_off..b_off + d.k * d.n],
            &mut ga[a_off..a_off + d.m * d.k],
            d.m,
            d.n,
            d.k,
        );
        // dB = A^T @ dC : [m,k]^T @ [m,n] -> [k,n]; accumulates across
        // the batch when B is shared 2-D.
        matmul_at_b_accum(
            &da[a_off..a_off + d.m * d.k],
            go,
            &mut gb[b_off..b_off + d.k * d.n],
            d.m,
            d.k,
            d.n,
        );
    }
    (ga, gb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_2d() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [2, 3]);
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], [3, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.to_vec(), vec![58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_batched() {
        // Two independent 2x2 matmuls.
        let a = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 2.0, 0.0, 0.0, 2.0], [2, 2, 2]);
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0], [2, 2, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.dims(), &[2, 2, 2]);
        assert_eq!(c.to_vec(), vec![1.0, 2.0, 3.0, 4.0, 10.0, 12.0, 14.0, 16.0]);
    }

    #[test]
    fn matmul_batched_with_2d_rhs() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 1, 2]);
        let w = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], [2, 2]);
        let y = x.matmul(&w);
        assert_eq!(y.dims(), &[2, 1, 2]);
        assert_eq!(y.to_vec(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "inner dimensions disagree")]
    fn mismatched_inner_dims_panic() {
        let a = Tensor::zeros([2, 3]);
        let b = Tensor::zeros([4, 2]);
        let _ = a.matmul(&b);
    }

    #[test]
    #[should_panic(expected = "batch dimensions disagree")]
    fn mismatched_batch_dims_panic() {
        let a = Tensor::zeros([2, 2, 2]);
        let b = Tensor::zeros([3, 2, 2]);
        let _ = a.matmul(&b);
    }

    #[test]
    #[should_panic(expected = "at least 2-D")]
    fn rank1_lhs_panics() {
        let a = Tensor::zeros([2]);
        let b = Tensor::zeros([2, 2]);
        let _ = a.matmul(&b);
    }

    #[test]
    fn backward_shapes_and_values_2d() {
        let a = Tensor::var_from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
        let b = Tensor::var_from_vec(vec![5.0, 6.0, 7.0, 8.0], [2, 2]);
        let grad_out = vec![1.0, 1.0, 1.0, 1.0];
        let (ga, gb) = matmul_backward(&a, &b, &grad_out);
        // dA = dC @ B^T with dC = ones: row sums of B columns.
        assert_eq!(ga, vec![11.0, 15.0, 11.0, 15.0]);
        // dB = A^T @ dC: column sums of A rows.
        assert_eq!(gb, vec![4.0, 4.0, 6.0, 6.0]);
    }

    #[test]
    fn backward_accumulates_over_batch_for_2d_rhs() {
        let a = Tensor::var_from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 1, 2]);
        let w = Tensor::var_from_vec(vec![1.0, 0.0, 0.0, 1.0], [2, 2]);
        let grad_out = vec![1.0, 1.0, 1.0, 1.0];
        let (_, gw) = matmul_backward(&a, &w, &grad_out);
        // Both batch elements contribute to the shared weight grad.
        assert_eq!(gw, vec![4.0, 4.0, 6.0, 6.0]);
    }
}

//! Matrix multiplication: 2-D and batched, with a 2-D right-hand-side
//! fast path for linear layers.
//!
//! The kernels are cache-blocked (tiled over `k` and `n`), register-
//! blocked (`MR x NR` accumulator tiles that vectorize to FMA where the
//! target supports it), and fan out over the shared worker pool (see
//! [`crate::parallel`]) by partitioning *output rows* into disjoint
//! slices. Each output element is produced by exactly one worker
//! running the same accumulation chain in the same `k`-ascending
//! order, so results are bitwise identical at any thread count.

use crate::op::Op;
use crate::parallel;
use crate::shape::Shape;
use crate::tensor::Tensor;

/// Tile width over the reduction (`k`) dimension: keeps a `KB x NB`
/// panel of `B` resident in cache across all rows of the block.
const KB: usize = 256;
/// Tile width over the output column (`n`) dimension: one `NB`-wide
/// strip of an output row (1 KiB) plus the matching `B` columns.
const NB: usize = 256;
/// Register-tile height: output rows held live per microkernel call.
const MR: usize = 4;
/// Register-tile width: output columns held live per microkernel call
/// (four 8-lane AVX2 vectors, or eight SSE vectors).
const NR: usize = 32;

/// Fused multiply-add when the target has a hardware `fma` instruction,
/// separate multiply + add otherwise (where `mul_add` would be a slow
/// libm call). Chosen at compile time, so results are reproducible on a
/// given build even though the two forms round differently.
#[inline(always)]
fn fmadd(a: f32, b: f32, c: f32) -> f32 {
    if cfg!(target_feature = "fma") {
        a.mul_add(b, c)
    } else {
        a * b + c
    }
}

/// `MR x NR` register tile at output position `(i, j)`: all `MR * NR`
/// accumulators stay live (in vector registers) across the `k0..k1`
/// block, each receiving its contributions in ascending `k` order, and
/// the block partial is added into `out` afterwards.
#[allow(clippy::too_many_arguments)] // flat coordinates keep the hot path free of struct plumbing
#[inline(always)]
fn microkernel(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    k: usize,
    n: usize,
    i: usize,
    j: usize,
    k0: usize,
    k1: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    for kk in k0..k1 {
        let bw: &[f32; NR] = b[kk * n + j..kk * n + j + NR]
            .try_into()
            .expect("NR-wide B slice");
        for r in 0..MR {
            let ar = a[(i + r) * k + kk];
            for (ac, &bv) in acc[r].iter_mut().zip(bw) {
                *ac = fmadd(ar, bv, *ac);
            }
        }
    }
    for (r, accr) in acc.iter().enumerate() {
        let orow = &mut out[(i + r) * n + j..(i + r) * n + j + NR];
        for (o, &v) in orow.iter_mut().zip(accr) {
            *o += v;
        }
    }
}

/// Scalar edge path for rows/columns that do not fill a register tile.
/// Per element it runs the identical fmadd chain (`k` ascending within
/// the block, block partial added into `out`) as [`microkernel`], so
/// whether a row lands in a tile or on an edge never changes results.
#[allow(clippy::too_many_arguments)] // same coordinate set as `microkernel`
#[inline(always)]
fn edge_cols(
    a_row: &[f32],
    b: &[f32],
    out_row: &mut [f32],
    n: usize,
    j0: usize,
    j1: usize,
    k0: usize,
    k1: usize,
) {
    for jj in j0..j1 {
        let mut acc = 0.0f32;
        for kk in k0..k1 {
            acc = fmadd(a_row[kk], b[kk * n + jj], acc);
        }
        out_row[jj] += acc;
    }
}

/// `C[m,n] += A[m,k] @ B[k,n]` into `out` (row-major, pre-zeroed by the
/// caller). Serial building block: cache-blocked over `n` and `k`
/// around an `MR x NR` register-tiled microkernel, with scalar edges.
///
/// For any fixed output element the `k` contributions accumulate in
/// ascending order regardless of tiling, so tile sizes and row
/// partitioning never change the result.
pub(crate) fn matmul_2d_accum(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    for j0 in (0..n).step_by(NB) {
        let j1 = (j0 + NB).min(n);
        for k0 in (0..k).step_by(KB) {
            let k1 = (k0 + KB).min(k);
            let mut i = 0;
            while i + MR <= m {
                let mut j = j0;
                while j + NR <= j1 {
                    microkernel(a, b, out, k, n, i, j, k0, k1);
                    j += NR;
                }
                for r in 0..MR {
                    let a_row = &a[(i + r) * k..(i + r + 1) * k];
                    let out_row = &mut out[(i + r) * n..(i + r + 1) * n];
                    edge_cols(a_row, b, out_row, n, j, j1, k0, k1);
                }
                i += MR;
            }
            while i < m {
                let a_row = &a[i * k..(i + 1) * k];
                let out_row = &mut out[i * n..(i + 1) * n];
                edge_cols(a_row, b, out_row, n, j0, j1, k0, k1);
                i += 1;
            }
        }
    }
}

/// `C[krows,n] += A[m,k]^T @ B[m,n]` restricted to the output rows
/// `kk0 .. kk0 + krows` (with `out_rows` covering exactly that band).
/// The `i` (sample) loop stays outermost and ascending, so every
/// output element accumulates its `m` contributions in the same order
/// no matter how the `k` rows are partitioned across workers.
fn at_b_rows(a: &[f32], b: &[f32], out_rows: &mut [f32], m: usize, k: usize, n: usize, kk0: usize) {
    let krows = out_rows.len() / n;
    for j0 in (0..n).step_by(NB) {
        let j1 = (j0 + NB).min(n);
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            let b_row = &b[i * n + j0..i * n + j1];
            for kk in 0..krows {
                let aik = a_row[kk0 + kk];
                let out_row = &mut out_rows[kk * n + j0..kk * n + j1];
                for (o, &bin) in out_row.iter_mut().zip(b_row) {
                    *o += aik * bin;
                }
            }
        }
    }
}

/// `C[k,n] += A[m,k]^T @ B[m,n]` over the full output (serial).
#[cfg(test)]
pub(crate) fn matmul_at_b_accum(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    debug_assert_eq!(out.len(), k * n);
    at_b_rows(a, b, out, m, k, n, 0);
}

/// `C[rows,k] += A[rows,n] @ B[k,n]^T` where `a_rows`/`out_rows` cover
/// the same band of rows. Dot products use four independent
/// accumulators (combined in a fixed tree) for ILP; the `B` row block
/// is tiled so it stays cache-resident across the row band.
fn a_bt_rows(a_rows: &[f32], b: &[f32], out_rows: &mut [f32], n: usize, k: usize) {
    let rows = out_rows.len() / k.max(1);
    for k0 in (0..k).step_by(KB) {
        let k1 = (k0 + KB).min(k);
        for i in 0..rows {
            let a_row = &a_rows[i * n..(i + 1) * n];
            let out_row = &mut out_rows[i * k + k0..i * k + k1];
            for (kk, o) in out_row.iter_mut().enumerate() {
                let b_row = &b[(k0 + kk) * n..(k0 + kk + 1) * n];
                let mut c = a_row.chunks_exact(4).zip(b_row.chunks_exact(4));
                let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0, 0.0, 0.0);
                for (xa, xb) in &mut c {
                    s0 += xa[0] * xb[0];
                    s1 += xa[1] * xb[1];
                    s2 += xa[2] * xb[2];
                    s3 += xa[3] * xb[3];
                }
                let mut acc = (s0 + s1) + (s2 + s3);
                let tail = n - n % 4;
                for (x, y) in a_row[tail..].iter().zip(&b_row[tail..]) {
                    acc += x * y;
                }
                *o += acc;
            }
        }
    }
}

/// `C[m,k] += A[m,n] @ B[k,n]^T` over the full output (serial).
#[cfg(test)]
pub(crate) fn matmul_a_bt_accum(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    n: usize,
    k: usize,
) {
    debug_assert_eq!(out.len(), m * k);
    debug_assert_eq!(a.len(), m * n);
    a_bt_rows(a, b, out, n, k);
}

/// Describes how a matmul's operands line up.
pub(crate) struct MatmulDims {
    /// Number of batch matrices on the left (product of leading dims).
    pub batch: usize,
    pub m: usize,
    pub k: usize,
    pub n: usize,
    /// Whether the right operand is a single 2-D matrix shared across
    /// the batch (the linear-layer case).
    pub rhs_2d: bool,
}

pub(crate) fn matmul_dims(a: &Shape, b: &Shape) -> MatmulDims {
    assert!(a.rank() >= 2, "matmul lhs must be at least 2-D, got {a}");
    assert!(b.rank() >= 2, "matmul rhs must be at least 2-D, got {b}");
    let m = a.dim(a.rank() - 2);
    let k = a.dim(a.rank() - 1);
    let kb = b.dim(b.rank() - 2);
    let n = b.dim(b.rank() - 1);
    assert_eq!(
        k, kb,
        "matmul inner dimensions disagree: {a} @ {b} (k={k} vs {kb})"
    );
    let batch_a: usize = a.dims()[..a.rank() - 2].iter().product();
    if b.rank() == 2 {
        return MatmulDims {
            batch: batch_a,
            m,
            k,
            n,
            rhs_2d: true,
        };
    }
    let batch_b: usize = b.dims()[..b.rank() - 2].iter().product();
    assert_eq!(
        a.dims()[..a.rank() - 2],
        b.dims()[..b.rank() - 2],
        "matmul batch dimensions disagree: {a} @ {b}"
    );
    debug_assert_eq!(batch_a, batch_b);
    MatmulDims {
        batch: batch_a,
        m,
        k,
        n,
        rhs_2d: false,
    }
}

pub(crate) fn matmul_forward(a: &Tensor, b: &Tensor) -> (Vec<f32>, Shape) {
    let d = matmul_dims(a.shape(), b.shape());
    let da = a.storage().read();
    let db = b.storage().read();
    let mut out = crate::pool::take_zeroed_f32(d.batch * d.m * d.n);
    let work = 2 * d.batch * d.m * d.k * d.n;
    if d.rhs_2d {
        // A shared 2-D rhs makes the whole batch one flat
        // [batch*m, k] @ [k, n] product: partition the flat rows.
        parallel::par_chunks_mut(&mut out, d.n, work, |start, chunk| {
            let r0 = start / d.n;
            let rows = chunk.len() / d.n;
            matmul_2d_accum(&da[r0 * d.k..(r0 + rows) * d.k], &db, chunk, rows, d.k, d.n);
        });
    } else {
        // Batched rhs: partition the global row space batch*m so small
        // batches still use the full pool; each worker walks the
        // batches its row band intersects.
        parallel::par_chunks_mut(&mut out, d.n, work, |start, chunk| {
            let mut r = start / d.n;
            let end = r + chunk.len() / d.n;
            let mut off = 0usize;
            while r < end {
                let bi = r / d.m;
                let take = ((bi + 1) * d.m).min(end) - r;
                let b_off = bi * d.k * d.n;
                matmul_2d_accum(
                    &da[r * d.k..(r + take) * d.k],
                    &db[b_off..b_off + d.k * d.n],
                    &mut chunk[off..off + take * d.n],
                    take,
                    d.k,
                    d.n,
                );
                r += take;
                off += take * d.n;
            }
        });
    }
    let mut dims = a.dims()[..a.rank() - 2].to_vec();
    dims.push(d.m);
    dims.push(d.n);
    (out, Shape::new(dims))
}

impl Tensor {
    /// Matrix multiplication.
    ///
    /// Supported operand layouts:
    ///
    /// * `[.., m, k] @ [.., k, n]` with identical leading (batch) dims;
    /// * `[.., m, k] @ [k, n]` — a shared 2-D right operand, the linear
    ///   layer case.
    ///
    /// # Panics
    ///
    /// Panics if inner or batch dimensions disagree or an operand has
    /// rank < 2.
    ///
    /// # Examples
    ///
    /// ```
    /// use menos_tensor::Tensor;
    ///
    /// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
    /// let id = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], [2, 2]);
    /// assert_eq!(a.matmul(&id).to_vec(), a.to_vec());
    /// ```
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        let (data, shape) = matmul_forward(self, rhs);
        Tensor::from_op(data, shape, Op::Matmul(self.clone(), rhs.clone()))
    }
}

/// Backward kernels returning `(grad_a, grad_b)` as flat data.
pub(crate) fn matmul_backward(a: &Tensor, b: &Tensor, grad_out: &[f32]) -> (Vec<f32>, Vec<f32>) {
    let d = matmul_dims(a.shape(), b.shape());
    let da = a.storage().read();
    let db = b.storage().read();
    let mut ga = crate::pool::take_zeroed_f32(da.len());
    let mut gb = crate::pool::take_zeroed_f32(db.len());
    let work = 2 * d.batch * d.m * d.k * d.n;

    // dA = dC @ B^T : [m,n] @ [k,n]^T -> [m,k]. The grad rows are
    // independent, so partition the global row space batch*m.
    parallel::par_chunks_mut(&mut ga, d.k, work, |start, chunk| {
        let mut r = start / d.k;
        let end = r + chunk.len() / d.k;
        let mut off = 0usize;
        while r < end {
            let bi = r / d.m;
            let take = ((bi + 1) * d.m).min(end) - r;
            let b_off = if d.rhs_2d { 0 } else { bi * d.k * d.n };
            a_bt_rows(
                &grad_out[r * d.n..(r + take) * d.n],
                &db[b_off..b_off + d.k * d.n],
                &mut chunk[off..off + take * d.k],
                d.n,
                d.k,
            );
            r += take;
            off += take * d.k;
        }
    });

    // dB = A^T @ dC : [m,k]^T @ [m,n] -> [k,n].
    if d.rhs_2d {
        // The shared rhs accumulates over the whole batch; flattening
        // to one [batch*m, k]^T @ [batch*m, n] product keeps the `i`
        // loop globally ascending (the serial summation order) while
        // workers own disjoint bands of the k output rows.
        parallel::par_chunks_mut(&mut gb, d.n, work, |start, chunk| {
            at_b_rows(&da, grad_out, chunk, d.batch * d.m, d.k, d.n, start / d.n);
        });
    } else {
        // Per-batch grads are independent: partition the global
        // batch*k output row space.
        parallel::par_chunks_mut(&mut gb, d.n, work, |start, chunk| {
            let mut r = start / d.n;
            let end = r + chunk.len() / d.n;
            let mut off = 0usize;
            while r < end {
                let bi = r / d.k;
                let take = ((bi + 1) * d.k).min(end) - r;
                let a_off = bi * d.m * d.k;
                let o_off = bi * d.m * d.n;
                at_b_rows(
                    &da[a_off..a_off + d.m * d.k],
                    &grad_out[o_off..o_off + d.m * d.n],
                    &mut chunk[off..off + take * d.n],
                    d.m,
                    d.k,
                    d.n,
                    r - bi * d.k,
                );
                r += take;
                off += take * d.n;
            }
        });
    }
    (ga, gb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_2d() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [2, 3]);
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], [3, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.to_vec(), vec![58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_batched() {
        // Two independent 2x2 matmuls.
        let a = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 2.0, 0.0, 0.0, 2.0], [2, 2, 2]);
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0], [2, 2, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.dims(), &[2, 2, 2]);
        assert_eq!(c.to_vec(), vec![1.0, 2.0, 3.0, 4.0, 10.0, 12.0, 14.0, 16.0]);
    }

    #[test]
    fn matmul_batched_with_2d_rhs() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 1, 2]);
        let w = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], [2, 2]);
        let y = x.matmul(&w);
        assert_eq!(y.dims(), &[2, 1, 2]);
        assert_eq!(y.to_vec(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "inner dimensions disagree")]
    fn mismatched_inner_dims_panic() {
        let a = Tensor::zeros([2, 3]);
        let b = Tensor::zeros([4, 2]);
        let _ = a.matmul(&b);
    }

    #[test]
    #[should_panic(expected = "batch dimensions disagree")]
    fn mismatched_batch_dims_panic() {
        let a = Tensor::zeros([2, 2, 2]);
        let b = Tensor::zeros([3, 2, 2]);
        let _ = a.matmul(&b);
    }

    #[test]
    #[should_panic(expected = "at least 2-D")]
    fn rank1_lhs_panics() {
        let a = Tensor::zeros([2]);
        let b = Tensor::zeros([2, 2]);
        let _ = a.matmul(&b);
    }

    #[test]
    fn backward_shapes_and_values_2d() {
        let a = Tensor::var_from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
        let b = Tensor::var_from_vec(vec![5.0, 6.0, 7.0, 8.0], [2, 2]);
        let grad_out = vec![1.0, 1.0, 1.0, 1.0];
        let (ga, gb) = matmul_backward(&a, &b, &grad_out);
        // dA = dC @ B^T with dC = ones: row sums of B columns.
        assert_eq!(ga, vec![11.0, 15.0, 11.0, 15.0]);
        // dB = A^T @ dC: column sums of A rows.
        assert_eq!(gb, vec![4.0, 4.0, 6.0, 6.0]);
    }

    #[test]
    fn backward_accumulates_over_batch_for_2d_rhs() {
        let a = Tensor::var_from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 1, 2]);
        let w = Tensor::var_from_vec(vec![1.0, 0.0, 0.0, 1.0], [2, 2]);
        let grad_out = vec![1.0, 1.0, 1.0, 1.0];
        let (_, gw) = matmul_backward(&a, &w, &grad_out);
        // Both batch elements contribute to the shared weight grad.
        assert_eq!(gw, vec![4.0, 4.0, 6.0, 6.0]);
    }

    /// Textbook triple loop used as the oracle for the tiled kernels.
    fn naive_matmul(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for kk in 0..k {
                    acc += a[i * k + kk] * b[kk * n + j];
                }
                out[i * n + j] = acc;
            }
        }
        out
    }

    fn ramp(len: usize, scale: f32) -> Vec<f32> {
        (0..len)
            .map(|i| ((i * 37 % 23) as f32 - 11.0) * scale)
            .collect()
    }

    #[test]
    fn tiled_kernel_matches_naive_on_odd_sizes() {
        // Sizes straddling the KB/NB tile boundaries, including
        // remainders in every dimension.
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 7), (130, 129, 257), (17, 200, 300)] {
            let a = ramp(m * k, 0.05);
            let b = ramp(k * n, 0.03);
            let mut out = vec![0.0f32; m * n];
            matmul_2d_accum(&a, &b, &mut out, m, k, n);
            let want = naive_matmul(&a, &b, m, k, n);
            for (got, want) in out.iter().zip(&want) {
                assert!(
                    (got - want).abs() <= 1e-3 * want.abs().max(1.0),
                    "{got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn backward_kernels_match_naive_on_odd_sizes() {
        let (m, k, n) = (13, 37, 41);
        let a = ramp(m * k, 0.05);
        let g = ramp(m * n, 0.03);
        // dB = A^T @ dC against a naive transpose-then-multiply.
        let mut gb = vec![0.0f32; k * n];
        matmul_at_b_accum(&a, &g, &mut gb, m, k, n);
        let mut at = vec![0.0f32; k * m];
        for i in 0..m {
            for kk in 0..k {
                at[kk * m + i] = a[i * k + kk];
            }
        }
        let want = naive_matmul(&at, &g, k, m, n);
        for (got, want) in gb.iter().zip(&want) {
            assert!(
                (got - want).abs() <= 1e-3 * want.abs().max(1.0),
                "{got} vs {want}"
            );
        }
        // dA = dC @ B^T against naive multiply by an explicit B^T.
        let b = ramp(k * n, 0.07);
        let mut ga = vec![0.0f32; m * k];
        matmul_a_bt_accum(&g, &b, &mut ga, m, n, k);
        let mut bt = vec![0.0f32; n * k];
        for kk in 0..k {
            for j in 0..n {
                bt[j * k + kk] = b[kk * n + j];
            }
        }
        let want = naive_matmul(&g, &bt, m, n, k);
        for (got, want) in ga.iter().zip(&want) {
            assert!(
                (got - want).abs() <= 1e-3 * want.abs().max(1.0),
                "{got} vs {want}"
            );
        }
    }

    #[test]
    fn zero_times_infinity_propagates_nan() {
        // The old kernels skipped a == 0.0 as a sparsity shortcut,
        // which silently dropped inf/NaN from the rhs. IEEE says
        // 0 * inf = NaN and that must reach the output.
        let a = Tensor::from_vec(vec![0.0, 0.0], [1, 2]);
        let b = Tensor::from_vec(vec![f32::INFINITY, 1.0, 2.0, 3.0], [2, 2]);
        let c = a.matmul(&b).to_vec();
        assert!(c[0].is_nan(), "0 * inf must produce NaN, got {}", c[0]);

        let mut out = vec![0.0f32; 2 * 2];
        matmul_at_b_accum(&[0.0, 0.0], &[f32::INFINITY, 1.0], &mut out, 1, 2, 2);
        assert!(out[0].is_nan(), "A^T B dropped 0 * inf: {out:?}");
    }
}

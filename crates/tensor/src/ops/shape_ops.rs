//! Shape-changing operations: reshape, permute, narrow, concat.

use crate::op::Op;
use crate::pool;
use crate::shape::{for_each_index, Shape};
use crate::tensor::Tensor;

pub(crate) fn permute_kernel(data: &[f32], shape: &Shape, perm: &[usize]) -> (Vec<f32>, Shape) {
    let out_dims: Vec<usize> = perm.iter().map(|&d| shape.dim(d)).collect();
    let out_shape = Shape::new(out_dims);
    let in_strides = shape.strides();
    let mut out = pool::take_zeroed_f32(shape.elem_count());
    let mut oi = 0usize;
    for_each_index(&out_shape, |out_idx| {
        let mut in_off = 0;
        for (od, &src_dim) in perm.iter().enumerate() {
            in_off += out_idx[od] * in_strides[src_dim];
        }
        out[oi] = data[in_off];
        oi += 1;
    });
    (out, out_shape)
}

pub(crate) fn inverse_perm(perm: &[usize]) -> Vec<usize> {
    let mut inv = vec![0usize; perm.len()];
    for (i, &p) in perm.iter().enumerate() {
        inv[p] = i;
    }
    inv
}

pub(crate) fn narrow_kernel(
    data: &[f32],
    shape: &Shape,
    dim: usize,
    start: usize,
    len: usize,
) -> (Vec<f32>, Shape) {
    let outer: usize = shape.dims()[..dim].iter().product();
    let inner: usize = shape.dims()[dim + 1..].iter().product();
    let dsz = shape.dim(dim);
    let mut out_dims = shape.dims().to_vec();
    out_dims[dim] = len;
    let mut out = pool::take_f32(outer * len * inner);
    for o in 0..outer {
        let base = o * dsz * inner + start * inner;
        out.extend_from_slice(&data[base..base + len * inner]);
    }
    pool::count_copied(out.len() * 4);
    (out, Shape::new(out_dims))
}

/// Scatters `grad` (shaped like the narrow output) back into a zero
/// tensor shaped like the narrow input.
pub(crate) fn narrow_backward_kernel(
    grad: &[f32],
    in_shape: &Shape,
    dim: usize,
    start: usize,
    len: usize,
) -> Vec<f32> {
    let outer: usize = in_shape.dims()[..dim].iter().product();
    let inner: usize = in_shape.dims()[dim + 1..].iter().product();
    let dsz = in_shape.dim(dim);
    let mut out = pool::take_zeroed_f32(in_shape.elem_count());
    for o in 0..outer {
        let dst = o * dsz * inner + start * inner;
        let src = o * len * inner;
        out[dst..dst + len * inner].copy_from_slice(&grad[src..src + len * inner]);
    }
    pool::count_copied(grad.len() * 4);
    out
}

impl Tensor {
    /// Reinterprets the data with a new shape of the same element
    /// count. Free at the data level (the buffer is copied only because
    /// the result is a fresh graph node).
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(&self, shape: impl Into<Shape>) -> Tensor {
        let shape = shape.into();
        assert_eq!(
            self.elem_count(),
            shape.elem_count(),
            "reshape {} -> {shape} changes element count",
            self.shape()
        );
        Tensor::from_op(self.to_vec(), shape, Op::Reshape(self.clone()))
    }

    /// Reorders dimensions: `out[i0, i1, ..] = self[i_perm[0], ..]`.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..rank`.
    ///
    /// # Examples
    ///
    /// ```
    /// use menos_tensor::Tensor;
    /// let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [2, 3]);
    /// assert_eq!(t.permute(&[1, 0]).to_vec(), vec![1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
    /// ```
    pub fn permute(&self, perm: &[usize]) -> Tensor {
        assert_eq!(perm.len(), self.rank(), "permutation rank mismatch");
        let mut seen = vec![false; perm.len()];
        for &p in perm {
            assert!(p < perm.len() && !seen[p], "invalid permutation {perm:?}");
            seen[p] = true;
        }
        let data = self.storage().read();
        let (out, shape) = permute_kernel(&data, self.shape(), perm);
        drop(data);
        Tensor::from_op(out, shape, Op::Permute(self.clone(), perm.to_vec()))
    }

    /// Swaps the last two dimensions (matrix transpose for 2-D).
    ///
    /// # Panics
    ///
    /// Panics if rank < 2.
    pub fn t(&self) -> Tensor {
        assert!(self.rank() >= 2, "transpose needs rank >= 2");
        let mut perm: Vec<usize> = (0..self.rank()).collect();
        perm.swap(self.rank() - 2, self.rank() - 1);
        self.permute(&perm)
    }

    /// Selects `len` indices starting at `start` along dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the dimension.
    pub fn narrow(&self, dim: usize, start: usize, len: usize) -> Tensor {
        assert!(dim < self.rank(), "narrow dim {dim} out of range");
        assert!(
            start + len <= self.shape().dim(dim),
            "narrow range {start}+{len} exceeds dim {dim} of {}",
            self.shape()
        );
        let data = self.storage().read();
        let (out, shape) = narrow_kernel(&data, self.shape(), dim, start, len);
        drop(data);
        Tensor::from_op(out, shape, Op::Narrow(self.clone(), dim, start, len))
    }

    /// Concatenates tensors along `dim`. All other dimensions must
    /// agree.
    ///
    /// # Panics
    ///
    /// Panics on an empty input list or mismatched shapes.
    pub fn concat(tensors: &[Tensor], dim: usize) -> Tensor {
        assert!(!tensors.is_empty(), "concat of zero tensors");
        let first = &tensors[0];
        assert!(dim < first.rank(), "concat dim out of range");
        for t in tensors {
            assert_eq!(t.rank(), first.rank(), "concat rank mismatch");
            for d in 0..first.rank() {
                if d != dim {
                    assert_eq!(
                        t.shape().dim(d),
                        first.shape().dim(d),
                        "concat shape mismatch on dim {d}"
                    );
                }
            }
        }
        let outer: usize = first.dims()[..dim].iter().product();
        let inner: usize = first.dims()[dim + 1..].iter().product();
        let total_dim: usize = tensors.iter().map(|t| t.shape().dim(dim)).sum();
        let mut out_dims = first.dims().to_vec();
        out_dims[dim] = total_dim;
        let mut out = pool::take_f32(outer * total_dim * inner);
        let guards: Vec<_> = tensors.iter().map(|t| t.storage().read()).collect();
        for o in 0..outer {
            for (t, g) in tensors.iter().zip(guards.iter()) {
                let d = t.shape().dim(dim);
                let base = o * d * inner;
                out.extend_from_slice(&g[base..base + d * inner]);
            }
        }
        drop(guards);
        pool::count_copied(out.len() * 4);
        Tensor::from_op(out, Shape::new(out_dims), Op::Concat(tensors.to_vec(), dim))
    }

    /// Stacks heterogeneous micro-batches along the batch axis
    /// (dimension 0): inputs shaped `[b_i, ...]` with identical trailing
    /// dimensions become one `[Σ b_i, ...]` tensor.
    ///
    /// This is the entry point of the batched server step: several
    /// clients' activations are fused so the compute backend sees one
    /// large matmul instead of many small ones. Because every kernel in
    /// this crate is documented row-bitwise-invariant (a row's result
    /// never depends on which tile or batch position it lands in),
    /// `stack_batches` followed by [`Tensor::unstack_batches`] returns
    /// each client's rows bit-identical to running them alone.
    ///
    /// # Panics
    ///
    /// Panics on an empty input list or mismatched trailing dimensions.
    pub fn stack_batches(batches: &[Tensor]) -> Tensor {
        Tensor::concat(batches, 0)
    }

    /// Splits a stacked tensor back into per-client micro-batches:
    /// the inverse of [`Tensor::stack_batches`]. `sizes[i]` is the
    /// batch-dimension extent of part `i`.
    ///
    /// # Panics
    ///
    /// Panics if `sizes` does not sum to the batch dimension.
    pub fn unstack_batches(&self, sizes: &[usize]) -> Vec<Tensor> {
        let total: usize = sizes.iter().sum();
        assert_eq!(
            total,
            self.shape().dim(0),
            "unstack sizes {sizes:?} do not sum to batch dim of {}",
            self.shape()
        );
        let mut out = Vec::with_capacity(sizes.len());
        let mut start = 0;
        for &len in sizes {
            out.push(self.narrow(0, start, len));
            start += len;
        }
        out
    }

    /// Splits into equal chunks along `dim`.
    ///
    /// # Panics
    ///
    /// Panics if the dimension is not divisible by `chunks`.
    pub fn chunk(&self, chunks: usize, dim: usize) -> Vec<Tensor> {
        let dsz = self.shape().dim(dim);
        assert_eq!(
            dsz % chunks,
            0,
            "dim {dim} size {dsz} not divisible by {chunks}"
        );
        let each = dsz / chunks;
        (0..chunks)
            .map(|i| self.narrow(dim, i * each, each))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [4]);
        let r = t.reshape([2, 2]);
        assert_eq!(r.dims(), &[2, 2]);
        assert_eq!(r.to_vec(), t.to_vec());
    }

    #[test]
    #[should_panic(expected = "changes element count")]
    fn reshape_validates_count() {
        Tensor::zeros([4]).reshape([3]);
    }

    #[test]
    fn transpose_2d() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [2, 3]);
        let tt = t.t();
        assert_eq!(tt.dims(), &[3, 2]);
        assert_eq!(tt.to_vec(), vec![1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
        // Double transpose is identity.
        assert_eq!(tt.t().to_vec(), t.to_vec());
    }

    #[test]
    fn permute_4d_head_split() {
        // [b=1, s=2, h=2, d=2] -> [b, h, s, d] as attention does.
        let t = Tensor::from_vec((0..8).map(|x| x as f32).collect(), [1, 2, 2, 2]);
        let p = t.permute(&[0, 2, 1, 3]);
        assert_eq!(p.dims(), &[1, 2, 2, 2]);
        assert_eq!(p.to_vec(), vec![0.0, 1.0, 4.0, 5.0, 2.0, 3.0, 6.0, 7.0]);
    }

    #[test]
    #[should_panic(expected = "invalid permutation")]
    fn permute_rejects_duplicates() {
        Tensor::zeros([2, 2]).permute(&[0, 0]);
    }

    #[test]
    fn inverse_perm_round_trips() {
        let perm = [2, 0, 3, 1];
        let inv = inverse_perm(&perm);
        assert_eq!(inv, vec![1, 3, 0, 2]);
        let t = Tensor::from_vec((0..16).map(|x| x as f32).collect(), [2, 2, 2, 2]);
        let round = t.permute(&perm).permute(&inv);
        assert_eq!(round.to_vec(), t.to_vec());
    }

    #[test]
    fn narrow_middle_dim() {
        let t = Tensor::from_vec((0..12).map(|x| x as f32).collect(), [2, 3, 2]);
        let n = t.narrow(1, 1, 2);
        assert_eq!(n.dims(), &[2, 2, 2]);
        assert_eq!(n.to_vec(), vec![2.0, 3.0, 4.0, 5.0, 8.0, 9.0, 10.0, 11.0]);
    }

    #[test]
    #[should_panic(expected = "exceeds dim")]
    fn narrow_validates_range() {
        Tensor::zeros([2, 3]).narrow(1, 2, 2);
    }

    #[test]
    fn narrow_backward_scatters() {
        let shape = Shape::new(vec![2, 3]);
        let grad = vec![1.0, 2.0]; // narrow(1, 1, 1) output grad
        let full = narrow_backward_kernel(&grad, &shape, 1, 1, 1);
        assert_eq!(full, vec![0.0, 1.0, 0.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn concat_and_chunk_round_trip() {
        let a = Tensor::from_vec(vec![1.0, 2.0], [1, 2]);
        let b = Tensor::from_vec(vec![3.0, 4.0], [1, 2]);
        let c = Tensor::concat(&[a, b], 0);
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.to_vec(), vec![1.0, 2.0, 3.0, 4.0]);
        let parts = c.chunk(2, 0);
        assert_eq!(parts[0].to_vec(), vec![1.0, 2.0]);
        assert_eq!(parts[1].to_vec(), vec![3.0, 4.0]);
    }

    #[test]
    fn concat_last_dim() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 5.0, 6.0], [2, 2]);
        let b = Tensor::from_vec(vec![3.0, 7.0], [2, 1]);
        let c = Tensor::concat(&[a, b], 1);
        assert_eq!(c.dims(), &[2, 3]);
        assert_eq!(c.to_vec(), vec![1.0, 2.0, 3.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    #[should_panic(expected = "concat of zero tensors")]
    fn concat_rejects_empty() {
        Tensor::concat(&[], 0);
    }

    #[test]
    fn stack_unstack_round_trips_heterogeneous_batches() {
        let a = Tensor::from_vec(vec![1.0, 2.0], [1, 2]);
        let b = Tensor::from_vec(vec![3.0, 4.0, 5.0, 6.0], [2, 2]);
        let s = Tensor::stack_batches(&[a.clone(), b.clone()]);
        assert_eq!(s.dims(), &[3, 2]);
        let parts = s.unstack_batches(&[1, 2]);
        assert_eq!(parts[0].to_vec(), a.to_vec());
        assert_eq!(parts[1].to_vec(), b.to_vec());
    }

    #[test]
    #[should_panic(expected = "do not sum to batch dim")]
    fn unstack_validates_sizes() {
        Tensor::zeros([3, 2]).unstack_batches(&[1, 1]);
    }

    /// The contract the batched server step rests on: a row's matmul
    /// result is bitwise identical whether the row is computed alone or
    /// stacked under other clients' rows.
    #[test]
    fn stacked_matmul_rows_are_bitwise_identical_to_solo_rows() {
        let mut seed = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((seed >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        };
        let k = 37;
        let n = 29;
        let w = Tensor::from_vec((0..k * n).map(|_| next()).collect(), [k, n]);
        let parts: Vec<Tensor> = [3usize, 1, 5]
            .iter()
            .map(|&b| Tensor::from_vec((0..b * k).map(|_| next()).collect(), [b, k]))
            .collect();
        let stacked = Tensor::stack_batches(&parts).matmul(&w);
        let sizes = [3, 1, 5];
        for (part, piece) in parts.iter().zip(stacked.unstack_batches(&sizes)) {
            let solo: Vec<u32> = part
                .matmul(&w)
                .to_vec()
                .iter()
                .map(|f| f.to_bits())
                .collect();
            let batched: Vec<u32> = piece.to_vec().iter().map(|f| f.to_bits()).collect();
            assert_eq!(solo, batched);
        }
    }
}

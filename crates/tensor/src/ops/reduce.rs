//! Reduction operations.
//!
//! Full reductions accumulate over fixed-size element blocks combined
//! in block order, so the result is independent of the worker-pool
//! size (and, as a side effect, slightly more accurate than a single
//! running sum).

use crate::op::Op;
use crate::parallel;
use crate::shape::Shape;
use crate::tensor::Tensor;

/// Elements per partial-sum block. Fixed (never derived from the
/// thread count) so the summation tree is stable.
const SUM_BLOCK: usize = 4096;

/// Block-wise sum: partials in block order, folded serially.
fn blocked_sum(data: &[f32]) -> f32 {
    if data.len() <= SUM_BLOCK {
        return data.iter().sum();
    }
    let blocks = data.len().div_ceil(SUM_BLOCK);
    let partials = parallel::par_blocks(blocks, data.len(), |b| {
        let lo = b * SUM_BLOCK;
        let hi = (lo + SUM_BLOCK).min(data.len());
        data[lo..hi].iter().sum::<f32>()
    });
    partials.iter().sum()
}

impl Tensor {
    /// Sum of all elements, as a scalar tensor.
    pub fn sum_all(&self) -> Tensor {
        let s = blocked_sum(&self.storage().read());
        Tensor::from_op(vec![s], Shape::scalar(), Op::SumAll(self.clone()))
    }

    /// Mean of all elements, as a scalar tensor.
    ///
    /// # Panics
    ///
    /// Panics on an empty tensor.
    pub fn mean_all(&self) -> Tensor {
        let n = self.elem_count();
        assert!(n > 0, "mean of empty tensor");
        let s = blocked_sum(&self.storage().read());
        Tensor::from_op(
            vec![s / n as f32],
            Shape::scalar(),
            Op::MeanAll(self.clone()),
        )
    }

    /// Sum along the last dimension, keeping it as size 1.
    pub fn sum_last_keepdim(&self) -> Tensor {
        let (rows, cols) = self.shape().rows_cols();
        let data = self.storage().read();
        let mut out = crate::pool::take_zeroed_f32(rows);
        parallel::par_chunks_mut(&mut out, 1, rows * cols, |start, chunk| {
            for (local, o) in chunk.iter_mut().enumerate() {
                let r = start + local;
                *o = data[r * cols..(r + 1) * cols].iter().sum();
            }
        });
        drop(data);
        let mut dims = self.dims().to_vec();
        *dims.last_mut().expect("rank >= 1") = 1;
        Tensor::from_op(out, Shape::new(dims), Op::SumLastKeepdim(self.clone()))
    }

    /// Index of the maximum element along the last dimension (no
    /// gradient). Ties resolve to the first maximum.
    pub fn argmax_last(&self) -> Vec<usize> {
        let (rows, cols) = self.shape().rows_cols();
        let data = self.storage().read();
        (0..rows)
            .map(|r| {
                let row = &data[r * cols..(r + 1) * cols];
                row.iter()
                    .enumerate()
                    .fold((0usize, f32::NEG_INFINITY), |(bi, bv), (i, &v)| {
                        if v > bv {
                            (i, v)
                        } else {
                            (bi, bv)
                        }
                    })
                    .0
            })
            .collect()
    }

    /// Maximum element value (no gradient).
    pub fn max_all(&self) -> f32 {
        let data = self.storage().read();
        if data.len() <= SUM_BLOCK {
            return data.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        }
        // max is exact (no rounding), so blocking cannot change it.
        let blocks = data.len().div_ceil(SUM_BLOCK);
        parallel::par_blocks(blocks, data.len(), |b| {
            let lo = b * SUM_BLOCK;
            let hi = (lo + SUM_BLOCK).min(data.len());
            data[lo..hi]
                .iter()
                .copied()
                .fold(f32::NEG_INFINITY, f32::max)
        })
        .into_iter()
        .fold(f32::NEG_INFINITY, f32::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_and_mean() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
        assert_eq!(t.sum_all().to_scalar(), 10.0);
        assert_eq!(t.mean_all().to_scalar(), 2.5);
        assert_eq!(t.sum_all().dims(), &[] as &[usize]);
    }

    #[test]
    fn sum_last_keepdim_shapes() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [2, 3]);
        let s = t.sum_last_keepdim();
        assert_eq!(s.dims(), &[2, 1]);
        assert_eq!(s.to_vec(), vec![6.0, 15.0]);
    }

    #[test]
    fn argmax_rows() {
        let t = Tensor::from_vec(vec![0.1, 0.9, 0.5, 0.7, 0.2, 0.1], [2, 3]);
        assert_eq!(t.argmax_last(), vec![1, 0]);
    }

    #[test]
    fn argmax_tie_takes_first() {
        let t = Tensor::from_vec(vec![1.0, 1.0], [1, 2]);
        assert_eq!(t.argmax_last(), vec![0]);
    }

    #[test]
    fn max_all_value() {
        let t = Tensor::from_vec(vec![-5.0, 3.0, 2.0], [3]);
        assert_eq!(t.max_all(), 3.0);
    }
}

//! Element-wise unary operations and their derivatives.

use crate::op::Op;
use crate::tensor::Tensor;

/// The constant `sqrt(2/pi)` used by the tanh GELU approximation.
pub(crate) const GELU_C: f32 = 0.797_884_6;

/// The sigmoid-GELU scale: `gelu(x) ≈ x * sigmoid(1.702 x)`.
const GELU_SIG_C: f32 = 1.702;

pub(crate) fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Fast `2^z`: the integer part scales via exponent-bit assembly, the
/// fractional part (in `[0, 1)`) via a degree-5 Taylor polynomial of
/// `2^f`. Relative error stays below `2e-5`.
fn exp2_fast(z: f32) -> f32 {
    // Clamp keeps the assembled exponent in the normal-float range;
    // past ±30 the sigmoid consuming this is saturated anyway.
    let z = z.clamp(-80.0, 80.0);
    let zi = z.floor();
    let zf = z - zi;
    let p = 1.0
        + zf * (std::f32::consts::LN_2
            + zf * (0.240_226_5 + zf * (0.055_504_1 + zf * (0.009_618_1 + zf * 0.001_333_4))));
    f32::from_bits((((zi as i32) + 127) << 23) as u32) * p
}

/// Fast logistic sigmoid built on [`exp2_fast`] — no libm call.
fn sigmoid_fast(x: f32) -> f32 {
    1.0 / (1.0 + exp2_fast(-x * std::f32::consts::LOG2_E))
}

/// GELU, sigmoid form: `x * sigmoid(1.702 x)`. This is the shipped
/// fast path — one cheap polynomial `exp2` instead of a libm `tanh`,
/// within `~1e-2` of the exact GELU everywhere (the two published
/// approximations differ by that much from each other).
pub(crate) fn gelu(x: f32) -> f32 {
    x * sigmoid_fast(GELU_SIG_C * x)
}

/// Derivative of [`gelu`] (the sigmoid form, matching the forward
/// pass exactly).
pub(crate) fn gelu_prime(x: f32) -> f32 {
    let s = sigmoid_fast(GELU_SIG_C * x);
    s + GELU_SIG_C * x * s * (1.0 - s)
}

/// GELU, tanh approximation — the reference variant used by GPT/OPT.
/// Kept exact (libm `tanh`) for gradient checks and accuracy tests;
/// the compute path ships [`gelu`].
pub(crate) fn gelu_exact(x: f32) -> f32 {
    0.5 * x * (1.0 + (GELU_C * (x + 0.044_715 * x * x * x)).tanh())
}

/// Derivative of [`gelu_exact`].
pub(crate) fn gelu_exact_prime(x: f32) -> f32 {
    let inner = GELU_C * (x + 0.044_715 * x * x * x);
    let t = inner.tanh();
    let dinner = GELU_C * (1.0 + 3.0 * 0.044_715 * x * x);
    0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * dinner
}

/// SiLU / swish: `x * sigmoid(x)` — the activation in Llama's SwiGLU.
pub(crate) fn silu(x: f32) -> f32 {
    x * sigmoid(x)
}

/// Derivative of [`silu`].
pub(crate) fn silu_prime(x: f32) -> f32 {
    let s = sigmoid(x);
    s * (1.0 + x * (1.0 - s))
}

impl Tensor {
    /// Inverted dropout: zeroes each element with probability `p` and
    /// scales survivors by `1/(1-p)`, so the expectation is unchanged.
    /// The same mask applies in the backward pass. With `p = 0` this is
    /// the identity.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p < 1`.
    pub fn dropout<R: rand::Rng>(&self, p: f32, rng: &mut R) -> Tensor {
        assert!(
            (0.0..1.0).contains(&p),
            "dropout probability {p} outside [0, 1)"
        );
        if p == 0.0 {
            // Identity without graph noise: still record a node so the
            // call site is uniform in train loops.
            return self.mul_scalar(1.0);
        }
        let scale = 1.0 / (1.0 - p);
        let mask_data: Vec<f32> = (0..self.elem_count())
            .map(|_| if rng.gen::<f32>() < p { 0.0 } else { scale })
            .collect();
        let mask = Tensor::from_vec(mask_data, self.shape().clone());
        let data = self
            .storage()
            .read()
            .iter()
            .zip(mask.storage().read().iter())
            .map(|(x, m)| x * m)
            .collect();
        Tensor::from_op(
            data,
            self.shape().clone(),
            Op::Dropout {
                x: self.clone(),
                mask,
            },
        )
    }
}

/// Threshold scaling for transcendental element-wise ops (exp/tanh/…
/// cost roughly an order of magnitude more than an add).
const UNARY_WORK: usize = 8;

macro_rules! unary_method {
    ($name:ident, $opvar:ident, $f:expr, $doc:expr) => {
        #[doc = $doc]
        pub fn $name(&self) -> Tensor {
            let data = crate::parallel::par_map(&self.storage().read(), UNARY_WORK, |x| $f(x));
            Tensor::from_op(data, self.shape().clone(), Op::$opvar(self.clone()))
        }
    };
}

impl Tensor {
    unary_method!(exp, Exp, |x: f32| x.exp(), "Element-wise `e^x`.");
    unary_method!(ln, Ln, |x: f32| x.ln(), "Element-wise natural log.");
    unary_method!(
        tanh,
        Tanh,
        |x: f32| x.tanh(),
        "Element-wise hyperbolic tangent."
    );
    unary_method!(sqrt, Sqrt, |x: f32| x.sqrt(), "Element-wise square root.");
    unary_method!(sigmoid, Sigmoid, sigmoid, "Element-wise logistic sigmoid.");
    unary_method!(relu, Relu, |x: f32| x.max(0.0), "Element-wise ReLU.");
    unary_method!(
        gelu,
        Gelu,
        gelu,
        "Element-wise GELU, fast sigmoid form (`x * sigmoid(1.702x)`), as used by \
         OPT-style models. See [`Tensor::gelu_exact`] for the reference tanh variant."
    );
    unary_method!(
        gelu_exact,
        GeluExact,
        gelu_exact,
        "Element-wise GELU, reference tanh approximation. Slower than [`Tensor::gelu`]; \
         used where bit-level agreement with the published formula matters (e.g. \
         gradient checks)."
    );
    unary_method!(
        silu,
        Silu,
        silu,
        "Element-wise SiLU (`x * sigmoid(x)`), as used by Llama-style SwiGLU MLPs."
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f32, b: f32, tol: f32) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn exp_ln_inverse() {
        let x = Tensor::from_vec(vec![0.5, 1.0, 2.0], [3]);
        let y = x.exp().ln();
        assert!(x.max_abs_diff(&y) < 1e-5);
    }

    #[test]
    fn tanh_range() {
        let x = Tensor::from_vec(vec![-10.0, 0.0, 10.0], [3]);
        let y = x.tanh().to_vec();
        assert_close(y[0], -1.0, 1e-4);
        assert_close(y[1], 0.0, 1e-7);
        assert_close(y[2], 1.0, 1e-4);
    }

    #[test]
    fn relu_clamps() {
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0], [3]);
        assert_eq!(x.relu().to_vec(), vec![0.0, 0.0, 2.0]);
    }

    #[test]
    fn sigmoid_symmetry() {
        assert_close(sigmoid(0.0), 0.5, 1e-7);
        assert_close(sigmoid(3.0) + sigmoid(-3.0), 1.0, 1e-6);
    }

    #[test]
    fn gelu_exact_reference_values() {
        // Reference values from the tanh-approximation formula.
        assert_close(gelu_exact(0.0), 0.0, 1e-7);
        assert_close(gelu_exact(1.0), 0.841_192, 1e-4);
        assert_close(gelu_exact(-1.0), -0.158_808, 1e-4);
        // GELU is asymptotically identity for large x.
        assert_close(gelu_exact(10.0), 10.0, 1e-3);
    }

    #[test]
    fn fast_gelu_matches_ideal_sigmoid_form() {
        // The fast path approximates x * sigmoid(1.702x) with a
        // polynomial exp2; it must track the libm evaluation of that
        // same formula tightly across the active range.
        let mut x = -12.0f32;
        while x <= 12.0 {
            let ideal = x * sigmoid(1.702 * x);
            assert_close(gelu(x), ideal, 2e-3);
            x += 0.01;
        }
        assert_close(gelu(0.0), 0.0, 1e-7);
        assert_close(gelu(30.0), 30.0, 1e-3);
        assert_close(gelu(-30.0), 0.0, 1e-3);
    }

    #[test]
    fn fast_gelu_tracks_exact_gelu() {
        // The sigmoid and tanh GELU approximations agree to ~2e-2
        // absolute (their intrinsic divergence, not our polynomial);
        // the fast path must stay inside that envelope.
        let mut x = -6.0f32;
        while x <= 6.0 {
            assert_close(gelu(x), gelu_exact(x), 3e-2);
            x += 0.01;
        }
    }

    #[test]
    fn silu_reference_values() {
        assert_close(silu(0.0), 0.0, 1e-7);
        assert_close(silu(1.0), 0.731_058, 1e-4);
        assert_close(silu(-20.0), 0.0, 1e-4);
    }

    #[test]
    fn numeric_derivatives_match_closed_forms() {
        let eps = 1e-3f32;
        for &x in &[-2.0f32, -0.7, 0.0, 0.3, 1.9] {
            let num = (gelu_exact(x + eps) - gelu_exact(x - eps)) / (2.0 * eps);
            assert_close(gelu_exact_prime(x), num, 1e-3);
            let num = (silu(x + eps) - silu(x - eps)) / (2.0 * eps);
            assert_close(silu_prime(x), num, 1e-3);
        }
    }

    #[test]
    fn fast_gelu_derivative_matches_ideal_closed_form() {
        // Differentiate the ideal sigmoid-form GELU analytically (with
        // libm sigmoid) and compare the fast-path derivative to it —
        // finite differences through the polynomial exp2 would just
        // amplify approximation noise.
        for &x in &[-4.0f32, -2.0, -0.7, 0.0, 0.3, 1.9, 4.0] {
            let s = sigmoid(1.702 * x);
            let ideal = s + 1.702 * x * s * (1.0 - s);
            assert_close(gelu_prime(x), ideal, 2e-3);
        }
    }

    #[test]
    fn dropout_statistics_and_backward() {
        use menos_sim_shim::seeded_rng;
        let mut rng = seeded_rng(5);
        let x = Tensor::var_from_vec(vec![1.0; 1000], [1000]);
        let y = x.dropout(0.3, &mut rng);
        let v = y.to_vec();
        let zeros = v.iter().filter(|&&e| e == 0.0).count();
        // ~30% dropped.
        assert!((200..400).contains(&zeros), "{zeros} zeros");
        // Survivors scaled to preserve expectation.
        let mean: f32 = v.iter().sum::<f32>() / v.len() as f32;
        assert!((mean - 1.0).abs() < 0.15, "mean {mean}");
        // Backward reuses the same mask: zero grads exactly where
        // activations were dropped.
        let grads = y.sum_all().backward();
        let g = grads.get(&x).unwrap().to_vec();
        for (gi, vi) in g.iter().zip(v.iter()) {
            if *vi == 0.0 {
                assert_eq!(*gi, 0.0);
            } else {
                assert!((*gi - 1.0 / 0.7).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn dropout_zero_is_identity() {
        use menos_sim_shim::seeded_rng;
        let mut rng = seeded_rng(5);
        let x = Tensor::from_vec(vec![1.0, 2.0], [2]);
        assert_eq!(x.dropout(0.0, &mut rng).to_vec(), vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "dropout probability")]
    fn dropout_rejects_bad_p() {
        use menos_sim_shim::seeded_rng;
        let mut rng = seeded_rng(5);
        Tensor::zeros([2]).dropout(1.0, &mut rng);
    }

    /// Local rng helper (menos-tensor cannot depend on menos-sim).
    mod menos_sim_shim {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        pub fn seeded_rng(seed: u64) -> StdRng {
            StdRng::seed_from_u64(seed)
        }
    }

    #[test]
    fn sqrt_works() {
        let x = Tensor::from_vec(vec![4.0, 9.0], [2]);
        assert_eq!(x.sqrt().to_vec(), vec![2.0, 3.0]);
    }
}

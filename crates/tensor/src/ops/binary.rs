//! Broadcasting element-wise binary operations.

use crate::op::Op;
use crate::shape::{broadcast_offset, for_each_index, Shape};
use crate::tensor::Tensor;

/// Computes `f(a, b)` element-wise under NumPy broadcasting, returning
/// the flat output data and broadcast shape.
pub(crate) fn broadcast_binary_kernel(
    a: &Tensor,
    b: &Tensor,
    f: impl Fn(f32, f32) -> f32 + Sync,
) -> (Vec<f32>, Shape) {
    let out_shape = a
        .shape()
        .broadcast_with(b.shape())
        .unwrap_or_else(|| panic!("cannot broadcast {} with {}", a.shape(), b.shape()));
    let da = a.storage().read();
    let db = b.storage().read();
    if a.shape() == b.shape() {
        // Fast path: identical shapes, fanned out over the pool.
        let out = crate::parallel::par_map2(&da, &db, 2, &f);
        return (out, out_shape);
    }
    let mut out = crate::pool::take_f32(out_shape.elem_count());
    {
        // Broadcasting path: index arithmetic per element, serial.
        let sa = a.shape().clone();
        let sb = b.shape().clone();
        for_each_index(&out_shape, |idx| {
            let x = da[broadcast_offset(idx, &sa)];
            let y = db[broadcast_offset(idx, &sb)];
            out.push(f(x, y));
        });
    }
    (out, out_shape)
}

/// Reduces a gradient of `grad_shape` down to `target` by summing over
/// the dimensions that were broadcast — the adjoint of broadcasting.
pub(crate) fn reduce_grad_to(grad: &[f32], grad_shape: &Shape, target: &Shape) -> Vec<f32> {
    if grad_shape == target {
        return grad.to_vec();
    }
    debug_assert!(
        target.broadcasts_to(grad_shape),
        "cannot reduce grad {grad_shape} to {target}"
    );
    let mut out = crate::pool::take_zeroed_f32(target.elem_count());
    let mut i = 0usize;
    for_each_index(grad_shape, |idx| {
        out[broadcast_offset(idx, target)] += grad[i];
        i += 1;
    });
    out
}

macro_rules! binary_method {
    ($name:ident, $opvar:ident, $f:expr, $doc:expr) => {
        #[doc = $doc]
        ///
        /// Operands broadcast under the NumPy trailing-dimension rule.
        ///
        /// # Panics
        ///
        /// Panics if the shapes are not broadcast-compatible.
        pub fn $name(&self, rhs: &Tensor) -> Tensor {
            let (data, shape) = broadcast_binary_kernel(self, rhs, $f);
            Tensor::from_op(data, shape, Op::$opvar(self.clone(), rhs.clone()))
        }
    };
}

impl Tensor {
    binary_method!(add, Add, |x, y| x + y, "Element-wise addition.");
    binary_method!(sub, Sub, |x, y| x - y, "Element-wise subtraction.");
    binary_method!(mul, Mul, |x, y| x * y, "Element-wise multiplication.");
    binary_method!(div, Div, |x, y| x / y, "Element-wise division.");

    /// Adds a scalar to every element.
    pub fn add_scalar(&self, s: f32) -> Tensor {
        let data = crate::parallel::par_map(&self.storage().read(), 2, |x| x + s);
        Tensor::from_op(data, self.shape().clone(), Op::AddScalar(self.clone()))
    }

    /// Multiplies every element by a scalar.
    pub fn mul_scalar(&self, s: f32) -> Tensor {
        let data = crate::parallel::par_map(&self.storage().read(), 2, |x| x * s);
        Tensor::from_op(data, self.shape().clone(), Op::MulScalar(self.clone(), s))
    }

    /// Raises every element to an integer power.
    pub fn powi(&self, p: i32) -> Tensor {
        let data = crate::parallel::par_map(&self.storage().read(), 4, |x| x.powi(p));
        Tensor::from_op(data, self.shape().clone(), Op::PowScalar(self.clone(), p))
    }
}

macro_rules! std_op {
    ($trait:ident, $method:ident, $tensor_method:ident) => {
        impl std::ops::$trait for &Tensor {
            type Output = Tensor;
            fn $method(self, rhs: &Tensor) -> Tensor {
                self.$tensor_method(rhs)
            }
        }
    };
}

std_op!(Add, add, add);
std_op!(Sub, sub, sub);
std_op!(Mul, mul, mul);
std_op!(Div, div, div);

impl std::ops::Neg for &Tensor {
    type Output = Tensor;
    fn neg(self) -> Tensor {
        self.mul_scalar(-1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_shape_ops() {
        let a = Tensor::from_vec(vec![1.0, 2.0], [2]);
        let b = Tensor::from_vec(vec![3.0, 5.0], [2]);
        assert_eq!((&a + &b).to_vec(), vec![4.0, 7.0]);
        assert_eq!((&a - &b).to_vec(), vec![-2.0, -3.0]);
        assert_eq!((&a * &b).to_vec(), vec![3.0, 10.0]);
        assert_eq!((&b / &a).to_vec(), vec![3.0, 2.5]);
    }

    #[test]
    fn bias_broadcast() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [2, 3]);
        let b = Tensor::from_vec(vec![10.0, 20.0, 30.0], [3]);
        assert_eq!(x.add(&b).to_vec(), vec![11.0, 22.0, 33.0, 14.0, 25.0, 36.0]);
    }

    #[test]
    fn column_broadcast() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
        let c = Tensor::from_vec(vec![10.0, 100.0], [2, 1]);
        assert_eq!(x.mul(&c).to_vec(), vec![10.0, 20.0, 300.0, 400.0]);
    }

    #[test]
    fn scalar_tensor_broadcast() {
        let x = Tensor::from_vec(vec![1.0, 2.0], [2]);
        let s = Tensor::scalar(3.0);
        assert_eq!(x.mul(&s).to_vec(), vec![3.0, 6.0]);
        assert_eq!(s.sub(&x).to_vec(), vec![2.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "cannot broadcast")]
    fn incompatible_shapes_panic() {
        let a = Tensor::zeros([2]);
        let b = Tensor::zeros([3]);
        let _ = a.add(&b);
    }

    #[test]
    fn scalar_ops() {
        let a = Tensor::from_vec(vec![1.0, -2.0], [2]);
        assert_eq!(a.add_scalar(1.0).to_vec(), vec![2.0, -1.0]);
        assert_eq!(a.mul_scalar(-3.0).to_vec(), vec![-3.0, 6.0]);
        assert_eq!(a.powi(2).to_vec(), vec![1.0, 4.0]);
        assert_eq!((-&a).to_vec(), vec![-1.0, 2.0]);
    }

    #[test]
    fn reduce_grad_to_sums_broadcast_dims() {
        // grad [2,3] reduced to bias shape [3]: column sums.
        let grad = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let r = reduce_grad_to(&grad, &Shape::new(vec![2, 3]), &Shape::new(vec![3]));
        assert_eq!(r, vec![5.0, 7.0, 9.0]);
        // Reduce to [2,1]: row sums.
        let r = reduce_grad_to(&grad, &Shape::new(vec![2, 3]), &Shape::new(vec![2, 1]));
        assert_eq!(r, vec![6.0, 15.0]);
        // Reduce to scalar.
        let r = reduce_grad_to(&grad, &Shape::new(vec![2, 3]), &Shape::scalar());
        assert_eq!(r, vec![21.0]);
        // Identity.
        let r = reduce_grad_to(&grad, &Shape::new(vec![2, 3]), &Shape::new(vec![2, 3]));
        assert_eq!(r, grad);
    }

    #[test]
    fn grad_tracking_propagates() {
        let a = Tensor::var_from_vec(vec![1.0], [1]);
        let b = Tensor::from_vec(vec![2.0], [1]);
        assert!(a.add(&b).requires_grad());
        assert!(!b.mul(&b).requires_grad());
        crate::tensor::no_grad(|| {
            assert!(!a.add(&b).requires_grad());
        });
    }
}

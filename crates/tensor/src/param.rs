//! Named parameter collections.
//!
//! A [`ParamStore`] maps stable parameter names (e.g.
//! `"layers.3.attn.wq"`) to tensors. It is the unit that Menos' base
//! model sharing operates on: the server loads one store for the base
//! model and builds per-client *views* whose tensors alias the same
//! storage.

use std::collections::BTreeMap;

use crate::storage::Storage;
use crate::tensor::Tensor;

/// An ordered map from parameter name to tensor.
///
/// Iteration order is the lexicographic name order (BTreeMap), which
/// keeps checkpoints and tests deterministic.
///
/// # Examples
///
/// ```
/// use menos_tensor::{ParamStore, Tensor};
///
/// let mut ps = ParamStore::new();
/// ps.insert("w", Tensor::var_from_vec(vec![1.0, 2.0], [2]));
/// assert_eq!(ps.len(), 1);
/// assert_eq!(ps.get("w").unwrap().to_vec(), vec![1.0, 2.0]);
///
/// // A shared view aliases storage without copying:
/// let view = ps.shared_view(false);
/// assert!(Tensor::same_storage(ps.get("w").unwrap(), view.get("w").unwrap()));
/// ```
#[derive(Debug, Default)]
pub struct ParamStore {
    params: BTreeMap<String, Tensor>,
}

impl ParamStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        ParamStore::default()
    }

    /// Inserts a parameter, replacing and returning any previous tensor
    /// under the same name.
    pub fn insert(&mut self, name: impl Into<String>, t: Tensor) -> Option<Tensor> {
        self.params.insert(name.into(), t)
    }

    /// Looks up a parameter by name.
    pub fn get(&self, name: &str) -> Option<&Tensor> {
        self.params.get(name)
    }

    /// Removes a parameter by name.
    pub fn remove(&mut self, name: &str) -> Option<Tensor> {
        self.params.remove(name)
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// Whether the store holds no parameters.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Iterates over `(name, tensor)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Tensor)> {
        self.params.iter()
    }

    /// Parameter names in order.
    pub fn names(&self) -> impl Iterator<Item = &String> {
        self.params.keys()
    }

    /// Tensors in name order.
    pub fn tensors(&self) -> impl Iterator<Item = &Tensor> {
        self.params.values()
    }

    /// Total element count across all parameters.
    pub fn param_count(&self) -> usize {
        self.params.values().map(Tensor::elem_count).sum()
    }

    /// Total logical size in bytes (f32).
    pub fn size_bytes(&self) -> u64 {
        self.params.values().map(Tensor::size_bytes).sum()
    }

    /// Builds a view whose tensors alias this store's storage but have
    /// fresh identities and the given trainability.
    ///
    /// This is the *base-model sharing* primitive: each client's model
    /// instance gets its own structure over one shared copy of the
    /// weights.
    pub fn shared_view(&self, trainable: bool) -> ParamStore {
        let params = self
            .params
            .iter()
            .map(|(k, v)| {
                (
                    k.clone(),
                    Tensor::from_shared_storage(v.storage().clone(), v.shape().clone(), trainable),
                )
            })
            .collect();
        ParamStore { params }
    }

    /// Builds an independent deep copy (fresh storage). This is what
    /// the *vanilla* baseline does per client.
    pub fn deep_copy(&self, trainable: bool) -> ParamStore {
        let params = self
            .params
            .iter()
            .map(|(k, v)| {
                (
                    k.clone(),
                    Tensor::from_shared_storage(
                        Storage::from_vec(v.to_vec()),
                        v.shape().clone(),
                        trainable,
                    ),
                )
            })
            .collect();
        ParamStore { params }
    }

    /// Whether every parameter in `self` aliases the storage of the
    /// same-named parameter in `other`.
    pub fn shares_storage_with(&self, other: &ParamStore) -> bool {
        self.params.len() == other.params.len()
            && self.params.iter().all(|(k, v)| {
                other
                    .params
                    .get(k)
                    .map(|o| Tensor::same_storage(v, o))
                    .unwrap_or(false)
            })
    }

    /// Merges another store into this one under a name prefix.
    pub fn extend_prefixed(&mut self, prefix: &str, other: ParamStore) {
        for (k, v) in other.params {
            self.params.insert(format!("{prefix}{k}"), v);
        }
    }
}

impl FromIterator<(String, Tensor)> for ParamStore {
    fn from_iter<I: IntoIterator<Item = (String, Tensor)>>(iter: I) -> Self {
        ParamStore {
            params: iter.into_iter().collect(),
        }
    }
}

impl Extend<(String, Tensor)> for ParamStore {
    fn extend<I: IntoIterator<Item = (String, Tensor)>>(&mut self, iter: I) {
        self.params.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_store() -> ParamStore {
        let mut ps = ParamStore::new();
        ps.insert("a", Tensor::var_from_vec(vec![1.0, 2.0], [2]));
        ps.insert("b", Tensor::var_from_vec(vec![3.0; 6], [2, 3]));
        ps
    }

    #[test]
    fn insert_get_remove() {
        let mut ps = sample_store();
        assert_eq!(ps.len(), 2);
        assert!(ps.get("a").is_some());
        assert!(ps.get("missing").is_none());
        assert!(ps.remove("a").is_some());
        assert_eq!(ps.len(), 1);
        assert!(!ps.is_empty());
    }

    #[test]
    fn ordered_iteration() {
        let mut ps = ParamStore::new();
        ps.insert("z", Tensor::zeros([1]));
        ps.insert("a", Tensor::zeros([1]));
        ps.insert("m", Tensor::zeros([1]));
        let names: Vec<&String> = ps.names().collect();
        assert_eq!(names, vec!["a", "m", "z"]);
    }

    #[test]
    fn sizes() {
        let ps = sample_store();
        assert_eq!(ps.param_count(), 8);
        assert_eq!(ps.size_bytes(), 32);
    }

    #[test]
    fn shared_view_aliases() {
        let ps = sample_store();
        let view = ps.shared_view(false);
        assert!(ps.shares_storage_with(&view));
        assert!(!view.get("a").unwrap().requires_grad());
        // Mutation through the view is visible in the original.
        view.get("a").unwrap().storage().write()[0] = 99.0;
        assert_eq!(ps.get("a").unwrap().to_vec(), vec![99.0, 2.0]);
    }

    #[test]
    fn deep_copy_is_independent() {
        let ps = sample_store();
        let copy = ps.deep_copy(true);
        assert!(!ps.shares_storage_with(&copy));
        copy.get("a").unwrap().storage().write()[0] = 42.0;
        assert_eq!(ps.get("a").unwrap().to_vec(), vec![1.0, 2.0]);
        assert!(copy.get("a").unwrap().requires_grad());
    }

    #[test]
    fn shares_storage_with_detects_mismatch() {
        let ps = sample_store();
        let other = sample_store(); // same names, different storage
        assert!(!ps.shares_storage_with(&other));
        let mut partial = ps.shared_view(false);
        partial.remove("b");
        assert!(!ps.shares_storage_with(&partial));
    }

    #[test]
    fn extend_prefixed_namespaces() {
        let mut root = ParamStore::new();
        let mut child = ParamStore::new();
        child.insert("w", Tensor::zeros([1]));
        root.extend_prefixed("layer0.", child);
        assert!(root.get("layer0.w").is_some());
    }

    #[test]
    fn from_iterator() {
        let ps: ParamStore = vec![("x".to_string(), Tensor::zeros([1]))]
            .into_iter()
            .collect();
        assert_eq!(ps.len(), 1);
    }
}

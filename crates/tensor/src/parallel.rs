//! Shared compute backend: deterministic multi-threaded fan-out for
//! tensor kernels.
//!
//! Every data-parallel kernel in this crate funnels through the helpers
//! here. The design invariant is **bitwise reproducibility at any
//! thread count**: each output element is computed by exactly one
//! worker running the same scalar code in the same order, and
//! reductions are accumulated over *fixed-size* blocks combined in
//! block order, so the partition never changes a result — only how
//! long it takes.
//!
//! The pool size is resolved lazily from `MENOS_THREADS` (falling back
//! to [`std::thread::available_parallelism`]) and can be overridden at
//! runtime with [`set_threads`]. A size of 1 short-circuits every
//! helper into plain serial execution, as does any region whose
//! estimated work falls below [`PAR_MIN_WORK`].
//!
//! Workers are spawned per parallel region with [`std::thread::scope`]
//! rather than parked in a persistent pool: the crate forbids `unsafe`
//! code, and lending `&mut` output slices to long-lived threads cannot
//! be expressed without it. Scoped spawns cost a few tens of
//! microseconds, which [`PAR_MIN_WORK`] keeps well under the kernel
//! runtime they amortize against.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Resolved pool size; 0 means "not yet resolved".
static THREADS: AtomicUsize = AtomicUsize::new(0);

/// Upper bound on the pool size (a safety clamp, not a tuning knob).
const MAX_THREADS: usize = 256;

/// Minimum estimated scalar operations before a region fans out.
/// Below this, scoped-spawn overhead would eat the speedup.
pub(crate) const PAR_MIN_WORK: usize = 400_000;

fn default_threads() -> usize {
    std::env::var("MENOS_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// The number of worker threads tensor kernels currently fan out to.
///
/// Resolved on first use from the `MENOS_THREADS` environment variable,
/// else the machine's available parallelism. `1` means fully serial.
pub fn threads() -> usize {
    let t = THREADS.load(Ordering::Relaxed);
    if t != 0 {
        return t;
    }
    // Concurrent first calls agree: default_threads() is stable.
    let t = default_threads().clamp(1, MAX_THREADS);
    THREADS.store(t, Ordering::Relaxed);
    t
}

/// Overrides the worker-thread count for all subsequent tensor kernels.
///
/// `n` is clamped to at least 1; `set_threads(1)` restores serial
/// execution. Results are bitwise identical at every setting — this
/// only trades wall-clock time, never numerics.
pub fn set_threads(n: usize) {
    THREADS.store(n.clamp(1, MAX_THREADS), Ordering::Relaxed);
}

/// Effective fan-out for a region estimated to cost `work` scalar ops.
fn fanout(work: usize) -> usize {
    if work < PAR_MIN_WORK {
        1
    } else {
        threads()
    }
}

/// Splits `out` into at most `fanout(work)` contiguous chunks, each a
/// multiple of `unit` elements, and runs `f(start_elem, chunk)` on
/// each — in parallel when more than one worker is configured.
///
/// `f` must compute each element of its chunk independently of the
/// partition (pure per-element / per-`unit`-row work); under that
/// contract the result is bitwise identical at any thread count.
pub(crate) fn par_chunks_mut<F>(out: &mut [f32], unit: usize, work: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    if out.is_empty() {
        return;
    }
    debug_assert!(
        unit > 0 && out.len().is_multiple_of(unit),
        "chunk unit must tile out"
    );
    let units = out.len() / unit;
    let t = fanout(work).min(units);
    if t <= 1 {
        f(0, out);
        return;
    }
    let base = units / t;
    let extra = units % t;
    std::thread::scope(|s| {
        let fr = &f;
        let mut rest = out;
        let mut start = 0usize;
        for w in 0..t {
            let take = (base + usize::from(w < extra)) * unit;
            let (head, tail) = std::mem::take(&mut rest).split_at_mut(take);
            rest = tail;
            let first = start;
            start += take;
            if w + 1 == t {
                // Run the final chunk on the calling thread.
                fr(first, head);
            } else {
                s.spawn(move || fr(first, head));
            }
        }
    });
}

/// Computes `blocks` independent values in parallel and returns them in
/// block order. Because the blocks are fixed by the caller (not by the
/// thread count), folding the returned vector in order yields the same
/// reduction at any pool size.
pub(crate) fn par_blocks<T, F>(blocks: usize, work: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if blocks == 0 {
        return Vec::new();
    }
    let t = fanout(work).min(blocks);
    if t <= 1 {
        return (0..blocks).map(f).collect();
    }
    let mut out: Vec<Option<T>> = (0..blocks).map(|_| None).collect();
    let base = blocks / t;
    let extra = blocks % t;
    std::thread::scope(|s| {
        let fr = &f;
        let mut rest = out.as_mut_slice();
        let mut b0 = 0usize;
        for w in 0..t {
            let take = base + usize::from(w < extra);
            let (head, tail) = std::mem::take(&mut rest).split_at_mut(take);
            rest = tail;
            let first = b0;
            b0 += take;
            let mut job = move || {
                for (i, slot) in head.iter_mut().enumerate() {
                    *slot = Some(fr(first + i));
                }
            };
            if w + 1 == t {
                job();
            } else {
                s.spawn(job);
            }
        }
    });
    out.into_iter()
        .map(|o| o.expect("every block is assigned to exactly one worker"))
        .collect()
}

/// Like [`par_chunks_mut`], but partitions `out` into *fixed-size*
/// blocks of `block_elems` (the last may be short) and additionally
/// collects one `T` per block, returned in block order. The fixed
/// block grid makes both the written elements and any reduction over
/// the returned partials independent of the thread count.
pub(crate) fn par_blocks_mut<T, F>(out: &mut [f32], block_elems: usize, work: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, &mut [f32]) -> T + Sync,
{
    if out.is_empty() {
        return Vec::new();
    }
    debug_assert!(block_elems > 0);
    let blocks = out.len().div_ceil(block_elems);
    let t = fanout(work).min(blocks);
    if t <= 1 {
        return out
            .chunks_mut(block_elems)
            .enumerate()
            .map(|(b, chunk)| f(b, chunk))
            .collect();
    }
    let mut partials: Vec<Option<T>> = (0..blocks).map(|_| None).collect();
    let base = blocks / t;
    let extra = blocks % t;
    std::thread::scope(|s| {
        let fr = &f;
        let mut rest_out = out;
        let mut rest_partials = partials.as_mut_slice();
        let mut b0 = 0usize;
        for w in 0..t {
            let take = base + usize::from(w < extra);
            let elems = (take * block_elems).min(rest_out.len());
            let (head_out, tail_out) = std::mem::take(&mut rest_out).split_at_mut(elems);
            rest_out = tail_out;
            let (head_p, tail_p) = std::mem::take(&mut rest_partials).split_at_mut(take);
            rest_partials = tail_p;
            let first = b0;
            b0 += take;
            let mut job = move || {
                for (i, (chunk, slot)) in head_out
                    .chunks_mut(block_elems)
                    .zip(head_p.iter_mut())
                    .enumerate()
                {
                    *slot = Some(fr(first + i, chunk));
                }
            };
            if w + 1 == t {
                job();
            } else {
                s.spawn(job);
            }
        }
    });
    partials
        .into_iter()
        .map(|o| o.expect("every block is assigned to exactly one worker"))
        .collect()
}

/// Element-wise map into a fresh buffer, fanned out over the pool.
/// `work_per_elem` scales the parallelism threshold to the cost of `f`.
pub(crate) fn par_map<F>(src: &[f32], work_per_elem: usize, f: F) -> Vec<f32>
where
    F: Fn(f32) -> f32 + Sync,
{
    let mut out = crate::pool::take_zeroed_f32(src.len());
    par_chunks_mut(&mut out, 1, src.len() * work_per_elem, |start, chunk| {
        let end = start + chunk.len();
        for (o, &x) in chunk.iter_mut().zip(&src[start..end]) {
            *o = f(x);
        }
    });
    out
}

/// Element-wise zip-map of two equal-length buffers into a fresh one.
pub(crate) fn par_map2<F>(a: &[f32], b: &[f32], work_per_elem: usize, f: F) -> Vec<f32>
where
    F: Fn(f32, f32) -> f32 + Sync,
{
    debug_assert_eq!(a.len(), b.len());
    let mut out = crate::pool::take_zeroed_f32(a.len());
    par_chunks_mut(&mut out, 1, a.len() * work_per_elem, |start, chunk| {
        let end = start + chunk.len();
        for ((o, &x), &y) in chunk.iter_mut().zip(&a[start..end]).zip(&b[start..end]) {
            *o = f(x, y);
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_size_resolves_and_overrides() {
        let before = threads();
        assert!(before >= 1);
        set_threads(3);
        assert_eq!(threads(), 3);
        set_threads(0); // clamped
        assert_eq!(threads(), 1);
        set_threads(before);
    }

    #[test]
    fn chunks_cover_every_element_once() {
        let before = threads();
        for t in [1usize, 2, 5] {
            set_threads(t);
            let mut out = vec![0.0f32; 1003 * 7];
            // Force the parallel path regardless of size.
            par_chunks_mut(&mut out, 7, PAR_MIN_WORK, |start, chunk| {
                for (i, o) in chunk.iter_mut().enumerate() {
                    *o += (start + i) as f32;
                }
            });
            for (i, &v) in out.iter().enumerate() {
                assert_eq!(v, i as f32, "element {i} at {t} threads");
            }
        }
        set_threads(before);
    }

    #[test]
    fn blocks_return_in_order_at_any_width() {
        let before = threads();
        let serial: Vec<usize> = (0..23).map(|b| b * b).collect();
        for t in [1usize, 2, 4, 16] {
            set_threads(t);
            let got = par_blocks(23, PAR_MIN_WORK, |b| b * b);
            assert_eq!(got, serial, "at {t} threads");
        }
        set_threads(before);
    }

    #[test]
    fn blocks_mut_partition_is_fixed() {
        let before = threads();
        let mut reference: Option<(Vec<f32>, Vec<f32>)> = None;
        for t in [1usize, 2, 3, 8] {
            set_threads(t);
            let mut out = vec![1.0f32; 250];
            let partials = par_blocks_mut(&mut out, 64, PAR_MIN_WORK, |b, chunk| {
                for o in chunk.iter_mut() {
                    *o += b as f32;
                }
                chunk.iter().sum::<f32>()
            });
            assert_eq!(partials.len(), 4); // ceil(250/64)
            match &reference {
                None => reference = Some((out, partials)),
                Some((r_out, r_p)) => {
                    assert_eq!(&out, r_out, "at {t} threads");
                    assert_eq!(&partials, r_p, "at {t} threads");
                }
            }
        }
        set_threads(before);
    }

    #[test]
    fn small_work_stays_serial() {
        // Work below the threshold must not spawn; verify by observing
        // a single contiguous chunk (start == 0, full length).
        use std::sync::atomic::AtomicUsize;
        let calls = AtomicUsize::new(0);
        let mut out = vec![0.0f32; 64];
        par_chunks_mut(&mut out, 1, 64, |start, chunk| {
            calls.fetch_add(1, Ordering::Relaxed);
            assert_eq!(start, 0);
            assert_eq!(chunk.len(), 64);
        });
        assert_eq!(calls.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn par_map_matches_serial() {
        let before = threads();
        let src: Vec<f32> = (0..5000).map(|i| i as f32 * 0.25).collect();
        let serial: Vec<f32> = src.iter().map(|&x| x.sqrt() + 1.0).collect();
        set_threads(4);
        let par = par_map(&src, PAR_MIN_WORK, |x| x.sqrt() + 1.0);
        assert_eq!(par, serial);
        let par2 = par_map2(&src, &src, PAR_MIN_WORK, |x, y| x * y);
        let serial2: Vec<f32> = src.iter().map(|&x| x * x).collect();
        assert_eq!(par2, serial2);
        set_threads(before);
    }
}

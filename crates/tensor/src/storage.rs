//! Reference-counted tensor storage.
//!
//! Storage is the unit of *base-model sharing* in Menos: multiple model
//! instances may hold tensors whose structure differs (different
//! adapters, different cut layers) while their parameter data aliases
//! one shared buffer. [`Storage::ptr_eq`] is the primitive the rest of
//! the workspace uses to verify sharing.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{RwLock, RwLockReadGuard, RwLockWriteGuard};

static NEXT_STORAGE_ID: AtomicU64 = AtomicU64::new(1);

/// A shared, mutable buffer of `f32` values.
///
/// Cloning a `Storage` is cheap and yields an alias of the same buffer;
/// use [`Storage::deep_clone`] for an independent copy.
///
/// # Examples
///
/// ```
/// use menos_tensor::Storage;
///
/// let a = Storage::from_vec(vec![1.0, 2.0]);
/// let b = a.clone();           // alias
/// b.write()[0] = 7.0;
/// assert_eq!(a.read()[0], 7.0);
/// assert!(Storage::ptr_eq(&a, &b));
///
/// let c = a.deep_clone();      // independent copy
/// assert!(!Storage::ptr_eq(&a, &c));
/// ```
#[derive(Clone)]
pub struct Storage {
    id: u64,
    data: Arc<RwLock<Vec<f32>>>,
}

impl Storage {
    /// Creates storage holding `data`.
    pub fn from_vec(data: Vec<f32>) -> Self {
        Storage {
            id: NEXT_STORAGE_ID.fetch_add(1, Ordering::Relaxed),
            data: Arc::new(RwLock::new(data)),
        }
    }

    /// Creates zero-filled storage of `len` elements.
    pub fn zeros(len: usize) -> Self {
        Storage::from_vec(vec![0.0; len])
    }

    /// A stable identifier for the underlying buffer (shared by all
    /// aliases, distinct across [`Storage::deep_clone`]s).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.read().len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Read access to the buffer.
    pub fn read(&self) -> RwLockReadGuard<'_, Vec<f32>> {
        self.data.read()
    }

    /// Write access to the buffer.
    ///
    /// Writes through any alias are visible to all aliases — this is
    /// how optimizer steps update parameters in place without touching
    /// the autograd graph.
    pub fn write(&self) -> RwLockWriteGuard<'_, Vec<f32>> {
        self.data.write()
    }

    /// Copies the contents into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<f32> {
        self.data.read().clone()
    }

    /// An independent copy of the buffer (new identity).
    pub fn deep_clone(&self) -> Storage {
        Storage::from_vec(self.to_vec())
    }

    /// Whether two handles alias the same underlying buffer.
    pub fn ptr_eq(a: &Storage, b: &Storage) -> bool {
        Arc::ptr_eq(&a.data, &b.data)
    }

    /// Size of the buffer in bytes (4 bytes per element).
    pub fn size_bytes(&self) -> u64 {
        self.len() as u64 * 4
    }
}

impl std::fmt::Debug for Storage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Storage")
            .field("id", &self.id)
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aliasing_semantics() {
        let a = Storage::from_vec(vec![1.0, 2.0, 3.0]);
        let b = a.clone();
        assert_eq!(a.id(), b.id());
        assert!(Storage::ptr_eq(&a, &b));
        b.write()[1] = 9.0;
        assert_eq!(a.to_vec(), vec![1.0, 9.0, 3.0]);
    }

    #[test]
    fn deep_clone_is_independent() {
        let a = Storage::from_vec(vec![1.0]);
        let c = a.deep_clone();
        assert!(!Storage::ptr_eq(&a, &c));
        assert_ne!(a.id(), c.id());
        c.write()[0] = 5.0;
        assert_eq!(a.read()[0], 1.0);
        assert_eq!(c.read()[0], 5.0);
    }

    #[test]
    fn sizes() {
        let s = Storage::zeros(10);
        assert_eq!(s.len(), 10);
        assert!(!s.is_empty());
        assert_eq!(s.size_bytes(), 40);
        assert!(s.to_vec().iter().all(|&x| x == 0.0));
        assert!(Storage::from_vec(vec![]).is_empty());
    }

    #[test]
    fn ids_are_unique() {
        let ids: Vec<u64> = (0..100).map(|_| Storage::zeros(1).id()).collect();
        let mut dedup = ids.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len());
    }

    #[test]
    fn storage_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Storage>();
    }
}

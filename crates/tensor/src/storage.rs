//! Reference-counted tensor storage.
//!
//! Storage is the unit of *base-model sharing* in Menos: multiple model
//! instances may hold tensors whose structure differs (different
//! adapters, different cut layers) while their parameter data aliases
//! one shared buffer. [`Storage::ptr_eq`] is the primitive the rest of
//! the workspace uses to verify sharing.
//!
//! Storage buffers participate in the [`crate::pool`] arena: when the
//! last alias of a buffer drops, its allocation is recycled into the
//! per-thread pool instead of returning to the allocator, and
//! [`Storage::zeros`] draws from the same pool. Step-loop tensors
//! (activations, gradients, stacked batches) therefore reuse a small
//! working set of allocations instead of mallocing fresh storage
//! every step.

use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{RwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::pool;

static NEXT_STORAGE_ID: AtomicU64 = AtomicU64::new(1);

/// The pooled buffer inside a [`Storage`]: recycles its allocation
/// into the thread-local pool when the last alias drops.
struct PooledF32(Vec<f32>);

impl Drop for PooledF32 {
    fn drop(&mut self) {
        pool::recycle_f32(std::mem::take(&mut self.0));
    }
}

/// Read guard over a storage buffer; derefs to the `Vec<f32>`.
pub struct StorageReadGuard<'a>(RwLockReadGuard<'a, PooledF32>);

impl Deref for StorageReadGuard<'_> {
    type Target = Vec<f32>;
    fn deref(&self) -> &Vec<f32> {
        &self.0 .0
    }
}

/// Write guard over a storage buffer; derefs to the `Vec<f32>`.
pub struct StorageWriteGuard<'a>(RwLockWriteGuard<'a, PooledF32>);

impl Deref for StorageWriteGuard<'_> {
    type Target = Vec<f32>;
    fn deref(&self) -> &Vec<f32> {
        &self.0 .0
    }
}

impl DerefMut for StorageWriteGuard<'_> {
    fn deref_mut(&mut self) -> &mut Vec<f32> {
        &mut self.0 .0
    }
}

/// A shared, mutable buffer of `f32` values.
///
/// Cloning a `Storage` is cheap and yields an alias of the same buffer;
/// use [`Storage::deep_clone`] for an independent copy.
///
/// # Examples
///
/// ```
/// use menos_tensor::Storage;
///
/// let a = Storage::from_vec(vec![1.0, 2.0]);
/// let b = a.clone();           // alias
/// b.write()[0] = 7.0;
/// assert_eq!(a.read()[0], 7.0);
/// assert!(Storage::ptr_eq(&a, &b));
///
/// let c = a.deep_clone();      // independent copy
/// assert!(!Storage::ptr_eq(&a, &c));
/// ```
#[derive(Clone)]
pub struct Storage {
    id: u64,
    data: Arc<RwLock<PooledF32>>,
}

impl Storage {
    /// Creates storage holding `data`. The allocation joins the
    /// recycling pool when the storage's last alias drops.
    pub fn from_vec(data: Vec<f32>) -> Self {
        Storage {
            id: NEXT_STORAGE_ID.fetch_add(1, Ordering::Relaxed),
            data: Arc::new(RwLock::new(PooledF32(data))),
        }
    }

    /// Creates zero-filled storage of `len` elements, drawing the
    /// allocation from the buffer pool when possible.
    pub fn zeros(len: usize) -> Self {
        Storage::from_vec(pool::take_zeroed_f32(len))
    }

    /// A stable identifier for the underlying buffer (shared by all
    /// aliases, distinct across [`Storage::deep_clone`]s).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.read().0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Read access to the buffer.
    pub fn read(&self) -> StorageReadGuard<'_> {
        StorageReadGuard(self.data.read())
    }

    /// Write access to the buffer.
    ///
    /// Writes through any alias are visible to all aliases — this is
    /// how optimizer steps update parameters in place without touching
    /// the autograd graph.
    pub fn write(&self) -> StorageWriteGuard<'_> {
        StorageWriteGuard(self.data.write())
    }

    /// Copies the contents into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<f32> {
        self.data.read().0.clone()
    }

    /// An independent copy of the buffer (new identity), with the new
    /// allocation drawn from the buffer pool.
    pub fn deep_clone(&self) -> Storage {
        let src = self.data.read();
        let mut out = pool::take_f32(src.0.len());
        out.extend_from_slice(&src.0);
        drop(src);
        Storage::from_vec(out)
    }

    /// Whether two handles alias the same underlying buffer.
    pub fn ptr_eq(a: &Storage, b: &Storage) -> bool {
        Arc::ptr_eq(&a.data, &b.data)
    }

    /// Size of the buffer in bytes (4 bytes per element).
    pub fn size_bytes(&self) -> u64 {
        self.len() as u64 * 4
    }
}

impl std::fmt::Debug for Storage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Storage")
            .field("id", &self.id)
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aliasing_semantics() {
        let a = Storage::from_vec(vec![1.0, 2.0, 3.0]);
        let b = a.clone();
        assert_eq!(a.id(), b.id());
        assert!(Storage::ptr_eq(&a, &b));
        b.write()[1] = 9.0;
        assert_eq!(a.to_vec(), vec![1.0, 9.0, 3.0]);
    }

    #[test]
    fn deep_clone_is_independent() {
        let a = Storage::from_vec(vec![1.0]);
        let c = a.deep_clone();
        assert!(!Storage::ptr_eq(&a, &c));
        assert_ne!(a.id(), c.id());
        c.write()[0] = 5.0;
        assert_eq!(a.read()[0], 1.0);
        assert_eq!(c.read()[0], 5.0);
    }

    #[test]
    fn sizes() {
        let s = Storage::zeros(10);
        assert_eq!(s.len(), 10);
        assert!(!s.is_empty());
        assert_eq!(s.size_bytes(), 40);
        assert!(s.to_vec().iter().all(|&x| x == 0.0));
        assert!(Storage::from_vec(vec![]).is_empty());
    }

    #[test]
    fn ids_are_unique() {
        let ids: Vec<u64> = (0..100).map(|_| Storage::zeros(1).id()).collect();
        let mut dedup = ids.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len());
    }

    #[test]
    fn storage_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Storage>();
    }

    #[test]
    fn dropped_storage_recycles_into_pool() {
        // Big enough to be pool-eligible; same thread, so the next
        // zeros() of the same class must come back zeroed even though
        // the dropped buffer held non-zero data.
        let s = Storage::from_vec(vec![3.25f32; 4096]);
        drop(s);
        let z = Storage::zeros(4096);
        assert!(z.read().iter().all(|&x| x == 0.0));
    }
}

//! # menos-tensor — a pure-Rust f32 tensor library with reverse-mode autograd
//!
//! This crate replaces PyTorch in the Menos reproduction. It provides
//! exactly the operations a decoder-only transformer with LoRA adapters
//! needs, with a design tuned to the paper's requirements:
//!
//! * **Storage / structure separation** ([`Storage`] vs [`Tensor`]):
//!   multiple tensors (and whole [`ParamStore`] views) may alias one
//!   buffer. This is the mechanism behind Menos' *base model sharing* —
//!   per-client model structures over a single copy of the frozen
//!   weights.
//! * **No-grad execution** ([`no_grad`]): the server's first forward
//!   pass under the Fig. 3(d) policy runs without caching anything for
//!   backward.
//! * **Seeded backward** ([`Tensor::backward_with_grad`]): split
//!   learning resumes back-propagation from gradients received over the
//!   network rather than from a local loss.
//! * **Parallel compute backend** ([`threads`] / [`set_threads`], or
//!   the `MENOS_THREADS` environment variable): matmul and the heavy
//!   NN primitives fan out over a shared worker pool with a
//!   partitioning scheme that keeps results bitwise identical at any
//!   thread count. See `DESIGN.md` § "Compute backend".
//!
//! Tensors are dense, contiguous, row-major `f32` arrays. Autograd is
//! reverse-mode over an op graph captured at execution time; backward
//! passes recompute forward statistics instead of caching them.
//!
//! # Examples
//!
//! A single LoRA-style training step:
//!
//! ```
//! use menos_tensor::Tensor;
//!
//! // Frozen base weight and trainable low-rank factors.
//! let w = Tensor::from_vec(vec![0.5, -0.2, 0.1, 0.3], [2, 2]);
//! let a = Tensor::var_from_vec(vec![0.1, 0.2], [2, 1]);
//! let b = Tensor::var_from_vec(vec![0.0, 0.0], [1, 2]);
//!
//! let x = Tensor::from_vec(vec![1.0, 2.0], [1, 2]);
//! let y = &x.matmul(&w) + &x.matmul(&a).matmul(&b);
//! let loss = (&y * &y).sum_all();
//! let grads = loss.backward();
//! assert!(grads.get(&a).is_some());
//! assert!(grads.get(&b).is_some());
//! assert!(grads.get(&w).is_none()); // frozen
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod autograd;
mod checkpoint;
pub mod lowp;
mod op;
mod ops;
mod parallel;
mod param;
pub mod pool;
mod shape;
mod storage;
mod tensor;

pub use autograd::GradStore;
pub use checkpoint::{
    crc32, load_checkpoint, restore_into, save_checkpoint, CheckpointError, SectionReader,
    SectionWriter,
};
pub use parallel::{set_threads, threads};
pub use param::ParamStore;
pub use shape::Shape;
pub use storage::{Storage, StorageReadGuard, StorageWriteGuard};
pub use tensor::{is_grad_enabled, no_grad, Tensor};

//! Low-precision wire conversions: f32 ↔ IEEE-754 binary16 ("f16") and
//! bfloat16 ("bf16"), plus magnitude top-k selection for sparsified
//! tensor compression.
//!
//! These are *wire* kernels: training state everywhere in the system
//! stays f32 (master weights are never quantized); the conversions
//! exist so `menos-net` can ship tensor bodies at 2 bytes per element
//! or as a sparse top-k set (see `PROTOCOL.md` §7). All conversions
//! round to nearest, ties to even, matching hardware convert
//! instructions, and are deterministic across platforms.

/// Shift `x` right by `shift` bits, rounding to nearest, ties to even.
///
/// `shift` must be in `1..=31`.
fn rne_shift(x: u32, shift: u32) -> u32 {
    let kept = x >> shift;
    let half = 1u32 << (shift - 1);
    let rem = x & ((1u32 << shift) - 1);
    kept + u32::from(rem > half || (rem == half && kept & 1 == 1))
}

/// Convert one `f32` to IEEE-754 binary16 bits (round to nearest even).
///
/// Out-of-range magnitudes saturate to ±Inf exactly as a hardware
/// `cvtps2ph` would; every NaN canonicalises to a quiet NaN with the
/// sign preserved.
pub fn f32_to_f16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let abs = bits & 0x7fff_ffff;
    if abs >= 0x7f80_0000 {
        return if abs > 0x7f80_0000 {
            sign | 0x7e00 // NaN
        } else {
            sign | 0x7c00 // Inf
        };
    }
    let e32 = (abs >> 23) as i32; // biased f32 exponent
    if e32 > 142 {
        return sign | 0x7c00; // above the f16 range before rounding
    }
    if e32 >= 113 {
        // Normal range: rebias 127→15 and round the mantissa 23→10
        // bits. A rounding carry propagates into the exponent, which
        // also handles 65520.0 rounding up to Inf.
        let combined = (((e32 - 112) as u32) << 23) | (abs & 0x007f_ffff);
        return sign | rne_shift(combined, 13) as u16;
    }
    if e32 >= 102 {
        // Subnormal f16: shift the full 24-bit significand into place.
        let full = (abs & 0x007f_ffff) | 0x0080_0000;
        return sign | rne_shift(full, (126 - e32) as u32) as u16;
    }
    sign // magnitude below 2⁻²⁵ rounds to (signed) zero
}

/// Convert IEEE-754 binary16 bits to the exactly-representable `f32`.
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = ((h >> 10) & 0x1f) as u32;
    let man = (h & 0x03ff) as u32;
    let bits = match (exp, man) {
        (0, 0) => sign,
        (0, m) => {
            // Subnormal: the value is m·2⁻²⁴; renormalise it.
            let p = 31 - m.leading_zeros(); // MSB position, 0..=9
            sign | ((p + 103) << 23) | ((m << (23 - p)) & 0x007f_ffff)
        }
        (31, 0) => sign | 0x7f80_0000,
        (31, m) => sign | 0x7f80_0000 | (m << 13),
        (e, m) => sign | ((e + 112) << 23) | (m << 13),
    };
    f32::from_bits(bits)
}

/// Convert one `f32` to bfloat16 bits (round to nearest even).
pub fn f32_to_bf16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    if x.is_nan() {
        // Truncation could turn a NaN with a low-half payload into
        // Inf; force a quiet bit instead.
        return ((bits >> 16) as u16) | 0x0040;
    }
    let kept = bits >> 16;
    let rem = bits & 0xffff;
    (kept + u32::from(rem > 0x8000 || (rem == 0x8000 && kept & 1 == 1))) as u16
}

/// Convert bfloat16 bits to the exactly-representable `f32`.
pub fn bf16_bits_to_f32(h: u16) -> f32 {
    f32::from_bits((h as u32) << 16)
}

/// Append the little-endian binary16 encoding of `src` to `dst`.
pub fn encode_f16_le(src: &[f32], dst: &mut Vec<u8>) {
    dst.reserve(src.len() * 2);
    for &x in src {
        dst.extend_from_slice(&f32_to_f16_bits(x).to_le_bytes());
    }
}

/// Append the f32 values of little-endian binary16 `src` to `dst`.
///
/// `src.len()` must be even.
pub fn decode_f16_le(src: &[u8], dst: &mut Vec<f32>) {
    assert!(
        src.len().is_multiple_of(2),
        "binary16 payload must be 2 bytes/elem"
    );
    dst.reserve(src.len() / 2);
    for c in src.chunks_exact(2) {
        dst.push(f16_bits_to_f32(u16::from_le_bytes([c[0], c[1]])));
    }
}

/// Append the little-endian bfloat16 encoding of `src` to `dst`.
pub fn encode_bf16_le(src: &[f32], dst: &mut Vec<u8>) {
    dst.reserve(src.len() * 2);
    for &x in src {
        dst.extend_from_slice(&f32_to_bf16_bits(x).to_le_bytes());
    }
}

/// Append the f32 values of little-endian bfloat16 `src` to `dst`.
///
/// `src.len()` must be even.
pub fn decode_bf16_le(src: &[u8], dst: &mut Vec<f32>) {
    assert!(
        src.len().is_multiple_of(2),
        "bfloat16 payload must be 2 bytes/elem"
    );
    dst.reserve(src.len() / 2);
    for c in src.chunks_exact(2) {
        dst.push(bf16_bits_to_f32(u16::from_le_bytes([c[0], c[1]])));
    }
}

/// Indices of the `k` largest-magnitude entries of `vals`, ascending.
///
/// Ties break toward the lower index, so the selection is a pure
/// function of the input — both peers of a deterministic run pick the
/// same sparsity pattern. `k` is clamped to `vals.len()`.
pub fn top_k_by_magnitude(vals: &[f32], k: usize) -> Vec<u32> {
    assert!(
        vals.len() <= u32::MAX as usize,
        "top-k index space is u32 on the wire"
    );
    let k = k.min(vals.len());
    let mut idx: Vec<u32> = (0..vals.len() as u32).collect();
    let key = |i: &u32| {
        let mag = vals[*i as usize].to_bits() & 0x7fff_ffff;
        (core::cmp::Reverse(mag), *i)
    };
    if k > 0 && k < idx.len() {
        idx.select_nth_unstable_by_key(k - 1, key);
    }
    idx.truncate(k);
    idx.sort_unstable();
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f16_every_pattern_roundtrips_through_f32() {
        for h in 0..=u16::MAX {
            let x = f16_bits_to_f32(h);
            if x.is_nan() {
                assert!(f16_bits_to_f32(f32_to_f16_bits(x)).is_nan());
            } else {
                assert_eq!(f32_to_f16_bits(x), h, "pattern {h:#06x} -> {x}");
            }
        }
    }

    #[test]
    fn bf16_every_pattern_roundtrips_through_f32() {
        for h in 0..=u16::MAX {
            let x = bf16_bits_to_f32(h);
            if x.is_nan() {
                assert!(bf16_bits_to_f32(f32_to_bf16_bits(x)).is_nan());
            } else {
                assert_eq!(f32_to_bf16_bits(x), h, "pattern {h:#06x} -> {x}");
            }
        }
    }

    #[test]
    fn f16_rounds_to_nearest_even() {
        // 1.0 + 2⁻¹¹ is exactly halfway between 1.0 and the next f16
        // (1.0 + 2⁻¹⁰); ties go to the even mantissa, which is 1.0.
        assert_eq!(f32_to_f16_bits(1.0 + 0.000_488_281_25), 0x3c00);
        // Just above the midpoint rounds up.
        assert_eq!(f32_to_f16_bits(1.0 + 0.000_488_4), 0x3c01);
        // Odd mantissa at the midpoint rounds up to even.
        let odd = f16_bits_to_f32(0x3c01); // 1.0 + 2⁻¹⁰
        assert_eq!(f32_to_f16_bits(odd + 0.000_488_281_25), 0x3c02);
    }

    #[test]
    fn f16_saturation_and_special_values() {
        assert_eq!(f32_to_f16_bits(65504.0), 0x7bff); // f16::MAX exact
        assert_eq!(f32_to_f16_bits(65520.0), 0x7c00); // rounds to Inf
        assert_eq!(f32_to_f16_bits(1e9), 0x7c00);
        assert_eq!(f32_to_f16_bits(-1e9), 0xfc00);
        assert_eq!(f32_to_f16_bits(f32::INFINITY), 0x7c00);
        assert_eq!(f32_to_f16_bits(0.0), 0x0000);
        assert_eq!(f32_to_f16_bits(-0.0), 0x8000);
        // Smallest f16 subnormal is 2⁻²⁴; exactly half of it ties to 0.
        assert_eq!(f32_to_f16_bits(2.0f32.powi(-24)), 0x0001);
        assert_eq!(f32_to_f16_bits(2.0f32.powi(-25)), 0x0000);
        assert_eq!(f32_to_f16_bits(2.0f32.powi(-25) * 1.5), 0x0001);
    }

    #[test]
    fn f16_error_is_within_one_ulp_relative() {
        // 2⁻¹¹ relative error bound for round-to-nearest in the normal
        // range (10 explicit mantissa bits → half an ulp is 2⁻¹¹).
        let mut x = 1e-3f32;
        while x < 6e4 {
            let back = f16_bits_to_f32(f32_to_f16_bits(x));
            assert!((back - x).abs() <= x.abs() * (1.0 / 2048.0) + 1e-24);
            x *= 1.37;
        }
    }

    #[test]
    fn bulk_codecs_match_scalar() {
        let vals: Vec<f32> = (0..1000).map(|i| (i as f32 - 500.0) * 0.37).collect();
        let mut f16 = Vec::new();
        encode_f16_le(&vals, &mut f16);
        assert_eq!(f16.len(), 2000);
        let mut back = Vec::new();
        decode_f16_le(&f16, &mut back);
        for (x, b) in vals.iter().zip(&back) {
            assert_eq!(f32_to_f16_bits(*x), f32_to_f16_bits(*b));
        }
        let mut bf = Vec::new();
        encode_bf16_le(&vals, &mut bf);
        let mut back = Vec::new();
        decode_bf16_le(&bf, &mut back);
        for (x, b) in vals.iter().zip(&back) {
            assert_eq!(f32_to_bf16_bits(*x), f32_to_bf16_bits(*b));
        }
    }

    #[test]
    fn top_k_picks_largest_magnitudes_deterministically() {
        let vals = [0.1, -5.0, 3.0, 0.0, -3.0, 4.0];
        assert_eq!(top_k_by_magnitude(&vals, 3), vec![1, 2, 5]);
        // Tie between |3.0| at index 2 and |-3.0| at index 4: lower
        // index wins.
        assert_eq!(top_k_by_magnitude(&vals, 4), vec![1, 2, 4, 5]);
        assert_eq!(top_k_by_magnitude(&vals, 0), Vec::<u32>::new());
        assert_eq!(top_k_by_magnitude(&vals, 99).len(), vals.len());
        assert_eq!(top_k_by_magnitude(&[], 4), Vec::<u32>::new());
    }
}

//! Tensor shapes and broadcasting rules.
//!
//! All tensors in this crate are dense, row-major and contiguous.
//! Broadcasting follows the NumPy trailing-dimension rule: shapes are
//! aligned at the last dimension and each pair of dimensions must be
//! equal or one of them must be `1`.

use std::fmt;

/// The dimensions of a tensor, outermost first.
///
/// A scalar is represented by the empty shape `[]` with one element.
///
/// # Examples
///
/// ```
/// use menos_tensor::Shape;
///
/// let s = Shape::new(vec![2, 3, 4]);
/// assert_eq!(s.elem_count(), 24);
/// assert_eq!(s.rank(), 3);
/// assert_eq!(s.dims(), &[2, 3, 4]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from explicit dimensions.
    pub fn new(dims: Vec<usize>) -> Self {
        Shape(dims)
    }

    /// The scalar shape `[]`.
    pub fn scalar() -> Self {
        Shape(Vec::new())
    }

    /// Dimension sizes, outermost first.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements (`1` for a scalar).
    pub fn elem_count(&self) -> usize {
        self.0.iter().product()
    }

    /// Size of dimension `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d >= rank()`.
    pub fn dim(&self, d: usize) -> usize {
        self.0[d]
    }

    /// Size of the last dimension.
    ///
    /// # Panics
    ///
    /// Panics on a scalar shape.
    pub fn last_dim(&self) -> usize {
        *self.0.last().expect("scalar shape has no last dimension")
    }

    /// Row-major strides for this shape (in elements).
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// The broadcast of two shapes under the trailing-dimension rule, or
    /// `None` if they are incompatible.
    ///
    /// # Examples
    ///
    /// ```
    /// use menos_tensor::Shape;
    /// let a = Shape::new(vec![4, 3]);
    /// let b = Shape::new(vec![3]);
    /// assert_eq!(a.broadcast_with(&b), Some(Shape::new(vec![4, 3])));
    /// let c = Shape::new(vec![2]);
    /// assert_eq!(a.broadcast_with(&c), None);
    /// ```
    pub fn broadcast_with(&self, other: &Shape) -> Option<Shape> {
        let rank = self.rank().max(other.rank());
        let mut dims = vec![0usize; rank];
        for (i, dim) in dims.iter_mut().enumerate() {
            let a = if i < rank - self.rank() {
                1
            } else {
                self.0[i - (rank - self.rank())]
            };
            let b = if i < rank - other.rank() {
                1
            } else {
                other.0[i - (rank - other.rank())]
            };
            *dim = if a == b {
                a
            } else if a == 1 {
                b
            } else if b == 1 {
                a
            } else {
                return None;
            };
        }
        Some(Shape(dims))
    }

    /// Whether this shape can broadcast *to* `target` (i.e. the
    /// broadcast of the two is exactly `target`).
    pub fn broadcasts_to(&self, target: &Shape) -> bool {
        self.broadcast_with(target)
            .map(|s| s == *target)
            .unwrap_or(false)
    }

    /// Splits into all-but-last and last dimension sizes — the (rows,
    /// cols) view used by ops that act along the last dimension.
    ///
    /// # Panics
    ///
    /// Panics on a scalar shape.
    pub fn rows_cols(&self) -> (usize, usize) {
        let cols = self.last_dim();
        let rows = self.elem_count() / cols.max(1);
        (rows, cols)
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape(dims.to_vec())
    }
}

/// Iterates over the multi-dimensional indices of `shape` in row-major
/// order, calling `f` with each index slice.
///
/// Used by broadcasting kernels; hot loops use flat indexing instead.
pub fn for_each_index(shape: &Shape, mut f: impl FnMut(&[usize])) {
    let rank = shape.rank();
    if rank == 0 {
        f(&[]);
        return;
    }
    let mut idx = vec![0usize; rank];
    let total = shape.elem_count();
    if total == 0 {
        return;
    }
    for _ in 0..total {
        f(&idx);
        // Odometer increment.
        for d in (0..rank).rev() {
            idx[d] += 1;
            if idx[d] < shape.dim(d) {
                break;
            }
            idx[d] = 0;
        }
    }
}

/// Maps a multi-dimensional index in the broadcast (output) shape back
/// to the flat offset in an input of shape `in_shape`.
///
/// Dimensions where the input has size 1 (or is missing, for lower
/// rank) contribute offset 0 — that is what broadcasting means.
pub fn broadcast_offset(out_idx: &[usize], in_shape: &Shape) -> usize {
    let in_rank = in_shape.rank();
    let out_rank = out_idx.len();
    let strides = in_shape.strides();
    let mut off = 0;
    for (d, &stride) in strides.iter().enumerate().take(in_rank) {
        let out_d = out_rank - in_rank + d;
        let i = if in_shape.dim(d) == 1 {
            0
        } else {
            out_idx[out_d]
        };
        off += i * stride;
    }
    off
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basics() {
        let s = Shape::new(vec![2, 3]);
        assert_eq!(s.rank(), 2);
        assert_eq!(s.elem_count(), 6);
        assert_eq!(s.dim(0), 2);
        assert_eq!(s.last_dim(), 3);
        assert_eq!(s.strides(), vec![3, 1]);
        assert_eq!(s.rows_cols(), (2, 3));
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::scalar();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.elem_count(), 1);
        assert!(s.strides().is_empty());
    }

    #[test]
    fn strides_3d() {
        let s = Shape::new(vec![2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
    }

    #[test]
    fn broadcast_rules() {
        let a = Shape::new(vec![2, 3, 4]);
        assert_eq!(
            a.broadcast_with(&Shape::new(vec![4])),
            Some(Shape::new(vec![2, 3, 4]))
        );
        assert_eq!(
            a.broadcast_with(&Shape::new(vec![3, 1])),
            Some(Shape::new(vec![2, 3, 4]))
        );
        assert_eq!(
            Shape::new(vec![1]).broadcast_with(&Shape::new(vec![5])),
            Some(Shape::new(vec![5]))
        );
        assert_eq!(a.broadcast_with(&Shape::new(vec![5])), None);
        // Scalar broadcasts with anything.
        assert_eq!(Shape::scalar().broadcast_with(&a), Some(a.clone()));
    }

    #[test]
    fn broadcasts_to_is_directional() {
        let bias = Shape::new(vec![4]);
        let x = Shape::new(vec![2, 4]);
        assert!(bias.broadcasts_to(&x));
        assert!(!x.broadcasts_to(&bias));
    }

    #[test]
    fn index_iteration_order() {
        let s = Shape::new(vec![2, 2]);
        let mut seen = Vec::new();
        for_each_index(&s, |idx| seen.push(idx.to_vec()));
        assert_eq!(seen, vec![vec![0, 0], vec![0, 1], vec![1, 0], vec![1, 1]]);
    }

    #[test]
    fn index_iteration_empty_and_scalar() {
        let mut n = 0;
        for_each_index(&Shape::new(vec![0, 3]), |_| n += 1);
        assert_eq!(n, 0);
        for_each_index(&Shape::scalar(), |idx| {
            assert!(idx.is_empty());
            n += 1;
        });
        assert_eq!(n, 1);
    }

    #[test]
    fn broadcast_offsets() {
        // Input [3] broadcast into output [2, 3]: offset ignores the
        // leading output dim.
        let in_shape = Shape::new(vec![3]);
        assert_eq!(broadcast_offset(&[0, 2], &in_shape), 2);
        assert_eq!(broadcast_offset(&[1, 2], &in_shape), 2);
        // Input [2, 1] broadcast into [2, 3]: column index is pinned.
        let in_shape = Shape::new(vec![2, 1]);
        assert_eq!(broadcast_offset(&[1, 2], &in_shape), 1);
        assert_eq!(broadcast_offset(&[0, 1], &in_shape), 0);
    }

    #[test]
    fn conversions() {
        let s: Shape = [1, 2].into();
        assert_eq!(s.dims(), &[1, 2]);
        let s: Shape = vec![3].into();
        assert_eq!(s.dims(), &[3]);
        let s: Shape = (&[4usize, 5][..]).into();
        assert_eq!(s.dims(), &[4, 5]);
    }
}

//! The [`Tensor`] type: a dense f32 array with reverse-mode autograd.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rand::Rng;

use crate::op::Op;
use crate::shape::Shape;
use crate::storage::Storage;

static NEXT_TENSOR_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static GRAD_ENABLED: Cell<bool> = const { Cell::new(true) };
}

/// Whether operations currently record the autograd graph.
pub fn is_grad_enabled() -> bool {
    GRAD_ENABLED.with(|g| g.get())
}

/// Runs `f` with gradient recording disabled, restoring the previous
/// state afterwards (also on panic).
///
/// This is the primitive behind Menos' *no-grad first forward* policy
/// (Fig. 3d): the initial server forward produces activations for the
/// client without caching anything for backward.
///
/// # Examples
///
/// ```
/// use menos_tensor::{no_grad, Tensor};
///
/// let w = Tensor::var_from_vec(vec![2.0], [1]);
/// let y = no_grad(|| &w * &w);
/// assert!(!y.requires_grad());
/// ```
pub fn no_grad<T>(f: impl FnOnce() -> T) -> T {
    struct Restore(bool);
    impl Drop for Restore {
        fn drop(&mut self) {
            GRAD_ENABLED.with(|g| g.set(self.0));
        }
    }
    let _restore = Restore(GRAD_ENABLED.with(|g| g.replace(false)));
    f()
}

pub(crate) struct TensorInner {
    id: u64,
    shape: Shape,
    storage: Storage,
    op: Option<Op>,
    requires_grad: bool,
}

/// A dense, contiguous, row-major f32 tensor with optional gradient
/// tracking.
///
/// Cloning is cheap (an [`Arc`] bump) and preserves identity: clones
/// share data, autograd node, and id.
///
/// # Examples
///
/// ```
/// use menos_tensor::Tensor;
///
/// let x = Tensor::var_from_vec(vec![1.0, 2.0, 3.0], [3]);
/// let y = (&x * &x).sum_all();
/// let grads = y.backward();
/// assert_eq!(grads.get(&x).unwrap().to_vec(), vec![2.0, 4.0, 6.0]);
/// ```
#[derive(Clone)]
pub struct Tensor(pub(crate) Arc<TensorInner>);

impl Tensor {
    // ------------------------------------------------------------------
    // Construction
    // ------------------------------------------------------------------

    pub(crate) fn make(
        data: Vec<f32>,
        shape: Shape,
        op: Option<Op>,
        requires_grad: bool,
    ) -> Tensor {
        debug_assert_eq!(data.len(), shape.elem_count(), "data/shape mismatch");
        Tensor(Arc::new(TensorInner {
            id: NEXT_TENSOR_ID.fetch_add(1, Ordering::Relaxed),
            shape,
            storage: Storage::from_vec(data),
            op,
            requires_grad,
        }))
    }

    /// Builds the result of an op, recording the graph only when
    /// gradients are enabled and some input requires them.
    pub(crate) fn from_op(data: Vec<f32>, shape: Shape, op: Op) -> Tensor {
        let track = is_grad_enabled() && op.parents().iter().any(|p| p.requires_grad());
        if track {
            Tensor::make(data, shape, Some(op), true)
        } else {
            Tensor::make(data, shape, None, false)
        }
    }

    /// Creates a constant (non-trainable) tensor from data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the shape's element count.
    pub fn from_vec(data: Vec<f32>, shape: impl Into<Shape>) -> Tensor {
        let shape = shape.into();
        assert_eq!(
            data.len(),
            shape.elem_count(),
            "data length {} does not match shape {shape}",
            data.len()
        );
        Tensor::make(data, shape, None, false)
    }

    /// Creates a trainable leaf tensor (a parameter) from data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the shape's element count.
    pub fn var_from_vec(data: Vec<f32>, shape: impl Into<Shape>) -> Tensor {
        let shape = shape.into();
        assert_eq!(data.len(), shape.elem_count());
        Tensor::make(data, shape, None, true)
    }

    /// Creates a tensor that *aliases* existing storage — the mechanism
    /// behind base-model sharing. The structure (shape, grad tracking)
    /// is private to this tensor; the data is shared.
    ///
    /// # Panics
    ///
    /// Panics if the storage length does not match the shape.
    pub fn from_shared_storage(
        storage: Storage,
        shape: impl Into<Shape>,
        trainable: bool,
    ) -> Tensor {
        let shape = shape.into();
        assert_eq!(
            storage.len(),
            shape.elem_count(),
            "storage length {} does not match shape {shape}",
            storage.len()
        );
        Tensor(Arc::new(TensorInner {
            id: NEXT_TENSOR_ID.fetch_add(1, Ordering::Relaxed),
            shape,
            storage,
            op: None,
            requires_grad: trainable,
        }))
    }

    /// A tensor of zeros.
    pub fn zeros(shape: impl Into<Shape>) -> Tensor {
        let shape = shape.into();
        Tensor::make(vec![0.0; shape.elem_count()], shape, None, false)
    }

    /// A tensor of ones.
    pub fn ones(shape: impl Into<Shape>) -> Tensor {
        Tensor::full(1.0, shape)
    }

    /// A tensor filled with `value`.
    pub fn full(value: f32, shape: impl Into<Shape>) -> Tensor {
        let shape = shape.into();
        Tensor::make(vec![value; shape.elem_count()], shape, None, false)
    }

    /// A scalar (rank-0) tensor.
    pub fn scalar(value: f32) -> Tensor {
        Tensor::make(vec![value], Shape::scalar(), None, false)
    }

    /// Standard-normal random tensor scaled by `std` (non-trainable;
    /// call [`Tensor::trainable`] for a parameter view).
    pub fn randn<R: Rng>(rng: &mut R, shape: impl Into<Shape>, std: f32) -> Tensor {
        let shape = shape.into();
        let n = shape.elem_count();
        // Box-Muller keeps us independent of rand_distr.
        let mut data = Vec::with_capacity(n);
        while data.len() < n {
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            data.push(r * theta.cos() * std);
            if data.len() < n {
                data.push(r * theta.sin() * std);
            }
        }
        Tensor::make(data, shape, None, false)
    }

    /// Uniform random tensor in `[lo, hi)`.
    pub fn rand_uniform<R: Rng>(rng: &mut R, shape: impl Into<Shape>, lo: f32, hi: f32) -> Tensor {
        let shape = shape.into();
        let n = shape.elem_count();
        let data = (0..n).map(|_| rng.gen_range(lo..hi)).collect();
        Tensor::make(data, shape, None, false)
    }

    /// Returns a copy of this tensor marked trainable (a new leaf with
    /// its own identity, sharing the same storage).
    pub fn trainable(&self) -> Tensor {
        Tensor::from_shared_storage(self.0.storage.clone(), self.0.shape.clone(), true)
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// Unique identity of this tensor node.
    pub fn id(&self) -> u64 {
        self.0.id
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.0.shape
    }

    /// Dimension sizes.
    pub fn dims(&self) -> &[usize] {
        self.0.shape.dims()
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.shape.rank()
    }

    /// Total element count.
    pub fn elem_count(&self) -> usize {
        self.0.shape.elem_count()
    }

    /// Whether this tensor participates in gradient computation.
    pub fn requires_grad(&self) -> bool {
        self.0.requires_grad
    }

    /// The recorded op that produced this tensor, if any.
    pub(crate) fn op(&self) -> Option<&Op> {
        self.0.op.as_ref()
    }

    /// The underlying storage handle.
    pub fn storage(&self) -> &Storage {
        &self.0.storage
    }

    /// Copies the data out as a flat `Vec` in row-major order.
    pub fn to_vec(&self) -> Vec<f32> {
        self.0.storage.to_vec()
    }

    /// Extracts the value of a single-element tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor has more than one element.
    pub fn to_scalar(&self) -> f32 {
        assert_eq!(
            self.elem_count(),
            1,
            "to_scalar on tensor of shape {}",
            self.shape()
        );
        self.0.storage.read()[0]
    }

    /// Element at a flat (row-major) offset.
    ///
    /// # Panics
    ///
    /// Panics if `offset` is out of bounds.
    pub fn get_flat(&self, offset: usize) -> f32 {
        self.0.storage.read()[offset]
    }

    /// Logical size of this tensor's data in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.elem_count() as u64 * 4
    }

    /// A gradient-detached view sharing the same storage.
    pub fn detach(&self) -> Tensor {
        Tensor::from_shared_storage(self.0.storage.clone(), self.0.shape.clone(), false)
    }

    /// An independent deep copy (fresh storage, no graph, not
    /// trainable).
    pub fn deep_clone(&self) -> Tensor {
        Tensor::make(self.to_vec(), self.0.shape.clone(), None, false)
    }

    /// Whether two tensors alias the same underlying storage.
    pub fn same_storage(a: &Tensor, b: &Tensor) -> bool {
        Storage::ptr_eq(&a.0.storage, &b.0.storage)
    }

    /// Whether all elements are finite.
    pub fn all_finite(&self) -> bool {
        self.0.storage.read().iter().all(|x| x.is_finite())
    }

    /// Max absolute difference to another tensor of the same shape.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape(), other.shape(), "shape mismatch in comparison");
        let a = self.0.storage.read();
        let b = other.0.storage.read();
        a.iter()
            .zip(b.iter())
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f32::max)
    }
}

impl std::fmt::Debug for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let data = self.0.storage.read();
        let preview: Vec<f32> = data.iter().take(8).copied().collect();
        f.debug_struct("Tensor")
            .field("id", &self.0.id)
            .field("shape", &self.0.shape)
            .field("requires_grad", &self.0.requires_grad)
            .field("data[..8]", &preview)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
        assert_eq!(t.dims(), &[2, 2]);
        assert_eq!(t.rank(), 2);
        assert_eq!(t.elem_count(), 4);
        assert!(!t.requires_grad());
        assert_eq!(t.to_vec(), vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.get_flat(2), 3.0);
        assert_eq!(t.size_bytes(), 16);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_validates_len() {
        Tensor::from_vec(vec![1.0], [2, 2]);
    }

    #[test]
    fn fills() {
        assert!(Tensor::zeros([3]).to_vec().iter().all(|&x| x == 0.0));
        assert!(Tensor::ones([3]).to_vec().iter().all(|&x| x == 1.0));
        assert_eq!(Tensor::full(2.5, [2]).to_vec(), vec![2.5, 2.5]);
        assert_eq!(Tensor::scalar(7.0).to_scalar(), 7.0);
    }

    #[test]
    #[should_panic(expected = "to_scalar on tensor")]
    fn to_scalar_rejects_vectors() {
        Tensor::zeros([2]).to_scalar();
    }

    #[test]
    fn clone_shares_identity_and_data() {
        let a = Tensor::var_from_vec(vec![1.0], [1]);
        let b = a.clone();
        assert_eq!(a.id(), b.id());
        assert!(Tensor::same_storage(&a, &b));
    }

    #[test]
    fn detach_drops_grad_but_shares_data() {
        let a = Tensor::var_from_vec(vec![1.0], [1]);
        let d = a.detach();
        assert!(!d.requires_grad());
        assert!(Tensor::same_storage(&a, &d));
        assert_ne!(a.id(), d.id());
    }

    #[test]
    fn deep_clone_is_independent() {
        let a = Tensor::var_from_vec(vec![1.0], [1]);
        let c = a.deep_clone();
        assert!(!Tensor::same_storage(&a, &c));
        a.storage().write()[0] = 9.0;
        assert_eq!(c.to_vec(), vec![1.0]);
    }

    #[test]
    fn shared_storage_aliases() {
        let a = Tensor::from_vec(vec![1.0, 2.0], [2]);
        let b = Tensor::from_shared_storage(a.storage().clone(), [2], false);
        assert!(Tensor::same_storage(&a, &b));
        a.storage().write()[0] = 5.0;
        assert_eq!(b.to_vec(), vec![5.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "storage length")]
    fn shared_storage_validates_shape() {
        let a = Tensor::from_vec(vec![1.0, 2.0], [2]);
        Tensor::from_shared_storage(a.storage().clone(), [3], false);
    }

    #[test]
    fn no_grad_scoping() {
        assert!(is_grad_enabled());
        no_grad(|| {
            assert!(!is_grad_enabled());
            no_grad(|| assert!(!is_grad_enabled()));
            assert!(!is_grad_enabled());
        });
        assert!(is_grad_enabled());
    }

    #[test]
    fn no_grad_restores_on_panic() {
        let result = std::panic::catch_unwind(|| {
            no_grad(|| panic!("boom"));
        });
        assert!(result.is_err());
        assert!(is_grad_enabled());
    }

    #[test]
    fn randn_statistics() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(12345);
        let t = Tensor::randn(&mut rng, [10_000], 1.0);
        let v = t.to_vec();
        let mean: f32 = v.iter().sum::<f32>() / v.len() as f32;
        let var: f32 = v.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / v.len() as f32;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var - 1.0).abs() < 0.2, "var {var}");
        assert!(t.all_finite());
    }

    #[test]
    fn rand_uniform_bounds() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let t = Tensor::rand_uniform(&mut rng, [1000], -0.5, 0.5);
        assert!(t.to_vec().iter().all(|&x| (-0.5..0.5).contains(&x)));
    }

    #[test]
    fn max_abs_diff_works() {
        let a = Tensor::from_vec(vec![1.0, 2.0], [2]);
        let b = Tensor::from_vec(vec![1.5, 1.0], [2]);
        assert_eq!(a.max_abs_diff(&b), 1.0);
    }

    #[test]
    fn tensor_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Tensor>();
    }
}

//! Parameter checkpointing: serialize a [`ParamStore`] to bytes and
//! back, plus the tagged section container durable snapshots build on.
//!
//! Fine-tuning services checkpoint *adapters*, not base models — the
//! whole point of adapter-based methods is that a client's artifact is
//! megabytes. The format is self-contained and versioned:
//! `magic (u32) | version (u32) | count (u64)` then per parameter
//! `name_len (u32) | name | trainable (u8) | rank (u32) | dims (u64…) |
//! f32 data…`, all little-endian.
//!
//! Composite state (adapters + optimizer moments + counters + …) is
//! layered with [`SectionWriter`]/[`SectionReader`]: a tagged, versioned
//! container — `magic (u32) | version (u32) | count (u64)` then per
//! section `tag (u32) | len (u64) | bytes`, closed by a CRC-32 over
//! everything preceding it. Decode is length-validated before any
//! allocation and rejects corruption with typed errors, mirroring the
//! wire codec's discipline; the trailing checksum catches the payload
//! bit-flips that are structurally undetectable (any f32 is "valid").

use crate::param::ParamStore;
use crate::shape::Shape;
use crate::tensor::Tensor;

const MAGIC: u32 = 0x4d43_4b50; // "MCKP"
const VERSION: u32 = 1;

const SECTION_MAGIC: u32 = 0x4d53_4543; // "MSEC"
const SECTION_VERSION: u32 = 1;
/// Upper bound on sections per container — far above any real snapshot.
const MAX_SECTIONS: u64 = 1 << 16;
/// Upper bound on one section's byte length.
const MAX_SECTION_LEN: u64 = 1 << 32;

/// Errors reading a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// Byte stream ended early.
    Truncated,
    /// Magic number mismatch.
    BadMagic(u32),
    /// Unsupported format version.
    BadVersion(u32),
    /// A declared size is implausible.
    Corrupt(String),
    /// The trailing CRC-32 does not match the bytes it covers.
    ChecksumMismatch {
        /// Checksum stored in the byte stream.
        stored: u32,
        /// Checksum recomputed over the received bytes.
        actual: u32,
    },
    /// `restore_into` found a checkpoint entry absent from the target.
    MissingParam(String),
    /// `restore_into` found a same-named parameter with a different
    /// shape.
    ShapeMismatch {
        /// The mismatched parameter.
        name: String,
        /// Shape in the restore target.
        expected: Vec<usize>,
        /// Shape carried by the checkpoint.
        actual: Vec<usize>,
    },
    /// A required section tag is absent from a section container.
    MissingSection(u32),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Truncated => write!(f, "truncated checkpoint"),
            CheckpointError::BadMagic(m) => write!(f, "bad checkpoint magic {m:#010x}"),
            CheckpointError::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            CheckpointError::Corrupt(m) => write!(f, "corrupt checkpoint: {m}"),
            CheckpointError::ChecksumMismatch { stored, actual } => write!(
                f,
                "checkpoint checksum mismatch: stored {stored:#010x}, computed {actual:#010x}"
            ),
            CheckpointError::MissingParam(name) => {
                write!(f, "checkpoint parameter {name:?} not in restore target")
            }
            CheckpointError::ShapeMismatch {
                name,
                expected,
                actual,
            } => write!(
                f,
                "shape mismatch for {name:?}: target expects {expected:?}, checkpoint has {actual:?}"
            ),
            CheckpointError::MissingSection(tag) => {
                write!(f, "required section tag {tag} missing")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

// CRC-32 (IEEE 802.3, reflected 0xEDB88320), table-driven. Implemented
// locally: the workspace is offline and the guarantee we need is small —
// every single-bit flip in a snapshot is detected.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `bytes` — the checksum closing every section
/// container.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Builds a tagged, versioned, CRC-closed section container.
///
/// Tags are caller-defined `u32`s; repeated tags are allowed and kept
/// in insertion order (readers iterate with [`SectionReader::sections`]).
///
/// # Examples
///
/// ```
/// use menos_tensor::{SectionReader, SectionWriter};
///
/// let mut w = SectionWriter::new();
/// w.section(1, b"meta".to_vec());
/// w.section(2, vec![0u8; 8]);
/// let bytes = w.finish();
/// let r = SectionReader::parse(&bytes).unwrap();
/// assert_eq!(r.find(1), Some(&b"meta"[..]));
/// ```
#[derive(Debug, Default)]
pub struct SectionWriter {
    sections: Vec<(u32, Vec<u8>)>,
}

impl SectionWriter {
    /// Creates an empty container builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one tagged section.
    pub fn section(&mut self, tag: u32, bytes: Vec<u8>) -> &mut Self {
        self.sections.push((tag, bytes));
        self
    }

    /// Serializes the container: header, sections, trailing CRC-32.
    #[must_use]
    pub fn finish(self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend(SECTION_MAGIC.to_le_bytes());
        out.extend(SECTION_VERSION.to_le_bytes());
        out.extend((self.sections.len() as u64).to_le_bytes());
        for (tag, bytes) in &self.sections {
            out.extend(tag.to_le_bytes());
            out.extend((bytes.len() as u64).to_le_bytes());
            out.extend(bytes);
        }
        let crc = crc32(&out);
        out.extend(crc.to_le_bytes());
        out
    }
}

/// Parses a [`SectionWriter`] container, validating structure and the
/// trailing CRC-32 before exposing any section.
#[derive(Debug)]
pub struct SectionReader<'a> {
    sections: Vec<(u32, &'a [u8])>,
}

impl<'a> SectionReader<'a> {
    /// Validates and indexes `bytes`.
    ///
    /// # Errors
    ///
    /// [`CheckpointError`] on truncation, bad magic/version, an
    /// implausible count or length, trailing garbage, or a checksum
    /// mismatch — never panics on untrusted input.
    pub fn parse(bytes: &'a [u8]) -> Result<Self, CheckpointError> {
        let mut r = Reader { buf: bytes, pos: 0 };
        let magic = r.u32()?;
        if magic != SECTION_MAGIC {
            return Err(CheckpointError::BadMagic(magic));
        }
        let version = r.u32()?;
        if version != SECTION_VERSION {
            return Err(CheckpointError::BadVersion(version));
        }
        // Header (16) + trailing CRC (4) is the minimum container.
        if bytes.len() < 20 {
            return Err(CheckpointError::Truncated);
        }
        let body_end = bytes.len() - 4;
        let stored = u32::from_le_bytes(bytes[body_end..].try_into().expect("4"));
        let actual = crc32(&bytes[..body_end]);
        if stored != actual {
            return Err(CheckpointError::ChecksumMismatch { stored, actual });
        }
        let count = r.u64()?;
        if count > MAX_SECTIONS {
            return Err(CheckpointError::Corrupt(format!("{count} sections")));
        }
        let mut sections = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let tag = r.u32()?;
            let len = r.u64()?;
            if len > MAX_SECTION_LEN {
                return Err(CheckpointError::Corrupt(format!(
                    "section {tag} of {len} bytes"
                )));
            }
            let len = len as usize;
            let end = r.pos.checked_add(len).ok_or(CheckpointError::Truncated)?;
            if end > body_end {
                return Err(CheckpointError::Truncated);
            }
            sections.push((tag, &bytes[r.pos..end]));
            r.pos = end;
        }
        if r.pos != body_end {
            return Err(CheckpointError::Corrupt(format!(
                "{} trailing bytes after last section",
                body_end - r.pos
            )));
        }
        Ok(Self { sections })
    }

    /// First section carrying `tag`, if any.
    #[must_use]
    pub fn find(&self, tag: u32) -> Option<&'a [u8]> {
        self.sections
            .iter()
            .find(|(t, _)| *t == tag)
            .map(|(_, b)| *b)
    }

    /// Like [`find`](Self::find) but a missing tag is a typed error.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::MissingSection`] when no section carries
    /// `tag`.
    pub fn require(&self, tag: u32) -> Result<&'a [u8], CheckpointError> {
        self.find(tag).ok_or(CheckpointError::MissingSection(tag))
    }

    /// All sections in container order (repeated tags preserved).
    pub fn sections(&self) -> impl Iterator<Item = (u32, &'a [u8])> + '_ {
        self.sections.iter().map(|&(t, b)| (t, b))
    }

    /// Number of sections.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sections.len()
    }

    /// Whether the container carries no sections.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sections.is_empty()
    }
}

/// Serializes every parameter (name order) to a checkpoint byte buffer.
///
/// # Examples
///
/// ```
/// use menos_tensor::{load_checkpoint, save_checkpoint, ParamStore, Tensor};
///
/// let mut ps = ParamStore::new();
/// ps.insert("lora.a", Tensor::var_from_vec(vec![1.0, 2.0], [2]));
/// let bytes = save_checkpoint(&ps);
/// let restored = load_checkpoint(&bytes).unwrap();
/// assert_eq!(restored.get("lora.a").unwrap().to_vec(), vec![1.0, 2.0]);
/// assert!(restored.get("lora.a").unwrap().requires_grad());
/// ```
pub fn save_checkpoint(store: &ParamStore) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend(MAGIC.to_le_bytes());
    out.extend(VERSION.to_le_bytes());
    out.extend((store.len() as u64).to_le_bytes());
    for (name, t) in store.iter() {
        out.extend((name.len() as u32).to_le_bytes());
        out.extend(name.as_bytes());
        out.push(u8::from(t.requires_grad()));
        out.extend((t.rank() as u32).to_le_bytes());
        for &d in t.dims() {
            out.extend((d as u64).to_le_bytes());
        }
        for &v in t.storage().read().iter() {
            out.extend(v.to_le_bytes());
        }
    }
    out
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        let end = self.pos.checked_add(n).ok_or(CheckpointError::Truncated)?;
        let s = self
            .buf
            .get(self.pos..end)
            .ok_or(CheckpointError::Truncated)?;
        self.pos = end;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }
    fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }
    fn f32(&mut self) -> Result<f32, CheckpointError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }
}

/// Restores a [`ParamStore`] from checkpoint bytes.
///
/// # Errors
///
/// Returns [`CheckpointError`] on truncation, bad magic/version, or
/// implausible sizes — never panics on untrusted input.
pub fn load_checkpoint(bytes: &[u8]) -> Result<ParamStore, CheckpointError> {
    let mut r = Reader { buf: bytes, pos: 0 };
    let magic = r.u32()?;
    if magic != MAGIC {
        return Err(CheckpointError::BadMagic(magic));
    }
    let version = r.u32()?;
    if version != VERSION {
        return Err(CheckpointError::BadVersion(version));
    }
    let count = r.u64()?;
    if count > 1 << 24 {
        return Err(CheckpointError::Corrupt(format!("{count} parameters")));
    }
    let mut store = ParamStore::new();
    for _ in 0..count {
        let name_len = r.u32()? as usize;
        if name_len > 4096 {
            return Err(CheckpointError::Corrupt(format!(
                "name of {name_len} bytes"
            )));
        }
        let name = String::from_utf8(r.take(name_len)?.to_vec())
            .map_err(|_| CheckpointError::Corrupt("non-UTF8 name".into()))?;
        let trainable = r.u8()? != 0;
        let rank = r.u32()? as usize;
        if rank > 8 {
            return Err(CheckpointError::Corrupt(format!("rank {rank}")));
        }
        let mut dims = Vec::with_capacity(rank);
        let mut elems: u64 = 1;
        for _ in 0..rank {
            let d = r.u64()?;
            elems = elems.saturating_mul(d.max(1));
            if elems > 1 << 32 {
                return Err(CheckpointError::Corrupt(format!("{elems} elements")));
            }
            dims.push(d as usize);
        }
        let n: usize = dims.iter().product();
        let mut data = Vec::with_capacity(n);
        for _ in 0..n {
            data.push(r.f32()?);
        }
        let t = if trainable {
            Tensor::var_from_vec(data, Shape::new(dims))
        } else {
            Tensor::from_vec(data, Shape::new(dims))
        };
        store.insert(name, t);
    }
    Ok(store)
}

/// Applies checkpointed values onto an existing store **in place**:
/// same-named parameters have their storage overwritten, so every
/// structure aliasing them (e.g. a bound model) sees the restored
/// weights immediately.
///
/// # Errors
///
/// Fails with [`CheckpointError::MissingParam`] naming the checkpoint
/// entry absent from `target`, or [`CheckpointError::ShapeMismatch`]
/// naming the parameter plus both shapes; `target` is unmodified on
/// error.
pub fn restore_into(target: &ParamStore, checkpoint: &ParamStore) -> Result<(), CheckpointError> {
    // Validate first so failure leaves the target untouched.
    for (name, src) in checkpoint.iter() {
        let dst = target
            .get(name)
            .ok_or_else(|| CheckpointError::MissingParam(name.clone()))?;
        if dst.shape() != src.shape() {
            return Err(CheckpointError::ShapeMismatch {
                name: name.clone(),
                expected: dst.dims().to_vec(),
                actual: src.dims().to_vec(),
            });
        }
    }
    for (name, src) in checkpoint.iter() {
        let dst = target.get(name).expect("validated");
        dst.storage().write().copy_from_slice(&src.storage().read());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ParamStore {
        let mut ps = ParamStore::new();
        ps.insert(
            "a.weight",
            Tensor::var_from_vec(vec![1.0, -2.0, 3.5, 0.0], [2, 2]),
        );
        ps.insert("b.bias", Tensor::from_vec(vec![0.25; 3], [3]));
        ps.insert("scalar", Tensor::var_from_vec(vec![7.0], Shape::scalar()));
        ps
    }

    #[test]
    fn round_trip_preserves_everything() {
        let ps = sample();
        let restored = load_checkpoint(&save_checkpoint(&ps)).unwrap();
        assert_eq!(restored.len(), ps.len());
        for (name, t) in ps.iter() {
            let r = restored.get(name).unwrap();
            assert_eq!(r.dims(), t.dims(), "{name}");
            assert_eq!(r.to_vec(), t.to_vec(), "{name}");
            assert_eq!(r.requires_grad(), t.requires_grad(), "{name}");
        }
    }

    #[test]
    fn truncation_detected_at_every_cut() {
        let bytes = save_checkpoint(&sample());
        for cut in [0, 3, 8, 16, bytes.len() - 1] {
            let err = load_checkpoint(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    CheckpointError::Truncated | CheckpointError::BadMagic(_)
                ),
                "cut={cut}: {err:?}"
            );
        }
    }

    #[test]
    fn bad_magic_and_version() {
        let mut bytes = save_checkpoint(&sample());
        bytes[0] ^= 0xFF;
        assert!(matches!(
            load_checkpoint(&bytes),
            Err(CheckpointError::BadMagic(_))
        ));
        let mut bytes = save_checkpoint(&sample());
        bytes[4] = 99;
        assert!(matches!(
            load_checkpoint(&bytes),
            Err(CheckpointError::BadVersion(99))
        ));
    }

    #[test]
    fn restore_into_updates_aliased_structures() {
        let ps = sample();
        // A "model" holding an alias of a.weight.
        let alias = Tensor::from_shared_storage(
            ps.get("a.weight").unwrap().storage().clone(),
            [2, 2],
            false,
        );
        // Train, checkpoint, perturb, restore.
        let checkpoint_bytes = save_checkpoint(&ps);
        ps.get("a.weight").unwrap().storage().write()[0] = 999.0;
        assert_eq!(alias.to_vec()[0], 999.0);
        let checkpoint = load_checkpoint(&checkpoint_bytes).unwrap();
        restore_into(&ps, &checkpoint).unwrap();
        assert_eq!(alias.to_vec()[0], 1.0, "alias sees restored weights");
    }

    #[test]
    fn restore_into_validates_before_writing() {
        let ps = sample();
        let mut bad = ParamStore::new();
        bad.insert("a.weight", Tensor::zeros([3, 3])); // wrong shape
        let before = ps.get("a.weight").unwrap().to_vec();
        assert!(restore_into(&ps, &bad).is_err());
        assert_eq!(ps.get("a.weight").unwrap().to_vec(), before);

        let mut missing = ParamStore::new();
        missing.insert("nope", Tensor::zeros([1]));
        assert!(restore_into(&ps, &missing).is_err());
    }

    #[test]
    fn restore_into_names_the_missing_parameter() {
        let ps = sample();
        let mut missing = ParamStore::new();
        missing.insert("nope", Tensor::zeros([1]));
        let err = restore_into(&ps, &missing).unwrap_err();
        assert_eq!(err, CheckpointError::MissingParam("nope".into()));
        assert!(err.to_string().contains("nope"), "{err}");
    }

    #[test]
    fn restore_into_reports_both_shapes() {
        let ps = sample();
        let mut bad = ParamStore::new();
        bad.insert("a.weight", Tensor::zeros([3, 3]));
        let err = restore_into(&ps, &bad).unwrap_err();
        assert_eq!(
            err,
            CheckpointError::ShapeMismatch {
                name: "a.weight".into(),
                expected: vec![2, 2],
                actual: vec![3, 3],
            }
        );
        let msg = err.to_string();
        assert!(msg.contains("a.weight"), "{msg}");
        assert!(msg.contains("[2, 2]") && msg.contains("[3, 3]"), "{msg}");
    }

    #[test]
    fn restore_into_partial_failure_leaves_target_untouched() {
        // One good entry plus one mismatched: nothing may be written.
        let ps = sample();
        let mut mixed = ParamStore::new();
        mixed.insert("b.bias", Tensor::from_vec(vec![9.0; 3], [3]));
        mixed.insert("scalar", Tensor::zeros([5])); // wrong shape
        let before = ps.get("b.bias").unwrap().to_vec();
        assert!(matches!(
            restore_into(&ps, &mixed),
            Err(CheckpointError::ShapeMismatch { .. })
        ));
        assert_eq!(ps.get("b.bias").unwrap().to_vec(), before);
    }

    fn sample_container() -> Vec<u8> {
        let mut w = SectionWriter::new();
        w.section(7, b"meta-bytes".to_vec());
        w.section(9, save_checkpoint(&sample()));
        w.section(7, b"again".to_vec());
        w.finish()
    }

    #[test]
    fn section_container_round_trips() {
        let bytes = sample_container();
        let r = SectionReader::parse(&bytes).unwrap();
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
        assert_eq!(r.find(7), Some(&b"meta-bytes"[..]));
        assert_eq!(r.require(9).unwrap(), save_checkpoint(&sample()));
        let repeated: Vec<_> = r.sections().filter(|(t, _)| *t == 7).collect();
        assert_eq!(repeated.len(), 2);
        assert_eq!(repeated[1].1, b"again");
        assert_eq!(r.find(42), None);
        assert_eq!(r.require(42), Err(CheckpointError::MissingSection(42)));
    }

    #[test]
    fn empty_section_container_round_trips() {
        let bytes = SectionWriter::new().finish();
        let r = SectionReader::parse(&bytes).unwrap();
        assert!(r.is_empty());
    }

    #[test]
    fn section_container_rejects_every_truncation() {
        let bytes = sample_container();
        for cut in 0..bytes.len() {
            let err = SectionReader::parse(&bytes[..cut]).map(|_| ()).unwrap_err();
            assert!(
                matches!(
                    err,
                    CheckpointError::Truncated
                        | CheckpointError::BadMagic(_)
                        | CheckpointError::ChecksumMismatch { .. }
                ),
                "cut={cut}: {err:?}"
            );
        }
    }

    #[test]
    fn section_container_rejects_every_single_bit_flip() {
        let bytes = sample_container();
        for offset in 0..bytes.len() {
            let mut flipped = bytes.clone();
            flipped[offset] ^= 1 << (offset % 8);
            let err = SectionReader::parse(&flipped).map(|_| ()).unwrap_err();
            assert!(
                matches!(
                    err,
                    CheckpointError::ChecksumMismatch { .. }
                        | CheckpointError::BadMagic(_)
                        | CheckpointError::BadVersion(_)
                ),
                "offset={offset}: {err:?}"
            );
        }
    }

    #[test]
    fn section_container_rejects_bad_magic_version_and_trailing_garbage() {
        let mut bytes = sample_container();
        bytes[0] ^= 0xFF;
        assert!(matches!(
            SectionReader::parse(&bytes),
            Err(CheckpointError::BadMagic(_))
        ));

        let mut bytes = sample_container();
        bytes[4] = 99;
        assert!(matches!(
            SectionReader::parse(&bytes),
            Err(CheckpointError::BadVersion(99))
        ));

        // Appending bytes (and re-sealing the CRC) must still fail:
        // the section count no longer accounts for the container body.
        let sealed = sample_container();
        let mut grown = sealed[..sealed.len() - 4].to_vec();
        grown.extend(b"junk");
        let crc = crc32(&grown);
        grown.extend(crc.to_le_bytes());
        assert!(matches!(
            SectionReader::parse(&grown),
            Err(CheckpointError::Corrupt(_))
        ));
    }

    #[test]
    fn section_container_rejects_implausible_sizes() {
        // Count beyond the cap, CRC re-sealed so the structural check
        // (not the checksum) must reject it.
        let mut bytes = SectionWriter::new().finish();
        bytes.truncate(bytes.len() - 4);
        bytes[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        let crc = crc32(&bytes);
        bytes.extend(crc.to_le_bytes());
        assert!(matches!(
            SectionReader::parse(&bytes),
            Err(CheckpointError::Corrupt(_))
        ));
    }

    #[test]
    fn crc32_matches_reference_vector() {
        // The canonical IEEE 802.3 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn empty_store_round_trips() {
        let restored = load_checkpoint(&save_checkpoint(&ParamStore::new())).unwrap();
        assert!(restored.is_empty());
    }

    #[test]
    fn error_display() {
        assert!(CheckpointError::Truncated.to_string().contains("truncated"));
        assert!(CheckpointError::BadVersion(2).to_string().contains('2'));
    }
}

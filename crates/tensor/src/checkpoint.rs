//! Parameter checkpointing: serialize a [`ParamStore`] to bytes and
//! back.
//!
//! Fine-tuning services checkpoint *adapters*, not base models — the
//! whole point of adapter-based methods is that a client's artifact is
//! megabytes. The format is self-contained and versioned:
//! `magic (u32) | version (u32) | count (u64)` then per parameter
//! `name_len (u32) | name | trainable (u8) | rank (u32) | dims (u64…) |
//! f32 data…`, all little-endian.

use crate::param::ParamStore;
use crate::shape::Shape;
use crate::tensor::Tensor;

const MAGIC: u32 = 0x4d43_4b50; // "MCKP"
const VERSION: u32 = 1;

/// Errors reading a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// Byte stream ended early.
    Truncated,
    /// Magic number mismatch.
    BadMagic(u32),
    /// Unsupported format version.
    BadVersion(u32),
    /// A declared size is implausible.
    Corrupt(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Truncated => write!(f, "truncated checkpoint"),
            CheckpointError::BadMagic(m) => write!(f, "bad checkpoint magic {m:#010x}"),
            CheckpointError::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            CheckpointError::Corrupt(m) => write!(f, "corrupt checkpoint: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Serializes every parameter (name order) to a checkpoint byte buffer.
///
/// # Examples
///
/// ```
/// use menos_tensor::{load_checkpoint, save_checkpoint, ParamStore, Tensor};
///
/// let mut ps = ParamStore::new();
/// ps.insert("lora.a", Tensor::var_from_vec(vec![1.0, 2.0], [2]));
/// let bytes = save_checkpoint(&ps);
/// let restored = load_checkpoint(&bytes).unwrap();
/// assert_eq!(restored.get("lora.a").unwrap().to_vec(), vec![1.0, 2.0]);
/// assert!(restored.get("lora.a").unwrap().requires_grad());
/// ```
pub fn save_checkpoint(store: &ParamStore) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend(MAGIC.to_le_bytes());
    out.extend(VERSION.to_le_bytes());
    out.extend((store.len() as u64).to_le_bytes());
    for (name, t) in store.iter() {
        out.extend((name.len() as u32).to_le_bytes());
        out.extend(name.as_bytes());
        out.push(u8::from(t.requires_grad()));
        out.extend((t.rank() as u32).to_le_bytes());
        for &d in t.dims() {
            out.extend((d as u64).to_le_bytes());
        }
        for &v in t.storage().read().iter() {
            out.extend(v.to_le_bytes());
        }
    }
    out
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        let end = self.pos.checked_add(n).ok_or(CheckpointError::Truncated)?;
        let s = self
            .buf
            .get(self.pos..end)
            .ok_or(CheckpointError::Truncated)?;
        self.pos = end;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }
    fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }
    fn f32(&mut self) -> Result<f32, CheckpointError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }
}

/// Restores a [`ParamStore`] from checkpoint bytes.
///
/// # Errors
///
/// Returns [`CheckpointError`] on truncation, bad magic/version, or
/// implausible sizes — never panics on untrusted input.
pub fn load_checkpoint(bytes: &[u8]) -> Result<ParamStore, CheckpointError> {
    let mut r = Reader { buf: bytes, pos: 0 };
    let magic = r.u32()?;
    if magic != MAGIC {
        return Err(CheckpointError::BadMagic(magic));
    }
    let version = r.u32()?;
    if version != VERSION {
        return Err(CheckpointError::BadVersion(version));
    }
    let count = r.u64()?;
    if count > 1 << 24 {
        return Err(CheckpointError::Corrupt(format!("{count} parameters")));
    }
    let mut store = ParamStore::new();
    for _ in 0..count {
        let name_len = r.u32()? as usize;
        if name_len > 4096 {
            return Err(CheckpointError::Corrupt(format!(
                "name of {name_len} bytes"
            )));
        }
        let name = String::from_utf8(r.take(name_len)?.to_vec())
            .map_err(|_| CheckpointError::Corrupt("non-UTF8 name".into()))?;
        let trainable = r.u8()? != 0;
        let rank = r.u32()? as usize;
        if rank > 8 {
            return Err(CheckpointError::Corrupt(format!("rank {rank}")));
        }
        let mut dims = Vec::with_capacity(rank);
        let mut elems: u64 = 1;
        for _ in 0..rank {
            let d = r.u64()?;
            elems = elems.saturating_mul(d.max(1));
            if elems > 1 << 32 {
                return Err(CheckpointError::Corrupt(format!("{elems} elements")));
            }
            dims.push(d as usize);
        }
        let n: usize = dims.iter().product();
        let mut data = Vec::with_capacity(n);
        for _ in 0..n {
            data.push(r.f32()?);
        }
        let t = if trainable {
            Tensor::var_from_vec(data, Shape::new(dims))
        } else {
            Tensor::from_vec(data, Shape::new(dims))
        };
        store.insert(name, t);
    }
    Ok(store)
}

/// Applies checkpointed values onto an existing store **in place**:
/// same-named parameters have their storage overwritten, so every
/// structure aliasing them (e.g. a bound model) sees the restored
/// weights immediately.
///
/// # Errors
///
/// Fails if a checkpoint entry is missing from `target` or has a
/// different shape; `target` is unmodified on error.
pub fn restore_into(target: &ParamStore, checkpoint: &ParamStore) -> Result<(), CheckpointError> {
    // Validate first so failure leaves the target untouched.
    for (name, src) in checkpoint.iter() {
        let dst = target
            .get(name)
            .ok_or_else(|| CheckpointError::Corrupt(format!("parameter {name} not in target")))?;
        if dst.shape() != src.shape() {
            return Err(CheckpointError::Corrupt(format!(
                "shape mismatch for {name}: {} vs {}",
                dst.shape(),
                src.shape()
            )));
        }
    }
    for (name, src) in checkpoint.iter() {
        let dst = target.get(name).expect("validated");
        dst.storage().write().copy_from_slice(&src.storage().read());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ParamStore {
        let mut ps = ParamStore::new();
        ps.insert(
            "a.weight",
            Tensor::var_from_vec(vec![1.0, -2.0, 3.5, 0.0], [2, 2]),
        );
        ps.insert("b.bias", Tensor::from_vec(vec![0.25; 3], [3]));
        ps.insert("scalar", Tensor::var_from_vec(vec![7.0], Shape::scalar()));
        ps
    }

    #[test]
    fn round_trip_preserves_everything() {
        let ps = sample();
        let restored = load_checkpoint(&save_checkpoint(&ps)).unwrap();
        assert_eq!(restored.len(), ps.len());
        for (name, t) in ps.iter() {
            let r = restored.get(name).unwrap();
            assert_eq!(r.dims(), t.dims(), "{name}");
            assert_eq!(r.to_vec(), t.to_vec(), "{name}");
            assert_eq!(r.requires_grad(), t.requires_grad(), "{name}");
        }
    }

    #[test]
    fn truncation_detected_at_every_cut() {
        let bytes = save_checkpoint(&sample());
        for cut in [0, 3, 8, 16, bytes.len() - 1] {
            let err = load_checkpoint(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    CheckpointError::Truncated | CheckpointError::BadMagic(_)
                ),
                "cut={cut}: {err:?}"
            );
        }
    }

    #[test]
    fn bad_magic_and_version() {
        let mut bytes = save_checkpoint(&sample());
        bytes[0] ^= 0xFF;
        assert!(matches!(
            load_checkpoint(&bytes),
            Err(CheckpointError::BadMagic(_))
        ));
        let mut bytes = save_checkpoint(&sample());
        bytes[4] = 99;
        assert!(matches!(
            load_checkpoint(&bytes),
            Err(CheckpointError::BadVersion(99))
        ));
    }

    #[test]
    fn restore_into_updates_aliased_structures() {
        let ps = sample();
        // A "model" holding an alias of a.weight.
        let alias = Tensor::from_shared_storage(
            ps.get("a.weight").unwrap().storage().clone(),
            [2, 2],
            false,
        );
        // Train, checkpoint, perturb, restore.
        let checkpoint_bytes = save_checkpoint(&ps);
        ps.get("a.weight").unwrap().storage().write()[0] = 999.0;
        assert_eq!(alias.to_vec()[0], 999.0);
        let checkpoint = load_checkpoint(&checkpoint_bytes).unwrap();
        restore_into(&ps, &checkpoint).unwrap();
        assert_eq!(alias.to_vec()[0], 1.0, "alias sees restored weights");
    }

    #[test]
    fn restore_into_validates_before_writing() {
        let ps = sample();
        let mut bad = ParamStore::new();
        bad.insert("a.weight", Tensor::zeros([3, 3])); // wrong shape
        let before = ps.get("a.weight").unwrap().to_vec();
        assert!(restore_into(&ps, &bad).is_err());
        assert_eq!(ps.get("a.weight").unwrap().to_vec(), before);

        let mut missing = ParamStore::new();
        missing.insert("nope", Tensor::zeros([1]));
        assert!(restore_into(&ps, &missing).is_err());
    }

    #[test]
    fn empty_store_round_trips() {
        let restored = load_checkpoint(&save_checkpoint(&ParamStore::new())).unwrap();
        assert!(restored.is_empty());
    }

    #[test]
    fn error_display() {
        assert!(CheckpointError::Truncated.to_string().contains("truncated"));
        assert!(CheckpointError::BadVersion(2).to_string().contains('2'));
    }
}

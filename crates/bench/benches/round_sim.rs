//! End-to-end simulated round throughput: how fast the DES runtime
//! itself executes (simulated seconds cost virtually nothing to
//! compute, which is what makes the parameter sweeps cheap).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use menos_core::{run_experiment, ServerMode, ServerSpec, WorkloadSpec};
use menos_models::ModelConfig;

fn bench_runtime(c: &mut Criterion) {
    let mut group = c.benchmark_group("des_runtime");
    group.sample_size(20);
    for &clients in &[2usize, 6, 16] {
        group.bench_with_input(
            BenchmarkId::new("menos_opt_8iters", clients),
            &clients,
            |b, &clients| {
                let server = ServerSpec::v100(ServerMode::menos());
                let w = WorkloadSpec::paper(ModelConfig::opt_1_3b(), clients, 8);
                b.iter(|| run_experiment(&server, &w, 1));
            },
        );
    }
    group.bench_function("vanilla_llama_4clients", |b| {
        let server = ServerSpec::v100(ServerMode::VanillaSwapping);
        let w = WorkloadSpec::paper(ModelConfig::llama2_7b(), 4, 8);
        b.iter(|| run_experiment(&server, &w, 1));
    });
    group.finish();
}

criterion_group!(benches, bench_runtime);
criterion_main!(benches);

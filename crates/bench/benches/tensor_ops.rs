//! Tensor-engine kernel throughput: the real-engine substrate behind
//! the convergence experiments.
//!
//! The `matmul`/`nn_primitives` groups measure the kernels at whatever
//! pool size `MENOS_THREADS` selects (default: all cores); the
//! `threads_sweep` group re-runs the hot kernels at 1/2/4/8 workers to
//! expose the scaling curve of the shared compute backend.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use menos_sim::seeded_rng;
use menos_tensor::{set_threads, threads, Tensor};

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    let mut rng = seeded_rng(1, "bench");
    for &n in &[32usize, 64, 128, 256, 512] {
        let a = Tensor::randn(&mut rng, [n, n], 1.0);
        let b = Tensor::randn(&mut rng, [n, n], 1.0);
        group.throughput(Throughput::Elements((2 * n * n * n) as u64));
        if n >= 256 {
            group.sample_size(10);
        }
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| a.matmul(&b));
        });
    }
    // Transformer-shaped batched products: [batch, seq, d_model] against
    // a shared projection (the linear-layer fast path) and a batched rhs
    // (the attention-score path).
    let (batch, seq, d_model) = (8usize, 128usize, 512usize);
    let x = Tensor::randn(&mut rng, [batch, seq, d_model], 1.0);
    let w = Tensor::randn(&mut rng, [d_model, d_model], 1.0);
    group.throughput(Throughput::Elements(
        (2 * batch * seq * d_model * d_model) as u64,
    ));
    group.sample_size(10);
    group.bench_function(format!("{batch}x{seq}x{d_model}_proj"), |bench| {
        bench.iter(|| x.matmul(&w))
    });
    let k = Tensor::randn(&mut rng, [batch, d_model, seq], 1.0);
    group.throughput(Throughput::Elements(
        (2 * batch * seq * d_model * seq) as u64,
    ));
    group.bench_function(format!("{batch}x{seq}x{d_model}_scores"), |bench| {
        bench.iter(|| x.matmul(&k))
    });
    group.finish();
}

fn bench_nn_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("nn_primitives");
    let mut rng = seeded_rng(2, "bench");
    let x = Tensor::randn(&mut rng, [8, 64, 128], 1.0);
    let gamma = Tensor::ones([128]);
    let beta = Tensor::zeros([128]);
    group.bench_function("softmax_8x64x128", |b| b.iter(|| x.softmax_last()));
    group.bench_function("layer_norm_8x64x128", |b| {
        b.iter(|| x.layer_norm(&gamma, &beta, 1e-5))
    });
    group.bench_function("rms_norm_8x64x128", |b| b.iter(|| x.rms_norm(&gamma, 1e-5)));
    let q = Tensor::randn(&mut rng, [2, 4, 64, 16], 1.0);
    group.bench_function("rope_2x4x64x16", |b| b.iter(|| q.rope(10_000.0, 0)));
    // A [batch, seq, d_model] activation large enough to engage the
    // worker pool.
    let big = Tensor::randn(&mut rng, [8, 128, 512], 1.0);
    let gamma_big = Tensor::ones([512]);
    let beta_big = Tensor::zeros([512]);
    group.bench_function("softmax_8x128x512", |b| b.iter(|| big.softmax_last()));
    group.bench_function("layer_norm_8x128x512", |b| {
        b.iter(|| big.layer_norm(&gamma_big, &beta_big, 1e-5))
    });
    group.bench_function("gelu_8x128x512", |b| b.iter(|| big.gelu()));
    group.bench_function("gelu_exact_8x128x512", |b| b.iter(|| big.gelu_exact()));
    group.finish();
}

fn bench_backward(c: &mut Criterion) {
    let mut group = c.benchmark_group("autograd");
    let mut rng = seeded_rng(3, "bench");
    let w1 = Tensor::randn(&mut rng, [64, 64], 0.1).trainable();
    let w2 = Tensor::randn(&mut rng, [64, 64], 0.1).trainable();
    let x = Tensor::randn(&mut rng, [16, 64], 1.0);
    group.bench_function("mlp_forward_backward", |b| {
        b.iter(|| {
            let y = x.matmul(&w1).gelu().matmul(&w2).sum_all();
            y.backward()
        })
    });
    group.finish();
}

/// Throughput of the hot kernels as the worker pool widens. Results are
/// bitwise identical at every width; only the wall clock should move.
fn bench_threads_sweep(c: &mut Criterion) {
    let restore = threads();
    let mut group = c.benchmark_group("threads_sweep");
    let mut rng = seeded_rng(4, "bench");
    let n = 256usize;
    let a = Tensor::randn(&mut rng, [n, n], 1.0);
    let b = Tensor::randn(&mut rng, [n, n], 1.0);
    let act = Tensor::randn(&mut rng, [8, 128, 512], 1.0);
    for &t in &[1usize, 2, 4, 8] {
        set_threads(t);
        group.throughput(Throughput::Elements((2 * n * n * n) as u64));
        group.sample_size(15);
        group.bench_function(format!("matmul_{n}/t{t}"), |bench| {
            bench.iter(|| a.matmul(&b))
        });
        group.throughput(Throughput::Elements(act.elem_count() as u64));
        group.bench_function(format!("softmax_8x128x512/t{t}"), |bench| {
            bench.iter(|| act.softmax_last())
        });
    }
    group.finish();
    set_threads(restore);
}

criterion_group!(
    benches,
    bench_matmul,
    bench_nn_primitives,
    bench_backward,
    bench_threads_sweep
);
criterion_main!(benches);

//! Tensor-engine kernel throughput: the real-engine substrate behind
//! the convergence experiments.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use menos_sim::seeded_rng;
use menos_tensor::Tensor;

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    let mut rng = seeded_rng(1, "bench");
    for &n in &[32usize, 64, 128] {
        let a = Tensor::randn(&mut rng, [n, n], 1.0);
        let b = Tensor::randn(&mut rng, [n, n], 1.0);
        group.throughput(Throughput::Elements((2 * n * n * n) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| a.matmul(&b));
        });
    }
    group.finish();
}

fn bench_nn_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("nn_primitives");
    let mut rng = seeded_rng(2, "bench");
    let x = Tensor::randn(&mut rng, [8, 64, 128], 1.0);
    let gamma = Tensor::ones([128]);
    let beta = Tensor::zeros([128]);
    group.bench_function("softmax_8x64x128", |b| b.iter(|| x.softmax_last()));
    group.bench_function("layer_norm_8x64x128", |b| {
        b.iter(|| x.layer_norm(&gamma, &beta, 1e-5))
    });
    group.bench_function("rms_norm_8x64x128", |b| b.iter(|| x.rms_norm(&gamma, 1e-5)));
    let q = Tensor::randn(&mut rng, [2, 4, 64, 16], 1.0);
    group.bench_function("rope_2x4x64x16", |b| b.iter(|| q.rope(10_000.0, 0)));
    group.finish();
}

fn bench_backward(c: &mut Criterion) {
    let mut group = c.benchmark_group("autograd");
    let mut rng = seeded_rng(3, "bench");
    let w1 = Tensor::randn(&mut rng, [64, 64], 0.1).trainable();
    let w2 = Tensor::randn(&mut rng, [64, 64], 0.1).trainable();
    let x = Tensor::randn(&mut rng, [16, 64], 1.0);
    group.bench_function("mlp_forward_backward", |b| {
        b.iter(|| {
            let y = x.matmul(&w1).gelu().matmul(&w2).sum_all();
            y.backward()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_matmul, bench_nn_primitives, bench_backward);
criterion_main!(benches);

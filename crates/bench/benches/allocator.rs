//! Simulated-GPU allocator operation costs: the data-structure side of
//! on-demand allocation must stay negligible next to the modelled
//! release overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use menos_gpu::{AllocKind, GpuCluster, GpuDevice};

fn bench_device_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("gpu_device");
    group.bench_function("alloc_free_cycle", |b| {
        let mut gpu = GpuDevice::new(0, 32 << 30);
        b.iter(|| {
            let id = gpu.alloc(1 << 20, AllocKind::Activation, "bench").unwrap();
            gpu.free(id)
        });
    });
    for &live in &[16usize, 256, 4096] {
        group.bench_with_input(
            BenchmarkId::new("alloc_with_live", live),
            &live,
            |b, &live| {
                let mut gpu = GpuDevice::new(0, 64 << 30);
                let _ids: Vec<_> = (0..live)
                    .map(|i| {
                        gpu.alloc(1 << 20, AllocKind::Adapter, format!("c{i}"))
                            .unwrap()
                    })
                    .collect();
                b.iter(|| {
                    let id = gpu.alloc(1 << 20, AllocKind::Activation, "bench").unwrap();
                    gpu.free(id)
                });
            },
        );
    }
    group.finish();
}

fn bench_cluster_spanning(c: &mut Criterion) {
    let mut group = c.benchmark_group("gpu_cluster");
    group.bench_function("spanning_alloc_4gpus", |b| {
        let mut cluster = GpuCluster::new(4, 8 << 30);
        b.iter(|| {
            let a = cluster
                .alloc_spanning(25 << 30, AllocKind::Model, "llama")
                .unwrap();
            cluster.free(a)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_device_ops, bench_cluster_spanning);
criterion_main!(benches);

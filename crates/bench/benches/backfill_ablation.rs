//! Ablation bench: FCFS-only vs FCFS + backfilling (§4.2). Backfilling
//! lets small forward requests run around a blocked memory-hungry
//! backward, improving schedule time without starving the head.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use menos_core::{run_experiment, MemoryPolicy, ServerMode, ServerSpec, WorkloadSpec};
use menos_models::ModelConfig;

fn bench_backfill(c: &mut Criterion) {
    let mut group = c.benchmark_group("backfill_ablation");
    group.sample_size(10);
    let w = WorkloadSpec::paper(ModelConfig::llama2_7b(), 4, 6);
    println!("\nbackfilling ablation (Llama 2, 4 clients) — simulated results:");
    for backfilling in [true, false] {
        let server = ServerSpec::v100(ServerMode::Menos {
            policy: MemoryPolicy::menos(),
            backfilling,
        });
        let r = run_experiment(&server, &w, 1);
        println!(
            "  backfilling={backfilling}: round {:.2}s, schedule {:.3}s, backfills {}",
            r.avg_round_s, r.avg_schedule_s, r.scheduler_stats.1
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(backfilling),
            &backfilling,
            |b, &backfilling| {
                let server = ServerSpec::v100(ServerMode::Menos {
                    policy: MemoryPolicy::menos(),
                    backfilling,
                });
                b.iter(|| run_experiment(&server, &w, 1));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_backfill);
criterion_main!(benches);

//! Ablation bench: the Fig. 3 policy ladder (a → d). For each policy,
//! measures the *simulated* round time and peak memory of a 4-client
//! Llama workload — Criterion reports wall time of the DES; the
//! simulated metrics are printed once per policy for EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use menos_core::{run_experiment, MemoryPolicy, ServerMode, ServerSpec, WorkloadSpec};
use menos_models::ModelConfig;

fn bench_policy_ladder(c: &mut Criterion) {
    let mut group = c.benchmark_group("policy_ladder");
    group.sample_size(10);
    let w = WorkloadSpec::paper(ModelConfig::llama2_7b(), 4, 6);
    println!("\npolicy ladder (Llama 2, 4 clients) — simulated results:");
    for policy in MemoryPolicy::ladder() {
        let server = ServerSpec::v100(ServerMode::Menos {
            policy,
            backfilling: true,
        });
        let r = run_experiment(&server, &w, 1);
        match &r.error {
            Some(e) => println!("  {policy}: INFEASIBLE ({e})"),
            None => println!(
                "  {policy}: round {:.2}s, schedule {:.2}s, peak {:.1} GiB",
                r.avg_round_s,
                r.avg_schedule_s,
                r.peak_bytes as f64 / (1u64 << 30) as f64
            ),
        }
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{policy:?}")),
            &policy,
            |b, &policy| {
                let server = ServerSpec::v100(ServerMode::Menos {
                    policy,
                    backfilling: true,
                });
                b.iter(|| run_experiment(&server, &w, 1));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_policy_ladder);
criterion_main!(benches);

//! Scheduler decision latency (paper §4.2: "the scheduler takes less
//! than 0.1 milliseconds to make a decision").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use menos_core::{OpKind, Request, Scheduler};
use menos_split::ClientId;

fn bench_decision_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler_decision");
    for &clients in &[4usize, 16, 64, 256] {
        group.bench_with_input(
            BenchmarkId::new("data_arrived", clients),
            &clients,
            |b, &clients| {
                b.iter_batched(
                    || {
                        // A loaded scheduler: half the clients waiting.
                        let mut s = Scheduler::new(32 << 30, true);
                        for i in 0..clients / 2 {
                            s.data_arrived(Request {
                                client: ClientId(i as u64),
                                kind: OpKind::Backward,
                                demand: 5 << 30,
                            });
                        }
                        s
                    },
                    |mut s| {
                        s.data_arrived(Request {
                            client: ClientId(999),
                            kind: OpKind::Forward,
                            demand: 64 << 20,
                        })
                    },
                    criterion::BatchSize::SmallInput,
                );
            },
        );
        group.bench_with_input(
            BenchmarkId::new("task_completed", clients),
            &clients,
            |b, &clients| {
                b.iter_batched(
                    || {
                        let mut s = Scheduler::new(32 << 30, true);
                        s.data_arrived(Request {
                            client: ClientId(0),
                            kind: OpKind::Backward,
                            demand: 30 << 30,
                        });
                        for i in 1..clients {
                            s.data_arrived(Request {
                                client: ClientId(i as u64),
                                kind: OpKind::Backward,
                                demand: 5 << 30,
                            });
                        }
                        s
                    },
                    |mut s| s.task_completed(ClientId(0)),
                    criterion::BatchSize::SmallInput,
                );
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_decision_latency);
criterion_main!(benches);

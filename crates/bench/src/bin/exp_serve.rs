//! Many-client serving throughput: thread-per-client blocking pump vs
//! the single-thread event-driven server with batched steps, over
//! `SimTransport`.
//!
//! For each fleet size N the same N clients train the same number of
//! steps against one shared `MenosServer`; the aggregate throughput is
//! `N * steps / wall_time`. Appends one JSON line per configuration to
//! stdout and rewrites `BENCH_serve.json` when run from the repository
//! (the EXPERIMENTS.md study quotes those numbers).

use std::io::Write;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use menos_adapters::FineTuneConfig;
use menos_core::{MenosServer, ServerMode, ServerSpec};
use menos_data::{wiki_corpus, TokenDataset, Vocab};
use menos_models::{init_params, CausalLm, ModelConfig};
use menos_net::WanLink;
use menos_sim::seeded_rng;
use menos_split::{
    drive_client, event_sim_listener, serve_loop, sim_pair, ClientId, EventLoopOptions,
    EventLoopStats, ServerEventLoop, SplitClient, SplitSpec,
};
use menos_tensor::ParamStore;

const SEED: u64 = 4300;
const STEPS: usize = 3;

fn setup() -> (String, ModelConfig, Arc<Mutex<ParamStore>>) {
    let text = wiki_corpus(43, 12_000);
    let vocab = Vocab::from_text(&text);
    let config = ModelConfig::tiny_opt(vocab.size());
    let mut rng = seeded_rng(43, "exp-serve");
    let base = Arc::new(Mutex::new(init_params(&config, &mut rng)));
    (text, config, base)
}

fn make_server(config: &ModelConfig, base: &Arc<Mutex<ParamStore>>) -> Arc<Mutex<MenosServer>> {
    let view = base.lock().unwrap().shared_view(false);
    Arc::new(Mutex::new(MenosServer::from_store(
        config.clone(),
        view,
        ServerSpec::v100(ServerMode::menos()),
        SEED,
    )))
}

fn make_client(
    k: u64,
    text: &str,
    config: &ModelConfig,
    base: &Arc<Mutex<ParamStore>>,
) -> SplitClient {
    let vocab = Vocab::from_text(text);
    let mut ft = FineTuneConfig::paper(config);
    ft.batch_size = 2;
    ft.seq_len = 16;
    let ds = TokenDataset::new(vocab.encode(text), 16, k);
    let view = base.lock().unwrap().shared_view(false);
    SplitClient::new(
        ClientId(k),
        CausalLm::bind(config, &view),
        SplitSpec::paper(),
        ft,
        ds,
        k,
    )
}

/// Peak resident set of this process so far, from `/proc/self/status`
/// (kB). Monotonic high-water mark; 0 where procfs is unavailable.
fn vm_hwm_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1).and_then(|v| v.parse().ok()))
        })
        .unwrap_or(0)
}

/// N blocking `serve_loop` threads (one per client) over SimTransport.
fn run_threaded(n: u64, text: &str, config: &ModelConfig, base: &Arc<Mutex<ParamStore>>) -> f64 {
    let handler = make_server(config, base);
    let start = Instant::now();
    let mut drivers = Vec::new();
    let mut servers = Vec::new();
    for k in 0..n {
        let (mut client_t, mut server_t) = sim_pair(WanLink::lan(7 + k), WanLink::lan(100 + k));
        let mut h = handler.clone();
        servers.push(std::thread::spawn(move || {
            serve_loop(&mut server_t, &mut h)
        }));
        let mut client = make_client(k, text, config, base);
        drivers.push(std::thread::spawn(move || {
            drive_client(&mut client, &mut client_t, STEPS).expect("threaded fleet");
        }));
    }
    for d in drivers {
        d.join().expect("driver thread");
    }
    for s in servers {
        s.join().expect("server thread").expect("clean serve");
    }
    start.elapsed().as_secs_f64()
}

/// One `ServerEventLoop` thread serving all N clients over SimTransport.
fn run_event_loop(
    n: u64,
    text: &str,
    config: &ModelConfig,
    base: &Arc<Mutex<ParamStore>>,
) -> (f64, EventLoopStats) {
    let handler = make_server(config, base);
    let (dialer, listener) = event_sim_listener();
    let event_loop = ServerEventLoop::new(
        listener,
        handler,
        EventLoopOptions {
            max_clients: n as usize,
            ..EventLoopOptions::default()
        },
    );
    let start = Instant::now();
    let loop_thread = std::thread::spawn(move || event_loop.run());
    let mut drivers = Vec::new();
    for k in 0..n {
        let mut client = make_client(k, text, config, base);
        let dialer = dialer.clone();
        drivers.push(std::thread::spawn(move || {
            let mut transport = dialer
                .dial(WanLink::lan(7 + k), WanLink::lan(100 + k))
                .expect("dial");
            drive_client(&mut client, &mut transport, STEPS).expect("event-loop fleet");
        }));
    }
    for d in drivers {
        d.join().expect("driver thread");
    }
    let (_h, stats) = loop_thread.join().expect("loop thread");
    (start.elapsed().as_secs_f64(), stats)
}

/// Median of an odd-length slice (sorted copy).
fn median(xs: &[f64]) -> f64 {
    let mut s = xs.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    s[s.len() / 2]
}

fn main() {
    const REPEATS: usize = 3;
    let (text, config, base) = setup();
    let mut lines = Vec::new();
    println!("== Many-client serving: thread-per-client vs event-loop-batched ==");
    println!("   (median of {REPEATS} repeats, {STEPS} steps/client, SimTransport)\n");
    println!(
        "{:>8} {:>14} {:>14} {:>8} {:>10} {:>10}",
        "clients", "threaded st/s", "eventloop st/s", "speedup", "max batch", "VmHWM MB"
    );
    for n in [1u64, 8, 32, 128] {
        let total_steps = (n as usize * STEPS) as f64;
        let threaded: Vec<f64> = (0..REPEATS)
            .map(|_| total_steps / run_threaded(n, &text, &config, &base))
            .collect();
        let threaded_rate = median(&threaded);
        let hwm_threaded = vm_hwm_kb();
        lines.push(format!(
            "{{\"group\":\"serve\",\"bench\":\"threaded/n{n}\",\"clients\":{n},\"steps\":{STEPS},\
             \"repeats\":{REPEATS},\"steps_per_sec\":{threaded_rate:.2},\
             \"vm_hwm_kb\":{hwm_threaded}}}",
        ));
        let mut event = Vec::new();
        let mut stats = EventLoopStats::default();
        for _ in 0..REPEATS {
            let (s, st) = run_event_loop(n, &text, &config, &base);
            event.push(total_steps / s);
            stats = st;
        }
        let event_rate = median(&event);
        let hwm_event = vm_hwm_kb();
        lines.push(format!(
            "{{\"group\":\"serve\",\"bench\":\"event_loop/n{n}\",\"clients\":{n},\"steps\":{STEPS},\
             \"repeats\":{REPEATS},\"steps_per_sec\":{event_rate:.2},\"batches\":{},\
             \"batched_messages\":{},\"max_batch\":{},\"vm_hwm_kb\":{hwm_event}}}",
            stats.batches,
            stats.batched_messages,
            stats.max_batch,
        ));
        println!(
            "{n:>8} {threaded_rate:>14.2} {event_rate:>14.2} {:>7.2}x {:>10} {:>10.1}",
            event_rate / threaded_rate,
            stats.max_batch,
            hwm_event as f64 / 1024.0,
        );
    }
    let json = lines.join("\n") + "\n";
    print!("\n{json}");
    // Best-effort baseline refresh when run from the repo checkout.
    if std::path::Path::new("BENCH_serve.json").exists()
        || std::path::Path::new("Cargo.toml").exists()
    {
        if let Ok(mut f) = std::fs::File::create("BENCH_serve.json") {
            let _ = f.write_all(json.as_bytes());
            eprintln!("wrote BENCH_serve.json");
        }
    }
}

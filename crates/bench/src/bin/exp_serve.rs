//! Many-client serving throughput: thread-per-client blocking pump vs
//! the single-thread event-driven server with batched steps, over
//! `SimTransport`.
//!
//! For each fleet size N the same N clients train the same number of
//! steps against one shared `MenosServer`; the aggregate throughput is
//! `N * steps / wall_time`. Every `(mode, N)` configuration runs in
//! its **own subprocess** (self-exec with `--worker`), so the reported
//! `VmHWM` is that configuration's honest peak — not the high-water
//! mark a process-monotonic counter inherited from earlier, larger
//! configs. Each worker also reports the tensor buffer pool's hit rate
//! and the bytes the codec copied per step, the allocation-side
//! metrics of the zero-copy hot path.
//!
//! Prints one JSON line per configuration and rewrites
//! `BENCH_serve.json` when run from the repository (the EXPERIMENTS.md
//! study quotes those numbers).
//!
//! `--check` is the CI regression guard: it reruns the N=32 point in
//! both modes and fails (exit 1) if, within that same run, the event
//! loop's peak memory exceeds 2x the threaded pump's (measured
//! 1.4–1.8x; see `run_check` for why N=32 is the worst point) or its
//! throughput drops below 0.8x threaded. Same-run ratios only — no
//! committed absolute baselines, which would be host-dependent.
//!
//! The forced-overload study (v1.3) runs N clients against a
//! live-session capacity of N/4 and reports the shed rate and
//! completion-latency percentiles; `--check` additionally asserts the
//! structural overload contract — sheds happened, the live-session
//! peak respected the cap, and every client completed.
//!
//! The fleet placement study (v1.4) compares the coordinator's two
//! placement policies — round-robin vs memory-aware — over real TCP
//! backends (spawned as `--worker backend` subprocesses) with one
//! backend SIGKILLed mid-run: aggregate steps/s, sessions migrated,
//! and p95 client completion latency. `--check` asserts the failover
//! contract — at least one session migrated, every client completed,
//! and no survivor was assigned past its capacity.

use std::io::Write;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use menos_adapters::FineTuneConfig;
use menos_core::{MenosServer, ServerMode, ServerSpec, ServerState};
use menos_data::{wiki_corpus, TokenDataset, Vocab};
use menos_fleet::{BackendSpec, FleetCoordinator, FleetOptions, PlacementPolicy};
use menos_models::{init_params, CausalLm, ModelConfig};
use menos_net::{Codec, WanLink};
use menos_sim::seeded_rng;
use menos_split::{
    drive_client, drive_client_resumable, event_sim_listener, run_tcp_client_fleet, serve_loop,
    sim_pair, ClientId, EventLoopOptions, EventLoopStats, RetryPolicy, ServerEventLoop,
    SnapshotPolicy, SplitClient, SplitSpec, TcpEventServer, TcpOptions,
};
use menos_tensor::ParamStore;

const SEED: u64 = 4300;
const STEPS: usize = 3;

fn setup() -> (String, ModelConfig, Arc<Mutex<ParamStore>>) {
    let text = wiki_corpus(43, 12_000);
    let vocab = Vocab::from_text(&text);
    let config = ModelConfig::tiny_opt(vocab.size());
    let mut rng = seeded_rng(43, "exp-serve");
    let base = Arc::new(Mutex::new(init_params(&config, &mut rng)));
    (text, config, base)
}

fn make_server(config: &ModelConfig, base: &Arc<Mutex<ParamStore>>) -> Arc<Mutex<MenosServer>> {
    let view = base.lock().unwrap().shared_view(false);
    Arc::new(Mutex::new(MenosServer::from_store(
        config.clone(),
        view,
        ServerSpec::v100(ServerMode::menos()),
        SEED,
    )))
}

fn make_client(
    k: u64,
    text: &str,
    config: &ModelConfig,
    base: &Arc<Mutex<ParamStore>>,
) -> SplitClient {
    let vocab = Vocab::from_text(text);
    let mut ft = FineTuneConfig::paper(config);
    ft.batch_size = 2;
    ft.seq_len = 16;
    let ds = TokenDataset::new(vocab.encode(text), 16, k);
    let view = base.lock().unwrap().shared_view(false);
    SplitClient::new(
        ClientId(k),
        CausalLm::bind(config, &view),
        SplitSpec::paper(),
        ft,
        ds,
        k,
    )
}

/// Peak resident set of this process so far, from `/proc/self/status`
/// (kB). Monotonic high-water mark; 0 where procfs is unavailable.
fn vm_hwm_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1).and_then(|v| v.parse().ok()))
        })
        .unwrap_or(0)
}

/// N blocking `serve_loop` threads (one per client) over SimTransport.
fn run_threaded(n: u64, text: &str, config: &ModelConfig, base: &Arc<Mutex<ParamStore>>) -> f64 {
    let handler = make_server(config, base);
    let start = Instant::now();
    let mut drivers = Vec::new();
    let mut servers = Vec::new();
    for k in 0..n {
        let (mut client_t, mut server_t) = sim_pair(WanLink::lan(7 + k), WanLink::lan(100 + k));
        let mut h = handler.clone();
        servers.push(std::thread::spawn(move || {
            serve_loop(&mut server_t, &mut h)
        }));
        let mut client = make_client(k, text, config, base);
        drivers.push(std::thread::spawn(move || {
            drive_client(&mut client, &mut client_t, STEPS).expect("threaded fleet");
        }));
    }
    for d in drivers {
        d.join().expect("driver thread");
    }
    for s in servers {
        s.join().expect("server thread").expect("clean serve");
    }
    start.elapsed().as_secs_f64()
}

/// One `ServerEventLoop` thread serving all N clients over SimTransport.
fn run_event_loop(
    n: u64,
    text: &str,
    config: &ModelConfig,
    base: &Arc<Mutex<ParamStore>>,
) -> (f64, EventLoopStats) {
    let handler = make_server(config, base);
    let (dialer, listener) = event_sim_listener();
    let event_loop = ServerEventLoop::new(
        listener,
        handler,
        EventLoopOptions {
            accept_limit: n as usize,
            ..EventLoopOptions::default()
        },
    );
    let start = Instant::now();
    let loop_thread = std::thread::spawn(move || event_loop.run());
    let mut drivers = Vec::new();
    for k in 0..n {
        let mut client = make_client(k, text, config, base);
        let dialer = dialer.clone();
        drivers.push(std::thread::spawn(move || {
            let mut transport = dialer
                .dial(WanLink::lan(7 + k), WanLink::lan(100 + k))
                .expect("dial");
            drive_client(&mut client, &mut transport, STEPS).expect("event-loop fleet");
        }));
    }
    for d in drivers {
        d.join().expect("driver thread");
    }
    let (_h, stats) = loop_thread.join().expect("loop thread");
    (start.elapsed().as_secs_f64(), stats)
}

/// Forced overload (v1.3): N clients vs a live-session capacity of
/// N/4 through one event loop. Shed clients wait out the server's
/// `Busy` hint and retry; every client completes. Returns the loop
/// stats plus each client's wall-clock completion latency.
fn run_overload(
    n: u64,
    text: &str,
    config: &ModelConfig,
    base: &Arc<Mutex<ParamStore>>,
) -> (usize, EventLoopStats, Vec<f64>) {
    let capacity = (n as usize / 4).max(1);
    let handler = make_server(config, base);
    let (dialer, listener) = event_sim_listener();
    let event_loop = ServerEventLoop::new(
        listener,
        handler,
        EventLoopOptions {
            capacity,
            busy_retry_after: Duration::from_millis(2),
            ..EventLoopOptions::default()
        },
    );
    let shutdown = event_loop.shutdown_handle();
    let loop_thread = std::thread::spawn(move || event_loop.run());
    let mut drivers = Vec::new();
    for k in 0..n {
        let mut client = make_client(k, text, config, base);
        let dialer = dialer.clone();
        drivers.push(std::thread::spawn(move || {
            let policy = RetryPolicy {
                retries: 8,
                backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(50),
                seed: client.id().0,
            };
            let start = Instant::now();
            drive_client_resumable(
                &mut client,
                || dialer.dial(WanLink::lan(7 + k), WanLink::lan(100 + k)),
                STEPS,
                &policy,
            )
            .expect("overload fleet completes");
            start.elapsed().as_secs_f64()
        }));
    }
    let latencies: Vec<f64> = drivers
        .into_iter()
        .map(|d| d.join().expect("driver thread"))
        .collect();
    shutdown.store(true, std::sync::atomic::Ordering::Relaxed);
    let (_h, stats) = loop_thread.join().expect("loop thread");
    (capacity, stats, latencies)
}

/// Percentile of a nonempty slice (nearest-rank, sorted copy).
fn percentile(xs: &[f64], p: f64) -> f64 {
    let mut s = xs.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let rank = ((p / 100.0) * (s.len() as f64 - 1.0)).round() as usize;
    s[rank.min(s.len() - 1)]
}

/// One client training `CODEC_STEPS` steps against the shared server
/// over the geo-distributed WAN profile (60 ms, 8 MB/s, 5% jitter),
/// advertising exactly one codec. Returns `(bytes_per_step,
/// virtual_steps_per_sec)`: bytes are what both links actually
/// charged (PROTOCOL.md §7 post-compression sizes), time is the
/// virtual WAN clock — wall time would measure this host's compute,
/// not the network the codec exists to relieve.
fn run_codec_wan(
    codec: Codec,
    text: &str,
    config: &ModelConfig,
    base: &Arc<Mutex<ParamStore>>,
) -> (f64, f64) {
    let handler = make_server(config, base);
    let (mut client_t, mut server_t) = sim_pair(
        WanLink::geo_distributed(SEED),
        WanLink::geo_distributed(SEED + 1),
    );
    let mut h = handler.clone();
    let server = std::thread::spawn(move || {
        serve_loop(&mut server_t, &mut h).expect("clean serve");
        server_t.link_stats()
    });
    let mut client = make_client(0, text, config, base);
    if codec != Codec::F32Raw {
        client.set_advertised_codecs(codec.flag());
    }
    drive_client(&mut client, &mut client_t, CODEC_STEPS).expect("codec fleet");
    assert_eq!(
        client.codec(),
        codec,
        "server must echo the advertised codec"
    );
    let (down_bytes, _) = server.join().expect("server thread");
    let (up_bytes, _) = client_t.link_stats();
    let bytes_per_step = (up_bytes + down_bytes) as f64 / CODEC_STEPS as f64;
    let steps_per_sec = CODEC_STEPS as f64 / client_t.elapsed().as_secs_f64();
    (bytes_per_step, steps_per_sec)
}

const CODEC_STEPS: usize = 3;
const CODECS: [Codec; 4] = [Codec::F32Raw, Codec::F16, Codec::BF16, Codec::TopK8];

/// Runs the per-codec WAN study, printing a table and returning the
/// JSON lines plus the raw/f16 bytes-per-step pair for the CI guard.
fn run_codec_study(lines: &mut Vec<String>) -> (f64, f64) {
    let (text, config, base) = setup();
    println!("\n== Wire compression over the WAN profile (60 ms / 8 MB/s, 1 client) ==");
    println!(
        "{:>8} {:>14} {:>12} {:>14}",
        "codec", "bytes/step", "vs raw", "WAN steps/s"
    );
    let mut raw_bytes = 0.0;
    let mut f16_bytes = 0.0;
    for codec in CODECS {
        let (bytes_per_step, steps_per_sec) = run_codec_wan(codec, &text, &config, &base);
        if codec == Codec::F32Raw {
            raw_bytes = bytes_per_step;
        }
        if codec == Codec::F16 {
            f16_bytes = bytes_per_step;
        }
        println!(
            "{:>8} {:>14.0} {:>11.2}x {:>14.2}",
            codec.name(),
            bytes_per_step,
            bytes_per_step / raw_bytes,
            steps_per_sec,
        );
        lines.push(format!(
            "{{\"group\":\"serve\",\"bench\":\"codec/{}\",\"clients\":1,\
             \"steps\":{CODEC_STEPS},\"bytes_per_step\":{bytes_per_step:.0},\
             \"wan_steps_per_sec\":{steps_per_sec:.2}}}",
            codec.name(),
        ));
    }
    (raw_bytes, f16_bytes)
}

/// Median of an odd-length slice (sorted copy).
fn median(xs: &[f64]) -> f64 {
    let mut s = xs.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    s[s.len() / 2]
}

const REPEATS: usize = 3;
const FLEET_SIZES: [u64; 5] = [1, 8, 32, 128, 512];
/// Forced-overload study points (capacity is N/4 at each).
const OVERLOAD_SIZES: [u64; 2] = [32, 128];

/// Extracts a numeric field from a one-line JSON object (flat keys,
/// no nesting — exactly what the workers emit). No serde needed.
fn json_num(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let i = line.find(&pat)? + pat.len();
    let rest = &line[i..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Runs one `(mode, n)` configuration in this process and prints its
/// JSON line. Called in a fresh subprocess per configuration, so
/// `VmHWM` and the pool counters describe this configuration alone.
fn run_worker(mode: &str, n: u64) {
    let (text, config, base) = setup();
    let total_steps = (n as usize * STEPS) as f64;
    // Count only serving traffic, not model setup.
    menos_tensor::pool::reset_stats();
    let line = match mode {
        "threaded" => {
            let rates: Vec<f64> = (0..REPEATS)
                .map(|_| total_steps / run_threaded(n, &text, &config, &base))
                .collect();
            let rate = median(&rates);
            let p = menos_tensor::pool::stats();
            let copied_per_step = p.bytes_copied / (n * STEPS as u64 * REPEATS as u64);
            format!(
                "{{\"group\":\"serve\",\"bench\":\"threaded/n{n}\",\"clients\":{n},\
                 \"steps\":{STEPS},\"repeats\":{REPEATS},\"steps_per_sec\":{rate:.2},\
                 \"vm_hwm_kb\":{},\"pool_hit_rate\":{:.3},\"bytes_copied_per_step\":{}}}",
                vm_hwm_kb(),
                p.hit_rate(),
                copied_per_step,
            )
        }
        "event_loop" => {
            let mut rates = Vec::new();
            let mut stats = EventLoopStats::default();
            for _ in 0..REPEATS {
                let (s, st) = run_event_loop(n, &text, &config, &base);
                rates.push(total_steps / s);
                stats = st;
            }
            let rate = median(&rates);
            let p = menos_tensor::pool::stats();
            let copied_per_step = p.bytes_copied / (n * STEPS as u64 * REPEATS as u64);
            format!(
                "{{\"group\":\"serve\",\"bench\":\"event_loop/n{n}\",\"clients\":{n},\
                 \"steps\":{STEPS},\"repeats\":{REPEATS},\"steps_per_sec\":{rate:.2},\
                 \"batches\":{},\"batched_messages\":{},\"max_batch\":{},\"vm_hwm_kb\":{},\
                 \"pool_hit_rate\":{:.3},\"bytes_copied_per_step\":{}}}",
                stats.batches,
                stats.batched_messages,
                stats.max_batch,
                vm_hwm_kb(),
                p.hit_rate(),
                copied_per_step,
            )
        }
        "overload" => {
            let (capacity, stats, latencies) = run_overload(n, &text, &config, &base);
            let shed_rate = stats.shed as f64 / stats.accepted.max(1) as f64;
            format!(
                "{{\"group\":\"serve\",\"bench\":\"overload/n{n}\",\"clients\":{n},\
                 \"steps\":{STEPS},\"capacity\":{capacity},\"completed\":{},\
                 \"shed\":{},\"shed_rate\":{shed_rate:.3},\"max_live_sessions\":{},\
                 \"p50_completion_ms\":{:.1},\"p95_completion_ms\":{:.1}}}",
                latencies.len(),
                stats.shed,
                stats.max_live_sessions,
                percentile(&latencies, 50.0) * 1e3,
                percentile(&latencies, 95.0) * 1e3,
            )
        }
        other => panic!("unknown worker mode {other:?}"),
    };
    println!("{line}");
}

/// Spawns `--worker mode n` as a subprocess and returns its JSON line.
fn spawn_worker(mode: &str, n: u64) -> String {
    let exe = std::env::current_exe().expect("current exe");
    let out = std::process::Command::new(exe)
        .args(["--worker", mode, &n.to_string()])
        .output()
        .expect("spawn worker");
    assert!(
        out.status.success(),
        "worker {mode}/n{n} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout)
        .expect("worker output utf8")
        .lines()
        .rev()
        .find(|l| l.starts_with('{'))
        .expect("worker emitted no JSON line")
        .to_string()
}

// ---------------------------------------------------------------------
// Fleet placement study (v1.4): round-robin vs memory-aware through a
// coordinator, with one backend SIGKILLed mid-run.
// ---------------------------------------------------------------------

const FLEET_BACKENDS: usize = 3;
const FLEET_CLIENTS: u64 = 24;
const FLEET_STEPS: usize = 6;
/// Tight enough that the failover lands the survivors exactly at the
/// cap (24 clients / 2 survivors): the `--check` guard that no
/// survivor is assigned past capacity has no slack to hide in.
const FLEET_CAPACITY: usize = 12;
const FLEET_MODEL_SEED: u64 = 43;

/// The micro-model fleet setup: tiny enough that 2 policies × 24
/// clients fit the bench budget, derived exactly as the backend
/// workers derive it (same corpus, same `"base-model"` rng label).
fn fleet_setup() -> (String, ModelConfig, Arc<Mutex<ParamStore>>) {
    let text = wiki_corpus(FLEET_MODEL_SEED, 3_000);
    let vocab = Vocab::from_text(&text);
    let mut config = ModelConfig::tiny_opt(vocab.size());
    config.hidden = 32;
    config.layers = 2;
    config.heads = 2;
    config.intermediate = 64;
    let mut rng = seeded_rng(FLEET_MODEL_SEED, "base-model");
    let base = Arc::new(Mutex::new(init_params(&config, &mut rng)));
    (text, config, base)
}

fn fleet_client(
    k: u64,
    text: &str,
    config: &ModelConfig,
    base: &Arc<Mutex<ParamStore>>,
) -> SplitClient {
    let vocab = Vocab::from_text(text);
    let mut ft = FineTuneConfig::paper(config);
    ft.batch_size = 1;
    ft.seq_len = 8;
    let ds = TokenDataset::new(vocab.encode(text), 8, k);
    let view = base.lock().unwrap().shared_view(false);
    SplitClient::new(
        ClientId(k),
        CausalLm::bind(config, &view),
        SplitSpec::paper(),
        ft,
        ds,
        k,
    )
}

/// One fleet backend, run in its own subprocess (`--worker backend
/// DIR`) so the study's SIGKILL is a real process death and migration
/// has to come from the durable snapshot alone. Prints the bound
/// address, then serves until killed.
fn run_backend_worker(snapshot_dir: &str) -> ! {
    let (_, config, base) = fleet_setup();
    let view = base.lock().unwrap().shared_view(false);
    let handler = Arc::new(Mutex::new(MenosServer::from_store(
        config,
        view,
        ServerSpec::v100(ServerMode::menos()),
        FLEET_MODEL_SEED,
    )));
    let server = TcpEventServer::spawn_with_snapshots(
        ("127.0.0.1", 0),
        handler,
        EventLoopOptions {
            accept_limit: 1_000_000,
            ..EventLoopOptions::default()
        },
        TcpOptions::default(),
        SnapshotPolicy::periodic(snapshot_dir, 0),
    )
    .expect("bind backend");
    println!("server on {}", server.addr());
    server.join();
    std::process::exit(0)
}

/// A backend subprocess plus its parsed address and snapshot dir.
struct BackendProc {
    child: std::process::Child,
    spec: BackendSpec,
}

fn spawn_backend(dir: &std::path::Path) -> BackendProc {
    use std::io::BufRead;
    std::fs::create_dir_all(dir).expect("snapshot dir");
    let exe = std::env::current_exe().expect("current exe");
    let mut child = std::process::Command::new(exe)
        .args(["--worker", "backend"])
        .arg(dir)
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::inherit())
        .spawn()
        .expect("spawn backend worker");
    let stdout = child.stdout.take().expect("backend stdout");
    let mut reader = std::io::BufReader::new(stdout);
    let mut line = String::new();
    let addr = loop {
        line.clear();
        assert!(
            reader.read_line(&mut line).expect("backend banner") > 0,
            "backend exited before its banner"
        );
        if let Some(rest) = line.split("server on ").nth(1) {
            break rest.split_whitespace().next().expect("address").to_string();
        }
    };
    std::thread::spawn(move || {
        let mut sink = String::new();
        while matches!(reader.read_line(&mut sink), Ok(n) if n > 0) {
            sink.clear();
        }
    });
    BackendProc {
        child,
        spec: BackendSpec {
            addr,
            snapshot_dir: dir.to_path_buf(),
        },
    }
}

/// Runs one placement policy through a full kill-one-backend failover
/// and returns its JSON line. The structural outcome (every client
/// completes, ≥1 session migrated, survivors at or under capacity) is
/// asserted here, so the plain study run enforces the same contract
/// `--check` quotes.
fn run_fleet_study(policy: PlacementPolicy, label: &str) -> String {
    let (text, config, base) = fleet_setup();
    let root = std::env::temp_dir().join(format!("menos-exp-fleet-{label}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let mut backends: Vec<Option<BackendProc>> = (0..FLEET_BACKENDS)
        .map(|i| Some(spawn_backend(&root.join(format!("b{i}")))))
        .collect();
    let specs: Vec<BackendSpec> = backends
        .iter()
        .map(|b| b.as_ref().unwrap().spec.clone())
        .collect();
    let coordinator = FleetCoordinator::spawn(
        "127.0.0.1:0",
        specs,
        FleetOptions {
            policy,
            // Wide enough that a healthy-but-starved backend on a
            // noisy shared core is never falsely ruled dead (the
            // SIGKILLed one still fails every probe instantly, so
            // real detection stays ~max_missed x interval).
            heartbeat_interval: Duration::from_millis(80),
            max_missed: 5,
            probe_timeout: Duration::from_secs(2),
            capacity_per_server: FLEET_CAPACITY,
            ..FleetOptions::default()
        },
    )
    .expect("spawn coordinator");
    let coord_addr = coordinator.addr().to_string();

    let start = Instant::now();
    let drivers: Vec<_> = (0..FLEET_CLIENTS)
        .map(|k| {
            let mut client = fleet_client(k, &text, &config, &base);
            let coord_addr = coord_addr.clone();
            std::thread::spawn(move || {
                let retry = RetryPolicy {
                    retries: 120,
                    backoff: Duration::from_millis(10),
                    max_backoff: Duration::from_millis(100),
                    seed: k,
                };
                let t0 = Instant::now();
                run_tcp_client_fleet(&coord_addr, &mut client, FLEET_STEPS, &retry)
                    .expect("fleet client completes across the failover");
                t0.elapsed().as_secs_f64()
            })
        })
        .collect();

    // Kill backend 0 once every session placed on it is in its
    // durable snapshot — i.e. once the kill is guaranteed mid-run.
    let deadline = Instant::now() + Duration::from_secs(60);
    while (0..FLEET_CLIENTS).any(|k| coordinator.placement_of(ClientId(k)).is_none()) {
        assert!(Instant::now() < deadline, "fleet never fully placed");
        std::thread::sleep(Duration::from_millis(5));
    }
    let victims = (0..FLEET_CLIENTS)
        .filter(|&k| coordinator.placement_of(ClientId(k)) == Some(0))
        .count();
    assert!(victims > 0, "{label}: placement left backend 0 empty");
    let snap = root.join("b0").join("server.snap");
    loop {
        if let Ok(bytes) = std::fs::read(&snap) {
            if let Ok(state) = ServerState::from_bytes(&bytes) {
                if state.sessions.len() >= victims {
                    break;
                }
            }
        }
        assert!(
            Instant::now() < deadline,
            "victim sessions never snapshotted"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    let mut victim = backends[0].take().unwrap();
    victim.child.kill().expect("kill backend");
    victim.child.wait().expect("reap backend");

    let latencies: Vec<f64> = drivers
        .into_iter()
        .map(|d| d.join().expect("fleet driver"))
        .collect();
    let elapsed = start.elapsed().as_secs_f64();
    let stats = coordinator.stats();

    // Structural failover contract.
    assert!(stats.sessions_migrated > 0, "{label}: nothing migrated");
    assert_eq!(stats.migrations_failed, 0, "{label}: {stats:?}");
    assert_eq!(latencies.len(), FLEET_CLIENTS as usize);
    let mut overflow = 0usize;
    for b in 1..FLEET_BACKENDS {
        let assigned = (0..FLEET_CLIENTS)
            .filter(|&k| coordinator.placement_of(ClientId(k)) == Some(b))
            .count();
        if assigned > FLEET_CAPACITY {
            overflow += 1;
        }
    }
    assert_eq!(overflow, 0, "{label}: a survivor exceeded its capacity");

    coordinator.shutdown();
    for b in backends.into_iter().flatten() {
        let mut b = b;
        let _ = b.child.kill();
        let _ = b.child.wait();
    }
    let _ = std::fs::remove_dir_all(&root);

    let rate = (FLEET_CLIENTS as usize * FLEET_STEPS) as f64 / elapsed;
    format!(
        "{{\"group\":\"serve\",\"bench\":\"fleet/{label}\",\"clients\":{FLEET_CLIENTS},\
         \"backends\":{FLEET_BACKENDS},\"steps\":{FLEET_STEPS},\"capacity\":{FLEET_CAPACITY},\
         \"completed\":{},\"steps_per_sec\":{rate:.2},\"migrated\":{},\"failovers\":{},\
         \"redirects\":{},\"heartbeats_missed\":{},\"survivor_overflow\":{overflow},\
         \"p50_completion_ms\":{:.1},\"p95_completion_ms\":{:.1}}}",
        latencies.len(),
        stats.sessions_migrated,
        stats.failovers,
        stats.redirects_sent,
        stats.heartbeats_missed,
        percentile(&latencies, 50.0) * 1e3,
        percentile(&latencies, 95.0) * 1e3,
    )
}

const FLEET_POLICIES: [(PlacementPolicy, &str); 2] = [
    (PlacementPolicy::RoundRobin, "round_robin"),
    (PlacementPolicy::MemoryAware, "memory_aware"),
];

/// Runs the placement study, printing a table and appending the JSON
/// lines.
fn run_fleet_table(lines: &mut Vec<String>) {
    println!("\n== Fleet failover: placement policies, one backend SIGKILLed mid-run ==");
    println!(
        "{:>14} {:>10} {:>10} {:>9} {:>11} {:>11}",
        "policy", "steps/s", "migrated", "redirects", "p50 ms", "p95 ms"
    );
    for (policy, label) in FLEET_POLICIES {
        let line = run_fleet_study(policy, label);
        println!(
            "{label:>14} {:>10.2} {:>10.0} {:>9.0} {:>11.1} {:>11.1}",
            json_num(&line, "steps_per_sec").expect("rate"),
            json_num(&line, "migrated").expect("migrated"),
            json_num(&line, "redirects").expect("redirects"),
            json_num(&line, "p50_completion_ms").expect("p50"),
            json_num(&line, "p95_completion_ms").expect("p95"),
        );
        lines.push(line);
    }
}

/// CI regression guard: rerun the N=32 point in both modes and compare
/// them against each other, exit nonzero on regression.
///
/// Both limits are ratios between the two modes of the *same*
/// invocation: absolute steps/s and VmHWM vary with the host (this
/// box alone swings 60–85 steps/s run to run), so comparing against
/// committed numbers would fail on any runner slower than the machine
/// that wrote them. The mode-vs-mode ratio is what the zero-copy work
/// actually promises, and it is machine-independent.
fn run_check() -> ! {
    const CHECK_N: u64 = 32;
    // N=32 is the event loop's worst memory point relative to threaded:
    // one near-full stacked group pays concat/scatter copies the
    // thread-per-client pump never builds, measuring 1.4–1.8x across
    // runs (N=128 is ~1.25x, N=512 ~0.85x — see EXPERIMENTS.md). The
    // limits guard against regression from that level — the uncapped
    // stacked path this replaced measured >2.5x memory at a 0.58x
    // slowdown — not an aspirational ratio.
    const HWM_RATIO_LIMIT: f64 = 2.0;
    const RATE_RATIO_FLOOR: f64 = 0.8;
    // Compression guard: f16 must keep its promised wire saving over
    // the WAN profile. The bound is a within-run ratio like the others;
    // 0.55x leaves headroom over the ideal 0.5x for frame headers and
    // the un-compressed control handshake.
    const F16_BYTES_RATIO_LIMIT: f64 = 0.55;
    let threaded = spawn_worker("threaded", CHECK_N);
    let event = spawn_worker("event_loop", CHECK_N);
    println!("{threaded}\n{event}");
    let mut failures = Vec::new();

    let mut codec_lines = Vec::new();
    let (raw_bytes, f16_bytes) = run_codec_study(&mut codec_lines);
    if f16_bytes > F16_BYTES_RATIO_LIMIT * raw_bytes {
        failures.push(format!(
            "f16 bytes/step {f16_bytes:.0} exceeds {F16_BYTES_RATIO_LIMIT}x raw ({raw_bytes:.0})"
        ));
    } else {
        println!(
            "bytes/step: f16 {f16_bytes:.0} / raw {raw_bytes:.0} = {:.3}x \
             (limit {F16_BYTES_RATIO_LIMIT}x) — ok",
            f16_bytes / raw_bytes
        );
    }

    // Overload guard (v1.3): forced 4x oversubscription must actually
    // shed, must never exceed the live-session cap, and must still
    // complete every client. Structural facts only — completion
    // latency is host-dependent and is reported, not bounded.
    let overload = spawn_worker("overload", CHECK_N);
    println!("{overload}");
    let shed = json_num(&overload, "shed").expect("overload shed");
    let capacity = json_num(&overload, "capacity").expect("overload capacity");
    let live_max = json_num(&overload, "max_live_sessions").expect("overload max_live_sessions");
    let completed = json_num(&overload, "completed").expect("overload completed");
    if shed <= 0.0 {
        failures.push("forced overload never shed a connect".to_string());
    }
    if live_max > capacity {
        failures.push(format!(
            "live sessions peaked at {live_max} above capacity {capacity}"
        ));
    }
    if completed < CHECK_N as f64 {
        failures.push(format!(
            "only {completed}/{CHECK_N} clients completed under overload"
        ));
    }
    if shed > 0.0 && live_max <= capacity && completed >= CHECK_N as f64 {
        println!(
            "overload: shed {shed:.0}, live peak {live_max:.0}/{capacity:.0}, \
             completed {completed:.0}/{CHECK_N} — ok"
        );
    }

    // Fleet failover guard (v1.4): a kill-one-backend run must migrate
    // at least one session, complete every client, and never assign a
    // survivor past its capacity. Structural facts only — steps/s and
    // latency are host-dependent and are reported, not bounded.
    let fleet = run_fleet_study(PlacementPolicy::RoundRobin, "round_robin");
    println!("{fleet}");
    let migrated = json_num(&fleet, "migrated").expect("fleet migrated");
    let fleet_done = json_num(&fleet, "completed").expect("fleet completed");
    let overflow = json_num(&fleet, "survivor_overflow").expect("fleet survivor_overflow");
    if migrated < 1.0 {
        failures.push("fleet failover migrated no sessions".to_string());
    }
    if fleet_done < FLEET_CLIENTS as f64 {
        failures.push(format!(
            "only {fleet_done}/{FLEET_CLIENTS} clients completed across the failover"
        ));
    }
    if overflow > 0.0 {
        failures.push(format!(
            "{overflow} survivor(s) were assigned past capacity {FLEET_CAPACITY}"
        ));
    }
    if migrated >= 1.0 && fleet_done >= FLEET_CLIENTS as f64 && overflow == 0.0 {
        println!(
            "fleet: migrated {migrated:.0}, completed {fleet_done:.0}/{FLEET_CLIENTS}, \
             survivor overflow 0 — ok"
        );
    }

    let t_hwm = json_num(&threaded, "vm_hwm_kb").expect("threaded vm_hwm_kb");
    let e_hwm = json_num(&event, "vm_hwm_kb").expect("event vm_hwm_kb");
    if t_hwm > 0.0 && e_hwm > HWM_RATIO_LIMIT * t_hwm {
        failures.push(format!(
            "event-loop VmHWM {e_hwm} kB exceeds {HWM_RATIO_LIMIT}x threaded ({t_hwm} kB)"
        ));
    } else if t_hwm > 0.0 {
        println!(
            "VmHWM: event {e_hwm} kB / threaded {t_hwm} kB = {:.2}x (limit {HWM_RATIO_LIMIT}x) — ok",
            e_hwm / t_hwm
        );
    }
    let t_rate = json_num(&threaded, "steps_per_sec").expect("threaded steps_per_sec");
    let e_rate = json_num(&event, "steps_per_sec").expect("event steps_per_sec");
    if e_rate < RATE_RATIO_FLOOR * t_rate {
        failures.push(format!(
            "event-loop {e_rate:.2} steps/s below {RATE_RATIO_FLOOR}x threaded ({t_rate:.2})"
        ));
    } else {
        println!(
            "steps/s: event {e_rate:.2} / threaded {t_rate:.2} = {:.2}x (floor {RATE_RATIO_FLOOR}x) — ok",
            e_rate / t_rate
        );
    }
    if failures.is_empty() {
        println!("serve bench regression check passed");
        std::process::exit(0);
    }
    for f in &failures {
        eprintln!("REGRESSION: {f}");
    }
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("--worker") => {
            let mode = args.get(2).expect("--worker <mode> <n>");
            if mode == "backend" {
                run_backend_worker(args.get(3).expect("--worker backend <dir>"));
            }
            let n: u64 = args
                .get(3)
                .expect("--worker <mode> <n>")
                .parse()
                .expect("n");
            run_worker(mode, n);
            return;
        }
        Some("--check") => run_check(),
        _ => {}
    }

    let mut lines = Vec::new();
    println!("== Many-client serving: thread-per-client vs event-loop-batched ==");
    println!("   (median of {REPEATS} repeats, {STEPS} steps/client, SimTransport,");
    println!("    one subprocess per configuration for honest VmHWM)\n");
    println!(
        "{:>8} {:>14} {:>14} {:>8} {:>10} {:>12} {:>9} {:>12}",
        "clients",
        "threaded st/s",
        "eventloop st/s",
        "speedup",
        "max batch",
        "VmHWM MB",
        "hit rate",
        "kB copy/step"
    );
    for n in FLEET_SIZES {
        let threaded = spawn_worker("threaded", n);
        let event = spawn_worker("event_loop", n);
        let threaded_rate = json_num(&threaded, "steps_per_sec").expect("rate");
        let event_rate = json_num(&event, "steps_per_sec").expect("rate");
        let hwm_event = json_num(&event, "vm_hwm_kb").expect("hwm");
        let max_batch = json_num(&event, "max_batch").expect("max_batch");
        let hit_rate = json_num(&event, "pool_hit_rate").expect("hit rate");
        let copied = json_num(&event, "bytes_copied_per_step").expect("copied");
        println!(
            "{n:>8} {threaded_rate:>14.2} {event_rate:>14.2} {:>7.2}x {max_batch:>10} \
             {:>12.1} {hit_rate:>9.3} {:>12.1}",
            event_rate / threaded_rate,
            hwm_event / 1024.0,
            copied / 1024.0,
        );
        lines.push(threaded);
        lines.push(event);
    }
    println!("\n== Forced overload: N clients vs live-session capacity N/4 ==");
    println!(
        "{:>8} {:>9} {:>7} {:>10} {:>9} {:>11} {:>11}",
        "clients", "capacity", "shed", "shed rate", "live max", "p50 ms", "p95 ms"
    );
    for n in OVERLOAD_SIZES {
        let overload = spawn_worker("overload", n);
        let capacity = json_num(&overload, "capacity").expect("capacity");
        let shed = json_num(&overload, "shed").expect("shed");
        let shed_rate = json_num(&overload, "shed_rate").expect("shed_rate");
        let live_max = json_num(&overload, "max_live_sessions").expect("live max");
        let p50 = json_num(&overload, "p50_completion_ms").expect("p50");
        let p95 = json_num(&overload, "p95_completion_ms").expect("p95");
        println!(
            "{n:>8} {capacity:>9.0} {shed:>7.0} {shed_rate:>10.3} {live_max:>9.0} \
             {p50:>11.1} {p95:>11.1}"
        );
        lines.push(overload);
    }
    run_fleet_table(&mut lines);
    run_codec_study(&mut lines);
    let json = lines.join("\n") + "\n";
    print!("\n{json}");
    // Best-effort baseline refresh when run from the repo checkout.
    if std::path::Path::new("BENCH_serve.json").exists()
        || std::path::Path::new("Cargo.toml").exists()
    {
        if let Ok(mut f) = std::fs::File::create("BENCH_serve.json") {
            let _ = f.write_all(json.as_bytes());
            eprintln!("wrote BENCH_serve.json");
        }
    }
}

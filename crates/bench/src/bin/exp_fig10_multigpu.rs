//! Fig. 10: fine-tuning time with a multi-GPU server and clients scaled
//! on CPU devices (Llama-2-7B).
//!
//! Paper reference: moving 2 clients from GPU to CPU devices raises the
//! round from 4.5 to 5.3 s (client compute is minimal). With 1 GPU the
//! round grows from 5.3 s (2 clients) to 11.2 s (10 clients); with 4
//! GPUs, 10 clients finish in 6.6 s.

use menos_bench::{render_table, time_cell, EXP_SEED, TIMED_ITERATIONS};
use menos_core::{run_experiment, ClientDevice, ServerMode, ServerSpec, WorkloadSpec};
use menos_models::ModelConfig;

fn main() {
    println!("== Fig. 10: multi-GPU server, CPU clients (Llama 2) ==\n");

    // Baseline bar: 2 GPU clients.
    let w_gpu = WorkloadSpec::paper(ModelConfig::llama2_7b(), 2, TIMED_ITERATIONS);
    let gpu2 = run_experiment(&ServerSpec::v100(ServerMode::menos()), &w_gpu, EXP_SEED);
    println!(
        "2 GPU clients (baseline dashed line): {:.2} s/round (paper: 4.5 s)",
        gpu2.avg_round_s
    );

    let mut w_cpu2 = w_gpu.clone();
    w_cpu2.client_device = ClientDevice::Cpu;
    let cpu2 = run_experiment(&ServerSpec::v100(ServerMode::menos()), &w_cpu2, EXP_SEED);
    println!(
        "2 CPU clients: {:.2} s/round (paper: 5.3 s)\n",
        cpu2.avg_round_s
    );

    let mut rows = Vec::new();
    for n in [2usize, 4, 6, 8, 10] {
        let mut w = WorkloadSpec::paper(ModelConfig::llama2_7b(), n, TIMED_ITERATIONS);
        w.client_device = ClientDevice::Cpu;
        let mut row = vec![n.to_string()];
        for gpus in [1usize, 2, 4] {
            let mut server = ServerSpec::v100(ServerMode::menos());
            server.gpus = gpus;
            let r = run_experiment(&server, &w, EXP_SEED);
            row.push(time_cell(&r, r.avg_round_s));
        }
        rows.push(row);
    }
    println!(
        "{}",
        render_table(
            &["CPU clients", "1 GPU (s)", "2 GPUs (s)", "4 GPUs (s)"],
            &rows
        )
    );
    println!("paper: 1 GPU grows 5.3 -> 11.2 s from 2 to 10 clients; 4 GPUs");
    println!("hold 10 clients at 6.6 s — more GPUs mean more schedulable memory.");
}

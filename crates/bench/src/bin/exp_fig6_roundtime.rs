//! Fig. 6: average time for clients to complete one round of split
//! fine-tuning, vanilla (with task swapping) vs Menos.
//!
//! Paper reference: OPT ≈7 s for both up to 3 clients, then vanilla
//! climbs to 18.2 s at 6 while Menos reaches only 8.7 s. Llama: vanilla
//! 3.7 s at 1 client, 63.1 s at 2, 154.4 s at 4, N/A at 5; Menos stays
//! 4.7 → 6.0 s.

use menos_bench::{paper_models, render_table, time_cell, versus_grid, EXP_SEED, TIMED_ITERATIONS};

fn main() {
    println!("== Fig. 6: per-round fine-tuning time vs number of clients ==\n");
    for (label, cfg) in paper_models() {
        let counts: Vec<usize> = if label == "OPT" {
            (1..=6).collect()
        } else {
            (1..=5).collect()
        };
        let grid = versus_grid(&cfg, &counts, TIMED_ITERATIONS, EXP_SEED);
        let rows: Vec<Vec<String>> = grid
            .iter()
            .map(|(n, vanilla, menos)| {
                vec![
                    n.to_string(),
                    time_cell(vanilla, vanilla.avg_round_s),
                    time_cell(menos, menos.avg_round_s),
                ]
            })
            .collect();
        println!("-- {label} --");
        println!(
            "{}",
            render_table(&["clients", "vanilla (s)", "Menos (s)"], &rows)
        );
        println!(
            "paper: {}\n",
            if label == "OPT" {
                "vanilla ~7 s up to 3 clients then 18.2 s @6; Menos 7 -> 8.7 s"
            } else {
                "vanilla 3.7 @1, 63.1 @2, 154.4 @4, N/A @5; Menos 4.7 -> 6.0 s"
            }
        );
    }
}

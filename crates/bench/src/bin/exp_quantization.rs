//! Extension experiment: combining Menos with base-model quantization
//! (paper §6: "these methods are orthogonal to Menos, which implies
//! they can be combined with Menos for further improvements").
//!
//! For each precision of the shared base, computes the persistent
//! footprint and the number of concurrent Llama clients one 32 GiB
//! V100 can admit (every client needs its context + A + O persistently,
//! plus one backward's intermediate memory schedulable).

use menos_adapters::FineTuneConfig;
use menos_bench::{gib, render_table};
use menos_core::{plan_capacity, profile_client, ServerMode, ServerSpec};
use menos_gpu::CostModel;
use menos_models::{ModelConfig, ModelProfile, Precision};
use menos_split::SplitSpec;

fn main() {
    println!("== Extension: Menos x base-model quantization (Llama 2-7B) ==\n");
    let cfg = ModelConfig::llama2_7b();
    let profile = ModelProfile::new(cfg.clone(), 1);
    let ft = FineTuneConfig::paper(&cfg);
    let d = profile_client(&profile, &ft);
    let cost = CostModel::v100();
    let server = ServerSpec::v100(ServerMode::menos());

    let mut rows = Vec::new();
    for precision in [
        Precision::Fp32,
        Precision::Fp16,
        Precision::Int8,
        Precision::Nf4,
    ] {
        let plan = plan_capacity(&server, &cfg, &ft, SplitSpec::paper(), precision);
        let m = plan.shared_base_bytes;
        let footprint_4 = m + cost.cuda_context_bytes * 5 + 4 * d.persistent;
        rows.push(vec![
            precision.to_string(),
            format!("{:.2}", gib(m)),
            format!("{:.2}", gib(footprint_4)),
            plan.menos_clients.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "base precision",
                "shared M (GiB)",
                "persistent @4 clients (GiB)",
                "max clients (1x V100)",
            ],
            &rows
        )
    );
    println!("\nQuantizing the *one shared copy* compounds with Menos: at NF4 the");
    println!("base shrinks 8x and a single V100 admits dozens of clients — the");
    println!("vanilla baseline would still duplicate the (quantized) base per client.");
}

//! Tables 1–3: the per-iteration time broken into communication,
//! computation, and scheduling components, for vanilla and Menos.
//!
//! Paper reference:
//! * Table 1 (comm): roughly constant in client count — OPT 6.4–7.1 s,
//!   Llama 3.1–3.9 s.
//! * Table 2 (compute): vanilla flat (OPT 0.41–0.54 s, Llama
//!   0.46–0.55 s); Menos grows with clients (OPT 0.71 → 1.68 s, Llama
//!   1.15 → 2.16 s) due to re-forward and allocator churn.
//! * Table 3 (schedule): vanilla 0 until memory runs out, then large
//!   (OPT 8.18 s @6, Llama 121.1 s @4); Menos stays sub-second.

use menos_bench::{paper_models, render_table, time_cell, versus_grid, EXP_SEED, TIMED_ITERATIONS};
use menos_core::RunReport;

fn main() {
    println!("== Tables 1-3: per-iteration time components ==\n");
    for (label, cfg) in paper_models() {
        let counts: Vec<usize> = if label == "OPT" {
            (1..=6).collect()
        } else {
            (1..=5).collect()
        };
        let grid = versus_grid(&cfg, &counts, TIMED_ITERATIONS, EXP_SEED);

        for (title, pick) in [
            (
                "Table 1: communication (s)",
                (|r: &RunReport| r.avg_comm_s) as fn(&RunReport) -> f64,
            ),
            ("Table 2: computation (s)", |r| r.avg_compute_s),
            ("Table 3: schedule (s)", |r| r.avg_schedule_s),
        ] {
            let mut vanilla_row = vec!["Vanilla".to_string()];
            let mut menos_row = vec!["Menos".to_string()];
            for (_, v, m) in &grid {
                vanilla_row.push(time_cell(v, pick(v)));
                menos_row.push(time_cell(m, pick(m)));
            }
            let mut header: Vec<String> = vec!["method".to_string()];
            header.extend(grid.iter().map(|(n, _, _)| n.to_string()));
            let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
            println!("-- {label} / {title} --");
            println!("{}", render_table(&header_refs, &[vanilla_row, menos_row]));
        }
        println!();
    }
}

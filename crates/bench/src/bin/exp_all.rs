//! Runs every experiment binary's logic in sequence — the one-shot
//! "regenerate the paper's evaluation" entry point.
//!
//! Prefer the individual `exp_*` binaries while iterating; this one
//! exists for EXPERIMENTS.md regeneration (`cargo run -p menos-bench
//! --release --bin exp_all`).

use std::process::Command;

fn main() {
    let exps = [
        "exp_sec23_breakdown",
        "exp_fig3_timeline",
        "exp_fig5_memory",
        "exp_fig6_roundtime",
        "exp_tables_breakdown",
        "exp_fig7_policies",
        "exp_fig10_multigpu",
        "exp_fig89_convergence",
        "exp_cutlayer_sweep",
        "exp_lora_rank_sweep",
        "exp_quantization",
        "exp_heterogeneous",
    ];
    let exe = std::env::current_exe().expect("current exe path");
    let dir = exe.parent().expect("bin dir");
    for name in exps {
        println!("\n######################################################################");
        println!("### {name}");
        println!("######################################################################\n");
        let status = Command::new(dir.join(name))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {name}: {e}"));
        if !status.success() {
            eprintln!("{name} exited with {status}");
            std::process::exit(1);
        }
    }
}

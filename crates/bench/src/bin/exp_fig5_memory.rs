//! Fig. 5: GPU memory consumption for persistent components (base
//! parameters, adapters, optimizer states) as the number of clients
//! grows — vanilla duplication vs Menos' shared base.
//!
//! Paper reference points: OPT at 4 clients 18.7 GB (vanilla) vs 6.7 GB
//! (Menos), a 64.1% reduction; Llama at 4 clients 95+ GB vs 26.4 GB,
//! 72.2% less. At 1 client Menos is slightly *above* vanilla (extra
//! manager process context).

use menos_adapters::FineTuneConfig;
use menos_bench::{gib, paper_models, render_table};
use menos_core::profile_client;
use menos_gpu::{AllocKind, CostModel, GpuCluster};
use menos_models::ModelProfile;

fn main() {
    println!("== Fig. 5: persistent GPU memory vs number of clients ==\n");
    let cost = CostModel::v100();
    for (label, cfg) in paper_models() {
        let ft = FineTuneConfig::paper(&cfg);
        let profile = ModelProfile::new(cfg, 1);
        let d = profile_client(&profile, &ft);
        let m = profile.server_param_bytes();
        let ctx = cost.cuda_context_bytes;

        let mut rows = Vec::new();
        for n in 1..=6u64 {
            // Lay the allocations out on a (large) simulated cluster so
            // the numbers come from the same accounting the runtime uses.
            let mut cluster = GpuCluster::new(8, 40 << 30);
            // Vanilla: every client owns base + adapter + optimizer +
            // its process context.
            for i in 0..n {
                cluster
                    .alloc_spanning(m, AllocKind::Model, format!("v{i}"))
                    .unwrap();
                cluster
                    .alloc(d.persistent, AllocKind::Adapter, format!("v{i}"))
                    .unwrap();
                cluster
                    .alloc(ctx, AllocKind::Context, format!("v{i}"))
                    .unwrap();
            }
            let vanilla = cluster.used();

            // Menos: one shared base + manager context, per-client
            // adapters/optimizer/context.
            let mut cluster = GpuCluster::new(8, 40 << 30);
            cluster
                .alloc_spanning(m, AllocKind::Model, "shared-base")
                .unwrap();
            cluster.alloc(ctx, AllocKind::Context, "manager").unwrap();
            for i in 0..n {
                cluster
                    .alloc(d.persistent, AllocKind::Adapter, format!("m{i}"))
                    .unwrap();
                cluster
                    .alloc(ctx, AllocKind::Context, format!("m{i}"))
                    .unwrap();
            }
            let menos = cluster.used();
            let saving = 100.0 * (1.0 - menos as f64 / vanilla as f64);
            rows.push(vec![
                n.to_string(),
                format!("{:.2}", gib(vanilla)),
                format!("{:.2}", gib(menos)),
                format!("{saving:.1}%"),
            ]);
        }
        println!("-- {label} --");
        println!(
            "{}",
            render_table(
                &["clients", "vanilla (GiB)", "Menos (GiB)", "saving"],
                &rows
            )
        );
        println!(
            "paper: {}\n",
            if label == "OPT" {
                "4 clients: 18.7 vs 6.7 GB (64.1% saving)"
            } else {
                "4 clients: ~95 vs 26.4 GB (72.2% saving); single V100 cannot even hold 2 vanilla copies"
            }
        );
    }
}

//! Compression ablation: convergence under each wire codec
//! (PROTOCOL.md §7) against the raw f32 baseline.
//!
//! For each codec, the same client/session pair trains the same steps
//! through `run_split_steps` — the exact dispatch path the servers use
//! — with the codec forced on both endpoints, across several seeds.
//! Reported per codec: mean final loss, the worst per-step loss
//! deviation from the raw baseline across all seeds (the *recorded
//! tolerance* a deployment should expect), and the analytic wire bytes
//! per step. Lossless codecs must be bit-identical to raw — the run
//! fails loudly if they are not — and lossy deviations are recorded,
//! not asserted, because they are the accuracy/bandwidth trade the
//! codec deliberately makes.
//!
//! Prints one JSON line per codec and rewrites `BENCH_compress.json`
//! when run from the repository (EXPERIMENTS.md quotes those numbers).

use std::io::Write;

use menos_adapters::FineTuneConfig;
use menos_bench::render_table;
use menos_data::{wiki_corpus, LossCurve, TokenDataset, Vocab};
use menos_models::{CausalLm, ModelConfig};
use menos_net::Codec;
use menos_sim::seeded_rng;
use menos_split::{
    activation_wire_bytes_with, run_split_steps, ClientId, ForwardMode, ServerSession, SplitClient,
    SplitSpec,
};

const STEPS: usize = 20;
const SEEDS: [u64; 3] = [11, 12, 13];
const CODECS: [Codec; 4] = [Codec::F32Raw, Codec::F16, Codec::BF16, Codec::TopK8];

fn run_one(codec: Codec, seed: u64) -> LossCurve {
    let text = wiki_corpus(5, 4000);
    let vocab = Vocab::from_text(&text);
    let config = ModelConfig::tiny_opt(vocab.size().max(33));
    let mut rng = seeded_rng(100, "exp-compress");
    let ps = menos_models::init_params(&config, &mut rng);
    let ds = TokenDataset::new(vocab.encode(&text), 16, 5);
    let mut ft = FineTuneConfig::paper(&config);
    ft.batch_size = 2;
    ft.seq_len = 16;
    let split = SplitSpec::paper();
    let mut client = SplitClient::new(
        ClientId(0),
        CausalLm::bind(&config, &ps.shared_view(false)),
        split,
        ft.clone(),
        ds,
        seed,
    );
    let mut session = ServerSession::new(
        ClientId(0),
        CausalLm::bind(&config, &ps.shared_view(false)),
        split,
        &ft,
        seed,
    );
    // Force the codec on both endpoints — the negotiation itself is
    // covered by tests/compression.rs; this experiment isolates the
    // numeric effect of the codec on the training trajectory.
    client.adopt_codec(codec);
    session.set_codec(codec);
    run_split_steps(
        &mut client,
        &mut session,
        ForwardMode::NoGradReforward,
        STEPS,
    )
}

fn main() {
    println!(
        "== Compression ablation: convergence per codec ({STEPS} steps, {} seeds) ==\n",
        SEEDS.len()
    );
    let baselines: Vec<LossCurve> = SEEDS.iter().map(|&s| run_one(Codec::F32Raw, s)).collect();
    let hidden = ModelConfig::tiny_opt(33).hidden;
    let raw_bytes = activation_wire_bytes_with(Codec::F32Raw, 2, 16, hidden);

    let mut rows = Vec::new();
    let mut lines = Vec::new();
    for codec in CODECS {
        let mut final_sum = 0.0f32;
        let mut max_delta = 0.0f32;
        for (i, &seed) in SEEDS.iter().enumerate() {
            let curve = run_one(codec, seed);
            final_sum += curve.final_loss().expect("curve has points");
            for ((_, base), (_, got)) in baselines[i].points().iter().zip(curve.points()) {
                max_delta = max_delta.max((base - got).abs());
            }
        }
        if codec.is_lossless() {
            assert_eq!(
                max_delta, 0.0,
                "{codec} is specified lossless but deviated from raw by {max_delta}"
            );
        }
        let mean_final = final_sum / SEEDS.len() as f32;
        let bytes = activation_wire_bytes_with(codec, 2, 16, hidden);
        rows.push(vec![
            codec.name().to_string(),
            format!("{mean_final:.4}"),
            format!("{max_delta:.2e}"),
            format!("{bytes}"),
            format!("{:.2}x", bytes as f64 / raw_bytes as f64),
        ]);
        lines.push(format!(
            "{{\"group\":\"compress\",\"bench\":\"codec/{}\",\"steps\":{STEPS},\
             \"seeds\":{},\"mean_final_loss\":{mean_final:.4},\
             \"max_loss_delta\":{max_delta:.3e},\"tensor_msg_bytes\":{bytes}}}",
            codec.name(),
            SEEDS.len(),
        ));
    }
    println!(
        "{}",
        render_table(
            &[
                "codec",
                "mean final loss",
                "max |Δloss| vs raw",
                "tensor msg bytes",
                "vs raw",
            ],
            &rows
        )
    );
    println!("\nf16/bf16 halve every cut tensor at a loss-curve deviation bounded by");
    println!("their rounding step; topk8 sends ~1/8 of the values and relies on the");
    println!("error-feedback residual (PROTOCOL.md §7.1) to re-inject unsent mass —");
    println!("its deviation is larger but the trajectory still converges.");

    let json = lines.join("\n") + "\n";
    print!("\n{json}");
    if std::path::Path::new("BENCH_compress.json").exists()
        || std::path::Path::new("Cargo.toml").exists()
    {
        if let Ok(mut f) = std::fs::File::create("BENCH_compress.json") {
            let _ = f.write_all(json.as_bytes());
            eprintln!("wrote BENCH_compress.json");
        }
    }
}

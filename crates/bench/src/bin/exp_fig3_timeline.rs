//! Fig. 3: GPU memory usage patterns over time under the four
//! on-demand allocation policies, rendered from the simulated memory
//! trace — the design figure regenerated from the running system.
//!
//! Paper reference (one Llama client): (a) memory stays at the full
//! footprint throughout, including the waits for client data; (b) drops
//! after backward; (c) also drops while waiting for gradients, paying a
//! re-forward; (d) additionally keeps the first forward tiny (no-grad),
//! so memory sits near the floor except for a short backward spike.

use menos_bench::{gib, EXP_SEED};
use menos_core::{run_experiment_traced, MemoryPolicy, ServerMode, ServerSpec, WorkloadSpec};
use menos_models::ModelConfig;
use menos_sim::Nanos;

const COLS: usize = 86;
const ROWS: usize = 10;

fn render_ascii(trace: &[(Nanos, u64)], t_end: Nanos, floor: u64, ceil: u64) -> String {
    // Step-function sample of the trace across the window.
    let mut grid = vec![vec![' '; COLS]; ROWS];
    let sample = |t: Nanos| -> u64 {
        let mut v = floor;
        for &(when, used) in trace {
            if when <= t {
                v = used;
            } else {
                break;
            }
        }
        v
    };
    for (c, col) in (0..COLS).zip(0..COLS) {
        let t = Nanos::from_nanos(t_end.as_nanos() / COLS as u64 * c as u64);
        let v = sample(t);
        let frac = (v.saturating_sub(floor)) as f64 / (ceil - floor).max(1) as f64;
        let height = ((frac * (ROWS - 1) as f64).round() as usize).min(ROWS - 1);
        for r in 0..=height {
            grid[ROWS - 1 - r][col] = if r == height { '█' } else { '│' };
        }
    }
    let mut out = String::new();
    for (i, row) in grid.iter().enumerate() {
        let label = if i == 0 {
            format!("{:>6.1} GiB ", gib(ceil))
        } else if i == ROWS - 1 {
            format!("{:>6.1} GiB ", gib(floor))
        } else {
            " ".repeat(11)
        };
        out.push_str(&label);
        out.push_str(&row.iter().collect::<String>());
        out.push('\n');
    }
    out.push_str(&format!(
        "{:>11}0s{}{:.0}s\n",
        "",
        " ".repeat(COLS - 6),
        t_end.as_secs_f64()
    ));
    out
}

fn main() {
    println!("== Fig. 3: memory usage patterns under the policy ladder ==");
    println!("   (one Llama-2-7B client, two fine-tuning iterations)\n");
    let w = WorkloadSpec::paper(ModelConfig::llama2_7b(), 1, 3);
    let mut global_ceil = 0u64;
    let mut runs = Vec::new();
    for policy in MemoryPolicy::ladder() {
        let server = ServerSpec::v100(ServerMode::Menos {
            policy,
            backfilling: true,
        });
        let (report, trace) = run_experiment_traced(&server, &w, EXP_SEED);
        if report.error.is_none() {
            global_ceil = global_ceil.max(report.peak_bytes);
        }
        runs.push((policy, report, trace));
    }
    for (policy, report, trace) in runs {
        println!("--- {policy} ---");
        match &report.error {
            Some(e) => println!("infeasible: {e}\n"),
            None => {
                let t_end = trace.last().map(|&(t, _)| t).unwrap_or(Nanos::from_secs(1));
                let floor = report.persistent_bytes;
                println!(
                    "{}",
                    render_ascii(&trace, t_end, floor, global_ceil.max(floor + 1))
                );
                println!(
                    "peak {:.1} GiB over a {:.1} GiB persistent floor; round {:.2}s\n",
                    gib(report.peak_bytes),
                    gib(report.persistent_bytes),
                    report.avg_round_s
                );
            }
        }
    }
    println!("Walking a → d, the memory-held-while-waiting window shrinks to a");
    println!("short backward spike — exactly the Fig. 3 progression.");
}

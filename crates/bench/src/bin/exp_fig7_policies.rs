//! Fig. 7: average schedule time under the *on-demand* allocation
//! policy (Menos, Fig. 3d) vs the *memory-preserving* policy (hold
//! intermediates while waiting for client gradients, Fig. 3b), with an
//! increasing number of clients.
//!
//! Paper reference: OPT preserving <1 ms at 2–4 clients, 0.12 s at 8,
//! 6.1 s at 16; on-demand at most 1.01 s at 16. Llama preserving
//! queues from 2 clients and reaches ≈10 s at 4; on-demand 0.38 s.

use menos_bench::{paper_models, render_table, time_cell, EXP_SEED, TIMED_ITERATIONS};
use menos_core::{run_experiment, MemoryPolicy, ServerMode, ServerSpec, WorkloadSpec};

fn main() {
    println!("== Fig. 7: on-demand vs memory-preserving schedule time ==\n");
    for (label, cfg) in paper_models() {
        let counts: Vec<usize> = if label == "OPT" {
            vec![2, 4, 8, 16]
        } else {
            vec![2, 4]
        };
        let mut rows = Vec::new();
        for &n in &counts {
            let w = WorkloadSpec::paper(cfg.clone(), n, TIMED_ITERATIONS);
            let preserve = run_experiment(
                &ServerSpec::v100(ServerMode::Menos {
                    policy: MemoryPolicy::ReleaseAfterBackward,
                    backfilling: true,
                }),
                &w,
                EXP_SEED,
            );
            let on_demand = run_experiment(&ServerSpec::v100(ServerMode::menos()), &w, EXP_SEED);
            rows.push(vec![
                n.to_string(),
                time_cell(&preserve, preserve.avg_schedule_s),
                time_cell(&on_demand, on_demand.avg_schedule_s),
            ]);
        }
        println!("-- {label} --");
        println!(
            "{}",
            render_table(&["clients", "preserving (s)", "on-demand (s)"], &rows)
        );
        println!(
            "paper: {}\n",
            if label == "OPT" {
                "preserving ~0, ~0, 0.12, 6.1 s; on-demand <= 1.01 s @16"
            } else {
                "preserving queues from 2 clients, ~10 s @4; on-demand 0.08 / 0.38 s"
            }
        );
    }
}

//! Figs. 8–9: model convergence of split fine-tuning — every client
//! reaches the same final perplexity as local fine-tuning, just shifted
//! in (virtual) time by the communication-bound rounds.
//!
//! These runs execute *real* gradient descent on tiny OPT-/Llama-style
//! models through the full split protocol (wire codec included); only
//! the time axis comes from the paper-scale simulation.

use menos_bench::convergence::{run_convergence, Corpus};
use menos_bench::render_table;
use menos_models::Arch;

fn main() {
    println!("== Figs. 8-9: convergence of split fine-tuning ==\n");
    for (fig, arch) in [
        ("Fig. 8 (OPT)", Arch::Opt),
        ("Fig. 9 (Llama 2)", Arch::Llama),
    ] {
        for corpus in [Corpus::Wiki, Corpus::Shakespeare] {
            let report = run_convergence(arch, corpus, 3, 30, menos_bench::EXP_SEED);
            println!(
                "-- {fig} on {} (simulated round: {:.1}s; local held-out ppl {:.2}) --",
                corpus.label(),
                report.round_seconds,
                report.local_valid_perplexity
            );
            let mut rows = Vec::new();
            let lp = report.local.final_perplexity();
            rows.push(vec![
                report.local.label.clone(),
                format!(
                    "{:.3}",
                    report
                        .local
                        .points
                        .first()
                        .map(|p| p.1.exp())
                        .unwrap_or(f32::NAN)
                ),
                format!("{lp:.3}"),
                format!(
                    "{:.0}",
                    report.local.points.last().map(|p| p.0).unwrap_or(0.0)
                ),
            ]);
            for c in &report.split_clients {
                rows.push(vec![
                    c.label.clone(),
                    format!(
                        "{:.3}",
                        c.points.first().map(|p| p.1.exp()).unwrap_or(f32::NAN)
                    ),
                    format!("{:.3}", c.final_perplexity()),
                    format!("{:.0}", c.points.last().map(|p| p.0).unwrap_or(0.0)),
                ]);
            }
            println!(
                "{}",
                render_table(
                    &["run", "initial ppl", "final ppl", "virtual time (s)"],
                    &rows
                )
            );
            // Loss trajectory sample for the plot's shape.
            let c0 = &report.split_clients[0];
            let samples: Vec<String> = c0
                .points
                .iter()
                .step_by((c0.points.len() / 6).max(1))
                .map(|(t, l)| format!("({t:.0}s, {:.2})", l.exp()))
                .collect();
            println!("client-0 trajectory: {}\n", samples.join(" "));
        }
    }
    println!("paper: all clients reach the same final perplexity as local");
    println!("fine-tuning (the dashed line), taking longer in wall-clock time");
    println!("because of cross-Internet communication.");
}

//! Extension experiment: heterogeneous clients. The paper's §3.1 notes
//! clients choose different cuts and adapters; this experiment mixes
//! *batch sizes* (and hence memory demands) and staggered arrivals to
//! show the scheduler's FCFS + backfilling behaviour under realistic
//! mixed load.

use menos_bench::{render_table, EXP_SEED};
use menos_core::{run_experiment, ServerMode, ServerSpec, WorkloadSpec};
use menos_models::ModelConfig;
use menos_sim::Nanos;

fn main() {
    println!("== Extension: heterogeneous client mix (Llama 2, 1x V100) ==\n");

    let scenarios: Vec<(&str, Vec<usize>)> = vec![
        ("uniform small (4x batch 2)", vec![2, 2, 2, 2]),
        ("uniform paper (4x batch 4)", vec![4, 4, 4, 4]),
        ("one heavy (8, 2, 2, 2)", vec![8, 2, 2, 2]),
        ("two heavy (8, 8, 2, 2)", vec![8, 8, 2, 2]),
    ];

    let mut rows = Vec::new();
    for (label, batches) in &scenarios {
        let mut w = WorkloadSpec::paper(ModelConfig::llama2_7b(), batches.len(), 8);
        w.client_batch_sizes = Some(batches.clone());
        w.stagger = Nanos::from_millis(700);
        let r = run_experiment(&ServerSpec::v100(ServerMode::menos()), &w, EXP_SEED);
        rows.push(vec![
            label.to_string(),
            format!("{:.2}", r.avg_round_s),
            format!("{:.3}", r.avg_schedule_s),
            format!("{}", r.scheduler_stats.1),
            format!("{:.1}", r.peak_bytes as f64 / (1u64 << 30) as f64),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "mix",
                "round (s)",
                "schedule (s)",
                "backfills",
                "peak (GiB)"
            ],
            &rows
        )
    );
    println!("\nHeavy clients' backwards monopolize the memory pool; small");
    println!("clients' forwards and backwards backfill around them — mixed");
    println!("loads raise backfill counts without starving anyone (FCFS head).");
}

//! §2.3 measurement study: server GPU memory breakdown for split
//! fine-tuning Llama-2-7B with LoRA at batch 4.
//!
//! Paper reference: ≈28.7 GB total = 24 GB base parameters (M) +
//! 246 MB adapters and optimizer states (A+O) + 4 GB intermediates (I).

use menos_adapters::FineTuneConfig;
use menos_bench::{gib, render_table};
use menos_core::profile_client;
use menos_models::{ModelConfig, ModelProfile};

fn main() {
    println!("== §2.3 GPU memory breakdown (server side, LoRA r=8 on q/v) ==\n");
    let mut rows = Vec::new();
    for (label, cfg, paper) in [
        ("OPT 1.3B (batch 16)", ModelConfig::opt_1_3b(), "-"),
        (
            "Llama 2-7B (batch 4)",
            ModelConfig::llama2_7b(),
            "28.7 total: 24 + 0.246 + 4",
        ),
    ] {
        let ft = FineTuneConfig::paper(&cfg);
        let profile = ModelProfile::new(cfg, 1);
        let d = profile_client(&profile, &ft);
        let m = profile.server_param_bytes();
        let total = m + d.persistent + d.m_b;
        rows.push(vec![
            label.to_string(),
            format!("{:.2}", gib(m)),
            format!("{:.3}", gib(d.persistent)),
            format!("{:.2}", gib(d.m_b)),
            format!("{:.2}", gib(total)),
            paper.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "model",
                "M (GiB)",
                "A+O (GiB)",
                "I (GiB)",
                "total (GiB)",
                "paper (GB)"
            ],
            &rows
        )
    );
    println!("A V100 (32 GiB) holds a single Llama client with little to spare —");
    println!("the motivation for Menos' spatial and temporal sharing.");
}

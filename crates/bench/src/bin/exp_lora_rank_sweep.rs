//! Ablation: LoRA rank vs adapter/optimizer footprint (A + O) and
//! convergence of the real tiny models.
//!
//! The paper fixes r = 8, α = 16; this sweep shows why the exact rank
//! barely matters to Menos' memory story: A + O stays orders of
//! magnitude below M for every practical rank.

use menos_adapters::{AdapterKind, FineTuneConfig};
use menos_bench::render_table;
use menos_core::profile_client;
use menos_data::{wiki_corpus, TokenDataset, Vocab};
use menos_models::{AdapterTarget, CausalLm, LoraSpec, ModelConfig, ModelProfile};
use menos_sim::seeded_rng;
use menos_split::{local_finetune, SplitSpec};

fn main() {
    println!("== Ablation: LoRA rank sweep ==\n");

    // Memory side at paper scale (Llama 2).
    let cfg = ModelConfig::llama2_7b();
    let profile = ModelProfile::new(cfg.clone(), 1);
    let mut rows = Vec::new();
    for rank in [2usize, 4, 8, 16, 32] {
        let mut ft = FineTuneConfig::paper(&cfg);
        ft.adapter = AdapterKind::Lora {
            spec: LoraSpec {
                rank,
                alpha: 2.0 * rank as f32,
                targets_per_block: 2,
            },
            targets: vec![AdapterTarget::Q, AdapterTarget::V],
        };
        let d = profile_client(&profile, &ft);
        rows.push(vec![
            rank.to_string(),
            format!("{:.1}", d.persistent as f64 / 1e6),
            format!(
                "{:.4}%",
                100.0 * d.persistent as f64 / profile.server_param_bytes() as f64
            ),
        ]);
    }
    println!("-- Llama 2-7B server side --");
    println!(
        "{}",
        render_table(&["rank", "A+O (MB)", "vs base M"], &rows)
    );

    // Convergence side on the real tiny model.
    println!("\n-- tiny-OPT convergence after 25 steps (real training) --");
    let text = wiki_corpus(7, 20_000);
    let vocab = Vocab::from_text(&text);
    let tiny = ModelConfig::tiny_opt(vocab.size());
    let ds = TokenDataset::new(vocab.encode(&text), 32, 7);
    let mut rows = Vec::new();
    for rank in [2usize, 4, 8, 16] {
        let mut ft = FineTuneConfig::paper(&tiny);
        ft.batch_size = 4;
        ft.seq_len = 32;
        ft.adapter = AdapterKind::Lora {
            spec: LoraSpec {
                rank,
                alpha: 2.0 * rank as f32,
                targets_per_block: 2,
            },
            targets: vec![AdapterTarget::Q, AdapterTarget::V],
        };
        let mut rng = seeded_rng(7, "rank-sweep");
        let base = menos_models::init_params(&tiny, &mut rng);
        let curve = local_finetune(
            CausalLm::bind(&tiny, &base),
            SplitSpec::paper(),
            &ft,
            &ds,
            7,
            25,
        );
        rows.push(vec![
            rank.to_string(),
            format!("{:.3}", curve.points()[0].1),
            format!("{:.3}", curve.final_loss().unwrap()),
        ]);
    }
    println!(
        "{}",
        render_table(&["rank", "initial loss", "final loss"], &rows)
    );
    println!("\nEvery rank learns; higher ranks add capacity at negligible");
    println!("memory cost relative to the shared base.");
}

//! Ablation: the privacy–efficiency trade-off of the cut layer
//! (paper §3.1, citing Zhang et al.): deeper cuts keep more blocks on the client,
//! shrinking the server's memory footprint but shifting compute to the
//! weaker client device.

use menos_adapters::FineTuneConfig;
use menos_bench::{gib, render_table, EXP_SEED, TIMED_ITERATIONS};
use menos_core::{profile_client, run_experiment, ServerMode, ServerSpec, WorkloadSpec};
use menos_models::{ModelConfig, ModelProfile};
use menos_split::SplitSpec;

fn main() {
    println!("== Ablation: cut-layer sweep (Llama 2, 2 clients) ==\n");
    let cfg = ModelConfig::llama2_7b();
    let mut rows = Vec::new();
    for front in [1usize, 2, 4, 8, 16] {
        let mut w = WorkloadSpec::paper(cfg.clone(), 2, TIMED_ITERATIONS);
        w.split = SplitSpec::new(front);
        w.ft = FineTuneConfig::paper(&cfg);
        let profile = ModelProfile::new(cfg.clone(), front);
        let demands = profile_client(&profile, &w.ft);
        let r = run_experiment(&ServerSpec::v100(ServerMode::menos()), &w, EXP_SEED);
        rows.push(vec![
            front.to_string(),
            format!("{:.1}", gib(profile.server_param_bytes())),
            format!("{:.1}", gib(profile.client_param_bytes())),
            format!("{:.2}", gib(demands.m_b)),
            format!("{:.2}", r.avg_round_s),
            format!("{:.2}", r.avg_client_compute_s),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "client layers",
                "server M (GiB)",
                "client params (GiB)",
                "M_b (GiB)",
                "round (s)",
                "client compute (s)",
            ],
            &rows
        )
    );
    println!("\nDeeper cuts trade server memory (privacy: less exposed to the");
    println!("server) for client compute — the knob §3.1 lets each client set.");
}

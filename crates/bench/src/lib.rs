//! # menos-bench — experiment harness for the paper's evaluation
//!
//! One binary per table/figure of the paper (see DESIGN.md §6 for the
//! index), plus Criterion micro-benchmarks. Every binary prints the
//! same rows/series the paper reports, annotated with the paper's
//! values for side-by-side comparison, and EXPERIMENTS.md records the
//! outcomes.
//!
//! Shared helpers here keep the binaries small: standard experiment
//! grids, table rendering, and the convergence trainer used by
//! Figs. 8–9.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use menos_core::{run_experiment, RunReport, ServerMode, ServerSpec, WorkloadSpec};
use menos_models::ModelConfig;

pub mod convergence;

/// Renders a row-major table with a header, padding columns to width.
///
/// # Examples
///
/// ```
/// let t = menos_bench::render_table(
///     &["n", "value"],
///     &[vec!["1".into(), "a".into()], vec!["2".into(), "bb".into()]],
/// );
/// assert!(t.contains("| n | value |"));
/// ```
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<String>, widths: &[usize]| -> String {
        let padded: Vec<String> = cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect();
        format!("| {} |\n", padded.join(" | "))
    };
    out.push_str(&fmt_row(
        header.iter().map(|s| s.to_string()).collect(),
        &widths,
    ));
    out.push_str(&fmt_row(
        widths.iter().map(|w| "-".repeat(*w)).collect(),
        &widths,
    ));
    for row in rows {
        out.push_str(&fmt_row(row.clone(), &widths));
    }
    out
}

/// Formats a duration cell: `N/A` when a run failed.
pub fn time_cell(report: &RunReport, value: f64) -> String {
    if report.error.is_some() {
        "N/A".to_string()
    } else {
        format!("{value:.2}")
    }
}

/// Gibibytes, two decimals.
pub fn gib(bytes: u64) -> f64 {
    bytes as f64 / (1u64 << 30) as f64
}

/// The two evaluation models, labelled as the paper does.
pub fn paper_models() -> Vec<(&'static str, ModelConfig)> {
    vec![
        ("OPT", ModelConfig::opt_1_3b()),
        ("Llama 2", ModelConfig::llama2_7b()),
    ]
}

/// Runs the standard Menos-vs-vanilla grid for a model over client
/// counts, returning `(clients, vanilla, menos)` triples.
pub fn versus_grid(
    model: &ModelConfig,
    client_counts: &[usize],
    iterations: usize,
    seed: u64,
) -> Vec<(usize, RunReport, RunReport)> {
    client_counts
        .iter()
        .map(|&n| {
            let w = WorkloadSpec::paper(model.clone(), n, iterations);
            let vanilla = run_experiment(&ServerSpec::v100(ServerMode::VanillaSwapping), &w, seed);
            let menos = run_experiment(&ServerSpec::v100(ServerMode::menos()), &w, seed);
            (n, vanilla, menos)
        })
        .collect()
}

/// Iterations used by the timed experiments: enough for stable means
/// after the warm-up iteration is dropped.
pub const TIMED_ITERATIONS: usize = 8;

/// Seed shared by all experiment binaries.
pub const EXP_SEED: u64 = 42;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let t = render_table(&["a", "bc"], &[vec!["xx".into(), "y".into()]]);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("| a "));
        assert!(lines[2].contains("| xx | y  |"));
    }

    #[test]
    fn gib_conversion() {
        assert_eq!(gib(1 << 30), 1.0);
        assert_eq!(gib(3 << 29), 1.5);
    }

    #[test]
    fn versus_grid_produces_reports() {
        let grid = versus_grid(&ModelConfig::opt_1_3b(), &[1, 2], 3, 1);
        assert_eq!(grid.len(), 2);
        assert!(grid
            .iter()
            .all(|(_, v, m)| v.error.is_none() && m.error.is_none()));
    }

    #[test]
    fn na_cells_render() {
        let w = WorkloadSpec::paper(ModelConfig::llama2_7b(), 5, 2);
        let r = run_experiment(&ServerSpec::v100(ServerMode::VanillaSwapping), &w, 1);
        assert_eq!(time_cell(&r, r.avg_round_s), "N/A");
    }
}

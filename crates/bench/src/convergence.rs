//! The convergence trainer behind Figs. 8–9: real tiny-model training
//! through the full split protocol, with virtual timestamps from the
//! timed runtime.

use menos_adapters::FineTuneConfig;
use menos_core::{run_experiment, ServerMode, ServerSpec, WorkloadSpec};
use menos_data::{shakespeare_corpus, wiki_corpus, LossCurve, TokenDataset, Vocab};
use menos_models::{Arch, CausalLm, ModelConfig};
use menos_sim::seeded_rng;
use menos_split::{
    evaluate_loss, local_finetune_returning_model, run_split_steps, ClientId, ForwardMode,
    ServerSession, SplitClient, SplitSpec,
};

/// Which corpus a convergence run trains on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Corpus {
    /// The wikitext-2 stand-in.
    Wiki,
    /// The Tiny-Shakespeare stand-in.
    Shakespeare,
}

impl Corpus {
    /// Generates the corpus text.
    pub fn text(self, seed: u64) -> String {
        match self {
            Corpus::Wiki => wiki_corpus(seed, 20_000),
            Corpus::Shakespeare => shakespeare_corpus(20_000),
        }
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Corpus::Wiki => "wikitext-2 (synthetic)",
            Corpus::Shakespeare => "tiny-shakespeare",
        }
    }
}

/// One client's convergence result: losses with virtual timestamps.
#[derive(Debug, Clone)]
pub struct ConvergenceCurve {
    /// Label ("local" or "client-k").
    pub label: String,
    /// `(virtual seconds, loss)` points.
    pub points: Vec<(f64, f32)>,
}

impl ConvergenceCurve {
    /// Final perplexity.
    pub fn final_perplexity(&self) -> f32 {
        self.points
            .last()
            .map(|&(_, l)| l.exp())
            .unwrap_or(f32::NAN)
    }
}

/// Outcome of a convergence experiment.
#[derive(Debug)]
pub struct ConvergenceReport {
    /// The local fine-tuning baseline curve (dashed line in the paper).
    pub local: ConvergenceCurve,
    /// One curve per split client under Menos.
    pub split_clients: Vec<ConvergenceCurve>,
    /// Simulated seconds per split round (from the timed runtime).
    pub round_seconds: f64,
    /// Held-out validation perplexity of the local baseline after
    /// training (the generalization check the paper's training curves
    /// imply).
    pub local_valid_perplexity: f32,
}

/// Runs the Figs. 8–9 experiment: `n_clients` real split fine-tuning
/// runs on tiny models (losses are *real* gradient descent) plus the
/// local baseline, with per-step timestamps taken from the paper-scale
/// timed runtime so the x-axis matches the paper's time axis.
///
/// Split runs use Menos' no-grad/re-forward execution path; the tests
/// in `menos-split` establish it is numerically identical to the
/// cached path, so these curves are what any of the Fig. 3 policies
/// would produce.
pub fn run_convergence(
    arch: Arch,
    corpus: Corpus,
    n_clients: usize,
    steps: usize,
    seed: u64,
) -> ConvergenceReport {
    // Tokenize the corpus with a model sized to its vocabulary.
    let text = corpus.text(seed);
    let vocab = Vocab::from_text(&text);
    let (tiny, paper_scale) = match arch {
        Arch::Opt => (ModelConfig::tiny_opt(vocab.size()), ModelConfig::opt_1_3b()),
        Arch::Llama => (
            ModelConfig::tiny_llama(vocab.size()),
            ModelConfig::llama2_7b(),
        ),
    };
    let tokens = vocab.encode(&text);

    let mut ft = FineTuneConfig::paper(&tiny);
    ft.batch_size = 4;
    ft.seq_len = 32;
    let split = SplitSpec::paper();

    // Timed runtime provides the per-round duration at paper scale.
    let timed = run_experiment(
        &ServerSpec::v100(ServerMode::menos()),
        &WorkloadSpec::paper(paper_scale, n_clients.max(1), 4),
        seed,
    );
    let round_seconds = if timed.avg_round_s.is_finite() {
        timed.avg_round_s
    } else {
        5.0
    };

    // Local baseline: same model init, same data.
    let mut rng = seeded_rng(seed, "convergence-base");
    let base = menos_models::init_params(&tiny, &mut rng);
    let full = TokenDataset::new(tokens, ft.seq_len, seed);
    let (dataset, valid) = full.train_valid_split(0.85, seed);
    let local_model = CausalLm::bind(&tiny, &base.deep_copy(false));
    let (local_curve, trained) =
        local_finetune_returning_model(local_model, split, &ft, &dataset, seed, steps);
    let local_valid_perplexity = evaluate_loss(&trained, &valid, ft.batch_size, 3).exp();
    // Local steps take computation only — much faster per step.
    let local_step_s = (round_seconds / 8.0).max(0.2);
    let local = ConvergenceCurve {
        label: "local fine-tuning".to_string(),
        points: curve_with_time(&local_curve, local_step_s),
    };

    // Split clients share one base (Menos) but train independently on
    // their own data shards.
    let split_clients = (0..n_clients)
        .map(|k| {
            let client_seed = seed.wrapping_add(1 + k as u64);
            let ds = TokenDataset::new(vocab.encode(&text), ft.seq_len, client_seed);
            let mut client = SplitClient::new(
                ClientId(k as u64),
                CausalLm::bind(&tiny, &base.shared_view(false)),
                split,
                ft.clone(),
                ds,
                client_seed,
            );
            let mut session = ServerSession::new(
                ClientId(k as u64),
                CausalLm::bind(&tiny, &base.shared_view(false)),
                split,
                &ft,
                client_seed,
            );
            let curve = run_split_steps(
                &mut client,
                &mut session,
                ForwardMode::NoGradReforward,
                steps,
            );
            ConvergenceCurve {
                label: format!("client-{k}"),
                points: curve_with_time(&curve, round_seconds),
            }
        })
        .collect();

    ConvergenceReport {
        local,
        split_clients,
        round_seconds,
        local_valid_perplexity,
    }
}

fn curve_with_time(curve: &LossCurve, step_seconds: f64) -> Vec<(f64, f32)> {
    curve
        .points()
        .iter()
        .map(|&(step, loss)| ((step + 1) as f64 * step_seconds, loss))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn convergence_matches_local_endpoint() {
        // The paper's claim: all split clients reach the same final
        // perplexity as local fine-tuning, shifted in time.
        let report = run_convergence(Arch::Opt, Corpus::Wiki, 2, 15, 3);
        let local_ppl = report.local.final_perplexity();
        for c in &report.split_clients {
            let ppl = c.final_perplexity();
            assert!(
                (ppl - local_ppl).abs() / local_ppl < 0.25,
                "{}: {} vs local {}",
                c.label,
                ppl,
                local_ppl
            );
        }
        // And split steps take longer wall-clock than local steps.
        let local_end = report.local.points.last().unwrap().0;
        let split_end = report.split_clients[0].points.last().unwrap().0;
        assert!(split_end > local_end);
    }

    #[test]
    fn losses_decrease() {
        let report = run_convergence(Arch::Llama, Corpus::Shakespeare, 1, 12, 5);
        let pts = &report.split_clients[0].points;
        let first = pts.first().unwrap().1;
        let last = pts.last().unwrap().1;
        assert!(
            last < first,
            "split training should learn: {first} -> {last}"
        );
        let pts = &report.local.points;
        assert!(pts.last().unwrap().1 < pts.first().unwrap().1);
    }

    #[test]
    fn corpus_labels() {
        assert!(Corpus::Wiki.label().contains("wikitext"));
        assert!(Corpus::Shakespeare.label().contains("shakespeare"));
        assert!(Corpus::Wiki.text(1).len() >= 20_000);
    }
}

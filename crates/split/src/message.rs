//! Protocol messages exchanged between split-learning clients and the
//! server.

use bytes::Bytes;

use menos_adapters::FineTuneConfig;
use menos_net::{wire_size, FRAME_HEADER_BYTES};

use crate::spec::SplitSpec;

/// A stable client identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClientId(pub u64);

impl std::fmt::Display for ClientId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "client-{}", self.0)
    }
}

/// Messages a client sends to the server.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientMessage {
    /// Initial connection carrying the fine-tuning configuration the
    /// server will profile (paper §3.3).
    Connect {
        /// The connecting client.
        client: ClientId,
        /// Fine-tuning settings (adapter, optimizer, batch, seq).
        ft: FineTuneConfig,
        /// Where the model is cut.
        split: SplitSpec,
    },
    /// Intermediate activations `x_c` — the server's forward input
    /// (protocol step 1).
    Activations {
        /// Sender.
        client: ClientId,
        /// Encoded activation tensor.
        frame: Bytes,
    },
    /// Gradients `g_c` w.r.t. the server output — the server's
    /// backward input (protocol step 3).
    Gradients {
        /// Sender.
        client: ClientId,
        /// Encoded gradient tensor.
        frame: Bytes,
    },
    /// The client finished fine-tuning; the server may release its
    /// state.
    Disconnect {
        /// Sender.
        client: ClientId,
    },
}

/// Messages the server sends to a client.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerMessage {
    /// The client's session is profiled and ready to serve.
    Ready {
        /// Addressee.
        client: ClientId,
    },
    /// Server-side forward output `x_s` (protocol step 2).
    ServerActivations {
        /// Addressee.
        client: ClientId,
        /// Encoded activation tensor.
        frame: Bytes,
    },
    /// Server-side gradients `g_s` w.r.t. the client's activations
    /// (protocol step 4).
    ServerGradients {
        /// Addressee.
        client: ClientId,
        /// Encoded gradient tensor.
        frame: Bytes,
    },
}

/// Size of a small control frame on the wire.
const CONTROL_BYTES: u64 = 256;

impl ClientMessage {
    /// Bytes this message occupies on the wire. Tensor messages are
    /// exact (frame header + encoded payload); control messages use a
    /// nominal size.
    pub fn wire_bytes(&self) -> u64 {
        match self {
            ClientMessage::Connect { .. } | ClientMessage::Disconnect { .. } => CONTROL_BYTES,
            ClientMessage::Activations { frame, .. } | ClientMessage::Gradients { frame, .. } => {
                FRAME_HEADER_BYTES + frame.len() as u64
            }
        }
    }

    /// The sender.
    pub fn client(&self) -> ClientId {
        match self {
            ClientMessage::Connect { client, .. }
            | ClientMessage::Activations { client, .. }
            | ClientMessage::Gradients { client, .. }
            | ClientMessage::Disconnect { client } => *client,
        }
    }
}

impl ServerMessage {
    /// Bytes this message occupies on the wire. Tensor messages are
    /// exact (frame header + encoded payload); control messages use a
    /// nominal size.
    pub fn wire_bytes(&self) -> u64 {
        match self {
            ServerMessage::Ready { .. } => CONTROL_BYTES,
            ServerMessage::ServerActivations { frame, .. }
            | ServerMessage::ServerGradients { frame, .. } => {
                FRAME_HEADER_BYTES + frame.len() as u64
            }
        }
    }

    /// The addressee.
    pub fn client(&self) -> ClientId {
        match self {
            ServerMessage::Ready { client }
            | ServerMessage::ServerActivations { client, .. }
            | ServerMessage::ServerGradients { client, .. } => *client,
        }
    }
}

/// Analytic wire size of a framed activation/gradient message for a
/// workload, without materializing it: protocol frame header plus the
/// encoded `[batch, seq, hidden]` tensor.
pub fn activation_wire_bytes(batch: usize, seq: usize, hidden: usize) -> u64 {
    FRAME_HEADER_BYTES + wire_size(&[batch, seq, hidden])
}

#[cfg(test)]
mod tests {
    use super::*;
    use menos_models::ModelConfig;
    use menos_net::encode_tensor;
    use menos_tensor::Tensor;

    #[test]
    fn message_sizes() {
        let t = Tensor::zeros([2, 3, 4]);
        let frame = encode_tensor(&t);
        let msg = ClientMessage::Activations {
            client: ClientId(1),
            frame: frame.clone(),
        };
        assert_eq!(msg.wire_bytes(), FRAME_HEADER_BYTES + frame.len() as u64);
        assert_eq!(msg.client(), ClientId(1));

        let cfg = ModelConfig::tiny_opt(10);
        let connect = ClientMessage::Connect {
            client: ClientId(2),
            ft: menos_adapters::FineTuneConfig::paper(&cfg),
            split: SplitSpec::paper(),
        };
        assert_eq!(connect.wire_bytes(), 256);
    }

    #[test]
    fn server_message_sizes() {
        let frame = encode_tensor(&Tensor::zeros([4]));
        let msg = ServerMessage::ServerGradients {
            client: ClientId(3),
            frame: frame.clone(),
        };
        assert_eq!(msg.wire_bytes(), FRAME_HEADER_BYTES + frame.len() as u64);
        assert_eq!(msg.client(), ClientId(3));
        assert_eq!(
            ServerMessage::Ready {
                client: ClientId(3)
            }
            .wire_bytes(),
            256
        );
    }

    #[test]
    fn analytic_size_matches_real_encoding() {
        // The analytic size must equal the length of the bytes the
        // unified codec actually puts on the wire for that message.
        let t = Tensor::zeros([4, 100, 64]);
        let msg = ClientMessage::Activations {
            client: ClientId(0),
            frame: encode_tensor(&t),
        };
        assert_eq!(
            activation_wire_bytes(4, 100, 64),
            crate::codec::encode_client_message(&msg).len() as u64
        );
        assert_eq!(activation_wire_bytes(4, 100, 64), msg.wire_bytes());
    }

    #[test]
    fn client_id_display() {
        assert_eq!(ClientId(7).to_string(), "client-7");
    }
}
